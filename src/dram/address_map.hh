/**
 * @file
 * Physical address to SDRAM location mapping.
 *
 * The baseline machine (Table 3) uses Page Interleaving: the column bits
 * sit directly above the block offset so that a sequential stream fills an
 * entire row (page) before moving to the next channel/bank, maximizing row
 * locality while spreading consecutive pages across channels and banks for
 * parallelism. BlockInterleave and BitReversal are provided for the
 * related-work / future-work mapping studies (Section 7).
 */

#ifndef BURSTSIM_DRAM_ADDRESS_MAP_HH
#define BURSTSIM_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/config.hh"

namespace bsim::dram
{

/**
 * Bijective mapping between block-aligned physical addresses and
 * (channel, rank, bank, row, column) coordinates.
 *
 * All field widths are derived from the DramConfig; dimensions must be
 * powers of two. Addresses beyond the configured capacity wrap (the
 * workload generators keep footprints inside capacity; tests assert the
 * wrap behaviour explicitly).
 */
class AddressMap
{
  public:
    /** Build a mapper for @p cfg (validates power-of-two dimensions). */
    explicit AddressMap(const DramConfig &cfg);

    /** Decode a byte address into SDRAM coordinates. */
    Coords decode(Addr addr) const;

    /** Re-encode coordinates into the canonical block base address. */
    Addr encode(const Coords &c) const;

    /** Block base (alignment) of @p addr. */
    Addr
    blockBase(Addr addr) const
    {
        return addr & ~Addr(blockBytes_ - 1);
    }

    /** Number of address bits covered by the mapping. */
    std::uint32_t addressBits() const { return totalBits_; }

  private:
    static std::uint32_t log2Exact(std::uint64_t v, const char *what);

    AddressMapKind kind_;
    std::uint32_t blockBytes_;
    std::uint32_t offsetBits_, colBits_, chanBits_, bankBits_, rankBits_,
        rowBits_;
    std::uint32_t totalBits_;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_ADDRESS_MAP_HH
