/**
 * @file
 * Sparse functional backing store.
 *
 * Holds the actual contents of main memory at cache-block granularity so
 * that data integrity (read-your-writes through the reordering controller)
 * can be verified end to end in tests and examples. Blocks are allocated
 * lazily; unwritten memory reads as zero.
 */

#ifndef BURSTSIM_DRAM_BACKING_STORE_HH
#define BURSTSIM_DRAM_BACKING_STORE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace bsim::dram
{

/** Sparse block-granular memory contents. */
class BackingStore
{
  public:
    /** Create a store for blocks of @p block_bytes bytes. */
    explicit BackingStore(std::uint32_t block_bytes = 64)
        : blockBytes_(block_bytes)
    {}

    /** Block size in bytes. */
    std::uint32_t blockBytes() const { return blockBytes_; }

    /**
     * Write @p data (block_bytes bytes) to the block containing @p addr.
     */
    void write(Addr addr, const std::uint8_t *data);

    /**
     * Read the block containing @p addr into @p data (block_bytes bytes).
     * Unwritten blocks read as zero.
     */
    void read(Addr addr, std::uint8_t *data) const;

    /** Convenience: write a 64-bit stamp at the start of the block. */
    void writeStamp(Addr addr, std::uint64_t stamp);

    /** Convenience: read the 64-bit stamp at the start of the block. */
    std::uint64_t readStamp(Addr addr) const;

    /** Number of blocks ever written. */
    std::size_t allocatedBlocks() const { return blocks_.size(); }

  private:
    Addr base(Addr addr) const { return addr / blockBytes_; }

    std::uint32_t blockBytes_;
    std::unordered_map<Addr, std::vector<std::uint8_t>> blocks_;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_BACKING_STORE_HH
