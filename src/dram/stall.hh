/**
 * @file
 * Stall-cause taxonomy for per-cycle accounting.
 *
 * Lives in dram (not obs) so the device timing engine can report *why*
 * a command is blocked without a layering inversion: dram produces the
 * causes, ctrl routes them, obs aggregates them. Every memory cycle of
 * a channel is attributed to exactly one cause (see
 * obs/stall_attribution.hh for the telescoping invariant).
 */

#ifndef BURSTSIM_DRAM_STALL_HH
#define BURSTSIM_DRAM_STALL_HH

#include <cstddef>
#include <cstdint>

namespace bsim::dram
{

/**
 * Why a command could not issue — or, lifted to per-cycle accounting,
 * what a channel's command slot was doing that cycle.
 *
 * The first group are cycle categories assigned by the accounting
 * layer; the Timing* group are the binding device constraints returned
 * by MemorySystem::whyBlocked(); the policy group is reported by the
 * schedulers themselves.
 */
enum class StallCause : std::uint8_t
{
    None = 0,     //!< not blocked: the command may issue

    // Cycle categories (assigned by obs::StallAttribution).
    DataTransfer, //!< the data bus carried a burst this cycle
    PrepIssue,    //!< a command issued this cycle, no data on the bus yet
    PendingData,  //!< burst scheduled; waiting out the CAS / write gap
    NoWork,       //!< nothing outstanding in this channel

    // Binding timing constraint (from MemorySystem::whyBlocked).
    TimingTRCD,       //!< activate-to-column delay
    TimingTRP,        //!< precharge-to-activate delay
    TimingTRC,        //!< activate-to-activate, same bank
    TimingTRAS,       //!< minimum row-open time before precharge
    TimingTWR,        //!< write recovery before precharge
    TimingTRTP,       //!< read-to-precharge delay
    TimingTRRD,       //!< activate-to-activate, same rank
    TimingTFAW,       //!< four-activate window, same rank
    TimingTWTR,       //!< write-to-read turnaround, same rank
    TimingTRFC,       //!< refresh cycle time blocks the bank
    TimingTurnaround, //!< tRTRS / tRTW data-bus gap delays the burst
    TimingDataBus,    //!< data bus busy with a previous burst
    TimingCmdBus,     //!< channel command slot already used this cycle

    // Policy causes (reported by Scheduler::stallScan).
    ThresholdGated, //!< writes postponed by read-priority / RP-WP policy
    ArbLoss,        //!< issuable (or near), but lost arbitration
    RefreshDrain,   //!< new activates barred: rank drains for refresh

    WrongState, //!< bank state does not match the command (defensive)
};

/** Number of distinct causes (array-index bound). */
inline constexpr std::size_t kNumStallCauses =
    std::size_t(StallCause::WrongState) + 1;

/** Stable snake_case cause name (used in reports, CSV and JSON keys). */
const char *stallCauseName(StallCause c);

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_STALL_HH
