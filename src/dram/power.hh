/**
 * @file
 * DDR2 energy estimation (extension).
 *
 * The paper evaluates performance only, but its central quantity — the
 * row hit rate — is also the main DRAM energy lever: every avoided
 * activate/precharge pair saves the largest per-operation energy in the
 * device. This model follows Micron's TN-47-04 "Calculating Memory
 * System Power for DDR2" methodology in simplified form: per-operation
 * energies are derived from IDD current deltas, plus a standby
 * background term, scaled by the number of devices per rank.
 */

#ifndef BURSTSIM_DRAM_POWER_HH
#define BURSTSIM_DRAM_POWER_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/config.hh"

namespace bsim::dram
{

/** Per-command issue counts (maintained by MemorySystem). */
struct CommandCounts
{
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0; //!< explicit + auto precharges
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
};

/** IDD-style electrical parameters of one DRAM device. */
struct PowerParams
{
    double vdd = 1.8;      //!< supply voltage, volts
    double idd0 = 0.090;   //!< amps: one ACT-PRE cycle, averaged over tRC
    double idd2n = 0.050;  //!< amps: precharge standby
    double idd3n = 0.065;  //!< amps: active standby
    double idd4r = 0.145;  //!< amps: read burst
    double idd4w = 0.135;  //!< amps: write burst
    double idd5 = 0.170;   //!< amps: refresh
    std::uint32_t devicesPerRank = 8; //!< x8 devices on a 64-bit rank

    /** Micron DDR2-800 1 Gb x8 datasheet-flavoured values. */
    static PowerParams ddr2_800();
};

/** Energy totals in joules, split by contributor. */
struct EnergyBreakdown
{
    double actPre = 0.0;     //!< activate + precharge pairs
    double readBurst = 0.0;  //!< read data bursts
    double writeBurst = 0.0; //!< write data bursts
    double refresh = 0.0;
    double background = 0.0; //!< standby power over the whole run

    /** Total energy in joules. */
    double
    total() const
    {
        return actPre + readBurst + writeBurst + refresh + background;
    }

    /** Average power in watts over @p seconds. */
    double
    averagePower(double seconds) const
    {
        return seconds > 0.0 ? total() / seconds : 0.0;
    }

    /** Energy per transferred byte (J/B); 0 when nothing moved. */
    double
    perByte(std::uint64_t bytes) const
    {
        return bytes ? total() / double(bytes) : 0.0;
    }
};

/**
 * Estimate energy for @p counts of commands on the organization @p cfg
 * over @p elapsed bus cycles at @p clock_ns nanoseconds per cycle.
 */
EnergyBreakdown estimateEnergy(const CommandCounts &counts, Tick elapsed,
                               const DramConfig &cfg,
                               const PowerParams &params, double clock_ns);

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_POWER_HH
