#include "dram/backing_store.hh"

#include <cstring>

namespace bsim::dram
{

void
BackingStore::write(Addr addr, const std::uint8_t *data)
{
    auto &blk = blocks_[base(addr)];
    if (blk.empty())
        blk.resize(blockBytes_);
    std::memcpy(blk.data(), data, blockBytes_);
}

void
BackingStore::read(Addr addr, std::uint8_t *data) const
{
    auto it = blocks_.find(base(addr));
    if (it == blocks_.end()) {
        std::memset(data, 0, blockBytes_);
        return;
    }
    std::memcpy(data, it->second.data(), blockBytes_);
}

void
BackingStore::writeStamp(Addr addr, std::uint64_t stamp)
{
    auto &blk = blocks_[base(addr)];
    if (blk.empty())
        blk.resize(blockBytes_);
    std::memcpy(blk.data(), &stamp, sizeof(stamp));
}

std::uint64_t
BackingStore::readStamp(Addr addr) const
{
    auto it = blocks_.find(base(addr));
    if (it == blocks_.end())
        return 0;
    std::uint64_t s;
    std::memcpy(&s, it->second.data(), sizeof(s));
    return s;
}

} // namespace bsim::dram
