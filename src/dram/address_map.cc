#include "dram/address_map.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::dram
{

namespace
{

/** Extract @p bits bits of @p v starting at bit @p pos. */
inline std::uint64_t
field(std::uint64_t v, std::uint32_t pos, std::uint32_t bits)
{
    return (v >> pos) & ((std::uint64_t(1) << bits) - 1);
}

/** Reverse the low @p bits bits of @p v. */
inline std::uint64_t
reverseBits(std::uint64_t v, std::uint32_t bits)
{
    std::uint64_t r = 0;
    for (std::uint32_t i = 0; i < bits; ++i)
        if (v & (std::uint64_t(1) << i))
            r |= std::uint64_t(1) << (bits - 1 - i);
    return r;
}

} // namespace

const char *
addressMapName(AddressMapKind k)
{
    switch (k) {
      case AddressMapKind::PageInterleave: return "page-interleave";
      case AddressMapKind::BlockInterleave: return "block-interleave";
      case AddressMapKind::BitReversal: return "bit-reversal";
      case AddressMapKind::PermutationInterleave:
        return "permutation-interleave";
    }
    return "?";
}

void
DramConfig::validate() const
{
    timing.validate();
    if (!channels || !ranksPerChannel || !banksPerRank || !rowsPerBank ||
        !blocksPerRow || !blockBytes) {
        throwSimError(ErrorCategory::Config, "dram config: all dimensions must be nonzero");
    }
    // AddressMap enforces power-of-two-ness with better messages.
}

std::uint32_t
AddressMap::log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        throwSimError(ErrorCategory::Config, "address map: %s (%llu) must be a power of two", what,
              static_cast<unsigned long long>(v));
    std::uint32_t b = 0;
    while ((std::uint64_t(1) << b) < v)
        ++b;
    return b;
}

AddressMap::AddressMap(const DramConfig &cfg)
    : kind_(cfg.addressMap),
      blockBytes_(cfg.blockBytes),
      offsetBits_(log2Exact(cfg.blockBytes, "blockBytes")),
      colBits_(log2Exact(cfg.blocksPerRow, "blocksPerRow")),
      chanBits_(log2Exact(cfg.channels, "channels")),
      bankBits_(log2Exact(cfg.banksPerRank, "banksPerRank")),
      rankBits_(log2Exact(cfg.ranksPerChannel, "ranksPerChannel")),
      rowBits_(log2Exact(cfg.rowsPerBank, "rowsPerBank")),
      totalBits_(offsetBits_ + colBits_ + chanBits_ + bankBits_ +
                 rankBits_ + rowBits_)
{
}

Coords
AddressMap::decode(Addr addr) const
{
    Coords c;
    std::uint32_t pos = offsetBits_;

    switch (kind_) {
      case AddressMapKind::PageInterleave: {
        // low -> high: col | channel | bank | rank | row
        c.col = std::uint32_t(field(addr, pos, colBits_));
        pos += colBits_;
        c.channel = std::uint32_t(field(addr, pos, chanBits_));
        pos += chanBits_;
        c.bank = std::uint32_t(field(addr, pos, bankBits_));
        pos += bankBits_;
        c.rank = std::uint32_t(field(addr, pos, rankBits_));
        pos += rankBits_;
        c.row = std::uint32_t(field(addr, pos, rowBits_));
        break;
      }
      case AddressMapKind::BlockInterleave: {
        // low -> high: channel | bank | rank | col | row: adjacent blocks
        // stripe across channels and banks (fine-grain interleaving).
        c.channel = std::uint32_t(field(addr, pos, chanBits_));
        pos += chanBits_;
        c.bank = std::uint32_t(field(addr, pos, bankBits_));
        pos += bankBits_;
        c.rank = std::uint32_t(field(addr, pos, rankBits_));
        pos += rankBits_;
        c.col = std::uint32_t(field(addr, pos, colBits_));
        pos += colBits_;
        c.row = std::uint32_t(field(addr, pos, rowBits_));
        break;
      }
      case AddressMapKind::PermutationInterleave: {
        // Zhang et al. MICRO'00: identical to page interleaving except
        // the bank index is XORed with the low-order row bits, breaking
        // the pathological case where large-stride streams collide in
        // one bank while leaving within-row locality intact.
        c.col = std::uint32_t(field(addr, pos, colBits_));
        pos += colBits_;
        c.channel = std::uint32_t(field(addr, pos, chanBits_));
        pos += chanBits_;
        c.bank = std::uint32_t(field(addr, pos, bankBits_));
        pos += bankBits_;
        c.rank = std::uint32_t(field(addr, pos, rankBits_));
        pos += rankBits_;
        c.row = std::uint32_t(field(addr, pos, rowBits_));
        c.bank ^= std::uint32_t(c.row & ((1u << bankBits_) - 1));
        break;
      }
      case AddressMapKind::BitReversal: {
        // Page interleaving with the bits above the column field reversed
        // (Shao & Davis, SCOPES'05): slowly-varying high-order bits end up
        // selecting channel/bank, spreading large-stride streams.
        c.col = std::uint32_t(field(addr, pos, colBits_));
        pos += colBits_;
        const std::uint32_t high_bits =
            chanBits_ + bankBits_ + rankBits_ + rowBits_;
        std::uint64_t high = field(addr, pos, high_bits);
        high = reverseBits(high, high_bits);
        std::uint32_t hpos = 0;
        c.channel = std::uint32_t(field(high, hpos, chanBits_));
        hpos += chanBits_;
        c.bank = std::uint32_t(field(high, hpos, bankBits_));
        hpos += bankBits_;
        c.rank = std::uint32_t(field(high, hpos, rankBits_));
        hpos += rankBits_;
        c.row = std::uint32_t(field(high, hpos, rowBits_));
        break;
      }
    }
    return c;
}

Addr
AddressMap::encode(const Coords &c) const
{
    Addr addr = 0;
    std::uint32_t pos = offsetBits_;

    switch (kind_) {
      case AddressMapKind::PageInterleave: {
        addr |= Addr(c.col) << pos;
        pos += colBits_;
        addr |= Addr(c.channel) << pos;
        pos += chanBits_;
        addr |= Addr(c.bank) << pos;
        pos += bankBits_;
        addr |= Addr(c.rank) << pos;
        pos += rankBits_;
        addr |= Addr(c.row) << pos;
        break;
      }
      case AddressMapKind::BlockInterleave: {
        addr |= Addr(c.channel) << pos;
        pos += chanBits_;
        addr |= Addr(c.bank) << pos;
        pos += bankBits_;
        addr |= Addr(c.rank) << pos;
        pos += rankBits_;
        addr |= Addr(c.col) << pos;
        pos += colBits_;
        addr |= Addr(c.row) << pos;
        break;
      }
      case AddressMapKind::PermutationInterleave: {
        addr |= Addr(c.col) << pos;
        pos += colBits_;
        addr |= Addr(c.channel) << pos;
        pos += chanBits_;
        const std::uint32_t stored_bank =
            c.bank ^ std::uint32_t(c.row & ((1u << bankBits_) - 1));
        addr |= Addr(stored_bank) << pos;
        pos += bankBits_;
        addr |= Addr(c.rank) << pos;
        pos += rankBits_;
        addr |= Addr(c.row) << pos;
        break;
      }
      case AddressMapKind::BitReversal: {
        addr |= Addr(c.col) << pos;
        pos += colBits_;
        const std::uint32_t high_bits =
            chanBits_ + bankBits_ + rankBits_ + rowBits_;
        std::uint64_t high = 0;
        std::uint32_t hpos = 0;
        high |= std::uint64_t(c.channel) << hpos;
        hpos += chanBits_;
        high |= std::uint64_t(c.bank) << hpos;
        hpos += bankBits_;
        high |= std::uint64_t(c.rank) << hpos;
        hpos += rankBits_;
        high |= std::uint64_t(c.row) << hpos;
        high = reverseBits(high, high_bits);
        addr |= high << pos;
        break;
      }
    }
    return addr;
}

} // namespace bsim::dram
