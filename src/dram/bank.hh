/**
 * @file
 * Per-bank SDRAM state machine.
 *
 * A bank tracks its open row and the earliest tick at which each command
 * class may legally be issued to it. All constraint bookkeeping is local;
 * rank- and channel-level constraints (tRRD, tFAW, tWTR, bus turnaround)
 * live in Rank and Channel.
 */

#ifndef BURSTSIM_DRAM_BANK_HH
#define BURSTSIM_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/stall.hh"
#include "dram/timing.hh"

namespace bsim::dram
{

/** One SDRAM bank: open-row state plus per-command ready times. */
class Bank
{
  public:
    /** True when a row is latched in the sense amplifiers. */
    bool isOpen() const { return open_; }

    /** The open row; only meaningful when isOpen(). */
    std::uint32_t openRow() const { return openRow_; }

    /** True once any row has ever been activated. */
    bool hasLastRow() const { return hasLastRow_; }

    /** The most recently activated row (valid even after precharge). */
    std::uint32_t lastRow() const { return openRow_; }

    /**
     * Classify how an access to @p row would find this bank right now
     * (row hit / empty / conflict), per Section 2 of the paper.
     */
    RowOutcome
    classify(std::uint32_t row) const
    {
        if (!open_)
            return RowOutcome::Empty;
        return openRow_ == row ? RowOutcome::Hit : RowOutcome::Conflict;
    }

    /** Earliest tick an ACTIVATE may issue. */
    Tick actAllowedAt() const { return actAllowedAt_; }

    /** Earliest tick a PRECHARGE may issue. */
    Tick preAllowedAt() const { return preAllowedAt_; }

    /** Earliest tick a READ column access may issue. */
    Tick rdAllowedAt() const { return rdAllowedAt_; }

    /** Earliest tick a WRITE column access may issue. */
    Tick wrAllowedAt() const { return wrAllowedAt_; }

    /** Constraint that last raised actAllowedAt() (tRP, tRC or tRFC). */
    StallCause actBlockCause() const { return actBlockCause_; }

    /** Constraint that last raised preAllowedAt() (tRAS, tRTP or tWR). */
    StallCause preBlockCause() const { return preBlockCause_; }

    /** Can an ACTIVATE of @p row issue at @p now (bank-local rules)? */
    bool
    canActivate(Tick now) const
    {
        return !open_ && now >= actAllowedAt_;
    }

    /** Can a PRECHARGE issue at @p now (bank-local rules)? */
    bool
    canPrecharge(Tick now) const
    {
        return open_ && now >= preAllowedAt_;
    }

    /** Can a READ to @p row issue at @p now (bank-local rules)? */
    bool
    canRead(std::uint32_t row, Tick now) const
    {
        return open_ && openRow_ == row && now >= rdAllowedAt_;
    }

    /** Can a WRITE to @p row issue at @p now (bank-local rules)? */
    bool
    canWrite(std::uint32_t row, Tick now) const
    {
        return open_ && openRow_ == row && now >= wrAllowedAt_;
    }

    /** Apply an ACTIVATE issued at @p now. */
    void activate(std::uint32_t row, Tick now, const Timing &t);

    /** Apply a PRECHARGE issued at @p now. */
    void precharge(Tick now, const Timing &t);

    /**
     * Apply a READ column access issued at @p now; when @p auto_precharge
     * the bank closes itself at the earliest legal point (CPA policy).
     */
    void read(Tick now, const Timing &t, bool auto_precharge);

    /**
     * Apply a WRITE column access issued at @p now; see read() for
     * @p auto_precharge.
     */
    void write(Tick now, const Timing &t, bool auto_precharge);

    /** Apply a refresh that blocks this bank until @p ready. */
    void refreshUntil(Tick ready);

  private:
    /** Raise @p slot to @p ready, remembering @p why when it advances. */
    static void
    raise(Tick &slot, Tick ready, StallCause why, StallCause &slot_cause)
    {
        if (ready > slot) {
            slot = ready;
            slot_cause = why;
        }
    }

    bool open_ = false;
    bool hasLastRow_ = false;
    std::uint32_t openRow_ = 0;
    Tick actAllowedAt_ = 0;
    Tick preAllowedAt_ = 0;
    Tick rdAllowedAt_ = 0;
    Tick wrAllowedAt_ = 0;
    // Which constraint set the current allowed-at ticks, so a blocked
    // command can be attributed to its binding timing parameter.
    // rd/wrAllowedAt_ are only ever raised by tRCD and need no tracking.
    StallCause actBlockCause_ = StallCause::TimingTRP;
    StallCause preBlockCause_ = StallCause::TimingTRAS;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_BANK_HH
