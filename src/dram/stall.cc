#include "dram/stall.hh"

namespace bsim::dram
{

const char *
stallCauseName(StallCause c)
{
    switch (c) {
      case StallCause::None: return "none";
      case StallCause::DataTransfer: return "data_transfer";
      case StallCause::PrepIssue: return "prep_issue";
      case StallCause::PendingData: return "pending_data";
      case StallCause::NoWork: return "no_work";
      case StallCause::TimingTRCD: return "t_rcd";
      case StallCause::TimingTRP: return "t_rp";
      case StallCause::TimingTRC: return "t_rc";
      case StallCause::TimingTRAS: return "t_ras";
      case StallCause::TimingTWR: return "t_wr";
      case StallCause::TimingTRTP: return "t_rtp";
      case StallCause::TimingTRRD: return "t_rrd";
      case StallCause::TimingTFAW: return "t_faw";
      case StallCause::TimingTWTR: return "t_wtr";
      case StallCause::TimingTRFC: return "t_rfc";
      case StallCause::TimingTurnaround: return "bus_turnaround";
      case StallCause::TimingDataBus: return "data_bus_busy";
      case StallCause::TimingCmdBus: return "cmd_bus_busy";
      case StallCause::ThresholdGated: return "threshold_gated";
      case StallCause::ArbLoss: return "arb_loss";
      case StallCause::RefreshDrain: return "refresh_drain";
      case StallCause::WrongState: return "wrong_state";
    }
    return "?";
}

} // namespace bsim::dram
