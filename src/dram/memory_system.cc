#include "dram/memory_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "dram/command_log.hh"

namespace bsim::dram
{

MemorySystem::MemorySystem(const DramConfig &cfg)
    : cfg_(cfg), map_(cfg), store_(cfg.blockBytes)
{
    cfg_.validate();
    channels_.reserve(cfg_.channels);
    for (std::uint32_t i = 0; i < cfg_.channels; ++i)
        channels_.emplace_back(cfg_.ranksPerChannel, cfg_.banksPerRank);
    // Open-biased initial prediction: start every bank at "stay open".
    predictor_.assign(std::size_t(cfg_.channels) * cfg_.ranksPerChannel *
                          cfg_.banksPerRank,
                      1);
    refreshDrain_.assign(std::size_t(cfg_.channels) *
                             cfg_.ranksPerChannel,
                         0);
}

std::uint8_t &
MemorySystem::predictorOf(const Coords &c)
{
    const std::size_t idx =
        (std::size_t(c.channel) * cfg_.ranksPerChannel + c.rank) *
            cfg_.banksPerRank +
        c.bank;
    return predictor_[idx];
}

bool
MemorySystem::decideAutoPrecharge(const Coords &c)
{
    switch (cfg_.pagePolicy) {
      case PagePolicy::OpenPage:
        return false;
      case PagePolicy::ClosePageAuto:
        return true;
      case PagePolicy::Predictive:
        return predictorOf(c) >= 2;
    }
    return false;
}

void
MemorySystem::trainPredictor(const Command &cmd)
{
    // Training events (Ying Xu style, reconstructed at engine level):
    //  - row-hit column access: leaving the row open paid off;
    //  - access-driven precharge (row conflict): we should have closed;
    //  - activate to the same row we last had open: the earlier close
    //    was wrong;
    //  - activate to a different row on a closed bank: the earlier close
    //    avoided a conflict precharge.
    std::uint8_t &ctr = predictorOf(cmd.at);
    const Bank &b = bank(cmd.at);
    auto toward_open = [&] { ctr = std::uint8_t(ctr ? ctr - 1 : 0); };
    auto toward_close = [&] { ctr = std::uint8_t(ctr < 3 ? ctr + 1 : 3); };

    switch (cmd.type) {
      case CmdType::Read:
      case CmdType::Write:
        toward_open(); // this column access found its row open
        break;
      case CmdType::Precharge:
        if (cmd.accessId != 0)
            toward_close(); // conflict-driven precharge
        break;
      case CmdType::Activate:
        if (b.hasLastRow()) {
            if (b.lastRow() == cmd.at.row)
                toward_open(); // re-opening the row we closed
            else
                toward_close(); // the close avoided a conflict
        }
        break;
      case CmdType::RefreshAll:
        break;
    }
}

const Bank &
MemorySystem::bank(const Coords &c) const
{
    return channels_[c.channel].rank(c.rank).bank(c.bank);
}

Bank &
MemorySystem::bankRef(const Coords &c)
{
    return channels_[c.channel].rank(c.rank).bank(c.bank);
}

const Rank &
MemorySystem::rank(const Coords &c) const
{
    return channels_[c.channel].rank(c.rank);
}

const Channel &
MemorySystem::channel(const Coords &c) const
{
    return channels_[c.channel];
}

CmdType
MemorySystem::nextCmdFor(const Coords &c, AccessType type) const
{
    const Bank &b = bank(c);
    switch (b.classify(c.row)) {
      case RowOutcome::Hit:
        return type == AccessType::Read ? CmdType::Read : CmdType::Write;
      case RowOutcome::Empty:
        return CmdType::Activate;
      case RowOutcome::Conflict:
        return CmdType::Precharge;
    }
    panic("unreachable row outcome");
}

StallCause
MemorySystem::whyBlocked(const Command &cmd, Tick now) const
{
    const Channel &ch = channels_[cmd.at.channel];
    if (!ch.cmdBusFree(now))
        return StallCause::TimingCmdBus;

    const Rank &r = ch.rank(cmd.at.rank);
    const Bank &b = r.bank(cmd.at.bank);
    const Timing &t = cfg_.timing;

    switch (cmd.type) {
      case CmdType::Precharge:
        if (!b.isOpen())
            return StallCause::WrongState;
        if (now < b.preAllowedAt())
            return b.preBlockCause();
        return StallCause::None;
      case CmdType::Activate:
        if (b.isOpen())
            return StallCause::WrongState;
        if (refreshDraining(cmd.at.channel, cmd.at.rank))
            return StallCause::RefreshDrain;
        if (now < b.actAllowedAt())
            return b.actBlockCause();
        return r.activateBlock(now, t);
      case CmdType::Read:
        if (!b.isOpen() || b.openRow() != cmd.at.row)
            return StallCause::WrongState;
        if (now < b.rdAllowedAt())
            return StallCause::TimingTRCD;
        if (!r.canRead(now))
            return StallCause::TimingTWTR;
        return ch.dataStartBlock(now + t.tCL, cmd.at.rank, false, t);
      case CmdType::Write:
        if (!b.isOpen() || b.openRow() != cmd.at.row)
            return StallCause::WrongState;
        if (now < b.wrAllowedAt())
            return StallCause::TimingTRCD;
        return ch.dataStartBlock(now + t.tWL, cmd.at.rank, true, t);
      case CmdType::RefreshAll: {
        if (!r.allBanksClosed())
            return StallCause::WrongState;
        for (std::uint32_t i = 0; i < r.numBanks(); ++i)
            if (now < r.bank(i).actAllowedAt())
                return r.bank(i).actBlockCause();
        return StallCause::None;
      }
    }
    return StallCause::WrongState;
}

Tick
MemorySystem::blockedUntil(const Command &cmd, Tick now) const
{
    // Mirror whyBlocked()'s branch order exactly and return when the
    // branch that fires there stops firing. Deadline-style constraints
    // ("now < X") expire at X; WrongState never expires on its own.
    const Channel &ch = channels_[cmd.at.channel];
    if (!ch.cmdBusFree(now))
        return ch.cmdBusFreeAt();

    const Rank &r = ch.rank(cmd.at.rank);
    const Bank &b = r.bank(cmd.at.bank);
    const Timing &t = cfg_.timing;

    switch (cmd.type) {
      case CmdType::Precharge:
        if (!b.isOpen())
            return kTickMax;
        if (now < b.preAllowedAt())
            return b.preAllowedAt();
        return now;
      case CmdType::Activate:
        if (b.isOpen())
            return kTickMax;
        // A drain gate only clears when the refresh engine issues the
        // pending RefreshAll — an external state change, like WrongState.
        if (refreshDraining(cmd.at.channel, cmd.at.rank))
            return kTickMax;
        if (now < b.actAllowedAt())
            return b.actAllowedAt();
        return r.activateBlockedUntil(now, t);
      case CmdType::Read:
        if (!b.isOpen() || b.openRow() != cmd.at.row)
            return kTickMax;
        if (now < b.rdAllowedAt())
            return b.rdAllowedAt();
        if (!r.canRead(now))
            return r.readAllowedAt();
        if (ch.dataStartBlock(now + t.tCL, cmd.at.rank, false, t) !=
            StallCause::None) {
            // The reported cause flips from TimingDataBus to
            // TimingTurnaround when the raw occupancy clears; the
            // horizon must stop there, not only at full expiry.
            const Tick expiry =
                ch.earliestDataStart(cmd.at.rank, false, t) - t.tCL;
            const Tick flip = ch.dataBusFreeAt() - t.tCL;
            return flip > now && flip < expiry ? flip : expiry;
        }
        return now;
      case CmdType::Write:
        if (!b.isOpen() || b.openRow() != cmd.at.row)
            return kTickMax;
        if (now < b.wrAllowedAt())
            return b.wrAllowedAt();
        if (ch.dataStartBlock(now + t.tWL, cmd.at.rank, true, t) !=
            StallCause::None) {
            const Tick expiry =
                ch.earliestDataStart(cmd.at.rank, true, t) - t.tWL;
            const Tick flip = ch.dataBusFreeAt() - t.tWL;
            return flip > now && flip < expiry ? flip : expiry;
        }
        return now;
      case CmdType::RefreshAll: {
        if (!r.allBanksClosed())
            return kTickMax;
        for (std::uint32_t i = 0; i < r.numBanks(); ++i)
            if (now < r.bank(i).actAllowedAt())
                return r.bank(i).actAllowedAt();
        return now;
      }
    }
    return kTickMax;
}

Tick
MemorySystem::readyAt(const Command &cmd, Tick now) const
{
    // Max-compose every deadline-style constraint instead of stopping at
    // the first binding one: the result is the exact earliest legal
    // issue tick, so event-driven callers need no re-poll chain. State
    // gates (wrong row, drain) still return kTickMax — only another
    // command clears them.
    const Channel &ch = channels_[cmd.at.channel];
    const Rank &r = ch.rank(cmd.at.rank);
    const Bank &b = r.bank(cmd.at.bank);
    const Timing &t = cfg_.timing;

    Tick ready = std::max(now, ch.cmdBusFreeAt());
    switch (cmd.type) {
      case CmdType::Precharge:
        if (!b.isOpen())
            return kTickMax;
        return std::max(ready, b.preAllowedAt());
      case CmdType::Activate:
        if (b.isOpen())
            return kTickMax;
        if (refreshDraining(cmd.at.channel, cmd.at.rank))
            return kTickMax;
        return r.activateReadyAt(std::max(ready, b.actAllowedAt()), t);
      case CmdType::Read: {
        if (!b.isOpen() || b.openRow() != cmd.at.row)
            return kTickMax;
        ready = std::max(ready, b.rdAllowedAt());
        ready = std::max(ready, r.readAllowedAt());
        const Tick eds = ch.earliestDataStart(cmd.at.rank, false, t);
        return eds > ready + t.tCL ? eds - t.tCL : ready;
      }
      case CmdType::Write: {
        if (!b.isOpen() || b.openRow() != cmd.at.row)
            return kTickMax;
        ready = std::max(ready, b.wrAllowedAt());
        const Tick eds = ch.earliestDataStart(cmd.at.rank, true, t);
        return eds > ready + t.tWL ? eds - t.tWL : ready;
      }
      case CmdType::RefreshAll: {
        if (!r.allBanksClosed())
            return kTickMax;
        for (std::uint32_t i = 0; i < r.numBanks(); ++i)
            ready = std::max(ready, r.bank(i).actAllowedAt());
        return ready;
      }
    }
    return kTickMax;
}

IssueResult
MemorySystem::issue(const Command &cmd, Tick now)
{
    if (!canIssue(cmd, now))
        panic("illegal %s issue at tick %llu (ch%u r%u b%u row%u)",
              cmdName(cmd.type), static_cast<unsigned long long>(now),
              cmd.at.channel, cmd.at.rank, cmd.at.bank, cmd.at.row);

    if (cfg_.pagePolicy == PagePolicy::Predictive)
        trainPredictor(cmd);

    Channel &ch = channels_[cmd.at.channel];
    Rank &r = ch.rank(cmd.at.rank);
    Bank &b = r.bank(cmd.at.bank);
    const Timing &t = cfg_.timing;
    const bool auto_pre =
        isColumnAccess(cmd.type) && decideAutoPrecharge(cmd.at);
    if (isColumnAccess(cmd.type)) {
        predColumns_ += 1;
        predCloses_ += auto_pre;
    }

    ch.useCmdBus(now);

    IssueResult res;
    switch (cmd.type) {
      case CmdType::Precharge:
        b.precharge(now, t);
        cmdCounts_.precharges += 1;
        break;
      case CmdType::Activate:
        b.activate(cmd.at.row, now, t);
        r.noteActivate(now, t);
        cmdCounts_.activates += 1;
        break;
      case CmdType::Read: {
        res.dataStart = now + t.tCL;
        res.dataEnd = res.dataStart + t.dataCycles();
        ch.useDataBus(res.dataStart, cmd.at.rank, false, t);
        b.read(now, t, auto_pre);
        cmdCounts_.reads += 1;
        cmdCounts_.precharges += auto_pre;
        break;
      }
      case CmdType::Write: {
        res.dataStart = now + t.tWL;
        res.dataEnd = res.dataStart + t.dataCycles();
        ch.useDataBus(res.dataStart, cmd.at.rank, true, t);
        b.write(now, t, auto_pre);
        r.noteWrite(res.dataEnd, t);
        cmdCounts_.writes += 1;
        cmdCounts_.precharges += auto_pre;
        break;
      }
      case CmdType::RefreshAll:
        r.refresh(now, t);
        cmdCounts_.refreshes += 1;
        break;
    }

    if (log_ || observer_) {
        CommandRecord rec;
        rec.at = now;
        rec.type = cmd.type;
        rec.coords = cmd.at;
        rec.accessId = cmd.accessId;
        rec.dataStart = res.dataStart;
        rec.dataEnd = res.dataEnd;
        rec.autoPrecharge = auto_pre;
        if (log_)
            log_->record(rec);
        if (observer_)
            observer_->onCommand(rec);
    }
    return res;
}

std::uint64_t
MemorySystem::cmdBusyCycles() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch.cmdBusyCycles();
    return n;
}

std::uint64_t
MemorySystem::dataBusyCycles() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch.dataBusyCycles();
    return n;
}

double
MemorySystem::predictedCloseRate() const
{
    if (cfg_.pagePolicy != PagePolicy::Predictive || !predColumns_)
        return 0.0;
    return double(predCloses_) / double(predColumns_);
}

double
MemorySystem::addressBusUtilization(Tick elapsed) const
{
    if (!elapsed)
        return 0.0;
    return double(cmdBusyCycles()) /
           (double(elapsed) * double(channels_.size()));
}

double
MemorySystem::dataBusUtilization(Tick elapsed) const
{
    if (!elapsed)
        return 0.0;
    return double(dataBusyCycles()) /
           (double(elapsed) * double(channels_.size()));
}

} // namespace bsim::dram
