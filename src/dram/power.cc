#include "dram/power.hh"

namespace bsim::dram
{

PowerParams
PowerParams::ddr2_800()
{
    return PowerParams{};
}

EnergyBreakdown
estimateEnergy(const CommandCounts &counts, Tick elapsed,
               const DramConfig &cfg, const PowerParams &p,
               double clock_ns)
{
    EnergyBreakdown e;
    const double dev = double(p.devicesPerRank);
    const double sec_per_cycle = clock_ns * 1e-9;
    const Timing &t = cfg.timing;

    // One ACT/PRE pair: IDD0 is the average current of a full tRC
    // activate-precharge loop; subtracting the active-standby floor
    // isolates the operation's incremental energy (TN-47-04 eq. for
    // P(ACT)). Charged per activate (the matching precharge included).
    const double act_pre_j = (p.idd0 - p.idd3n) * p.vdd *
                             double(t.tRC) * sec_per_cycle * dev;
    e.actPre = act_pre_j * double(counts.activates);

    // Read/write bursts: incremental current over active standby for the
    // burst duration.
    const double rd_j = (p.idd4r - p.idd3n) * p.vdd *
                        double(t.dataCycles()) * sec_per_cycle * dev;
    const double wr_j = (p.idd4w - p.idd3n) * p.vdd *
                        double(t.dataCycles()) * sec_per_cycle * dev;
    e.readBurst = rd_j * double(counts.reads);
    e.writeBurst = wr_j * double(counts.writes);

    // Refresh: incremental current over precharge standby for tRFC, per
    // all-bank refresh command (which refreshes one rank).
    const double ref_j = (p.idd5 - p.idd2n) * p.vdd * double(t.tRFC) *
                         sec_per_cycle * dev;
    e.refresh = ref_j * double(counts.refreshes);

    // Background: every device idles at (roughly) the midpoint of
    // precharge and active standby for the whole run. Scales with the
    // total rank count — this is the term that rewards finishing early.
    const double ranks = double(cfg.channels) * cfg.ranksPerChannel;
    const double standby_a = 0.5 * (p.idd2n + p.idd3n);
    e.background = standby_a * p.vdd * double(elapsed) * sec_per_cycle *
                   dev * ranks;
    return e;
}

} // namespace bsim::dram
