/**
 * @file
 * SDRAM organization and controller-policy configuration.
 */

#ifndef BURSTSIM_DRAM_CONFIG_HH
#define BURSTSIM_DRAM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "dram/timing.hh"

namespace bsim::dram
{

/** Row policy of the controller (Table 1 of the paper + Section 2.2). */
enum class PagePolicy : std::uint8_t
{
    OpenPage,           //!< leave the accessed row open (baseline)
    ClosePageAuto,      //!< precharge automatically after each access
    /** History-based open/close prediction (Ying Xu's dynamic SDRAM
     *  controller policy predictor, cited in Section 2.2): a per-bank
     *  saturating counter learns whether the next access tends to reuse
     *  the row (stay open) or conflict (close early). */
    Predictive,
};

/** Address-to-location mapping scheme (Section 2.2 related work). */
enum class AddressMapKind : std::uint8_t
{
    PageInterleave,     //!< baseline of Table 3: row-sized runs per bank
    BlockInterleave,    //!< cache-block granularity channel/bank stripes
    BitReversal,        //!< Shao & Davis SCOPES'05 bit-reversal mapping
    /** Permutation-based page interleaving (Zhang, Zhu & Zhang,
     *  MICRO'00, cited in Section 2.2): XOR the bank index with
     *  low-order row bits so conflicting rows spread across banks while
     *  row locality is untouched. */
    PermutationInterleave,
};

/** Printable name of an address mapping. */
const char *addressMapName(AddressMapKind k);

/** Organization + timing of the simulated main memory. */
struct DramConfig
{
    /** Table 3 baseline: 2 channels x 4 ranks x 4 banks, 4 GB total. */
    std::uint32_t channels = 2;
    std::uint32_t ranksPerChannel = 4;
    std::uint32_t banksPerRank = 4;
    std::uint32_t rowsPerBank = 16384;
    /** Blocks (bursts) per row: 8 KB row / 64 B block. */
    std::uint32_t blocksPerRow = 128;
    /** Bytes per column-access burst (cache block). */
    std::uint32_t blockBytes = 64;

    Timing timing = Timing::ddr2_800();
    PagePolicy pagePolicy = PagePolicy::OpenPage;
    AddressMapKind addressMap = AddressMapKind::PageInterleave;

    /** Total banks across the machine. */
    std::uint32_t
    totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t(totalBanks()) * rowsPerBank * blocksPerRow *
               blockBytes;
    }

    /** Validate; throws SimError(ErrorCategory::Config) when inconsistent. */
    void validate() const;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_CONFIG_HH
