#include "dram/timing.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::dram
{

void
Timing::validate() const
{
    if (burstLength == 0 || burstLength % 2)
        throwSimError(ErrorCategory::Config, "timing '%s': burstLength must be a positive even number",
              name.c_str());
    if (tCL == 0 || tRCD == 0 || tRP == 0)
        throwSimError(ErrorCategory::Config, "timing '%s': tCL/tRCD/tRP must be nonzero", name.c_str());
    if (tRC < tRAS)
        throwSimError(ErrorCategory::Config, "timing '%s': tRC (%u) must be >= tRAS (%u)", name.c_str(),
              tRC, tRAS);
    if (tWL >= tCL + 1)
        throwSimError(ErrorCategory::Config, "timing '%s': tWL (%u) must be <= tCL (%u)", name.c_str(),
              tWL, tCL);
    if (tREFI != 0 && tRFC >= tREFI)
        throwSimError(ErrorCategory::Config, "timing '%s': tRFC (%u) must be < tREFI (%u)", name.c_str(),
              tRFC, tREFI);
}

Timing
Timing::ddr2_800()
{
    Timing t;
    t.name = "DDR2-800 PC2-6400 5-5-5";
    t.tCL = 5;
    t.tRCD = 5;
    t.tRP = 5;
    t.tRAS = 18;   // 45 ns
    t.tRC = 23;    // tRAS + tRP
    t.tWR = 6;     // 15 ns
    t.tWTR = 3;    // 7.5 ns
    t.tRTP = 3;    // 7.5 ns
    t.tRRD = 3;    // 7.5 ns
    t.tFAW = 15;   // 37.5 ns
    t.tWL = 4;     // tCL - 1 (DDR2)
    t.tRTRS = 2;
    t.tRTW = 2;
    t.tREFI = 3120; // 7.8 us at 400 MHz
    t.tRFC = 51;    // 127.5 ns
    t.burstLength = 8;
    return t;
}

Timing
Timing::ddr_266()
{
    Timing t;
    t.name = "DDR-266 PC-2100 2-2-2";
    t.tCL = 2;
    t.tRCD = 2;
    t.tRP = 2;
    t.tRAS = 6;    // 45 ns at 133 MHz
    t.tRC = 8;
    t.tWR = 2;     // 15 ns
    t.tWTR = 1;
    t.tRTP = 1;
    t.tRRD = 1;
    t.tFAW = 0;    // DDR1 has no FAW constraint
    t.tWL = 1;     // DDR1 write latency is one cycle
    t.tRTRS = 1;
    t.tRTW = 1;
    t.tREFI = 1040; // 7.8 us at 133 MHz
    t.tRFC = 10;
    t.burstLength = 4;
    return t;
}

Timing
Timing::figure1Example()
{
    Timing t = ddr_266();
    t.name = "Figure-1 example 2-2-2 BL4";
    // The worked example only exercises tCL/tRCD/tRP and the burst
    // transfer; neutralize the secondary constraints so its idealized
    // schedule is admissible.
    t.tRAS = 4;    // row may close right after its column access
    t.tRC = 6;
    t.tWR = 1;
    t.tWTR = 0;
    t.tRTP = 0;
    t.tRRD = 0;
    t.tFAW = 0;
    t.tRTRS = 0;
    t.tRTW = 0;
    t.tREFI = 0;   // no refresh during the 30-cycle example
    return t;
}

} // namespace bsim::dram
