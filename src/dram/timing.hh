/**
 * @file
 * SDRAM timing parameter sets.
 *
 * All parameters are expressed in memory bus clock cycles. Presets follow
 * the devices the paper references: DDR2-800 (PC2-6400, 5-5-5) for the
 * baseline machine (Table 3) and DDR-266 (PC-2100, 2-2-2) for the worked
 * example of Figure 1 and the technology-trend discussion in Section 6.
 */

#ifndef BURSTSIM_DRAM_TIMING_HH
#define BURSTSIM_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace bsim::dram
{

/**
 * A complete DDRx timing parameter set in bus clock cycles.
 *
 * The data bus transfers two beats per clock (DDR); a burst of length
 * `burstLength` therefore occupies `burstLength / 2` clocks, available as
 * dataCycles().
 */
struct Timing
{
    std::string name = "custom";

    // Core 3-tuple the paper quotes as tCL-tRCD-tRP.
    std::uint32_t tCL = 5;   //!< column access (CAS) latency
    std::uint32_t tRCD = 5;  //!< row activate to column access
    std::uint32_t tRP = 5;   //!< precharge to activate

    std::uint32_t tRAS = 18; //!< activate to precharge, same bank
    std::uint32_t tRC = 23;  //!< activate to activate, same bank
    std::uint32_t tWR = 6;   //!< end of write data to precharge
    std::uint32_t tWTR = 3;  //!< end of write data to read, same rank
    std::uint32_t tRTP = 3;  //!< read to precharge
    std::uint32_t tRRD = 3;  //!< activate to activate, same rank
    std::uint32_t tFAW = 15; //!< window for four activates, same rank (0 = off)
    std::uint32_t tWL = 4;   //!< write latency (command to first write data)
    std::uint32_t tRTRS = 2; //!< rank to rank data bus turnaround
    std::uint32_t tRTW = 2;  //!< read to write data bus turnaround gap

    std::uint32_t tREFI = 3120; //!< average refresh interval (0 = off)
    std::uint32_t tRFC = 51;    //!< refresh cycle time

    std::uint32_t burstLength = 8; //!< beats per column access

    /** Clocks of data bus occupancy per column access. */
    std::uint32_t dataCycles() const { return burstLength / 2; }

    /**
     * Idle-bus access latency from first transaction to end of data, as in
     * Table 1 of the paper (plus the data transfer itself).
     * Row hit: tCL; empty: tRCD+tCL; conflict: tRP+tRCD+tCL.
     */
    std::uint32_t
    idleLatency(bool needs_precharge, bool needs_activate) const
    {
        std::uint32_t lat = tCL;
        if (needs_activate)
            lat += tRCD;
        if (needs_precharge)
            lat += tRP;
        return lat;
    }

    /** Validate internal consistency; throws SimError(ErrorCategory::Config)
     *  on bad user configuration. */
    void validate() const;

    /** DDR2-800 / PC2-6400 5-5-5 (baseline machine of Table 3). */
    static Timing ddr2_800();

    /** DDR-266 / PC-2100 2-2-2 with burst length 4 (Figure 1 example). */
    static Timing ddr_266();

    /**
     * The exact device of the Figure 1 worked example: 2-2-2, burst
     * length 4, with every secondary constraint relaxed so the published
     * 28-vs-16-cycle schedule is reproducible cycle for cycle.
     */
    static Timing figure1Example();
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_TIMING_HH
