#include "dram/command_log.hh"

#include <algorithm>
#include <map>
#include <ostream>

namespace bsim::dram
{

void
CommandLog::record(const CommandRecord &rec)
{
    total_ += 1;
    if (capacity_ == 0)
        return;
    if (buf_.size() < capacity_) {
        buf_.push_back(rec);
        return;
    }
    buf_[head_] = rec;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
}

std::vector<CommandRecord>
CommandLog::records() const
{
    std::vector<CommandRecord> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

void
CommandLog::clear()
{
    buf_.clear();
    head_ = 0;
    total_ = 0;
}

namespace
{

char
glyphOf(CmdType t)
{
    switch (t) {
      case CmdType::Precharge: return 'P';
      case CmdType::Activate: return 'A';
      case CmdType::Read: return 'R';
      case CmdType::Write: return 'W';
      case CmdType::RefreshAll: return 'F';
    }
    return '?';
}

} // namespace

void
CommandLog::renderTimeline(std::ostream &os, Tick from, Tick to,
                           std::size_t max_width) const
{
    if (to <= from) {
        os << "(empty window)\n";
        return;
    }
    Tick span = to - from;
    bool truncated = false;
    if (span > max_width) {
        span = max_width;
        to = from + span;
        truncated = true;
    }

    // Lane keys: bank lanes sorted by (channel, rank, bank); one data
    // lane per channel at the end.
    auto bank_key = [](const Coords &c) {
        return (std::uint64_t(c.channel) << 32) |
               (std::uint64_t(c.rank) << 16) | c.bank;
    };
    std::map<std::uint64_t, std::string> bank_lanes;
    std::map<std::uint32_t, std::string> data_lanes;

    for (const auto &rec : records()) {
        if (rec.type == CmdType::RefreshAll) {
            // Refresh covers the whole rank; draw on every known lane of
            // that rank later — simply ensure a lane exists for bank 0.
        }
        if (rec.at >= from && rec.at < to) {
            auto &lane = bank_lanes[bank_key(rec.coords)];
            if (lane.empty())
                lane.assign(span, '.');
            lane[std::size_t(rec.at - from)] = glyphOf(rec.type);
        }
        if (isColumnAccess(rec.type)) {
            auto &dlane = data_lanes[rec.coords.channel];
            if (dlane.empty())
                dlane.assign(span, '.');
            const Tick s = std::max(rec.dataStart, from);
            const Tick e = std::min(rec.dataEnd, to);
            for (Tick t = s; t < e; ++t)
                dlane[std::size_t(t - from)] = '=';
        }
    }

    // Header ruler with tick marks every 10 cycles.
    os << "timeline [" << from << ", " << to << ")";
    if (truncated)
        os << " (truncated to " << max_width << " cycles)";
    os << "\n";
    std::string ruler(span, ' ');
    for (Tick t = from; t < to; ++t)
        if (t % 10 == 0)
            ruler[std::size_t(t - from)] = '|';
    os << "                 " << ruler << '\n';

    auto emit_lane = [&](std::string label, const std::string &lane) {
        label.resize(17, ' ');
        os << label << lane << '\n';
    };
    for (const auto &[key, lane] : bank_lanes) {
        const std::uint32_t ch = std::uint32_t(key >> 32);
        const std::uint32_t rk = std::uint32_t((key >> 16) & 0xffff);
        const std::uint32_t bk = std::uint32_t(key & 0xffff);
        char label[32];
        std::snprintf(label, sizeof(label), "ch%u r%u b%u", ch, rk, bk);
        emit_lane(label, lane);
    }
    for (const auto &[ch, lane] : data_lanes) {
        char label[32];
        std::snprintf(label, sizeof(label), "ch%u data bus", ch);
        emit_lane(label, lane);
    }
    os << "P precharge  A activate  R read  W write  F refresh  = data\n";
}

} // namespace bsim::dram
