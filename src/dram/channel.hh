/**
 * @file
 * Per-channel shared-bus state: the command/address bus (one command per
 * cycle) and the data bus with rank-to-rank (tRTRS) and read/write
 * direction-turnaround gaps. Also owns the channel's ranks and the
 * bus-utilization statistics reported in Figure 9(b).
 */

#ifndef BURSTSIM_DRAM_CHANNEL_HH
#define BURSTSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"

namespace bsim::dram
{

/** One memory channel: ranks plus shared command and data busses. */
class Channel
{
  public:
    /** Construct with @p ranks ranks of @p banks_per_rank banks. */
    Channel(std::uint32_t ranks, std::uint32_t banks_per_rank);

    /** Rank accessor. */
    Rank &rank(std::uint32_t i) { return ranks_[i]; }
    const Rank &rank(std::uint32_t i) const { return ranks_[i]; }

    /** Number of ranks. */
    std::uint32_t numRanks() const
    {
        return std::uint32_t(ranks_.size());
    }

    /** True when no command has been issued at @p now yet. */
    bool cmdBusFree(Tick now) const
    {
        return !cmdIssuedYet_ || now > lastCmdAt_;
    }

    /** First tick at which the command bus is (or becomes) free. */
    Tick cmdBusFreeAt() const
    {
        return cmdIssuedYet_ ? lastCmdAt_ + 1 : 0;
    }

    /** Claim the command bus for @p now (asserts it was free). */
    void useCmdBus(Tick now);

    /**
     * Earliest legal start of a data burst by @p rank in direction
     * @p is_write, given current data bus state (tRTRS and tRTW gaps).
     */
    Tick earliestDataStart(std::uint32_t rank, bool is_write,
                           const Timing &t) const;

    /**
     * Why a data burst by @p rank in direction @p is_write cannot start
     * by @p want_by: TimingDataBus when the bus itself is still busy,
     * TimingTurnaround when only the tRTRS / tRTW gap pushes the start
     * past @p want_by, or None when it fits.
     */
    StallCause dataStartBlock(Tick want_by, std::uint32_t rank,
                              bool is_write, const Timing &t) const;

    /** Record a data burst [start, start + dataCycles) by @p rank. */
    void useDataBus(Tick start, std::uint32_t rank, bool is_write,
                    const Timing &t);

    /** Tick at which the data bus becomes free. */
    Tick dataBusFreeAt() const { return dataFreeAt_; }

    /** Rank that last owned the data bus (undefined before first use). */
    std::uint32_t lastDataRank() const { return lastDataRank_; }

    /** True if data bus has been used at least once. */
    bool dataBusUsedYet() const { return dataUsedYet_; }

    /** Total cycles the command bus carried a command. */
    std::uint64_t cmdBusyCycles() const { return cmdBusyCycles_; }

    /** Total cycles the data bus carried data. */
    std::uint64_t dataBusyCycles() const { return dataBusyCycles_; }

  private:
    std::vector<Rank> ranks_;

    bool cmdIssuedYet_ = false;
    Tick lastCmdAt_ = 0;
    std::uint64_t cmdBusyCycles_ = 0;

    bool dataUsedYet_ = false;
    Tick dataFreeAt_ = 0;
    std::uint32_t lastDataRank_ = 0;
    bool lastDataWasWrite_ = false;
    std::uint64_t dataBusyCycles_ = 0;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_CHANNEL_HH
