/**
 * @file
 * Top-level SDRAM device model: channels -> ranks -> banks plus the shared
 * busses, behind a two-call interface (canIssue / issue) that enforces
 * every timing constraint. Scheduling policies can only reorder; they can
 * never violate device timing, so differences between access reordering
 * mechanisms are purely ordering decisions, as in the paper.
 */

#ifndef BURSTSIM_DRAM_MEMORY_SYSTEM_HH
#define BURSTSIM_DRAM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/backing_store.hh"
#include "dram/channel.hh"
#include "dram/command.hh"
#include "dram/config.hh"
#include "dram/power.hh"
#include "dram/stall.hh"

namespace bsim::dram
{

/** Result of issuing a command. */
struct IssueResult
{
    /** First cycle of the data burst (column accesses only). */
    Tick dataStart = 0;
    /** One past the last cycle of the data burst (column accesses only). */
    Tick dataEnd = 0;
};

/**
 * The complete simulated main memory.
 *
 * One command may issue per channel per cycle (split-transaction
 * command/address bus); column accesses additionally reserve the
 * channel's data bus. All checks are side-effect free via canIssue();
 * issue() applies the command and panics on any violation, so a buggy
 * scheduler fails loudly rather than silently cheating.
 */
class MemorySystem
{
  public:
    /** Build the device tree described by @p cfg. */
    explicit MemorySystem(const DramConfig &cfg);

    /** Configuration this system was built with. */
    const DramConfig &config() const { return cfg_; }

    /** Active timing parameter set. */
    const Timing &timing() const { return cfg_.timing; }

    /** Address decoder for this organization. */
    const AddressMap &addressMap() const { return map_; }

    /** Functional contents of memory. */
    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }

    /** Bank state at @p c. */
    const Bank &bank(const Coords &c) const;

    /** Rank holding @p c. */
    const Rank &rank(const Coords &c) const;

    /** Channel holding @p c. */
    const Channel &channel(const Coords &c) const;

    /** Row hit / empty / conflict classification for an access at @p c. */
    RowOutcome
    classify(const Coords &c) const
    {
        return bank(c).classify(c.row);
    }

    /**
     * The next transaction an access at @p c needs, derived from current
     * bank state: column access on a row hit, ACTIVATE on a row empty,
     * PRECHARGE on a row conflict.
     */
    CmdType nextCmdFor(const Coords &c, AccessType type) const;

    /** Is the channel's command bus free at @p now? */
    bool
    cmdBusFree(std::uint32_t channel, Tick now) const
    {
        return channels_[channel].cmdBusFree(now);
    }

    /** May @p cmd legally issue at @p now? (includes command bus) */
    bool
    canIssue(const Command &cmd, Tick now) const
    {
        return whyBlocked(cmd, now) == StallCause::None;
    }

    /**
     * The first constraint blocking @p cmd at @p now, or None when the
     * command may issue. The checks mirror canIssue()'s historical
     * branch order exactly, so `whyBlocked(...) == None` is the legality
     * predicate and the reason costs nothing extra on the issue path.
     */
    StallCause whyBlocked(const Command &cmd, Tick now) const;

    /**
     * First tick at which the constraint whyBlocked() reports for @p cmd
     * expires: @p now when the command may already issue, kTickMax for
     * WrongState (only another command changes bank state), otherwise
     * the end of the binding timing window. A later check in the branch
     * order may still block at that tick — callers re-poll — so the
     * result may undershoot the true issue tick but never overshoots a
     * state change (the event-horizon contract; see docs/performance.md).
     */
    Tick blockedUntil(const Command &cmd, Tick now) const;

    /**
     * The exact first tick >= @p now at which @p cmd may legally issue
     * given current device state (kTickMax for WrongState / drain
     * gates). Unlike blockedUntil() — which stops at the binding
     * constraint's expiry and at stall-cause flip points so span-based
     * stall attribution stays cycle-exact — this composes every
     * deadline-style constraint with max(), so callers need not
     * re-poll. Every constraint is a fixed deadline that only future
     * commands on the same channel can move, which is what makes the
     * schedulers' per-bank bound caches exact (see ctrl/scheduler.hh).
     * Only sound when per-cycle stall causes are not being attributed.
     */
    Tick readyAt(const Command &cmd, Tick now) const;

    /** Issue @p cmd at @p now; panics if illegal. */
    IssueResult issue(const Command &cmd, Tick now);

    /** Total command-bus busy cycles, summed over channels. */
    std::uint64_t cmdBusyCycles() const;

    /** Total data-bus busy cycles, summed over channels. */
    std::uint64_t dataBusyCycles() const;

    /** Address bus utilization over @p elapsed ticks. */
    double addressBusUtilization(Tick elapsed) const;

    /** Data bus utilization over @p elapsed ticks. */
    double dataBusUtilization(Tick elapsed) const;

    /** Number of channels. */
    std::uint32_t numChannels() const
    {
        return std::uint32_t(channels_.size());
    }

    /** Attach a command log; every subsequent issue() is recorded.
     *  Pass nullptr to detach. The log is not owned. */
    void attachLog(class CommandLog *log) { log_ = log; }

    /** Attach a command-stream observer (e.g. the protocol auditor);
     *  every subsequent issue() is reported. Pass nullptr to detach.
     *  The observer is not owned. */
    void attachObserver(class CommandObserver *obs) { observer_ = obs; }

    /** Predictive page policy: fraction of column accesses the predictor
     *  chose to auto-precharge (diagnostics; 0 for static policies). */
    double predictedCloseRate() const;

    /** Issue counts per command type (feeds the energy model). */
    const CommandCounts &commandCounts() const { return cmdCounts_; }

    /** Mutable rank access (used by the controller's refresh engine). */
    Rank &
    rankRef(std::uint32_t channel, std::uint32_t rank)
    {
        return channels_[channel].rank(rank);
    }

    /**
     * Refresh-drain gate: while set for a rank, Activate commands to it
     * are reported blocked (StallCause::RefreshDrain), so schedulers
     * stop opening rows and the rank's banks can close for the pending
     * RefreshAll. Without this gate a busy scheduler can re-activate
     * banks as fast as the refresh engine precharges them and starve
     * the refresh forever. Set and cleared by the controller's refresh
     * engine; never by the device itself.
     */
    void
    setRefreshDrain(std::uint32_t channel, std::uint32_t rank, bool on)
    {
        refreshDrain_[std::size_t(channel) * cfg_.ranksPerChannel +
                      rank] = on;
    }

    /** Is the refresh-drain gate set for this rank? */
    bool
    refreshDraining(std::uint32_t channel, std::uint32_t rank) const
    {
        return refreshDrain_[std::size_t(channel) *
                                 cfg_.ranksPerChannel +
                             rank] != 0;
    }

  private:
    Bank &bankRef(const Coords &c);

    /** Per-bank 2-bit saturating open/close predictor (PagePolicy::
     *  Predictive): 0-1 predict "stay open", 2-3 predict "close". */
    std::uint8_t &predictorOf(const Coords &c);
    bool decideAutoPrecharge(const Coords &c);
    void trainPredictor(const Command &cmd);

    DramConfig cfg_;
    AddressMap map_;
    BackingStore store_;
    std::vector<Channel> channels_;
    class CommandLog *log_ = nullptr;
    class CommandObserver *observer_ = nullptr;
    std::vector<std::uint8_t> predictor_;
    std::vector<std::uint8_t> refreshDrain_;
    std::uint64_t predCloses_ = 0;
    std::uint64_t predColumns_ = 0;
    CommandCounts cmdCounts_;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_MEMORY_SYSTEM_HH
