/**
 * @file
 * Command logging and ASCII timeline rendering.
 *
 * A CommandLog attached to a MemorySystem records every issued SDRAM
 * transaction. The renderer draws the kind of waterfall diagram the
 * paper uses in Figures 1 and 2 — one lane per bank showing P/A/R/W
 * commands, plus a data-bus lane showing the transfer bursts — which is
 * invaluable when debugging a scheduler's interleaving decisions.
 */

#ifndef BURSTSIM_DRAM_COMMAND_LOG_HH
#define BURSTSIM_DRAM_COMMAND_LOG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/command.hh"

namespace bsim::dram
{

/** One issued transaction. */
struct CommandRecord
{
    Tick at = 0;
    CmdType type = CmdType::Precharge;
    Coords coords;
    std::uint64_t accessId = 0;
    Tick dataStart = 0; //!< column accesses only
    Tick dataEnd = 0;   //!< column accesses only
    /** Column access closed its bank itself (CPA / predictive policy). */
    bool autoPrecharge = false;
};

/**
 * Receives every issued command as it happens (in issue order). Unlike
 * the CommandLog ring buffer, an observer sees the unbounded stream —
 * the protocol auditor (obs/protocol_audit.hh) validates it online.
 */
class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;

    /** Called once per issued command, after the device applied it. */
    virtual void onCommand(const CommandRecord &rec) = 0;
};

/**
 * Bounded in-order record of issued commands.
 *
 * Retention is a ring buffer: once @p capacity records are held, each
 * new record overwrites the oldest in O(1). (An earlier version evicted
 * with vector::erase(begin()), which made every record O(capacity) once
 * the log filled — ruinous when tracing long runs.)
 */
class CommandLog
{
  public:
    /** Keep at most @p capacity records (oldest dropped first). */
    explicit CommandLog(std::size_t capacity = 4096)
        : capacity_(capacity)
    {}

    /** Append a record (overwrites the oldest beyond capacity). */
    void record(const CommandRecord &rec);

    /** Snapshot of all retained records, oldest first. */
    std::vector<CommandRecord> records() const;

    /** Number of retained records. */
    std::size_t size() const { return buf_.size(); }

    /** Retention capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Total records ever offered (including dropped ones). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Discard all records. */
    void clear();

    /**
     * Render an ASCII waterfall of the window [from, to): one lane per
     * (channel, rank, bank) that issued a command, plus one data-bus
     * lane per channel. Lanes show 'P' (precharge), 'A' (activate),
     * 'R'/'W' (column accesses) at their issue tick; data lanes show
     * '=' for occupied cycles. A window longer than @p max_width
     * columns is truncated with a note.
     */
    void renderTimeline(std::ostream &os, Tick from, Tick to,
                        std::size_t max_width = 100) const;

  private:
    std::size_t capacity_;
    std::vector<CommandRecord> buf_; //!< ring once size() == capacity
    std::size_t head_ = 0;           //!< index of the oldest record
    std::uint64_t total_ = 0;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_COMMAND_LOG_HH
