/**
 * @file
 * Per-rank SDRAM constraints: tRRD, tFAW activation throttling, the
 * rank-wide write-to-read turnaround (tWTR), and refresh bookkeeping.
 */

#ifndef BURSTSIM_DRAM_RANK_HH
#define BURSTSIM_DRAM_RANK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/timing.hh"

namespace bsim::dram
{

/** One rank: a set of banks sharing activation and turnaround windows. */
class Rank
{
  public:
    /** Construct with @p num_banks banks. */
    explicit Rank(std::uint32_t num_banks) : banks_(num_banks) {}

    /** Bank accessor. */
    Bank &bank(std::uint32_t i) { return banks_[i]; }
    const Bank &bank(std::uint32_t i) const { return banks_[i]; }

    /** Number of banks in this rank. */
    std::uint32_t numBanks() const
    {
        return std::uint32_t(banks_.size());
    }

    /** Rank-level check: may an ACTIVATE issue at @p now? (tRRD, tFAW) */
    bool
    canActivate(Tick now, const Timing &t) const
    {
        return activateBlock(now, t) == StallCause::None;
    }

    /**
     * Which rank-level constraint blocks an ACTIVATE at @p now:
     * TimingTRRD, TimingTFAW, or None when unblocked.
     */
    StallCause activateBlock(Tick now, const Timing &t) const;

    /**
     * First tick at which the constraint reported by activateBlock()
     * expires: the tRRD window end when tRRD binds, the tFAW window end
     * when tFAW binds, or @p now when neither blocks.
     */
    Tick activateBlockedUntil(Tick now, const Timing &t) const;

    /**
     * Exact earliest tick >= @p from at which both rank-level activate
     * windows (tRRD and tFAW) are open — the max-composition of the two
     * deadlines activateBlockedUntil() reports one at a time.
     */
    Tick activateReadyAt(Tick from, const Timing &t) const;

    /** Rank-level check: may a READ issue at @p now? (tWTR) */
    bool canRead(Tick now) const { return now >= rdAllowedAt_; }

    /** First tick at which the tWTR read gate opens. */
    Tick readAllowedAt() const { return rdAllowedAt_; }

    /** Record an ACTIVATE issued at @p now. */
    void noteActivate(Tick now, const Timing &t);

    /** Record a WRITE whose data finishes at @p data_end. */
    void
    noteWrite(Tick data_end, const Timing &t)
    {
        const Tick ready = data_end + t.tWTR;
        if (ready > rdAllowedAt_)
            rdAllowedAt_ = ready;
    }

    /** True when every bank is precharged (refresh precondition). */
    bool allBanksClosed() const;

    /** May a REFRESH issue at @p now? (all closed, precharges settled) */
    bool canRefresh(Tick now) const;

    /** Apply a REFRESH issued at @p now: blocks all banks for tRFC. */
    void refresh(Tick now, const Timing &t);

  private:
    std::vector<Bank> banks_;
    /** Ticks of the most recent activates, for tRRD (last) and tFAW. */
    std::array<Tick, 4> actWindow_{};
    std::uint32_t actWindowPos_ = 0;
    Tick lastActAt_ = 0;
    bool anyActYet_ = false;
    Tick rdAllowedAt_ = 0;
};

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_RANK_HH
