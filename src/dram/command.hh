/**
 * @file
 * SDRAM command (transaction) definitions.
 *
 * The paper distinguishes three transaction kinds generated per access —
 * bank precharge, row activate and column access (read or write) — plus
 * the data transfer they imply. Auto-refresh is issued per rank by the
 * controller's refresh engine.
 */

#ifndef BURSTSIM_DRAM_COMMAND_HH
#define BURSTSIM_DRAM_COMMAND_HH

#include <cstdint>

#include "common/types.hh"

namespace bsim::dram
{

/** Location of a block within the SDRAM organization. */
struct Coords
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t col = 0; //!< block (burst) index within the row

    bool
    sameBank(const Coords &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank;
    }

    bool
    sameRow(const Coords &o) const
    {
        return sameBank(o) && row == o.row;
    }

    bool
    sameRank(const Coords &o) const
    {
        return channel == o.channel && rank == o.rank;
    }
};

/** SDRAM command types the engine can issue. */
enum class CmdType : std::uint8_t
{
    Precharge,  //!< close the open row of one bank
    Activate,   //!< open a row (copy it into the sense amplifiers)
    Read,       //!< column access, read burst
    Write,      //!< column access, write burst
    RefreshAll, //!< per-rank auto refresh (all banks)
};

/** Printable command mnemonic. */
inline const char *
cmdName(CmdType t)
{
    switch (t) {
      case CmdType::Precharge: return "PRE";
      case CmdType::Activate: return "ACT";
      case CmdType::Read: return "RD";
      case CmdType::Write: return "WR";
      case CmdType::RefreshAll: return "REF";
    }
    return "?";
}

/** True for the two column-access commands (the only data-bus users). */
inline bool
isColumnAccess(CmdType t)
{
    return t == CmdType::Read || t == CmdType::Write;
}

/** A fully-specified command ready for issue. */
struct Command
{
    CmdType type = CmdType::Precharge;
    Coords at;
    /** Id of the access this transaction belongs to (0 = none/refresh). */
    std::uint64_t accessId = 0;
};

/**
 * How an access finds the SDRAM device state when it is first serviced.
 * Mirrors the paper's row hit / row empty / row conflict classification.
 */
enum class RowOutcome : std::uint8_t { Hit, Empty, Conflict };

/** Printable name of a row outcome. */
inline const char *
rowOutcomeName(RowOutcome o)
{
    switch (o) {
      case RowOutcome::Hit: return "hit";
      case RowOutcome::Empty: return "empty";
      case RowOutcome::Conflict: return "conflict";
    }
    return "?";
}

} // namespace bsim::dram

#endif // BURSTSIM_DRAM_COMMAND_HH
