#include "dram/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace bsim::dram
{

Channel::Channel(std::uint32_t ranks, std::uint32_t banks_per_rank)
{
    ranks_.reserve(ranks);
    for (std::uint32_t i = 0; i < ranks; ++i)
        ranks_.emplace_back(banks_per_rank);
}

void
Channel::useCmdBus(Tick now)
{
    if (!cmdBusFree(now))
        panic("two commands in one cycle on the same channel (tick %llu)",
              static_cast<unsigned long long>(now));
    if (cmdIssuedYet_ && now < lastCmdAt_)
        panic("command bus used in the past");
    cmdIssuedYet_ = true;
    lastCmdAt_ = now;
    cmdBusyCycles_ += 1;
}

Tick
Channel::earliestDataStart(std::uint32_t rank, bool is_write,
                           const Timing &t) const
{
    if (!dataUsedYet_)
        return 0;
    Tick start = dataFreeAt_;
    if (rank != lastDataRank_) {
        // Rank-to-rank turnaround: dead cycles between bursts from
        // different ranks (DDR2, Section 3 of the paper).
        start += t.tRTRS;
    } else if (!lastDataWasWrite_ && is_write) {
        // Read-to-write direction switch on the shared data bus.
        start += t.tRTW;
    }
    // Write-to-read same rank is governed by the rank-wide tWTR, which
    // Rank::canRead enforces; no extra bus gap here.
    return start;
}

StallCause
Channel::dataStartBlock(Tick want_by, std::uint32_t rank, bool is_write,
                        const Timing &t) const
{
    if (earliestDataStart(rank, is_write, t) <= want_by)
        return StallCause::None;
    // Binding constraint: the raw bus occupancy alone, or only the
    // turnaround gap added on top of it?
    if (dataFreeAt_ > want_by)
        return StallCause::TimingDataBus;
    return StallCause::TimingTurnaround;
}

void
Channel::useDataBus(Tick start, std::uint32_t rank, bool is_write,
                    const Timing &t)
{
    if (start < earliestDataStart(rank, is_write, t))
        panic("data bus conflict: start=%llu free=%llu",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(dataFreeAt_));
    dataUsedYet_ = true;
    dataFreeAt_ = start + t.dataCycles();
    lastDataRank_ = rank;
    lastDataWasWrite_ = is_write;
    dataBusyCycles_ += t.dataCycles();
}

} // namespace bsim::dram
