#include "dram/bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace bsim::dram
{

void
Bank::activate(std::uint32_t row, Tick now, const Timing &t)
{
    if (open_)
        panic("activate on open bank at tick %llu",
              static_cast<unsigned long long>(now));
    if (now < actAllowedAt_)
        panic("activate violates tRP/tRC/tRFC: now=%llu allowed=%llu",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(actAllowedAt_));
    open_ = true;
    hasLastRow_ = true;
    openRow_ = row;
    rdAllowedAt_ = std::max(rdAllowedAt_, now + t.tRCD);
    wrAllowedAt_ = std::max(wrAllowedAt_, now + t.tRCD);
    preAllowedAt_ = std::max(preAllowedAt_, now + t.tRAS);
    actAllowedAt_ = std::max(actAllowedAt_, now + t.tRC);
}

void
Bank::precharge(Tick now, const Timing &t)
{
    if (!open_)
        panic("precharge on closed bank at tick %llu",
              static_cast<unsigned long long>(now));
    if (now < preAllowedAt_)
        panic("precharge violates tRAS/tWR/tRTP: now=%llu allowed=%llu",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(preAllowedAt_));
    open_ = false;
    actAllowedAt_ = std::max(actAllowedAt_, now + t.tRP);
}

void
Bank::read(Tick now, const Timing &t, bool auto_precharge)
{
    if (!open_ || now < rdAllowedAt_)
        panic("illegal read at tick %llu",
              static_cast<unsigned long long>(now));
    // Earliest precharge after a read: the burst must be allowed to leave
    // the array. DDR2 read-to-precharge works out to roughly
    // dataCycles + tRTP - 2 after the command; never earlier than now + 1.
    const Tick rtp_done =
        now + std::max<Tick>(1, Tick(t.dataCycles()) + t.tRTP - 2);
    preAllowedAt_ = std::max(preAllowedAt_, rtp_done);
    if (auto_precharge) {
        // Close-page-autoprecharge: the device precharges itself at the
        // earliest legal point; model as an implicit precharge then.
        const Tick pre_at = preAllowedAt_;
        open_ = false;
        actAllowedAt_ = std::max(actAllowedAt_, pre_at + t.tRP);
    }
}

void
Bank::write(Tick now, const Timing &t, bool auto_precharge)
{
    if (!open_ || now < wrAllowedAt_)
        panic("illegal write at tick %llu",
              static_cast<unsigned long long>(now));
    // Write recovery: precharge only after the write data has been
    // restored into the array (end of data + tWR).
    const Tick data_end = now + t.tWL + t.dataCycles();
    preAllowedAt_ = std::max(preAllowedAt_, data_end + t.tWR);
    if (auto_precharge) {
        const Tick pre_at = preAllowedAt_;
        open_ = false;
        actAllowedAt_ = std::max(actAllowedAt_, pre_at + t.tRP);
    }
}

void
Bank::refreshUntil(Tick ready)
{
    if (open_)
        panic("refresh with open bank");
    actAllowedAt_ = std::max(actAllowedAt_, ready);
}

} // namespace bsim::dram
