#include "dram/bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace bsim::dram
{

void
Bank::activate(std::uint32_t row, Tick now, const Timing &t)
{
    if (open_)
        panic("activate on open bank at tick %llu",
              static_cast<unsigned long long>(now));
    if (now < actAllowedAt_)
        panic("activate violates tRP/tRC/tRFC: now=%llu allowed=%llu",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(actAllowedAt_));
    open_ = true;
    hasLastRow_ = true;
    openRow_ = row;
    rdAllowedAt_ = std::max(rdAllowedAt_, now + t.tRCD);
    wrAllowedAt_ = std::max(wrAllowedAt_, now + t.tRCD);
    raise(preAllowedAt_, now + t.tRAS, StallCause::TimingTRAS,
          preBlockCause_);
    raise(actAllowedAt_, now + t.tRC, StallCause::TimingTRC,
          actBlockCause_);
}

void
Bank::precharge(Tick now, const Timing &t)
{
    if (!open_)
        panic("precharge on closed bank at tick %llu",
              static_cast<unsigned long long>(now));
    if (now < preAllowedAt_)
        panic("precharge violates tRAS/tWR/tRTP: now=%llu allowed=%llu",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(preAllowedAt_));
    open_ = false;
    raise(actAllowedAt_, now + t.tRP, StallCause::TimingTRP,
          actBlockCause_);
}

void
Bank::read(Tick now, const Timing &t, bool auto_precharge)
{
    if (!open_ || now < rdAllowedAt_)
        panic("illegal read at tick %llu",
              static_cast<unsigned long long>(now));
    // Earliest precharge after a read: the burst must be allowed to leave
    // the array. DDR2 read-to-precharge works out to roughly
    // dataCycles + tRTP - 2 after the command; never earlier than now + 1.
    const Tick rtp_done =
        now + std::max<Tick>(1, Tick(t.dataCycles()) + t.tRTP - 2);
    raise(preAllowedAt_, rtp_done, StallCause::TimingTRTP, preBlockCause_);
    if (auto_precharge) {
        // Close-page-autoprecharge: the device precharges itself at the
        // earliest legal point; model as an implicit precharge then.
        const Tick pre_at = preAllowedAt_;
        open_ = false;
        raise(actAllowedAt_, pre_at + t.tRP, StallCause::TimingTRP,
              actBlockCause_);
    }
}

void
Bank::write(Tick now, const Timing &t, bool auto_precharge)
{
    if (!open_ || now < wrAllowedAt_)
        panic("illegal write at tick %llu",
              static_cast<unsigned long long>(now));
    // Write recovery: precharge only after the write data has been
    // restored into the array (end of data + tWR).
    const Tick data_end = now + t.tWL + t.dataCycles();
    raise(preAllowedAt_, data_end + t.tWR, StallCause::TimingTWR,
          preBlockCause_);
    if (auto_precharge) {
        const Tick pre_at = preAllowedAt_;
        open_ = false;
        raise(actAllowedAt_, pre_at + t.tRP, StallCause::TimingTRP,
              actBlockCause_);
    }
}

void
Bank::refreshUntil(Tick ready)
{
    if (open_)
        panic("refresh with open bank");
    raise(actAllowedAt_, ready, StallCause::TimingTRFC, actBlockCause_);
}

} // namespace bsim::dram
