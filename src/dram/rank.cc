#include "dram/rank.hh"

namespace bsim::dram
{

StallCause
Rank::activateBlock(Tick now, const Timing &t) const
{
    if (anyActYet_ && t.tRRD && now < lastActAt_ + t.tRRD)
        return StallCause::TimingTRRD;
    if (t.tFAW) {
        // The oldest entry in the 4-deep window is the 4th-last activate;
        // a 5th activate must wait tFAW past it.
        const Tick fourth_last = actWindow_[actWindowPos_];
        if (fourth_last != 0 && now < fourth_last + t.tFAW)
            return StallCause::TimingTFAW;
    }
    return StallCause::None;
}

Tick
Rank::activateBlockedUntil(Tick now, const Timing &t) const
{
    // Mirror activateBlock()'s check order exactly: the returned tick is
    // when the *reported* constraint expires, not the overall earliest
    // legal activate (tFAW may still bind after tRRD clears — callers
    // re-poll, so a conservative undershoot is correct, an overshoot is
    // not).
    if (anyActYet_ && t.tRRD && now < lastActAt_ + t.tRRD)
        return lastActAt_ + t.tRRD;
    if (t.tFAW) {
        const Tick fourth_last = actWindow_[actWindowPos_];
        if (fourth_last != 0 && now < fourth_last + t.tFAW)
            return fourth_last + t.tFAW;
    }
    return now;
}

Tick
Rank::activateReadyAt(Tick from, const Timing &t) const
{
    Tick ready = from;
    if (anyActYet_ && t.tRRD && lastActAt_ + t.tRRD > ready)
        ready = lastActAt_ + t.tRRD;
    if (t.tFAW) {
        const Tick fourth_last = actWindow_[actWindowPos_];
        if (fourth_last != 0 && fourth_last + t.tFAW > ready)
            ready = fourth_last + t.tFAW;
    }
    return ready;
}

void
Rank::noteActivate(Tick now, const Timing &t)
{
    (void)t;
    lastActAt_ = now;
    anyActYet_ = true;
    // Store now+1 so that a legitimate activate at tick 0 is not mistaken
    // for the "empty slot" sentinel 0; canActivate compensates nowhere
    // because a one-tick slack on tFAW at cold start is harmless.
    actWindow_[actWindowPos_] = now == 0 ? 1 : now;
    actWindowPos_ = (actWindowPos_ + 1) % actWindow_.size();
}

bool
Rank::allBanksClosed() const
{
    for (const auto &b : banks_)
        if (b.isOpen())
            return false;
    return true;
}

bool
Rank::canRefresh(Tick now) const
{
    if (!allBanksClosed())
        return false;
    for (const auto &b : banks_)
        if (now < b.actAllowedAt())
            return false;
    return true;
}

void
Rank::refresh(Tick now, const Timing &t)
{
    for (auto &b : banks_)
        b.refreshUntil(now + t.tRFC);
}

} // namespace bsim::dram
