#include "ctrl/controller.hh"

#include "common/error.hh"
#include "common/log.hh"
#include "ctrl/schedulers/factory.hh"
#include "obs/observability.hh"
#include "obs/selfprof.hh"

namespace bsim::ctrl
{

namespace
{

/** Map a scheduler's horizon pin onto the wake-reason taxonomy. */
obs::WakeReason
reasonOf(HorizonPin pin)
{
    switch (pin) {
      case HorizonPin::ArbFill: return obs::WakeReason::SchedArbFill;
      case HorizonPin::Preempt: return obs::WakeReason::SchedPreempt;
      case HorizonPin::DrainFlip: return obs::WakeReason::SchedDrainFlip;
      case HorizonPin::Piggyback: return obs::WakeReason::SchedPiggyback;
      case HorizonPin::WriteDrain:
        return obs::WakeReason::SchedWriteDrain;
      case HorizonPin::Timing: return obs::WakeReason::SchedBound;
      case HorizonPin::Epoch: return obs::WakeReason::SchedEpoch;
      case HorizonPin::Conservative:
        return obs::WakeReason::SchedConservative;
      case HorizonPin::None: break;
    }
    return obs::WakeReason::SchedBound;
}

} // namespace

SchedulerParams
ControllerConfig::schedulerParams() const
{
    SchedulerParams p;
    p.writeCap = writeCap;
    p.dynamicThreshold = dynamicThreshold;
    p.sortBurstsBySize = sortBurstsBySize;
    p.criticalFirst = criticalFirst;
    p.rankAware = rankAware;
    switch (mechanism) {
      case Mechanism::BkInOrder:
      case Mechanism::RowHit:
      case Mechanism::Intel:
      case Mechanism::Burst:
      case Mechanism::AdaptiveHistory:
        p.readPreemption = false;
        p.writePiggyback = false;
        p.threshold = writeCap; // unused
        break;
      case Mechanism::IntelRP:
        p.readPreemption = true;
        p.writePiggyback = false;
        p.threshold = writeCap; // preempt whenever not saturated
        break;
      case Mechanism::BurstRP:
        // Equivalent to Burst_TH with threshold == writeCap (Section 5.4).
        p.readPreemption = true;
        p.writePiggyback = false;
        p.threshold = writeCap;
        break;
      case Mechanism::BurstWP:
        // Equivalent to Burst_TH with threshold == 0.
        p.readPreemption = false;
        p.writePiggyback = true;
        p.threshold = 0;
        break;
      case Mechanism::BurstTH:
        p.readPreemption = true;
        p.writePiggyback = true;
        p.threshold = threshold;
        break;
      case Mechanism::FrFcfs:
      case Mechanism::Parbs:
      case Mechanism::Atlas:
      case Mechanism::Bliss:
        p.readPreemption = false;
        p.writePiggyback = false;
        p.threshold = writeCap; // unused
        p.watermarkDrain = watermarkDrain;
        break;
    }
    return p;
}

double
ControllerStats::rowHitRate() const
{
    const double n = double(rowHits + rowEmpties + rowConflicts);
    return ratio(double(rowHits), n);
}

double
ControllerStats::rowConflictRate() const
{
    const double n = double(rowHits + rowEmpties + rowConflicts);
    return ratio(double(rowConflicts), n);
}

double
ControllerStats::rowEmptyRate() const
{
    const double n = double(rowHits + rowEmpties + rowConflicts);
    return ratio(double(rowEmpties), n);
}

double
ControllerStats::writeSaturationRate() const
{
    return ratio(double(writeSatTicks), double(ticks));
}

MemoryController::MemoryController(dram::MemorySystem &mem,
                                   const ControllerConfig &cfg)
    : mem_(mem), cfg_(cfg)
{
    if (cfg_.writeCap > cfg_.poolCap)
        throwSimError(ErrorCategory::Config,
                      "controller: writeCap (%zu) exceeds poolCap (%zu)",
                      cfg_.writeCap, cfg_.poolCap);

    const auto &dcfg = mem_.config();
    stats_.bankRowHits.assign(std::size_t(dcfg.channels) *
                                  dcfg.ranksPerChannel * dcfg.banksPerRank,
                              0);
    stats_.bankRowAccesses.assign(stats_.bankRowHits.size(), 0);
    for (std::uint32_t ch = 0; ch < dcfg.channels; ++ch) {
        SchedulerContext ctx;
        ctx.mem = &mem_;
        ctx.channel = ch;
        ctx.global = &counts_;
        ctx.params = cfg_.schedulerParams();
        auto sched = cfg_.schedulerFactory
                         ? cfg_.schedulerFactory(cfg_.mechanism, ctx)
                         : makeScheduler(cfg_.mechanism, ctx);
        if (!sched)
            throwSimError(ErrorCategory::Config,
                          "controller: scheduler factory returned null "
                          "for channel %u",
                          ch);
        schedulers_.push_back(std::move(sched));
    }

    schedMemo_.resize(dcfg.channels);
    refreshWake_.assign(dcfg.channels, 0);
    chanVersion_.assign(dcfg.channels, 1);
    for (std::uint32_t ch = 0; ch < dcfg.channels; ++ch)
        schedMemo_[ch].global = schedulers_[ch]->globallySensitive();

    // Stagger per-rank refresh deadlines so refreshes do not align.
    const Tick trefi = dcfg.timing.tREFI;
    refresh_.resize(std::size_t(dcfg.channels) * dcfg.ranksPerChannel);
    if (trefi) {
        for (std::uint32_t ch = 0; ch < dcfg.channels; ++ch) {
            for (std::uint32_t r = 0; r < dcfg.ranksPerChannel; ++r) {
                auto &st = refresh_[ch * dcfg.ranksPerChannel + r];
                st.nextDue =
                    trefi + Tick(r) * (trefi / dcfg.ranksPerChannel);
            }
        }
    }
}

MemoryController::~MemoryController() = default;

bool
MemoryController::canAccept() const
{
    if (counts_.writesOutstanding >= cfg_.writeCap)
        return false; // saturated write queue blocks all admission
    if (inflightCount_ >= cfg_.poolCap)
        return false;
    return true;
}

MemAccess *
MemoryController::allocAccess()
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        pool_[slot] = MemAccess{};
    } else {
        slot = std::uint32_t(pool_.size());
        pool_.emplace_back();
    }
    MemAccess *a = &pool_[slot];
    a->poolSlot = slot;
    inflightCount_ += 1;
    return a;
}

void
MemoryController::freeAccess(MemAccess *a)
{
    freeSlots_.push_back(a->poolSlot);
    inflightCount_ -= 1;
}

void
MemoryController::refreshEngineFlags()
{
    // Exact max-composition bounds (and therefore the per-bank bound
    // caches) are only sound when per-cycle stall causes are not being
    // attributed: blockedUntil's first-binding stop points are part of
    // the attribution contract, readyAt's are not.
    const bool exact = eventDriven_ && !stalls_;
    for (auto &s : schedulers_) {
        s->setEventDriven(eventDriven_);
        s->setHorizonMemo(cfg_.horizonMemo);
        s->setExactBounds(exact);
    }
}

std::uint64_t
MemoryController::submit(AccessType type, Addr addr, Tick now,
                         const std::uint8_t *data, std::uint64_t tag,
                         bool critical)
{
    if (!canAccept())
        panic("submit() while controller cannot accept");

    if (intro_)
        intro_->noteMemoInvalidate();

    MemAccess *a = allocAccess();
    a->id = nextId_++;
    a->type = type;
    a->addr = mem_.addressMap().blockBase(addr);
    a->coords = mem_.addressMap().decode(a->addr);
    a->arrival = now;
    a->tag = tag;
    a->critical = critical && type == AccessType::Read;
    chanVersion_[a->coords.channel] += 1; // this channel's queue changes

    Scheduler &sched = *schedulers_[a->coords.channel];

    if (type == AccessType::Read) {
        counts_.readsOutstanding += 1;
        if (MemAccess *w = sched.findWrite(a->addr)) {
            // Write queue hit: forward the latest write's data; the read
            // completes without touching the SDRAM device (Figure 4).
            (void)w;
            a->forwarded = true;
            a->dataEnd = now + cfg_.forwardLatency;
            pendingReads_.emplace(a->dataEnd, a);
        } else {
            sched.enqueue(a);
        }
    } else {
        if (cfg_.coalesceWrites && sched.findWrite(a->addr)) {
            // Merge into the queued write: the backing store gets the
            // newer payload; the older queue entry carries it to DRAM.
            if (data)
                mem_.store().write(a->addr, data);
            stats_.coalescedWrites += 1;
            const std::uint64_t id = a->id;
            freeAccess(a);
            return id;
        }
        counts_.writesOutstanding += 1;
        if (data) {
            // Writes are complete from the CPU's perspective on admission;
            // commit the payload now (single-requestor ordering holds: the
            // cache hierarchy never issues a read that must bypass an
            // older in-flight write without hitting the write queue).
            mem_.store().write(a->addr, data);
        }
        sched.enqueue(a);
    }
    if (crit_)
        crit_->onAdmit(*a);
    if (perCore_) {
        touchCore(a->tag);
        if (type == AccessType::Read)
            coreReadQ_[a->tag] += 1;
        else
            coreWriteQ_[a->tag] += 1;
    }
    return a->id;
}

void
MemoryController::touchCore(std::uint64_t tag)
{
    if (tag < coreReadQ_.size())
        return;
    coreReadQ_.resize(tag + 1, 0);
    coreWriteQ_.resize(tag + 1, 0);
    coreRowHits_.resize(tag + 1, 0);
    coreRowAccesses_.resize(tag + 1, 0);
}

void
MemoryController::tick(Tick now)
{
    completeReads(now);
    sampleOccupancy();

    for (std::uint32_t ch = 0; ch < mem_.numChannels(); ++ch) {
        SchedMemo &memo = schedMemo_[ch];
        {
            obs::prof::Scope prof(obs::prof::Phase::RefreshEngine);
            if (refreshTick(ch, now)) {
                // Refresh engine used this channel's command slot (and
                // changed the channel's device state).
                memo.version = 0;
                if (intro_)
                    intro_->noteMemoInvalidate();
                schedulers_[ch]->onExternalCommand();
                if (stalls_)
                    stalls_->account(ch, now, true,
                                     dram::StallCause::None);
                if (crit_)
                    crit_->noteSlot(ch, now);
                continue;
            }
        }
        if (eventDriven_ && !stalls_ && memoValid(ch) &&
            now < memo.until) {
            // Horizon contract: nothing can issue and no arbitration
            // move is possible strictly before memo.until, so a full
            // scan would be a no-op apart from the idempotent idle-tick
            // effect — replay just that.
            if (intro_)
                intro_->noteMemoHit();
            schedulers_[ch]->onIdleSpan(now, 1);
            continue;
        }
        Scheduler::Issued issued;
        {
            obs::prof::Scope prof(obs::prof::Phase::SchedPick);
            issued = schedulers_[ch]->tick(now);
        }
        if (stalls_) {
            if (issued.access) {
                if (issued.columnAccess)
                    stalls_->noteBurst(ch, issued.dataStart,
                                       issued.dataEnd);
                stalls_->account(ch, now, true, dram::StallCause::None);
                if (crit_)
                    crit_->noteIssue(ch, now, *issued.access,
                                     issued.columnAccess,
                                     issued.dataStart, issued.dataEnd);
            } else {
                obs::prof::Scope prof(obs::prof::Phase::StallScan);
                const dram::StallCause cause =
                    schedulers_[ch]->stallScan(now, *stalls_);
                stalls_->account(ch, now, false, cause);
                if (crit_)
                    crit_->noteStall(
                        ch, now, cause,
                        schedulers_[ch]->lastStallVictim());
            }
        }
        if (issued.access) {
            memo.version = 0; // the issue changed channel state
            if (intro_)
                intro_->noteMemoInvalidate();
            handleIssued(issued);
        } else if (eventDriven_ && !stalls_) {
            memo.until = schedulers_[ch]->nextEventTick(now);
            stampMemo(ch);
            memo.pin = schedulers_[ch]->lastHorizonPin();
            if (intro_)
                intro_->noteMemoMiss();
        }
    }

    stats_.ticks += 1;

    if (sampler_ && sampler_->epochEnd(now))
        sampleMetrics(now);
}

Tick
MemoryController::nextEventTick(Tick now, obs::WakeSource *src) const
{
    Tick horizon = kTickMax;
    // First minimum wins, in scan order — attribution must never move
    // the computed horizon, only label it.
    const auto consider = [&](Tick t, obs::WakeReason r,
                              std::int32_t ch = -1) {
        if (t < horizon) {
            horizon = t;
            if (src) {
                src->reason = r;
                src->channel = ch;
            }
        }
    };

    if (!pendingReads_.empty())
        consider(pendingReads_.begin()->first,
                 obs::WakeReason::PendingData);

    // Refresh engine mirror: walk ranks exactly as refreshTick() does.
    // Ranks before the first pending-blocked one flip pending at their
    // deadline; the first pending rank acts when RefreshAll or one of
    // its precharges unblocks; ranks after it are shadowed by the scan's
    // break, so their deadlines must not contribute.
    const auto &dcfg = mem_.config();
    if (dcfg.timing.tREFI) {
        for (std::uint32_t ch = 0;
             ch < mem_.numChannels() && horizon > now; ++ch) {
            if (eventDriven_ && refreshWake_[ch] > now) {
                // refreshTick()'s wake memo: no rank of this channel is
                // pending, and the earliest deadline is exactly wake
                // (the invariant is checked loudly there) — the full
                // rank walk below would produce the same minimum.
                consider(refreshWake_[ch], obs::WakeReason::Refresh,
                         std::int32_t(ch));
                continue;
            }
            for (std::uint32_t r = 0; r < dcfg.ranksPerChannel; ++r) {
                const auto &st =
                    refresh_[ch * dcfg.ranksPerChannel + r];
                if (!st.pending) {
                    consider(st.nextDue, obs::WakeReason::Refresh,
                             std::int32_t(ch));
                    continue;
                }
                dram::Coords c;
                c.channel = ch;
                c.rank = r;
                dram::Command ref{dram::CmdType::RefreshAll, c, 0};
                consider(mem_.blockedUntil(ref, now),
                         obs::WakeReason::Refresh, std::int32_t(ch));
                for (std::uint32_t b = 0; b < dcfg.banksPerRank; ++b) {
                    c.bank = b;
                    if (!mem_.bank(c).isOpen())
                        continue;
                    dram::Command pre{dram::CmdType::Precharge, c, 0};
                    consider(mem_.blockedUntil(pre, now),
                             obs::WakeReason::Refresh, std::int32_t(ch));
                }
                break;
            }
        }
    }

    for (std::uint32_t ch = 0;
         ch < mem_.numChannels() && horizon > now; ++ch)
        consider(schedHorizon(ch, now), reasonOf(schedMemo_[ch].pin),
                 std::int32_t(ch));

    if (sampler_ && horizon > now) {
        // The epoch-boundary tick must run for real so its snapshot row
        // is emitted at the same tick as in the step engine.
        const Tick interval = sampler_->interval();
        consider(now + (interval - 1 - now % interval),
                 obs::WakeReason::MetricsEpoch);
    }
    return horizon;
}

Tick
MemoryController::schedHorizon(std::uint32_t channel, Tick now) const
{
    // The memo stays valid while nothing the scheduler's decision
    // depends on has changed: the version stamp covers queue contents,
    // the signature covers the global-count bands, and the channel's
    // own issues clear the memo directly. A bound that has expired
    // (until <= now) forces a recomputation.
    SchedMemo &memo = schedMemo_[channel];
    if (!memoValid(channel) || memo.until <= now) {
        memo.until = schedulers_[channel]->nextEventTick(now);
        stampMemo(channel);
        memo.pin = schedulers_[channel]->lastHorizonPin();
        if (intro_)
            intro_->noteMemoMiss();
    } else if (intro_) {
        intro_->noteMemoHit();
    }
    return memo.until;
}

void
MemoryController::tickSpan(Tick from, Tick span)
{
    stats_.outstandingReads.sample(counts_.readsOutstanding, span);
    stats_.outstandingWrites.sample(counts_.writesOutstanding, span);
    if (counts_.writesOutstanding >= cfg_.writeCap)
        stats_.writeSatTicks += span;

    for (std::uint32_t ch = 0; ch < mem_.numChannels(); ++ch) {
        schedulers_[ch]->onIdleSpan(from, span);
        if (stalls_) {
            // One scan classifies the whole span: every input to
            // stallScan is frozen across a dead span, so the per-cycle
            // result the step engine would compute is constant.
            stalls_->setBankStallWeight(span);
            const dram::StallCause cause =
                schedulers_[ch]->stallScan(from, *stalls_);
            stalls_->setBankStallWeight(1);
            stalls_->accountSpan(ch, from, span, cause);
            if (crit_)
                crit_->noteStallSpan(
                    ch, from, span, cause,
                    schedulers_[ch]->lastStallVictim());
        }
    }

    stats_.ticks += span;
}

void
MemoryController::completeReads(Tick now)
{
    while (!pendingReads_.empty() && pendingReads_.begin()->first <= now) {
        MemAccess *a = pendingReads_.begin()->second;
        pendingReads_.erase(pendingReads_.begin());

        stats_.reads += 1;
        stats_.readLatency.sample(double(a->dataEnd - a->arrival));
        if (a->forwarded) {
            stats_.forwardedReads += 1;
        } else {
            stats_.bytesTransferred += mem_.config().blockBytes;
        }
        counts_.readsOutstanding -= 1;

        if (perCore_) {
            touchCore(a->tag);
            coreReadQ_[a->tag] -= 1;
        }
        if (lat_)
            lat_->record(*a);
        if (crit_)
            crit_->onComplete(*a);
        if (readCb_)
            readCb_(*a, now);
        finishAccess(a);
    }
}

void
MemoryController::sampleOccupancy()
{
    stats_.outstandingReads.sample(counts_.readsOutstanding);
    stats_.outstandingWrites.sample(counts_.writesOutstanding);
    if (counts_.writesOutstanding >= cfg_.writeCap)
        stats_.writeSatTicks += 1;
}

bool
MemoryController::refreshTick(std::uint32_t channel, Tick now)
{
    const auto &dcfg = mem_.config();
    if (!dcfg.timing.tREFI)
        return false;
    if (eventDriven_ && now < refreshWake_[channel]) {
        // Memo invariant: a nonzero wake means no rank of this channel
        // is pending (every pending path below zeroes the memo first)
        // and the earliest deadline is >= wake (nextDue only grows).
        // If either ever breaks, a pending rank's refresh would be
        // deferred past its deadline silently — fail loudly instead.
        for (std::uint32_t r = 0; r < dcfg.ranksPerChannel; ++r) {
            const auto &st =
                refresh_[channel * dcfg.ranksPerChannel + r];
            if (st.pending || st.nextDue < refreshWake_[channel])
                throwSimError(
                    ErrorCategory::Internal,
                    "refresh wake memo stale: ch%u wake=%llu rank%u "
                    "pending=%d nextDue=%llu at tick %llu",
                    channel,
                    (unsigned long long)refreshWake_[channel], r,
                    int(st.pending), (unsigned long long)st.nextDue,
                    (unsigned long long)now);
        }
        return false; // no rank pending and none due before this tick
    }

    Tick wake = kTickMax;
    for (std::uint32_t r = 0; r < dcfg.ranksPerChannel; ++r) {
        auto &st = refresh_[channel * dcfg.ranksPerChannel + r];
        if (!st.pending) {
            if (now >= st.nextDue) {
                st.pending = true;
            } else {
                if (st.nextDue < wake)
                    wake = st.nextDue;
                continue;
            }
        }

        // Precharge any open bank; then refresh the rank. The drain
        // gate bars the scheduler from re-activating banks we close
        // here — without it a busy burst scheduler re-opens rows as
        // fast as we precharge them and the refresh starves forever
        // (watchdog livelock: ACT/PRE ping-pong, nothing retires).
        dram::Coords c;
        c.channel = channel;
        c.rank = r;

        refreshWake_[channel] = 0; // a rank is pending: run every tick
        mem_.setRefreshDrain(channel, r, true);
        if (!st.draining) {
            // Drain-gate transition: the gate turns this channel's
            // Activate bounds into state gates, so cached bounds (and
            // the channel horizon built on them) are no longer proofs.
            st.draining = true;
            schedMemo_[channel].version = 0;
            if (intro_)
                intro_->noteMemoInvalidate();
            schedulers_[channel]->onExternalCommand();
        }

        dram::Command ref{dram::CmdType::RefreshAll, c, 0};
        if (mem_.canIssue(ref, now)) {
            mem_.issue(ref, now);
            st.pending = false;
            st.draining = false;
            st.nextDue += dcfg.timing.tREFI;
            stats_.refreshes += 1;
            mem_.setRefreshDrain(channel, r, false);
            return true;
        }
        for (std::uint32_t b = 0; b < dcfg.banksPerRank; ++b) {
            c.bank = b;
            if (!mem_.bank(c).isOpen())
                continue;
            dram::Command pre{dram::CmdType::Precharge, c, 0};
            if (mem_.canIssue(pre, now)) {
                mem_.issue(pre, now);
                return true;
            }
        }
        // This rank's refresh is pending but blocked by timing; do not
        // let a lower-priority rank steal the slot for its refresh, but
        // do allow the scheduler to keep other ranks busy.
        return false;
    }
    refreshWake_[channel] = wake; // reached only with no rank pending
    return false;
}

void
MemoryController::handleIssued(const Scheduler::Issued &issued)
{
    MemAccess *a = issued.access;
    if (!issued.columnAccess)
        return;

    // The access's transactions are now fully scheduled: account for the
    // row outcome and route the completion.
    switch (a->outcome) {
      case dram::RowOutcome::Hit: stats_.rowHits += 1; break;
      case dram::RowOutcome::Empty: stats_.rowEmpties += 1; break;
      case dram::RowOutcome::Conflict: stats_.rowConflicts += 1; break;
    }
    const auto &dcfg = mem_.config();
    const std::size_t flat_bank =
        (std::size_t(a->coords.channel) * dcfg.ranksPerChannel +
         a->coords.rank) *
            dcfg.banksPerRank +
        a->coords.bank;
    stats_.bankRowAccesses[flat_bank] += 1;
    if (a->outcome == dram::RowOutcome::Hit)
        stats_.bankRowHits[flat_bank] += 1;
    if (perCore_) {
        touchCore(a->tag);
        coreRowAccesses_[a->tag] += 1;
        if (a->outcome == dram::RowOutcome::Hit)
            coreRowHits_[a->tag] += 1;
    }

    if (a->isRead()) {
        pendingReads_.emplace(a->dataEnd, a);
    } else {
        stats_.writes += 1;
        stats_.writeLatency.sample(double(a->dataEnd - a->arrival));
        stats_.bytesTransferred += mem_.config().blockBytes;
        counts_.writesOutstanding -= 1;
        if (perCore_)
            coreWriteQ_[a->tag] -= 1;
        if (lat_)
            lat_->record(*a);
        if (crit_)
            crit_->onComplete(*a);
        finishAccess(a);
    }
}

void
MemoryController::finishAccess(MemAccess *a)
{
    // Completions change only the global counts; the memo signatures
    // capture the band crossings global schedulers actually react to,
    // so no blanket invalidation is needed here.
    freeAccess(a);
}

bool
MemoryController::busy() const
{
    if (!pendingReads_.empty())
        return true;
    for (const auto &s : schedulers_)
        if (s->hasWork())
            return true;
    return false;
}

void
MemoryController::attachObservability(obs::Observability *o)
{
    for (auto &m : schedMemo_)
        m.version = 0;
    lat_ = o ? o->latency() : nullptr;
    sampler_ = o ? o->sampler() : nullptr;
    stalls_ = o ? o->stalls() : nullptr;
    audit_ = o ? o->auditor() : nullptr;
    intro_ = o ? o->introspect() : nullptr;
    crit_ = o ? o->critpath() : nullptr;
    perCore_ = o && o->config().perCoreMetrics;
    for (auto &s : schedulers_) {
        s->setAuditor(audit_);
        s->setIntrospect(intro_);
    }
    refreshEngineFlags();
}

void
MemoryController::sampleMetrics(Tick now)
{
    obs::prof::Scope prof(obs::prof::Phase::ObsExport);
    obs::MetricsSnapshot s;
    s.now = now;
    s.dataBusyCycles = mem_.dataBusyCycles();
    s.cmdBusyCycles = mem_.cmdBusyCycles();
    s.rowHits = stats_.rowHits;
    s.rowEmpties = stats_.rowEmpties;
    s.rowConflicts = stats_.rowConflicts;
    s.readsCompleted = stats_.reads;
    s.writesCompleted = stats_.writes;

    const auto sched = schedulerStats();
    if (auto it = sched.find("bursts_formed"); it != sched.end())
        s.burstsFormed = it->second;
    if (auto it = sched.find("burst_joins"); it != sched.end())
        s.burstJoins = it->second;

    s.channels = mem_.numChannels();
    s.readsOutstanding = counts_.readsOutstanding;
    s.writesOutstanding = counts_.writesOutstanding;
    const SchedulerParams params = cfg_.schedulerParams();
    s.rpActive = params.readPreemption &&
                 counts_.writesOutstanding < params.threshold;
    s.wpActive = params.writePiggyback &&
                 counts_.writesOutstanding > params.threshold;

    for (const auto &sc : schedulers_)
        sc->queueOccupancy(s.bankReadQ, s.bankWriteQ);

    s.bankRowHits = stats_.bankRowHits;
    s.bankRowAccesses = stats_.bankRowAccesses;
    if (stalls_) {
        const auto totals = stalls_->totals();
        s.stallCounts.assign(totals.begin(), totals.end());
    }
    if (intro_) {
        s.haveEngine = true;
        s.steppedCycles = intro_->steppedCycles();
        s.skippedCycles = intro_->skippedCycles();
    }
    if (perCore_) {
        s.coreReadQ = coreReadQ_;
        s.coreWriteQ = coreWriteQ_;
        s.coreRowHits = coreRowHits_;
        s.coreRowAccesses = coreRowAccesses_;
    }

    sampler_->sample(s);
}

void
MemoryController::flushMetrics(Tick end)
{
    if (crit_)
        crit_->flush(); // push buffered JSONL records to disk
    if (!sampler_ || end == 0)
        return;
    sampleMetrics(end - 1);
}

std::map<std::string, double>
MemoryController::schedulerStats() const
{
    std::map<std::string, double> merged;
    for (const auto &s : schedulers_)
        for (const auto &[k, v] : s->extraStats())
            merged[k] += v;
    return merged;
}

std::string
MemoryController::progressSnapshot(Tick now) const
{
    const auto &dcfg = mem_.config();
    char line[160];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "controller @%llu: pool %zu/%zu (reads %zu, writes "
                  "%zu), pending data transfers %zu, completed r/w/fwd "
                  "%llu/%llu/%llu",
                  static_cast<unsigned long long>(now), inflightCount_,
                  cfg_.poolCap, counts_.readsOutstanding,
                  counts_.writesOutstanding, pendingReads_.size(),
                  static_cast<unsigned long long>(stats_.reads),
                  static_cast<unsigned long long>(stats_.writes),
                  static_cast<unsigned long long>(stats_.forwardedReads));
    out += line;
    if (!pendingReads_.empty()) {
        std::snprintf(line, sizeof(line),
                      "\n  next data completion @%llu",
                      static_cast<unsigned long long>(
                          pendingReads_.begin()->first));
        out += line;
    }
    for (std::uint32_t ch = 0; ch < schedulers_.size(); ++ch) {
        const Scheduler &s = *schedulers_[ch];
        const Tick ev = s.nextEventTick(now);
        std::snprintf(line, sizeof(line),
                      "\n  ch%u: queued reads %zu, writes %zu, "
                      "hasWork %d, nextEvent %s",
                      ch, s.readCount(), s.writeCount(),
                      int(s.hasWork()),
                      ev == kTickMax
                          ? "idle"
                          : std::to_string(
                                static_cast<unsigned long long>(ev))
                                .c_str());
        out += line;
        for (std::uint32_t r = 0; r < dcfg.ranksPerChannel; ++r) {
            const auto &rf = refresh_[ch * dcfg.ranksPerChannel + r];
            std::snprintf(line, sizeof(line),
                          "\n    rank%u: refresh %s, next due @%llu", r,
                          rf.pending ? "PENDING" : "idle",
                          static_cast<unsigned long long>(rf.nextDue));
            out += line;
            for (std::uint32_t b = 0; b < dcfg.banksPerRank; ++b) {
                const dram::Bank &bank =
                    mem_.bank({ch, r, b, 0, 0});
                if (!bank.isOpen())
                    continue;
                std::snprintf(line, sizeof(line),
                              "\n      bank%u: open row %u (act>=%llu "
                              "pre>=%llu rd>=%llu wr>=%llu)",
                              b, bank.openRow(),
                              static_cast<unsigned long long>(
                                  bank.actAllowedAt()),
                              static_cast<unsigned long long>(
                                  bank.preAllowedAt()),
                              static_cast<unsigned long long>(
                                  bank.rdAllowedAt()),
                              static_cast<unsigned long long>(
                                  bank.wrAllowedAt()));
                out += line;
            }
        }
    }
    return out;
}

} // namespace bsim::ctrl
