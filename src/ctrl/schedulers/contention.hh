/**
 * @file
 * Contention-aware CMP scheduler zoo (ROADMAP item 1).
 *
 * Four multi-core scheduling classics ported onto the Scheduler
 * interface so the CMP fairness layer can judge them against the
 * paper's burst mechanisms:
 *
 *  - FR-FCFS (Rixner et al., ISCA'00): ready row hits first across all
 *    banks, then oldest arrival.
 *  - PAR-BS (Mutlu & Moscibroda, ISCA'08): request batching with
 *    shortest-job-first per-thread ranking inside each batch.
 *  - ATLAS (Kim et al., HPCA'10): least-attained-service thread
 *    ranking over exponentially decayed quanta.
 *  - BLISS (Subramanian et al., ICCD'14): streak-based blacklisting of
 *    interference-heavy threads.
 *
 * All four share one queue shape (per-bank unified queues plus a
 * per-bank ongoing slot, as RowHitScheduler) and one optional
 * watermark write-drain mode (HI_WM/LO_WM hysteresis with a policy
 * bus-turnaround hold on each drain flip). Thread identity is
 * MemAccess::tag (the CMP core id).
 *
 * Engine contract: every policy-state change is anchored either to a
 * real issue/enqueue event (PAR-BS batch formation) or to the absolute
 * tick lattice and caught up lazily in syncEpochs() (ATLAS quantum
 * folds, BLISS blacklist clearing) — a pure function of `now` and
 * issue-accumulated counters, so the step and skip engines observe
 * byte-identical decisions.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_CONTENTION_HH
#define BURSTSIM_CTRL_SCHEDULERS_CONTENTION_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ctrl/flat_queue.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/**
 * Shared chassis of the contention-aware families: per-bank unified
 * queues, a family-defined priority order applied both when filling a
 * bank's ongoing slot and when choosing which ready candidate issues,
 * and the optional watermark write-drain mode.
 */
class ContentionScheduler : public Scheduler
{
  public:
    explicit ContentionScheduler(const SchedulerContext &ctx);

    void enqueue(MemAccess *a) override;
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override { return reads_ + writes_ > 0; }
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;
    Tick nextEventTick(Tick now) const override;
    std::map<std::string, double> extraStats() const override;
    std::uint64_t globalSignature() const override;
    bool globallySensitive() const override { return watermark_; }

  protected:
    /**
     * Does @p a take priority over @p b? Must induce a strict total
     * order (families end their chains with arrival then id), so that
     * both engines resolve every tie identically.
     */
    virtual bool beats(const MemAccess *a, const MemAccess *b) const = 0;

    /**
     * Lazily catch tick-lattice policy state up to @p now (quantum
     * folds, blacklist clearing). Called at the top of tick(),
     * nextEventTick() and stallScan(); must be a pure function of
     * @p now and state accumulated on issue events.
     */
    virtual void syncEpochs(Tick now) const { (void)now; }

    /** Next tick-lattice policy boundary strictly after @p now (after
     *  syncEpochs); kTickMax when the family has none. */
    virtual Tick nextEpochTick(Tick now) const
    {
        (void)now;
        return kTickMax;
    }

    /** Called after the base queued @p a (batch formation trigger). */
    virtual void onEnqueued(MemAccess *a) { (void)a; }

    /** Called when @p a's column access issued and it left the
     *  scheduler (service accounting, streak tracking). */
    virtual void onColumnIssued(MemAccess *a) { (void)a; }

    /** Family-specific extra statistics merged by extraStats(). */
    virtual void familyStats(std::map<std::string, double> &out) const
    {
        (void)out;
    }

    /** Would @p a's next transaction be the column access already
     *  (open-row hit)? The uniform row-hit test of every comparator. */
    bool rowHit(const MemAccess *a) const
    {
        return dram::isColumnAccess(nextCmd(a));
    }

    /** May @p a be pulled into an ongoing slot under the current
     *  drain mode? Always true without watermark drain. */
    bool eligible(const MemAccess *a) const
    {
        if (!watermark_)
            return true;
        return drainMode_ ? a->isWrite() : a->isRead();
    }

    /** Read-only view of bank @p b's queue (oldest first). */
    const FlatQueue<MemAccess *> &bankQueue(std::uint32_t b) const
    {
        return queues_[b];
    }

  private:
    /** Fill bank @p b's ongoing slot with its best eligible access. */
    void arbitrate(std::uint32_t b);

    /** Is a drain-mode flip due given the current counts? */
    bool flipPending() const;

    std::vector<FlatQueue<MemAccess *>> queues_; //!< unified, per bank
    std::vector<MemAccess *> ongoing_;           //!< per bank
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;

    // Watermark write-drain mode (SNIPPETS.md snippets 1-2).
    bool watermark_ = false;
    std::size_t hi_ = 0;
    std::size_t lo_ = 0;
    bool drainMode_ = false;
    Tick turnUntil_ = 0; //!< policy bus-turnaround hold after a flip
    std::uint64_t drainFlips_ = 0;
};

/** FR-FCFS: ready row hits first across banks, then oldest arrival. */
class FrFcfsScheduler : public ContentionScheduler
{
  public:
    using ContentionScheduler::ContentionScheduler;

  protected:
    bool beats(const MemAccess *a, const MemAccess *b) const override;
};

/**
 * PAR-BS: when the previous batch completes, mark up to
 * parbsMarkingCap oldest queued requests per (thread, bank) and rank
 * the marked threads shortest-job-first (max-bank-load, then total
 * load). Priority: marked first, then row hit, then rank, then age.
 */
class ParbsScheduler : public ContentionScheduler
{
  public:
    explicit ParbsScheduler(const SchedulerContext &ctx)
        : ContentionScheduler(ctx)
    {
    }

  protected:
    bool beats(const MemAccess *a, const MemAccess *b) const override;
    void onEnqueued(MemAccess *a) override;
    void onColumnIssued(MemAccess *a) override;
    void familyStats(std::map<std::string, double> &out) const override;

  private:
    /** Mark the current queue contents as a new batch and rank the
     *  marked threads. Triggered by the issue that completes the
     *  previous batch or the enqueue that ends an empty spell — real
     *  events in both engines, so formation timing is cadence-free. */
    void formBatch();

    std::uint32_t rankOf(std::uint64_t tag) const;

    std::unordered_set<const MemAccess *> marked_;
    std::unordered_map<std::uint64_t, std::uint32_t> rank_;
    std::uint64_t batches_ = 0;
    std::uint64_t markedServed_ = 0;
};

/**
 * ATLAS: threads are ranked by long-term attained service, folded at
 * quantum boundaries with exponential decay (alpha = 0.875); the
 * least-serviced thread wins. Folds are caught up lazily (pure
 * function of `now`), so skipped quanta cost repeated multiplies, not
 * correctness.
 */
class AtlasScheduler : public ContentionScheduler
{
  public:
    explicit AtlasScheduler(const SchedulerContext &ctx)
        : ContentionScheduler(ctx)
    {
    }

  protected:
    bool beats(const MemAccess *a, const MemAccess *b) const override;
    void syncEpochs(Tick now) const override;
    Tick nextEpochTick(Tick now) const override;
    void onColumnIssued(MemAccess *a) override;
    void familyStats(std::map<std::string, double> &out) const override;

  private:
    struct Service
    {
        double total = 0;   //!< decayed attained service (rank key)
        double quantum = 0; //!< service attained in the open quantum
    };

    double totalOf(std::uint64_t tag) const;

    mutable std::unordered_map<std::uint64_t, Service> service_;
    mutable Tick anchor_ = 0; //!< start of the open quantum
};

/**
 * BLISS: a thread served blissThreshold times in a row is blacklisted
 * (deprioritized, never blocked); the blacklist clears every
 * blissClearInterval cycles. Clearing is caught up lazily on the
 * absolute tick lattice.
 */
class BlissScheduler : public ContentionScheduler
{
  public:
    explicit BlissScheduler(const SchedulerContext &ctx)
        : ContentionScheduler(ctx)
    {
    }

  protected:
    bool beats(const MemAccess *a, const MemAccess *b) const override;
    void syncEpochs(Tick now) const override;
    Tick nextEpochTick(Tick now) const override;
    void onColumnIssued(MemAccess *a) override;
    void familyStats(std::map<std::string, double> &out) const override;

  private:
    static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

    mutable std::unordered_set<std::uint64_t> blacklist_;
    mutable std::uint64_t lastTag_ = kNoTag;
    mutable std::size_t streak_ = 0;
    mutable Tick nextClear_ = 0;
    std::uint64_t insertions_ = 0;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_CONTENTION_HH
