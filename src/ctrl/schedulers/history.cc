#include "ctrl/schedulers/history.hh"

#include <algorithm>

#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

namespace
{
constexpr double kDecay = 0.995;
constexpr std::size_t kReorderWindow = 4;
}

AdaptiveHistoryScheduler::AdaptiveHistoryScheduler(
    const SchedulerContext &ctx)
    : Scheduler(ctx), queues_(numBanks()), ongoing_(numBanks(), nullptr)
{
}

void
AdaptiveHistoryScheduler::enqueue(MemAccess *a)
{
    queues_[bankIndex(a->coords)].push_back(a);
    if (a->isWrite()) {
        writes_ += 1;
        writeArrivals_ = writeArrivals_ * kDecay + 1.0;
        noteWriteEnqueued(a);
    } else {
        reads_ += 1;
        readArrivals_ = readArrivals_ * kDecay + 1.0;
    }
}

void
AdaptiveHistoryScheduler::arbitrate(std::uint32_t b)
{
    auto &q = queues_[b];
    if (ongoing_[b] || q.empty())
        return;
    auto pick = q.begin();
    const dram::Bank &bank = ctx_.mem->bank(q.front()->coords);
    if (bank.isOpen()) {
        const auto window_end = q.size() > kReorderWindow
                                    ? q.begin() + kReorderWindow
                                    : q.end();
        auto hit = std::find_if(q.begin(), window_end, [&](MemAccess *a) {
            return a->coords.row == bank.openRow();
        });
        if (hit != window_end)
            pick = hit;
    }
    ongoing_[b] = *pick;
    q.erase(pick);
    clearBound(b); // new probe candidate for this bank
}

double
AdaptiveHistoryScheduler::scoreOf(const MemAccess *a,
                                  std::uint32_t bank) const
{
    double score = 0.0;

    // Criterion 1: steer the scheduled mix toward the arrival mix. If
    // reads have been over-served relative to how they arrive, a write
    // is the matching choice, and vice versa.
    const double arrival_read_share =
        readArrivals_ / (readArrivals_ + writeArrivals_);
    const double sched_read_share =
        readsScheduled_ / (readsScheduled_ + writesScheduled_);
    const double imbalance = arrival_read_share - sched_read_share;
    score += (a->isRead() ? imbalance : -imbalance) * 8.0;

    // Criterion 2: spread consecutive services across banks so
    // transactions pipeline.
    if (bank != lastBank_)
        score += 1.0;
    if (bank != prevBank_)
        score += 0.5;

    // Criterion 3 (weak): prefer row hits — they finish sooner.
    if (ctx_.mem->classify(a->coords) == dram::RowOutcome::Hit)
        score += 0.75;

    return score;
}

Scheduler::Issued
AdaptiveHistoryScheduler::tick(Tick now)
{
    for (std::uint32_t b = 0; b < queues_.size(); ++b)
        arbitrate(b);

    MemAccess *best = nullptr;
    std::uint32_t best_bank = 0;
    double best_score = 0.0;
    for (std::uint32_t b = 0; b < ongoing_.size(); ++b) {
        MemAccess *a = ongoing_[b];
        if (!a || bankBound(b, a, now) > now)
            continue;
        const double s = scoreOf(a, b);
        // Oldest-first tie break keeps the policy starvation free.
        if (!best || s > best_score + 1e-9 ||
            (s > best_score - 1e-9 && a->arrival < best->arrival)) {
            best = a;
            best_bank = b;
            best_score = s;
        }
    }
    if (!best)
        return {};

    Issued out = issueFor(best, now);
    if (out.columnAccess) {
        ongoing_[best_bank] = nullptr;
        const double arrival_read_share =
            readArrivals_ / (readArrivals_ + writeArrivals_);
        const double sched_read_share =
            readsScheduled_ / (readsScheduled_ + writesScheduled_);
        if ((best->isRead() &&
             sched_read_share < arrival_read_share) ||
            (best->isWrite() && sched_read_share > arrival_read_share)) {
            mixSteered_ += 1;
        }
        if (best->isWrite()) {
            writes_ -= 1;
            writesScheduled_ = writesScheduled_ * kDecay + 1.0;
            readsScheduled_ *= kDecay;
        } else {
            reads_ -= 1;
            readsScheduled_ = readsScheduled_ * kDecay + 1.0;
            writesScheduled_ *= kDecay;
        }
        prevBank_ = lastBank_;
        lastBank_ = best_bank;
    }
    return out;
}

bool
AdaptiveHistoryScheduler::hasWork() const
{
    return reads_ + writes_ > 0;
}

dram::StallCause
AdaptiveHistoryScheduler::stallScan(Tick now,
                                    obs::StallAttribution &sink) const
{
    // tick() arbitrated every bank before coming up empty.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    Tick oldest = kTickMax;
    stallVictim_ = nullptr;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss;
        sink.noteBankStall(ctx_.channel, b, c);
        if (a->arrival < oldest) {
            oldest = a->arrival;
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    return channel_cause;
}

Tick
AdaptiveHistoryScheduler::nextEventTick(Tick now) const
{
    // Scores and decayed mixes change only when something issues or
    // arrives, so an idle tick is a pure no-op once every bank with
    // backlog has an ongoing candidate.
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b)
        if (!ongoing_[b] && !queues_[b].empty()) {
            pin_ = HorizonPin::ArbFill;
            return now;
        }
    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        const Tick t = bankBound(b, a, now);
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }
    if (horizon == kTickMax)
        pin_ = HorizonPin::None;
    return horizon;
}

std::map<std::string, double>
AdaptiveHistoryScheduler::extraStats() const
{
    return {{"mix_steered", double(mixSteered_)}};
}

void
AdaptiveHistoryScheduler::queueOccupancy(
    std::vector<std::uint32_t> &reads,
    std::vector<std::uint32_t> &writes) const
{
    for (std::uint32_t b = 0; b < queues_.size(); ++b) {
        std::uint32_t r = 0, w = 0;
        for (const MemAccess *a : queues_[b])
            (a->isWrite() ? w : r) += 1;
        if (const MemAccess *a = ongoing_[b])
            (a->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
}

} // namespace bsim::ctrl
