#include "ctrl/schedulers/factory.hh"

#include "common/error.hh"
#include "ctrl/schedulers/bk_in_order.hh"
#include "ctrl/schedulers/contention.hh"
#include "ctrl/schedulers/history.hh"
#include "ctrl/schedulers/burst.hh"
#include "ctrl/schedulers/intel.hh"
#include "ctrl/schedulers/row_hit.hh"

namespace bsim::ctrl
{

std::unique_ptr<Scheduler>
makeScheduler(Mechanism m, const SchedulerContext &ctx)
{
    switch (m) {
      case Mechanism::BkInOrder:
        return std::make_unique<BkInOrderScheduler>(ctx);
      case Mechanism::RowHit:
        return std::make_unique<RowHitScheduler>(ctx);
      case Mechanism::Intel:
      case Mechanism::IntelRP:
        return std::make_unique<IntelScheduler>(ctx);
      case Mechanism::Burst:
      case Mechanism::BurstRP:
      case Mechanism::BurstWP:
      case Mechanism::BurstTH:
        return std::make_unique<BurstScheduler>(ctx);
      case Mechanism::AdaptiveHistory:
        return std::make_unique<AdaptiveHistoryScheduler>(ctx);
      case Mechanism::FrFcfs:
        return std::make_unique<FrFcfsScheduler>(ctx);
      case Mechanism::Parbs:
        return std::make_unique<ParbsScheduler>(ctx);
      case Mechanism::Atlas:
        return std::make_unique<AtlasScheduler>(ctx);
      case Mechanism::Bliss:
        return std::make_unique<BlissScheduler>(ctx);
    }
    // Fail fast with the offending name: a silent nullptr here used to
    // surface only as a generic "factory returned null" in the
    // controller, long after the config mistake.
    throwSimError(ErrorCategory::Config,
                  "makeScheduler: unrecognized mechanism '%s' (id %d)",
                  mechanismName(m), int(m));
}

} // namespace bsim::ctrl
