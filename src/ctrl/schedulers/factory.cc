#include "ctrl/schedulers/factory.hh"

#include "ctrl/schedulers/bk_in_order.hh"
#include "ctrl/schedulers/history.hh"
#include "ctrl/schedulers/burst.hh"
#include "ctrl/schedulers/intel.hh"
#include "ctrl/schedulers/row_hit.hh"

namespace bsim::ctrl
{

std::unique_ptr<Scheduler>
makeScheduler(Mechanism m, const SchedulerContext &ctx)
{
    switch (m) {
      case Mechanism::BkInOrder:
        return std::make_unique<BkInOrderScheduler>(ctx);
      case Mechanism::RowHit:
        return std::make_unique<RowHitScheduler>(ctx);
      case Mechanism::Intel:
      case Mechanism::IntelRP:
        return std::make_unique<IntelScheduler>(ctx);
      case Mechanism::Burst:
      case Mechanism::BurstRP:
      case Mechanism::BurstWP:
      case Mechanism::BurstTH:
        return std::make_unique<BurstScheduler>(ctx);
      case Mechanism::AdaptiveHistory:
        return std::make_unique<AdaptiveHistoryScheduler>(ctx);
    }
    return nullptr;
}

} // namespace bsim::ctrl
