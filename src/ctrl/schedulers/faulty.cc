#include "ctrl/schedulers/faulty.hh"

namespace bsim::ctrl
{

FaultyScheduler::FaultyScheduler(const SchedulerContext &ctx,
                                 std::unique_ptr<Scheduler> inner,
                                 std::uint64_t freezeAfter)
    : Scheduler(ctx), inner_(std::move(inner)), freezeAfter_(freezeAfter)
{
}

Scheduler::Issued
FaultyScheduler::tick(Tick now)
{
    if (frozen())
        return {};
    Issued issued = inner_->tick(now);
    if (issued.columnAccess)
        issued_ += 1;
    return issued;
}

std::map<std::string, double>
FaultyScheduler::extraStats() const
{
    auto stats = inner_->extraStats();
    stats["faultFrozen"] = frozen() ? 1.0 : 0.0;
    stats["faultIssued"] = double(issued_);
    return stats;
}

dram::StallCause
FaultyScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    if (frozen()) {
        stallVictim_ = nullptr; // frozen: nothing is being served
        return hasWork() ? dram::StallCause::ArbLoss
                         : dram::StallCause::NoWork;
    }
    const dram::StallCause c = inner_->stallScan(now, sink);
    stallVictim_ = inner_->lastStallVictim();
    return c;
}

Tick
FaultyScheduler::nextEventTick(Tick now) const
{
    if (frozen()) {
        pin_ = hasWork() ? HorizonPin::Conservative : HorizonPin::None;
        return hasWork() ? now : kTickMax;
    }
    const Tick t = inner_->nextEventTick(now);
    pin_ = inner_->lastHorizonPin();
    return t;
}

} // namespace bsim::ctrl
