/**
 * @file
 * Row hit access reordering (Rixner et al., ISCA'00; paper Table 4):
 * each bank has a unified access queue; a row-hit-first policy selects the
 * oldest access directed to the same row as the last access to that bank,
 * falling back to the oldest access. Banks are served round robin. Reads
 * and writes are treated equally.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_ROW_HIT_HH
#define BURSTSIM_CTRL_SCHEDULERS_ROW_HIT_HH

#include <vector>

#include "ctrl/flat_queue.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** Row hit first intra bank, round robin inter banks. */
class RowHitScheduler : public Scheduler
{
  public:
    explicit RowHitScheduler(const SchedulerContext &ctx);

    void enqueue(MemAccess *a) override;
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override;
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;
    Tick nextEventTick(Tick now) const override;

  private:
    /** Pick the next ongoing access for bank @p b (row hit first). */
    void arbitrate(std::uint32_t b);

    std::vector<FlatQueue<MemAccess *>> queues_; //!< unified, per bank
    std::vector<MemAccess *> ongoing_;            //!< per bank
    std::uint32_t rr_ = 0;
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_ROW_HIT_HH
