#include "ctrl/schedulers/bk_in_order.hh"

#include <algorithm>

#include "obs/engine_introspect.hh"
#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

BkInOrderScheduler::BkInOrderScheduler(const SchedulerContext &ctx)
    : Scheduler(ctx), queues_(numBanks()), frontHorizon_(numBanks(), 0)
{
    // Horizon-cache soundness bound: a data-bus transfer must cover the
    // largest turnaround gap, so bus hand-offs can only push a front's
    // earliest start later, never earlier.
    const dram::Timing &t = ctx_.mem->config().timing;
    cacheSafe_ = t.dataCycles() >= std::max(t.tRTRS, t.tRTW);
}

void
BkInOrderScheduler::enqueue(MemAccess *a)
{
    const std::uint32_t b = bankIndex(a->coords);
    if (queues_[b].empty())
        frontHorizon_[b] = 0; // a new front: cached bound is stale
    queues_[b].push_back(a);
    if (a->isWrite()) {
        writes_ += 1;
        noteWriteEnqueued(a);
    } else {
        reads_ += 1;
    }
}

Scheduler::Issued
BkInOrderScheduler::tick(Tick now)
{
    const std::uint32_t n = numBanks();
    const bool fast = cached();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t b = (rr_ + 1 + i) % n;
        auto &q = queues_[b];
        if (q.empty())
            continue;
        if (fast && now < frontHorizon_[b])
            continue; // provably still blocked, skip the timing probe
        MemAccess *a = q.front();
        if (fast) {
            const Tick until = blockedUntilFor(a, now);
            if (until > now) {
                frontHorizon_[b] = until;
                continue;
            }
        } else if (!canIssueFor(a, now)) {
            continue;
        }
        frontHorizon_[b] = 0; // issuing changes this bank's state
        Issued out = issueFor(a, now);
        if (out.columnAccess) {
            q.pop_front();
            if (a->isWrite())
                writes_ -= 1;
            else
                reads_ -= 1;
            rr_ = b; // round robin advances on completed service
        }
        return out;
    }
    return {};
}

bool
BkInOrderScheduler::hasWork() const
{
    return reads_ + writes_ > 0;
}

dram::StallCause
BkInOrderScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    // Every non-empty bank FIFO has exactly one candidate: its front.
    // The channel-level cause is whatever blocks the oldest of them.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    Tick oldest = kTickMax;
    stallVictim_ = nullptr;
    for (std::uint32_t b = 0; b < std::uint32_t(queues_.size()); ++b) {
        const auto &q = queues_[b];
        if (q.empty())
            continue;
        const MemAccess *a = q.front();
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss; // issuable, but not picked
        sink.noteBankStall(ctx_.channel, b, c);
        if (a->arrival < oldest) {
            oldest = a->arrival;
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    return channel_cause;
}

Tick
BkInOrderScheduler::nextEventTick(Tick now) const
{
    // An idle tick changes nothing (rr_ moves only on issue), so the
    // horizon is simply when the first bank front's binding constraint
    // expires. Bank fronts are the only candidates this policy ever
    // considers.
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    const bool fast = cached();
    for (std::uint32_t b = 0; b < std::uint32_t(queues_.size()); ++b) {
        const auto &q = queues_[b];
        if (q.empty())
            continue;
        Tick t = frontHorizon_[b];
        if (!fast || t <= now) {
            t = blockedUntilFor(q.front(), now);
            if (fast)
                frontHorizon_[b] = t;
            if (intro_)
                intro_->noteFrontHorizonMiss();
        } else if (intro_) {
            intro_->noteFrontHorizonHit();
        }
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }
    if (horizon == kTickMax)
        pin_ = HorizonPin::None;
    return horizon;
}

void
BkInOrderScheduler::onExternalCommand()
{
    // Refresh-engine precharges / refreshes changed bank states behind
    // the scheduler's back; every cached bound may now be wrong.
    frontHorizon_.assign(frontHorizon_.size(), 0);
}

void
BkInOrderScheduler::queueOccupancy(std::vector<std::uint32_t> &reads,
                                   std::vector<std::uint32_t> &writes) const
{
    for (const auto &q : queues_) {
        std::uint32_t r = 0, w = 0;
        for (const MemAccess *a : q)
            (a->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
}

} // namespace bsim::ctrl
