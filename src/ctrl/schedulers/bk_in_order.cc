#include "ctrl/schedulers/bk_in_order.hh"

#include "obs/engine_introspect.hh"
#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

BkInOrderScheduler::BkInOrderScheduler(const SchedulerContext &ctx)
    : Scheduler(ctx), queues_(numBanks())
{
}

void
BkInOrderScheduler::enqueue(MemAccess *a)
{
    const std::uint32_t b = bankIndex(a->coords);
    if (queues_[b].empty())
        clearBound(b); // a new front: cached bound describes nothing
    queues_[b].push_back(a);
    if (a->isWrite()) {
        writes_ += 1;
        noteWriteEnqueued(a);
    } else {
        reads_ += 1;
    }
}

Scheduler::Issued
BkInOrderScheduler::tick(Tick now)
{
    const std::uint32_t n = numBanks();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t b = (rr_ + 1 + i) % n;
        auto &q = queues_[b];
        if (q.empty())
            continue;
        MemAccess *a = q.front();
        if (bankBound(b, a, now) > now)
            continue;
        Issued out = issueFor(a, now);
        if (out.columnAccess) {
            q.pop_front();
            if (a->isWrite())
                writes_ -= 1;
            else
                reads_ -= 1;
            rr_ = b; // round robin advances on completed service
        }
        return out;
    }
    return {};
}

bool
BkInOrderScheduler::hasWork() const
{
    return reads_ + writes_ > 0;
}

dram::StallCause
BkInOrderScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    // Every non-empty bank FIFO has exactly one candidate: its front.
    // The channel-level cause is whatever blocks the oldest of them.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    Tick oldest = kTickMax;
    stallVictim_ = nullptr;
    for (std::uint32_t b = 0; b < std::uint32_t(queues_.size()); ++b) {
        const auto &q = queues_[b];
        if (q.empty())
            continue;
        const MemAccess *a = q.front();
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss; // issuable, but not picked
        sink.noteBankStall(ctx_.channel, b, c);
        if (a->arrival < oldest) {
            oldest = a->arrival;
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    return channel_cause;
}

Tick
BkInOrderScheduler::nextEventTick(Tick now) const
{
    // An idle tick changes nothing (rr_ moves only on issue), so the
    // horizon is simply when the first bank front's issue bound lands.
    // Bank fronts are the only candidates this policy ever considers;
    // tick()'s failed probes already filled the bound cache, so this
    // scan is mostly compares.
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    for (std::uint32_t b = 0; b < std::uint32_t(queues_.size()); ++b) {
        const auto &q = queues_[b];
        if (q.empty())
            continue;
        const Tick t = bankBound(b, q.front(), now);
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }
    if (horizon == kTickMax)
        pin_ = HorizonPin::None;
    return horizon;
}

void
BkInOrderScheduler::queueOccupancy(std::vector<std::uint32_t> &reads,
                                   std::vector<std::uint32_t> &writes) const
{
    for (const auto &q : queues_) {
        std::uint32_t r = 0, w = 0;
        for (const MemAccess *a : q)
            (a->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
}

} // namespace bsim::ctrl
