#include "ctrl/schedulers/burst.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/protocol_audit.hh"
#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

BurstScheduler::BurstScheduler(const SchedulerContext &ctx)
    : Scheduler(ctx), banks_(numBanks())
{
}

void
BurstScheduler::enqueue(MemAccess *a)
{
    BankState &bs = banks_[bankIndex(a->coords)];
    if (a->isWrite()) {
        // Figure 4: all writes enter the write queue in order and are
        // complete from the view of the CPU.
        bs.writeQ.push_back(a);
        writes_ += 1;
        writeArrivals_ = writeArrivals_ * 0.999 + 1.0;
        noteWriteEnqueued(a);
        return;
    }

    reads_ += 1;
    readArrivals_ = readArrivals_ * 0.999 + 1.0;
    // Figure 4: join an existing burst for this row (bursts can grow even
    // while being scheduled), otherwise open a new single-access burst at
    // the tail of the read queue.
    for (auto &burst : bs.bursts) {
        if (burst.row == a->coords.row) {
            if (ctx_.params.criticalFirst && a->critical) {
                // Section 7: critical reads go ahead of the queued
                // non-critical reads of their burst (stable among
                // criticals; the in-service access is unaffected).
                auto pos = burst.reads.begin();
                while (pos != burst.reads.end() && (*pos)->critical)
                    ++pos;
                burst.reads.insert(pos, a);
            } else {
                burst.reads.push_back(a);
            }
            burstJoinCount_ += 1;
            return;
        }
    }
    Burst nb;
    nb.row = a->coords.row;
    nb.firstArrival = a->arrival;
    nb.reads.push_back(a);
    bs.bursts.push_back(std::move(nb));
    burstsFormed_ += 1;
}

std::size_t
BurstScheduler::effectiveThreshold() const
{
    if (!ctx_.params.dynamicThreshold)
        return ctx_.params.threshold;
    // Section 7 future work: adapt the preemption/piggyback switch point
    // to the workload's read/write mix. A write-heavy phase needs early
    // piggybacking (low threshold) to avoid saturation; a read-heavy
    // phase can afford aggressive preemption (high threshold).
    const double write_share =
        writeArrivals_ / (readArrivals_ + writeArrivals_);
    const double cap = double(ctx_.params.writeCap);
    const double th = cap * (1.0 - 1.25 * write_share);
    if (th < cap * 0.125)
        return std::size_t(cap * 0.125);
    if (th > cap - 4.0)
        return std::size_t(cap - 4.0);
    return std::size_t(th);
}

FlatQueue<MemAccess *>::iterator
BurstScheduler::findPiggybackWrite(std::uint32_t b)
{
    BankState &bs = banks_[b];
    const MemAccess *probe =
        !bs.writeQ.empty()
            ? bs.writeQ.front()
            : (bs.ongoing ? bs.ongoing : nullptr);
    if (!probe)
        return bs.writeQ.end();
    const dram::Bank &bank = ctx_.mem->bank(probe->coords);
    if (!bank.isOpen())
        return bs.writeQ.end();
    // Oldest write directed to the same row as the just-finished burst so
    // the continuous row hits are not disturbed (Section 3.2).
    return std::find_if(bs.writeQ.begin(), bs.writeQ.end(),
                        [&](MemAccess *w) {
                            return w->coords.row == bank.openRow();
                        });
}

void
BurstScheduler::maybePreempt(std::uint32_t b, Tick now)
{
    // Figure 5 lines 9-11: while the write queue occupancy is below the
    // threshold, a read may interrupt an ongoing write; the write returns
    // to the head of the write queue and restarts later.
    if (!ctx_.params.readPreemption)
        return;
    BankState &bs = banks_[b];
    MemAccess *a = bs.ongoing;
    if (!a || !a->isWrite() || bs.bursts.empty())
        return;
    if (ctx_.global->writesOutstanding >= effectiveThreshold())
        return;
    if (auditor_)
        auditor_->notePreemption(now, ctx_.global->writesOutstanding,
                                 effectiveThreshold());
    bs.writeQ.push_front(a);
    bs.ongoing = nullptr;
    bs.ongoingFromBurst = false;
    clearBound(b);
    preemptions_ += 1;
    // Figure 5 line 11: the first read of the next burst starts now.
    arbitrate(b, now);
}

void
BurstScheduler::arbitrate(std::uint32_t b, Tick now)
{
    BankState &bs = banks_[b];
    if (bs.ongoing)
        return;

    const std::size_t global_writes = ctx_.global->writesOutstanding;
    const bool write_q_full = global_writes >= ctx_.params.writeCap;

    auto take_write = [&](FlatQueue<MemAccess *>::iterator it) {
        bs.ongoing = *it;
        bs.ongoingFromBurst = false;
        bs.writeQ.erase(it);
        clearBound(b);
    };

    // Figure 5, lines 1-8.
    if (write_q_full && !bs.writeQ.empty()) {
        take_write(bs.writeQ.begin()); // oldest write
        return;
    }
    if (ctx_.params.writePiggyback &&
        global_writes > effectiveThreshold() && bs.endOfBurst &&
        !bs.writeQ.empty()) {
        auto it = findPiggybackWrite(b);
        if (it != bs.writeQ.end()) {
            if (auditor_)
                auditor_->notePiggyback(now, global_writes,
                                        effectiveThreshold());
            take_write(it);
            piggybacks_ += 1;
            return;
        }
        // No qualified write: the next burst starts (fall through).
    }
    // Figure 5 line 6: writes are serviced only when no reads are
    // outstanding. Burst scheduling is more aggressive in prioritizing
    // reads over writes than Intel's scheduler (Section 5.1): the
    // condition is channel-wide, not per bank, so a single pending read
    // anywhere keeps every bank's writes postponed.
    if (!bs.writeQ.empty() && reads_ == 0) {
        take_write(bs.writeQ.begin());
        return;
    }
    if (!bs.bursts.empty()) {
        // Section 7 future work (sortBurstsBySize): start the largest
        // waiting burst instead of the oldest. A partially-served front
        // burst is never displaced (that would break its row hits);
        // starvation of small bursts is the documented tradeoff.
        if (ctx_.params.sortBurstsBySize && bs.bursts.size() > 1 &&
            !bs.frontStarted) {
            auto largest = bs.bursts.begin();
            for (auto it = bs.bursts.begin(); it != bs.bursts.end(); ++it)
                if (it->reads.size() > largest->reads.size())
                    largest = it;
            if (largest != bs.bursts.begin())
                std::swap(*largest, bs.bursts.front());
        }
        Burst &front = bs.bursts.front();
        if (front.reads.empty())
            panic("empty burst left in read queue");
        bs.ongoing = front.reads.front();
        front.reads.pop_front();
        clearBound(b);
        bs.ongoingFromBurst = true;
        bs.ongoingFirstOfBurst = !bs.frontStarted;
        bs.frontStarted = true;
        bs.endOfBurst = false;
    }
}

int
BurstScheduler::priorityOf(const MemAccess *a, dram::CmdType cmd) const
{
    const bool read = a->isRead();
    if (dram::isColumnAccess(cmd)) {
        if (!lastValid_) {
            // Before any column access, rank locality is vacuous; treat as
            // same-rank so bursts can start.
            return read ? 2 : 4;
        }
        const bool rank_aware = ctx_.params.rankAware;
        const bool same_rank =
            !rank_aware || a->coords.rank == lastRank_;
        const bool same_bank = a->coords.rank == lastRank_ &&
                               bankIndex(a->coords) == lastBank_;
        if (same_rank) {
            if (read)
                return same_bank ? 1 : 2;
            return same_bank ? 3 : 4;
        }
        return read ? 7 : 8;
    }
    // Precharge and row activate do not require data bus resources and
    // overlap with column accesses.
    return read ? 5 : 6;
}

Scheduler::Issued
BurstScheduler::tick(Tick now)
{
    // Bank arbiters (Figure 5) including preemption checks.
    for (std::uint32_t b = 0; b < banks_.size(); ++b) {
        maybePreempt(b, now);
        arbitrate(b, now);
        // A preempted write keeps its original pick time.
        if (MemAccess *a = banks_[b].ongoing;
            a && a->pickedAt == kTickMax)
            a->pickedAt = now;
    }

    // Transaction scheduler (Figure 6 with the Table 2 priorities):
    // among all banks' ongoing accesses pick the unblocked transaction
    // with the best priority; oldest first breaks ties.
    MemAccess *best = nullptr;
    std::uint32_t best_bank = 0;
    dram::CmdType best_cmd = dram::CmdType::Precharge;
    int best_prio = 9;
    MemAccess *oldest_any = nullptr;

    for (std::uint32_t b = 0; b < banks_.size(); ++b) {
        MemAccess *a = banks_[b].ongoing;
        if (!a)
            continue;
        if (!oldest_any || a->arrival < oldest_any->arrival)
            oldest_any = a;
        const dram::CmdType cmd = nextCmd(a);
        const int prio = priorityOf(a, cmd);
        if (prio > best_prio ||
            (prio == best_prio && best && a->arrival >= best->arrival)) {
            continue;
        }
        if (bankBound(b, a, now) > now)
            continue;
        best = a;
        best_bank = b;
        best_cmd = cmd;
        best_prio = prio;
    }

    if (!best) {
        // Figure 6 lines 14-15: with nothing unblocked, switch to the bank
        // holding the oldest access so it gains priority next cycle.
        if (oldest_any) {
            lastBank_ = bankIndex(oldest_any->coords);
            lastRank_ = oldest_any->coords.rank;
            lastValid_ = true;
        }
        return {};
    }

    Issued out = issueFor(best, now);
    if (out.columnAccess) {
        BankState &bs = banks_[best_bank];
        if (auditor_ && bs.ongoingFromBurst)
            auditor_->noteBurstRead(now, best->coords,
                                    bs.ongoingFirstOfBurst,
                                    best->outcome);
        if (best->isWrite())
            writes_ -= 1;
        else
            reads_ -= 1;
        if (bs.ongoingFromBurst) {
            // Retire the front burst once drained; this bank is now at an
            // end of burst, the write piggybacking opportunity.
            if (bs.bursts.empty())
                panic("ongoing read without a front burst");
            if (bs.bursts.front().reads.empty()) {
                bs.bursts.pop_front();
                bs.endOfBurst = true;
                bs.frontStarted = false;
            }
        }
        bs.ongoing = nullptr;
        bs.ongoingFromBurst = false;
        lastBank_ = best_bank;
        lastRank_ = best->coords.rank;
        lastValid_ = true;
        (void)best_cmd;
    }
    return out;
}

bool
BurstScheduler::hasWork() const
{
    return reads_ + writes_ > 0;
}

dram::StallCause
BurstScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    // tick() ran every bank arbiter before coming up empty, so ongoing_
    // reflects this cycle's Figure 5 decisions. Banks whose writes were
    // postponed (reads outstanding channel-wide, or the piggyback gate
    // closed) hold queued writes but no ongoing access.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    Tick oldest = kTickMax;
    const MemAccess *gated_front = nullptr;
    stallVictim_ = nullptr;
    for (std::uint32_t b = 0; b < std::uint32_t(banks_.size()); ++b) {
        const BankState &bs = banks_[b];
        const MemAccess *a = bs.ongoing;
        if (!a) {
            if (bs.bursts.empty() && !bs.writeQ.empty()) {
                sink.noteBankStall(ctx_.channel, b,
                                   dram::StallCause::ThresholdGated);
                if (!gated_front)
                    gated_front = bs.writeQ.front();
            }
            continue;
        }
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss; // lost the Table 2 pick
        sink.noteBankStall(ctx_.channel, b, c);
        if (a->arrival < oldest) {
            oldest = a->arrival;
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    if (channel_cause == dram::StallCause::NoWork && gated_front) {
        channel_cause = dram::StallCause::ThresholdGated;
        stallVictim_ = gated_front;
    }
    return channel_cause;
}

Tick
BurstScheduler::nextEventTick(Tick now) const
{
    // The Figure 5 bank arbiters run every tick, so skipping is legal
    // only when no arbiter can make a move: no preemption, no idle bank
    // that could pick up a write or start a burst. Each possible move
    // forces one real tick ("return now").
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    const std::size_t global_writes = ctx_.global->writesOutstanding;
    const bool write_q_full = global_writes >= ctx_.params.writeCap;
    const std::size_t threshold = effectiveThreshold();

    for (const BankState &bs : banks_) {
        if (bs.ongoing) {
            if (ctx_.params.readPreemption && bs.ongoing->isWrite() &&
                !bs.bursts.empty() && global_writes < threshold) {
                pin_ = HorizonPin::Preempt;
                return now; // maybePreempt() would fire
            }
            continue;
        }
        if (!bs.bursts.empty()) {
            pin_ = HorizonPin::ArbFill;
            return now; // arbitrate() would start a burst read
        }
        if (bs.writeQ.empty())
            continue;
        if (write_q_full || reads_ == 0) {
            pin_ = HorizonPin::WriteDrain;
            return now; // arbitrate() would take the oldest write
        }
        if (ctx_.params.writePiggyback && global_writes > threshold &&
            bs.endOfBurst) {
            // Const replay of findPiggybackWrite(): any queued write to
            // the bank's open row qualifies.
            const dram::Bank &bank =
                ctx_.mem->bank(bs.writeQ.front()->coords);
            if (bank.isOpen())
                for (const MemAccess *w : bs.writeQ)
                    if (w->coords.row == bank.openRow()) {
                        pin_ = HorizonPin::Piggyback;
                        return now;
                    }
        }
    }

    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    for (std::uint32_t b = 0; b < std::uint32_t(banks_.size()); ++b) {
        const BankState &bs = banks_[b];
        if (!bs.ongoing)
            continue;
        const Tick t = bankBound(b, bs.ongoing, now);
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }
    if (horizon == kTickMax)
        pin_ = HorizonPin::None;
    return horizon;
}

void
BurstScheduler::onIdleSpan(Tick from, Tick span)
{
    (void)from;
    (void)span;
    // Figure 6 lines 14-15 run on every idle tick: point the rank/bank
    // locality state at the oldest ongoing access so it gains Table 2
    // priority. The ongoing set is frozen across a dead span, so the
    // per-tick update is idempotent — replay it once.
    const MemAccess *oldest_any = nullptr;
    for (const BankState &bs : banks_) {
        const MemAccess *a = bs.ongoing;
        if (a && (!oldest_any || a->arrival < oldest_any->arrival))
            oldest_any = a;
    }
    if (oldest_any) {
        lastBank_ = bankIndex(oldest_any->coords);
        lastRank_ = oldest_any->coords.rank;
        lastValid_ = true;
    }
}

std::map<std::string, double>
BurstScheduler::extraStats() const
{
    return {
        {"preemptions", double(preemptions_)},
        {"piggybacks", double(piggybacks_)},
        {"bursts_formed", double(burstsFormed_)},
        {"burst_joins", double(burstJoinCount_)},
    };
}

void
BurstScheduler::queueOccupancy(std::vector<std::uint32_t> &reads,
                               std::vector<std::uint32_t> &writes) const
{
    for (const BankState &bs : banks_) {
        std::uint32_t r = 0;
        for (const Burst &burst : bs.bursts)
            r += std::uint32_t(burst.reads.size());
        std::uint32_t w = std::uint32_t(bs.writeQ.size());
        if (bs.ongoing)
            (bs.ongoing->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
}

} // namespace bsim::ctrl
