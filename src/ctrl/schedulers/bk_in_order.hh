/**
 * @file
 * Bank in order scheduling (the paper's baseline, Table 3/4):
 * accesses within the same bank are serviced in arrival order; banks are
 * served round robin. Reads and writes share one FIFO per bank, so writes
 * are not postponed.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_BK_IN_ORDER_HH
#define BURSTSIM_CTRL_SCHEDULERS_BK_IN_ORDER_HH

#include <vector>

#include "ctrl/flat_queue.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** In order intra bank, round robin inter banks. */
class BkInOrderScheduler : public Scheduler
{
  public:
    explicit BkInOrderScheduler(const SchedulerContext &ctx);

    void enqueue(MemAccess *a) override;
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override;
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;
    Tick nextEventTick(Tick now) const override;

  private:
    std::vector<FlatQueue<MemAccess *>> queues_; //!< one FIFO per bank
    std::uint32_t rr_ = 0; //!< bank whose column access issued last
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_BK_IN_ORDER_HH
