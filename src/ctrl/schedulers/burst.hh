/**
 * @file
 * Burst scheduling — the paper's primary contribution (Section 3).
 *
 * Outstanding reads are clustered into bursts: groups of accesses to the
 * same row of the same bank, kept per bank in arrival order of each
 * burst's first access. Within a burst every access but the first is a
 * row hit, so data transfers run back to back. The mechanism is a
 * two-level scheduler:
 *
 *  - a per-bank *bank arbiter* (Figure 5) chooses the bank's ongoing
 *    access from its read bursts and write queue, implementing read
 *    preemption and write piggybacking under the static write-queue
 *    occupancy threshold;
 *  - a global per-channel *transaction scheduler* (Figure 6) issues, each
 *    memory cycle, the unblocked transaction with the best static
 *    priority (Table 2): column accesses within the last rank first
 *    (same bank before other banks, reads before writes), then precharge
 *    and activate (they do not use the data bus), and column accesses to
 *    other ranks last to avoid rank-to-rank turnaround bubbles.
 *
 * New reads join an existing burst for their row even while that burst is
 * being serviced; bursts within a bank are ordered by the arrival time of
 * their first access to prevent starvation.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_BURST_HH
#define BURSTSIM_CTRL_SCHEDULERS_BURST_HH

#include <cstdint>
#include <vector>

#include "ctrl/flat_queue.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** Burst scheduling with optional read preemption / write piggybacking. */
class BurstScheduler : public Scheduler
{
  public:
    explicit BurstScheduler(const SchedulerContext &ctx);

    void enqueue(MemAccess *a) override;
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override;
    std::map<std::string, double> extraStats() const override;
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;
    Tick nextEventTick(Tick now) const override;
    bool globallySensitive() const override { return true; }
    void onIdleSpan(Tick from, Tick span) override;

    /** Bands of the global write count Figure 5 compares: queue-full,
     *  above-threshold (piggyback gate) and below-threshold (preempt
     *  gate). No Figure 5 decision can change while all bits hold. */
    std::uint64_t
    globalSignature() const override
    {
        const std::size_t gw = ctx_.global->writesOutstanding;
        const std::size_t th = effectiveThreshold();
        return std::uint64_t(gw >= ctx_.params.writeCap) |
               std::uint64_t(gw > th) << 1 |
               std::uint64_t(gw < th) << 2;
    }

    /** A cluster of same-row reads within one bank (for tests). */
    struct Burst
    {
        std::uint32_t row = 0;
        Tick firstArrival = 0;
        FlatQueue<MemAccess *> reads;
    };

    /** Read-burst list of bank @p b (test introspection). */
    const FlatQueue<Burst> &burstsOfBank(std::uint32_t b) const
    {
        return banks_[b].bursts;
    }

  private:
    struct BankState
    {
        FlatQueue<Burst> bursts;        //!< read queue, burst-clustered
        FlatQueue<MemAccess *> writeQ;  //!< writes in arrival order
        MemAccess *ongoing = nullptr;
        bool ongoingFromBurst = false;   //!< ongoing came from front burst
        bool ongoingFirstOfBurst = false; //!< ongoing opened its burst
        bool endOfBurst = false;         //!< last access ended a burst
        bool frontStarted = false;       //!< front burst partially served
    };

    /** Figure 5: pick an ongoing access for bank @p b if it has none. */
    void arbitrate(std::uint32_t b, Tick now);

    /** Figure 5 lines 9-11: read preemption of an ongoing write. */
    void maybePreempt(std::uint32_t b, Tick now);

    /** Oldest write in bank @p b directed to the bank's open row. */
    FlatQueue<MemAccess *>::iterator findPiggybackWrite(std::uint32_t b);

    /** Table 2 priority of @p a's next transaction @p cmd (1 = best). */
    int priorityOf(const MemAccess *a, dram::CmdType cmd) const;

    /** Effective threshold for this cycle (static or dynamic, §7). */
    std::size_t effectiveThreshold() const;

    std::vector<BankState> banks_;
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;

    bool lastValid_ = false;
    std::uint32_t lastBank_ = 0; //!< flat index of last column access
    std::uint32_t lastRank_ = 0;

    std::uint64_t preemptions_ = 0;
    std::uint64_t piggybacks_ = 0;
    std::uint64_t burstsFormed_ = 0;
    std::uint64_t burstJoinCount_ = 0;

    /** Decayed read/write arrival counts for the dynamic threshold. */
    double readArrivals_ = 1.0;
    double writeArrivals_ = 1.0;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_BURST_HH
