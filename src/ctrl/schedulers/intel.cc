#include "ctrl/schedulers/intel.hh"

#include <algorithm>

#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

IntelScheduler::IntelScheduler(const SchedulerContext &ctx)
    : Scheduler(ctx),
      readQ_(numBanks()),
      ongoing_(numBanks(), nullptr),
      startSeq_(numBanks(), 0)
{
}

void
IntelScheduler::enqueue(MemAccess *a)
{
    if (a->isWrite()) {
        writeQ_.push_back(a);
        writes_ += 1;
        noteWriteEnqueued(a);
    } else {
        readQ_[bankIndex(a->coords)].push_back(a);
        reads_ += 1;
    }
}

void
IntelScheduler::arbitrate()
{
    const std::size_t global_writes = ctx_.global->writesOutstanding;
    const bool write_q_full = global_writes >= ctx_.params.writeCap;

    // Read preemption (Intel_RP): a read may interrupt an ongoing write
    // unless the write queue has saturated or a flush is in progress
    // (preempting during a flush would just thrash the flush).
    if (ctx_.params.readPreemption && !write_q_full && !drainMode_) {
        for (std::uint32_t b = 0; b < ongoing_.size(); ++b) {
            MemAccess *a = ongoing_[b];
            if (a && a->isWrite() && !readQ_[b].empty()) {
                writeQ_.push_front(a); // it was the oldest write
                ongoing_[b] = nullptr;
                clearBound(b);
                preemptions_ += 1;
            }
        }
    }

    // Write-queue flush (the patent's bursty drain): a full write queue
    // triggers a flush that keeps priority on writes until the queue is
    // half empty; otherwise writes wait until no reads are outstanding.
    if (write_q_full)
        drainMode_ = true;
    else if (global_writes <= ctx_.params.writeCap / 2)
        drainMode_ = false;
    const bool service_writes =
        !writeQ_.empty() && (drainMode_ || reads_ == 0);

    if (service_writes) {
        // Drain oldest-first into any idle bank.
        std::size_t busy = 0;
        for (MemAccess *a : ongoing_)
            if (a)
                busy += 1;
        for (auto it = writeQ_.begin();
             it != writeQ_.end() && busy < 4;) {
            const std::uint32_t b = bankIndex((*it)->coords);
            if (!ongoing_[b]) {
                busy += 1;
                ongoing_[b] = *it;
                startSeq_[b] = ++seq_;
                clearBound(b);
                it = writeQ_.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Fill remaining idle banks with reads: best-effort row-hit-first —
    // the patent examines only a small window at the head of each bank
    // queue for page hits, so grouping is partial (the paper's critique
    // of both RowHit and Intel in Section 4.2).
    constexpr std::size_t kReorderWindow = 4;
    constexpr std::size_t kMaxOngoing = 4;
    std::size_t ongoing_count = 0;
    for (MemAccess *a : ongoing_)
        if (a)
            ongoing_count += 1;
    for (std::uint32_t b = 0; b < ongoing_.size(); ++b) {
        if (ongoing_count >= kMaxOngoing)
            break;
        if (ongoing_[b] || readQ_[b].empty())
            continue;
        auto &q = readQ_[b];
        auto pick = q.begin();
        const dram::Bank &bank = ctx_.mem->bank(q.front()->coords);
        if (bank.isOpen()) {
            const auto window_end =
                q.size() > kReorderWindow ? q.begin() + kReorderWindow
                                          : q.end();
            auto hit =
                std::find_if(q.begin(), window_end, [&](MemAccess *r) {
                    return r->coords.row == bank.openRow();
                });
            if (hit != window_end)
                pick = hit;
        }
        ongoing_[b] = *pick;
        startSeq_[b] = ++seq_;
        clearBound(b);
        q.erase(pick);
        ongoing_count += 1;
    }
}

Scheduler::Issued
IntelScheduler::tick(Tick now)
{
    arbitrate();

    // Once started, an access has the highest priority so that it can
    // finish as quickly as possible, reducing the degree of reordering
    // (the patent's wording): service ongoing accesses strictly in start
    // order, issuing the first unblocked transaction. Unlike burst
    // scheduling's Table 2 there is no same-rank clustering of data
    // transfers, so rank-to-rank turnaround bubbles go unmitigated.
    MemAccess *best = nullptr;
    std::uint32_t best_bank = 0;
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (std::uint32_t b = 0; b < ongoing_.size(); ++b) {
        MemAccess *a = ongoing_[b];
        if (!a || startSeq_[b] >= best_seq)
            continue;
        if (bankBound(b, a, now) <= now) {
            best = a;
            best_bank = b;
            best_seq = startSeq_[b];
        }
    }
    if (!best)
        return {};

    Issued out = issueFor(best, now);
    if (out.columnAccess) {
        ongoing_[best_bank] = nullptr;
        if (best->isWrite())
            writes_ -= 1;
        else
            reads_ -= 1;
    }
    return out;
}

bool
IntelScheduler::hasWork() const
{
    return reads_ + writes_ > 0;
}

dram::StallCause
IntelScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    // tick() arbitrated before coming up empty, so ongoing_ is current.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    std::uint64_t oldest_seq = ~std::uint64_t{0};
    bool any_ongoing = false;
    stallVictim_ = nullptr;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a) {
            // Backlog behind the kMaxOngoing reordering cap (or a write
            // held in the shared queue) is an arbitration loss, not a
            // device stall.
            if (!readQ_[b].empty())
                sink.noteBankStall(ctx_.channel, b,
                                   dram::StallCause::ArbLoss);
            continue;
        }
        any_ongoing = true;
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss;
        sink.noteBankStall(ctx_.channel, b, c);
        if (startSeq_[b] < oldest_seq) {
            oldest_seq = startSeq_[b];
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    if (any_ongoing)
        return channel_cause;
    if (reads_ > 0) {
        // Reads queued behind the reordering cap: nominate the first
        // bank's backlog head so the tracer has an access to blame.
        for (const auto &q : readQ_)
            if (!q.empty()) {
                stallVictim_ = q.front();
                break;
            }
        return dram::StallCause::ArbLoss;
    }
    if (writes_ > 0) {
        stallVictim_ = writeQ_.empty() ? nullptr : writeQ_.front();
        return dram::StallCause::ThresholdGated; // waiting for drain mode
    }
    return dram::StallCause::NoWork;
}

Tick
IntelScheduler::nextEventTick(Tick now) const
{
    // arbitrate() mutates state even on idle ticks (preemption, drain
    // flips, filling ongoing slots), so skipping is legal only when the
    // next arbitration pass is provably a no-op. Each possible move
    // below forces "return now" — one real tick — instead.
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    const std::size_t global_writes = ctx_.global->writesOutstanding;
    const bool write_q_full = global_writes >= ctx_.params.writeCap;

    if (ctx_.params.readPreemption && !write_q_full && !drainMode_)
        for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b)
            if (ongoing_[b] && ongoing_[b]->isWrite() &&
                !readQ_[b].empty()) {
                pin_ = HorizonPin::Preempt;
                return now;
            }

    // A pending drain-mode flip is itself a state change the next
    // arbitration pass applies.
    const bool drain_next =
        write_q_full
            ? true
            : (global_writes <= ctx_.params.writeCap / 2 ? false
                                                         : drainMode_);
    if (drain_next != drainMode_) {
        pin_ = HorizonPin::DrainFlip;
        return now;
    }

    std::size_t busy = 0;
    for (const MemAccess *a : ongoing_)
        if (a)
            busy += 1;

    const bool service_writes =
        !writeQ_.empty() && (drainMode_ || reads_ == 0);
    if (service_writes && busy < 4)
        for (const MemAccess *w : writeQ_)
            if (!ongoing_[bankIndex(w->coords)]) {
                pin_ = HorizonPin::WriteDrain;
                return now;
            }

    if (busy < 4) // kMaxOngoing read-fill headroom
        for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b)
            if (!ongoing_[b] && !readQ_[b].empty()) {
                pin_ = HorizonPin::ArbFill;
                return now;
            }

    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        const Tick t = bankBound(b, a, now);
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }
    if (horizon == kTickMax)
        pin_ = HorizonPin::None;
    return horizon;
}

std::map<std::string, double>
IntelScheduler::extraStats() const
{
    return {{"preemptions", double(preemptions_)}};
}

void
IntelScheduler::queueOccupancy(std::vector<std::uint32_t> &reads,
                               std::vector<std::uint32_t> &writes) const
{
    const std::size_t base = reads.size();
    for (std::uint32_t b = 0; b < readQ_.size(); ++b) {
        std::uint32_t r = std::uint32_t(readQ_[b].size());
        std::uint32_t w = 0;
        if (const MemAccess *a = ongoing_[b])
            (a->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
    // The single write queue serves all banks; attribute entries to the
    // bank they target.
    for (const MemAccess *a : writeQ_)
        writes[base + bankIndex(a->coords)] += 1;
}

} // namespace bsim::ctrl
