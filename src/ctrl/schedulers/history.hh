/**
 * @file
 * Adaptive history-based scheduling (Hur and Lin, MICRO'04), the
 * related-work mechanism of the paper's Section 2.2, reimplemented in
 * simplified form as an *extended* comparison point (it is not part of
 * the paper's Table 4 evaluation):
 *
 *  - the scheduler tracks the read/write mix of *arriving* accesses and
 *    the mix of *recently scheduled* accesses with decayed counters;
 *  - each cycle it selects, among the per-bank candidates, the access
 *    that (a) steers the scheduled mix toward the observed arrival mix
 *    (the "match the program's mixture of reads and writes" criterion)
 *    and (b) avoids reusing the most recently serviced banks (expected
 *    bank-level parallelism), with age as the tie breaker;
 *  - within a bank, candidates are chosen row-hit-first over a small
 *    window, as in the patent-style schedulers of the era.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_HISTORY_HH
#define BURSTSIM_CTRL_SCHEDULERS_HISTORY_HH

#include <vector>

#include "ctrl/flat_queue.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** Hur-Lin style adaptive history-based scheduler. */
class AdaptiveHistoryScheduler : public Scheduler
{
  public:
    explicit AdaptiveHistoryScheduler(const SchedulerContext &ctx);

    void enqueue(MemAccess *a) override;
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override;
    std::map<std::string, double> extraStats() const override;
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;
    Tick nextEventTick(Tick now) const override;

  private:
    /** Select a candidate for bank @p b (row hit first in a window). */
    void arbitrate(std::uint32_t b);

    /** History-match score of scheduling @p a next (higher = better). */
    double scoreOf(const MemAccess *a, std::uint32_t bank) const;

    std::vector<FlatQueue<MemAccess *>> queues_; //!< unified, per bank
    std::vector<MemAccess *> ongoing_;            //!< per bank

    // Decayed arrival and service mixes.
    double readArrivals_ = 1.0;
    double writeArrivals_ = 1.0;
    double readsScheduled_ = 1.0;
    double writesScheduled_ = 1.0;

    std::uint32_t lastBank_ = ~0u;
    std::uint32_t prevBank_ = ~0u;

    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
    std::uint64_t mixSteered_ = 0; //!< picks that corrected the mix
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_HISTORY_HH
