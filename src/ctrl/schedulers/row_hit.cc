#include "ctrl/schedulers/row_hit.hh"

#include <algorithm>

#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

RowHitScheduler::RowHitScheduler(const SchedulerContext &ctx)
    : Scheduler(ctx), queues_(numBanks()), ongoing_(numBanks(), nullptr)
{
}

void
RowHitScheduler::enqueue(MemAccess *a)
{
    queues_[bankIndex(a->coords)].push_back(a);
    if (a->isWrite()) {
        writes_ += 1;
        noteWriteEnqueued(a);
    } else {
        reads_ += 1;
    }
}

void
RowHitScheduler::arbitrate(std::uint32_t b)
{
    auto &q = queues_[b];
    if (ongoing_[b] || q.empty())
        return;

    // Row hit first: the oldest access directed to the open row; when the
    // bank is closed or no queued access matches, fall back to the oldest.
    auto pick = q.begin();
    const dram::Bank &bank = ctx_.mem->bank(q.front()->coords);
    if (bank.isOpen()) {
        auto hit = std::find_if(q.begin(), q.end(), [&](MemAccess *a) {
            return a->coords.row == bank.openRow();
        });
        if (hit != q.end())
            pick = hit;
    }
    ongoing_[b] = *pick;
    q.erase(pick);
    clearBound(b); // new probe candidate for this bank
}

Scheduler::Issued
RowHitScheduler::tick(Tick now)
{
    const std::uint32_t n = numBanks();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t b = (rr_ + 1 + i) % n;
        arbitrate(b);
        MemAccess *a = ongoing_[b];
        if (!a || bankBound(b, a, now) > now)
            continue;
        Issued out = issueFor(a, now);
        if (out.columnAccess) {
            ongoing_[b] = nullptr;
            if (a->isWrite())
                writes_ -= 1;
            else
                reads_ -= 1;
            rr_ = b;
        }
        return out;
    }
    return {};
}

bool
RowHitScheduler::hasWork() const
{
    return reads_ + writes_ > 0;
}

dram::StallCause
RowHitScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    // tick() already arbitrated every bank this cycle (it only returns
    // empty-handed after the full loop), so ongoing_ holds each bank's
    // chosen access and the queues hold pure backlog.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    Tick oldest = kTickMax;
    stallVictim_ = nullptr;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss;
        sink.noteBankStall(ctx_.channel, b, c);
        if (a->arrival < oldest) {
            oldest = a->arrival;
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    return channel_cause;
}

Tick
RowHitScheduler::nextEventTick(Tick now) const
{
    // A tick can still pull backlog into an empty ongoing slot, which is
    // a real arbitration state change — no skipping until every slot
    // with backlog is filled.
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b)
        if (!ongoing_[b] && !queues_[b].empty()) {
            pin_ = HorizonPin::ArbFill;
            return now;
        }
    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        const Tick t = bankBound(b, a, now);
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }
    if (horizon == kTickMax)
        pin_ = HorizonPin::None;
    return horizon;
}

void
RowHitScheduler::queueOccupancy(std::vector<std::uint32_t> &reads,
                                std::vector<std::uint32_t> &writes) const
{
    for (std::uint32_t b = 0; b < queues_.size(); ++b) {
        std::uint32_t r = 0, w = 0;
        for (const MemAccess *a : queues_[b])
            (a->isWrite() ? w : r) += 1;
        if (const MemAccess *a = ongoing_[b])
            (a->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
}

} // namespace bsim::ctrl
