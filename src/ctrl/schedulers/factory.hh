/**
 * @file
 * Scheduler factory: Table 4 mechanism -> policy instance.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_FACTORY_HH
#define BURSTSIM_CTRL_SCHEDULERS_FACTORY_HH

#include <memory>

#include "ctrl/access.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** Instantiate the scheduler implementing @p m for one channel. */
std::unique_ptr<Scheduler> makeScheduler(Mechanism m,
                                         const SchedulerContext &ctx);

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_FACTORY_HH
