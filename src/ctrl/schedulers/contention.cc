#include "ctrl/schedulers/contention.hh"

#include <algorithm>

#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

namespace
{

/** ATLAS quantum decay (the paper's alpha). */
constexpr double kAtlasAlpha = 0.875;

} // namespace

ContentionScheduler::ContentionScheduler(const SchedulerContext &ctx)
    : Scheduler(ctx), queues_(numBanks()), ongoing_(numBanks(), nullptr)
{
    watermark_ = ctx_.params.watermarkDrain;
    const std::size_t cap = ctx_.params.writeCap;
    hi_ = ctx_.params.hiWatermark ? ctx_.params.hiWatermark
                                  : std::max<std::size_t>(1, cap * 3 / 4);
    lo_ = ctx_.params.loWatermark ? ctx_.params.loWatermark
                                  : std::max<std::size_t>(1, cap / 4);
    if (lo_ > hi_)
        lo_ = hi_;
}

void
ContentionScheduler::enqueue(MemAccess *a)
{
    queues_[bankIndex(a->coords)].push_back(a);
    if (a->isWrite()) {
        writes_ += 1;
        noteWriteEnqueued(a);
    } else {
        reads_ += 1;
    }
    onEnqueued(a);
}

void
ContentionScheduler::arbitrate(std::uint32_t b)
{
    auto &q = queues_[b];
    if (ongoing_[b] || q.empty())
        return;
    auto pick = q.end();
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (!eligible(*it))
            continue;
        if (pick == q.end() || beats(*it, *pick))
            pick = it;
    }
    if (pick == q.end())
        return; // drain mode gates every queued access of this bank
    ongoing_[b] = *pick;
    q.erase(pick);
    clearBound(b); // new probe candidate for this bank
}

bool
ContentionScheduler::flipPending() const
{
    const std::size_t gw = ctx_.global->writesOutstanding;
    if (!drainMode_)
        return gw >= hi_ || (reads_ == 0 && gw > 0);
    return gw == 0 || (reads_ > 0 && gw < lo_);
}

Scheduler::Issued
ContentionScheduler::tick(Tick now)
{
    syncEpochs(now);
    if (watermark_) {
        // The policy bus-turnaround hold fully quiesces the channel:
        // no arbitration, no issue. The horizon pins to turnUntil_, so
        // the hold is exactly skippable.
        if (now < turnUntil_)
            return {};
        // Gate the flip on local work: flipPending() reads the GLOBAL
        // write count, so an idle channel would otherwise flip (and
        // start a turnaround hold) on another channel's traffic alone.
        // An idle channel's drain mode is unobservable until work
        // arrives — and the arrival tick re-evaluates the flip in both
        // engines — so deferring keeps the step and skip engines on
        // the same flip lattice (the skip engine sleeps through
        // workless ticks and must never miss a state change).
        if (hasWork() && flipPending()) {
            drainMode_ = !drainMode_;
            drainFlips_ += 1;
            turnUntil_ = now + ctx_.params.drainTurnaround;
            if (now < turnUntil_)
                return {};
        }
    }

    const std::uint32_t n = numBanks();
    for (std::uint32_t b = 0; b < n; ++b)
        arbitrate(b);

    // The family order decides inter-bank arbitration too: among the
    // candidates whose next transaction is issuable right now, serve
    // the highest-priority one (marked / least-serviced / whitelisted
    // first), not a round-robin.
    MemAccess *best = nullptr;
    std::uint32_t best_bank = 0;
    for (std::uint32_t b = 0; b < n; ++b) {
        MemAccess *a = ongoing_[b];
        if (!a || bankBound(b, a, now) > now)
            continue;
        if (!best || beats(a, best)) {
            best = a;
            best_bank = b;
        }
    }
    if (!best)
        return {};

    Issued out = issueFor(best, now);
    if (out.columnAccess) {
        ongoing_[best_bank] = nullptr;
        if (best->isWrite())
            writes_ -= 1;
        else
            reads_ -= 1;
        onColumnIssued(best);
    }
    return out;
}

dram::StallCause
ContentionScheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    syncEpochs(now);
    stallVictim_ = nullptr;
    if (!hasWork())
        return dram::StallCause::NoWork;

    // Bus-turnaround hold: the policy itself gates the whole channel.
    if (watermark_ && now < turnUntil_) {
        Tick oldest = kTickMax;
        for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size());
             ++b) {
            const MemAccess *a = ongoing_[b];
            if (!a)
                continue;
            sink.noteBankStall(ctx_.channel, b,
                               dram::StallCause::ThresholdGated);
            if (a->arrival < oldest) {
                oldest = a->arrival;
                stallVictim_ = a;
            }
        }
        return dram::StallCause::ThresholdGated;
    }

    // tick() already arbitrated every bank this cycle (it only returns
    // empty-handed after the full pass), so ongoing_ holds each bank's
    // chosen access and the queues hold backlog plus drain-gated work.
    dram::StallCause channel_cause = dram::StallCause::NoWork;
    Tick oldest = kTickMax;
    bool any_ongoing = false;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        any_ongoing = true;
        dram::StallCause c = blockOf(a, now);
        if (c == dram::StallCause::None)
            c = dram::StallCause::ArbLoss;
        sink.noteBankStall(ctx_.channel, b, c);
        if (a->arrival < oldest) {
            oldest = a->arrival;
            channel_cause = c;
            stallVictim_ = a;
        }
    }
    if (any_ongoing)
        return channel_cause;

    // Work exists but no slot is filled: every queued access is gated
    // by the drain mode (e.g. reads during a write drain). Nominate
    // the oldest gated access so the tracer has someone to blame.
    for (const auto &q : queues_)
        for (const MemAccess *a : q)
            if (a->arrival < oldest) {
                oldest = a->arrival;
                stallVictim_ = a;
            }
    return dram::StallCause::ThresholdGated;
}

Tick
ContentionScheduler::nextEventTick(Tick now) const
{
    obs::prof::Scope prof(obs::prof::Phase::SchedHorizon);
    syncEpochs(now);
    if (!hasWork()) {
        pin_ = HorizonPin::None;
        return kTickMax;
    }
    if (watermark_) {
        // During the turnaround hold nothing happens until it ends;
        // a due flip is applied by the next real tick.
        if (now < turnUntil_) {
            pin_ = HorizonPin::DrainFlip;
            return turnUntil_;
        }
        if (flipPending()) {
            pin_ = HorizonPin::DrainFlip;
            return now;
        }
    }

    // A tick can still pull eligible backlog into an empty ongoing
    // slot — a real arbitration state change, so no skipping.
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        if (ongoing_[b] || queues_[b].empty())
            continue;
        for (const MemAccess *a : queues_[b])
            if (eligible(a)) {
                pin_ = HorizonPin::ArbFill;
                return now;
            }
    }

    pin_ = HorizonPin::Timing;
    Tick horizon = kTickMax;
    for (std::uint32_t b = 0; b < std::uint32_t(ongoing_.size()); ++b) {
        const MemAccess *a = ongoing_[b];
        if (!a)
            continue;
        const Tick t = bankBound(b, a, now);
        if (t < horizon)
            horizon = t;
        if (horizon <= now)
            return now;
    }

    // Policy epoch boundaries (ATLAS quantum folds, BLISS blacklist
    // clears) re-rank the threads; waking there keeps the lazily
    // synced state aligned with the step engine's per-cycle view.
    const Tick epoch = nextEpochTick(now);
    if (epoch < horizon) {
        horizon = epoch;
        pin_ = HorizonPin::Epoch;
    }

    if (horizon == kTickMax) {
        // Backlog exists but every access is drain-gated and no slot
        // is busy: progress resumes only when another channel moves
        // the global write count across a watermark band. The memo is
        // signature-guarded, but stay conservative.
        pin_ = HorizonPin::Conservative;
        return now;
    }
    return horizon;
}

std::map<std::string, double>
ContentionScheduler::extraStats() const
{
    std::map<std::string, double> out;
    if (watermark_)
        out["drain_flips"] = double(drainFlips_);
    familyStats(out);
    return out;
}

std::uint64_t
ContentionScheduler::globalSignature() const
{
    if (!watermark_)
        return 0;
    // Every banded comparison flipPending() makes — the global write
    // count against each watermark, whether any reads are waiting, and
    // which mode we are in — so the controller's horizon memo survives
    // unrelated count drift but never a state change that could alter
    // the flip decision. (Leaving out the reads_/drainMode_ bits made
    // the skip engine reuse a pre-flip horizon after the last read
    // drained, visibly diverging from the step engine.)
    const std::size_t gw = ctx_.global->writesOutstanding;
    return std::uint64_t(gw >= hi_) | std::uint64_t(gw < lo_) << 1 |
           std::uint64_t(gw > 0) << 2 |
           std::uint64_t(reads_ > 0) << 3 |
           std::uint64_t(drainMode_) << 4;
}

void
ContentionScheduler::queueOccupancy(std::vector<std::uint32_t> &reads,
                                    std::vector<std::uint32_t> &writes) const
{
    for (std::uint32_t b = 0; b < queues_.size(); ++b) {
        std::uint32_t r = 0, w = 0;
        for (const MemAccess *a : queues_[b])
            (a->isWrite() ? w : r) += 1;
        if (const MemAccess *a = ongoing_[b])
            (a->isWrite() ? w : r) += 1;
        reads.push_back(r);
        writes.push_back(w);
    }
}

// --------------------------------------------------------------------
// FR-FCFS

bool
FrFcfsScheduler::beats(const MemAccess *a, const MemAccess *b) const
{
    const bool ha = rowHit(a), hb = rowHit(b);
    if (ha != hb)
        return ha;
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->id < b->id;
}

// --------------------------------------------------------------------
// PAR-BS

bool
ParbsScheduler::beats(const MemAccess *a, const MemAccess *b) const
{
    // The paper's rule order: marked first (batch boundary), then row
    // hit, then thread rank, then age.
    const bool ma = marked_.count(a) != 0, mb = marked_.count(b) != 0;
    if (ma != mb)
        return ma;
    const bool ha = rowHit(a), hb = rowHit(b);
    if (ha != hb)
        return ha;
    const std::uint32_t ra = rankOf(a->tag), rb = rankOf(b->tag);
    if (ra != rb)
        return ra < rb;
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->id < b->id;
}

std::uint32_t
ParbsScheduler::rankOf(std::uint64_t tag) const
{
    auto it = rank_.find(tag);
    return it == rank_.end() ? ~std::uint32_t{0} : it->second;
}

void
ParbsScheduler::onEnqueued(MemAccess *a)
{
    (void)a;
    // An enqueue into an empty batch window starts the next batch
    // immediately (a real event in both engines).
    if (marked_.empty())
        formBatch();
}

void
ParbsScheduler::onColumnIssued(MemAccess *a)
{
    if (marked_.erase(a) == 0)
        return;
    markedServed_ += 1;
    if (marked_.empty())
        formBatch();
}

void
ParbsScheduler::formBatch()
{
    marked_.clear();
    rank_.clear();

    // Mark up to parbsMarkingCap oldest queued requests per
    // (thread, bank); the per-bank queues are FIFOs, so in-order
    // iteration visits oldest first.
    struct Load
    {
        std::uint32_t maxBank = 0;
        std::uint32_t total = 0;
    };
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> perBank;
    std::unordered_map<std::uint64_t, Load> load;
    const std::size_t cap = ctx_.params.parbsMarkingCap;
    const std::uint32_t n = numBanks();
    for (std::uint32_t b = 0; b < n; ++b) {
        for (MemAccess *a : bankQueue(b)) {
            auto &cnt = perBank[a->tag];
            if (cnt.empty())
                cnt.assign(n, 0);
            if (cnt[b] >= cap)
                continue;
            cnt[b] += 1;
            marked_.insert(a);
            Load &l = load[a->tag];
            l.total += 1;
            l.maxBank = std::max(l.maxBank, cnt[b]);
        }
    }
    if (marked_.empty())
        return;
    batches_ += 1;

    // Shortest job first: the thread with the lightest heaviest-bank
    // load (then lightest total, then lowest tag) ranks best.
    std::vector<std::uint64_t> tags;
    tags.reserve(load.size());
    for (const auto &kv : load)
        tags.push_back(kv.first);
    std::sort(tags.begin(), tags.end(),
              [&](std::uint64_t x, std::uint64_t y) {
                  const Load &lx = load[x], &ly = load[y];
                  if (lx.maxBank != ly.maxBank)
                      return lx.maxBank < ly.maxBank;
                  if (lx.total != ly.total)
                      return lx.total < ly.total;
                  return x < y;
              });
    for (std::uint32_t i = 0; i < tags.size(); ++i)
        rank_[tags[i]] = i;
}

void
ParbsScheduler::familyStats(std::map<std::string, double> &out) const
{
    out["parbs_batches"] = double(batches_);
    out["parbs_marked_served"] = double(markedServed_);
}

// --------------------------------------------------------------------
// ATLAS

double
AtlasScheduler::totalOf(std::uint64_t tag) const
{
    auto it = service_.find(tag);
    return it == service_.end() ? 0.0 : it->second.total;
}

bool
AtlasScheduler::beats(const MemAccess *a, const MemAccess *b) const
{
    // Least attained service first; new threads (no service yet) rank
    // highest, as in the paper.
    const double sa = totalOf(a->tag), sb = totalOf(b->tag);
    if (sa != sb)
        return sa < sb;
    const bool ha = rowHit(a), hb = rowHit(b);
    if (ha != hb)
        return ha;
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->id < b->id;
}

void
AtlasScheduler::syncEpochs(Tick now) const
{
    const Tick q = ctx_.params.atlasQuantum;
    if (now < anchor_ + q)
        return;
    const Tick folds = (now - anchor_) / q;
    for (auto &kv : service_) {
        Service &s = kv.second;
        // First boundary folds the open quantum; quanta skipped
        // without any issue contribute zero and just decay. Repeated
        // multiplication (not pow) keeps the lazy catch-up bit-equal
        // to the step engine's per-boundary folds.
        s.total = kAtlasAlpha * s.total + (1.0 - kAtlasAlpha) * s.quantum;
        s.quantum = 0;
        for (Tick i = 1; i < folds; ++i)
            s.total *= kAtlasAlpha;
    }
    anchor_ += folds * q;
}

Tick
AtlasScheduler::nextEpochTick(Tick now) const
{
    (void)now; // syncEpochs already advanced anchor_ past now - q
    return anchor_ + ctx_.params.atlasQuantum;
}

void
AtlasScheduler::onColumnIssued(MemAccess *a)
{
    // Attained service = data-bus cycles consumed, as in the paper.
    service_[a->tag].quantum += double(a->dataEnd - a->dataStart);
}

void
AtlasScheduler::familyStats(std::map<std::string, double> &out) const
{
    out["atlas_threads"] = double(service_.size());
}

// --------------------------------------------------------------------
// BLISS

bool
BlissScheduler::beats(const MemAccess *a, const MemAccess *b) const
{
    const bool ba = blacklist_.count(a->tag) != 0;
    const bool bb = blacklist_.count(b->tag) != 0;
    if (ba != bb)
        return !ba; // non-blacklisted first (deprioritized, not blocked)
    const bool ha = rowHit(a), hb = rowHit(b);
    if (ha != hb)
        return ha;
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->id < b->id;
}

void
BlissScheduler::syncEpochs(Tick now) const
{
    if (now < nextClear_)
        return;
    blacklist_.clear();
    lastTag_ = kNoTag;
    streak_ = 0;
    const Tick iv = ctx_.params.blissClearInterval;
    nextClear_ = (now / iv + 1) * iv;
}

Tick
BlissScheduler::nextEpochTick(Tick now) const
{
    (void)now; // syncEpochs already advanced nextClear_ past now
    return nextClear_;
}

void
BlissScheduler::onColumnIssued(MemAccess *a)
{
    if (a->tag == lastTag_) {
        streak_ += 1;
        if (streak_ >= ctx_.params.blissThreshold &&
            blacklist_.insert(a->tag).second)
            insertions_ += 1;
    } else {
        lastTag_ = a->tag;
        streak_ = 1;
    }
}

void
BlissScheduler::familyStats(std::map<std::string, double> &out) const
{
    out["bliss_blacklistings"] = double(insertions_);
}

} // namespace bsim::ctrl
