/**
 * @file
 * Fault-injection scheduler wrapper (test harness only): behaves exactly
 * like the wrapped policy until a programmed number of column accesses
 * have issued, then stops issuing forever while still reporting queued
 * work. The controller consequently stays busy with no access ever
 * retiring — precisely the hang signature the forward-progress watchdog
 * (SystemConfig::watchdogCycles) must detect. Never instantiated by the
 * factory; inject through ControllerConfig::schedulerFactory.
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_FAULTY_HH
#define BURSTSIM_CTRL_SCHEDULERS_FAULTY_HH

#include <cstdint>
#include <memory>

#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** Decorator that freezes the wrapped scheduler after N column accesses. */
class FaultyScheduler : public Scheduler
{
  public:
    /**
     * Wrap @p inner; after @p freezeAfter of this channel's column
     * accesses have issued, tick() stops offering the slot to the
     * wrapped policy (0 = frozen from the start).
     */
    FaultyScheduler(const SchedulerContext &ctx,
                    std::unique_ptr<Scheduler> inner,
                    std::uint64_t freezeAfter);

    void enqueue(MemAccess *a) override { inner_->enqueue(a); }
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return inner_->readCount(); }
    std::size_t writeCount() const override
    {
        return inner_->writeCount();
    }
    bool hasWork() const override { return inner_->hasWork(); }
    MemAccess *findWrite(Addr block_base) const override
    {
        return inner_->findWrite(block_base);
    }
    std::map<std::string, double> extraStats() const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;

    /**
     * While frozen with work queued the wrapper must keep the engine
     * stepping tick by tick: returning anything past @p now would let
     * the cycle-skipping engine leap over the very cycles in which the
     * watchdog counts the hang.
     */
    Tick nextEventTick(Tick now) const override;

    void onExternalCommand() override { inner_->onExternalCommand(); }
    void setIntrospect(obs::EngineIntrospect *intro) override
    {
        Scheduler::setIntrospect(intro);
        inner_->setIntrospect(intro);
    }
    // Engine flags must reach the wrapped policy: the inner scheduler
    // computes the bounds and (pre-freeze) the horizons, so configuring
    // only the wrapper would leave it running cache-free conservative.
    void setEventDriven(bool on) override
    {
        Scheduler::setEventDriven(on);
        inner_->setEventDriven(on);
    }
    void setHorizonMemo(bool on) override
    {
        Scheduler::setHorizonMemo(on);
        inner_->setHorizonMemo(on);
    }
    void setExactBounds(bool on) override
    {
        Scheduler::setExactBounds(on);
        inner_->setExactBounds(on);
    }
    void setAuditor(obs::ProtocolAuditor *auditor) override
    {
        Scheduler::setAuditor(auditor);
        inner_->setAuditor(auditor);
    }
    bool globallySensitive() const override
    {
        return inner_->globallySensitive();
    }
    // Without this forward a wrapped globally-sensitive policy would
    // present the base signature (0): the controller's horizon memo
    // would survive watermark/threshold band crossings it must not.
    std::uint64_t globalSignature() const override
    {
        return inner_->globalSignature();
    }
    void onIdleSpan(Tick from, Tick span) override
    {
        inner_->onIdleSpan(from, span);
    }
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override
    {
        inner_->queueOccupancy(reads, writes);
    }

    /** True once the injected fault has triggered. */
    bool frozen() const { return issued_ >= freezeAfter_; }

  private:
    std::unique_ptr<Scheduler> inner_;
    std::uint64_t freezeAfter_;
    std::uint64_t issued_ = 0; //!< column accesses issued so far
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_FAULTY_HH
