/**
 * @file
 * Intel's patented out of order memory scheduling (Rotithor, Osborne and
 * Aboulenein, US patent 7127574; paper Table 4), reimplemented from the
 * paper's description:
 *
 *  - unique read queues per bank, a single write queue for all banks;
 *  - reads are prioritized over writes to minimize read latency, with a
 *    best-effort preference for row-hit reads within a bank;
 *  - writes are serviced only when the write queue is full or no reads
 *    are outstanding;
 *  - once an access is started it receives the highest priority so that
 *    it finishes as quickly as possible (limits the reordering degree) —
 *    modelled by servicing ongoing accesses strictly in start order with
 *    no rank-aware transaction interleaving;
 *  - Intel_RP additionally lets newly arrived reads interrupt an ongoing
 *    write (not part of the patent; added by the paper for comparison).
 */

#ifndef BURSTSIM_CTRL_SCHEDULERS_INTEL_HH
#define BURSTSIM_CTRL_SCHEDULERS_INTEL_HH

#include <vector>

#include "ctrl/flat_queue.hh"
#include "ctrl/scheduler.hh"

namespace bsim::ctrl
{

/** Intel out of order scheduling, optionally with read preemption. */
class IntelScheduler : public Scheduler
{
  public:
    explicit IntelScheduler(const SchedulerContext &ctx);

    void enqueue(MemAccess *a) override;
    Issued tick(Tick now) override;
    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override;
    std::map<std::string, double> extraStats() const override;
    void queueOccupancy(std::vector<std::uint32_t> &reads,
                        std::vector<std::uint32_t> &writes) const override;
    dram::StallCause stallScan(Tick now,
                               obs::StallAttribution &sink) const override;
    Tick nextEventTick(Tick now) const override;
    bool globallySensitive() const override { return true; }

    /** Bands of the global write count the patent's arbitration
     *  compares: queue-full (flush trigger) and half-empty (flush
     *  release). Decisions cannot change while both bits hold. */
    std::uint64_t
    globalSignature() const override
    {
        const std::size_t gw = ctx_.global->writesOutstanding;
        return std::uint64_t(gw >= ctx_.params.writeCap) |
               std::uint64_t(gw <= ctx_.params.writeCap / 2) << 1;
    }

  private:
    /** Select ongoing accesses for idle banks; handle preemption. */
    void arbitrate();

    std::vector<FlatQueue<MemAccess *>> readQ_; //!< per bank
    FlatQueue<MemAccess *> writeQ_;             //!< single, all banks
    std::vector<MemAccess *> ongoing_;           //!< per bank
    std::vector<std::uint64_t> startSeq_;        //!< per bank, start order
    std::uint64_t seq_ = 0;
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
    bool drainMode_ = false; //!< flushing the write queue to a watermark
    std::uint64_t preemptions_ = 0;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULERS_INTEL_HH
