/**
 * @file
 * The access-scheduler policy interface.
 *
 * One Scheduler instance manages the queues of one memory channel. Every
 * memory cycle the controller offers the scheduler the channel's command
 * slot; the scheduler may issue at most one SDRAM transaction through the
 * shared timing engine. Policies therefore differ only in *ordering* —
 * the engine rejects anything that violates device timing.
 */

#ifndef BURSTSIM_CTRL_SCHEDULER_HH
#define BURSTSIM_CTRL_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "ctrl/access.hh"
#include "dram/memory_system.hh"
#include "obs/selfprof.hh"

namespace bsim::obs
{
class EngineIntrospect;
class ProtocolAuditor;
class StallAttribution;
} // namespace bsim::obs

namespace bsim::ctrl
{

/**
 * Why a scheduler's nextEventTick returned the bound it did — set as a
 * side effect of the most recent nextEventTick call and read back by
 * the controller for wake-reason attribution (engine introspection).
 * Purely observational: pins never influence the computed horizon.
 */
enum class HorizonPin : std::uint8_t
{
    None,         //!< no nextEventTick call yet / channel idle
    ArbFill,      //!< an idle bank slot could be filled right now
    Preempt,      //!< a read preemption decision is pending
    DrainFlip,    //!< the write drain mode is about to flip
    Piggyback,    //!< an end-of-burst piggyback window is open
    WriteDrain,   //!< a postponed write is about to be serviced
    Timing,       //!< bounded by a device-timing release
    Epoch,        //!< a policy epoch boundary (quantum / blacklist
                  //!< clearing / batch formation) binds the horizon
    Conservative, //!< the policy cannot bound itself (default impl)
};

/** Controller-wide occupancy shared with per-channel schedulers. */
struct GlobalCounts
{
    std::size_t readsOutstanding = 0;
    std::size_t writesOutstanding = 0; //!< writes still in write queues
};

/** Static knobs a scheduler may consult. */
struct SchedulerParams
{
    /** Write-queue capacity (paper: 64, shared across channels). */
    std::size_t writeCap = 64;
    /** Burst threshold: preempt while writes < threshold, piggyback
     *  while writes > threshold (paper Section 3.2; best value 52). */
    std::size_t threshold = 52;
    /** Enable read preemption (Burst_RP / Burst_TH / Intel_RP). */
    bool readPreemption = false;
    /** Enable write piggybacking (Burst_WP / Burst_TH). */
    bool writePiggyback = false;

    // --- extensions beyond the paper's evaluated design space ---

    /** Section 7 future work: compute the threshold on the fly from the
     *  observed read/write mix instead of using the static value. */
    bool dynamicThreshold = false;
    /** Section 7 future work: order bursts within a bank by size
     *  (largest first) instead of by first-access arrival time. */
    bool sortBurstsBySize = false;
    /** Section 7 future work: schedule critical reads (those a
     *  dependence chain is blocked on) first inside their burst.
     *  Changing intra-burst order does not affect the burst's total
     *  bandwidth, only which dependent instructions unblock sooner. */
    bool criticalFirst = false;
    /** Ablation: when false, the Table 2 priorities ignore rank locality
     *  (column accesses to other ranks are no longer demoted). */
    bool rankAware = true;

    // --- contention-aware scheduler zoo (ROADMAP item 1) ---

    /** Watermark write-drain mode (HI_WM/LO_WM + bus-turnaround
     *  hysteresis; SNIPPETS.md snippets 1-2). A policy axis of the
     *  contention families; the paper's Table 4 mechanisms keep their
     *  original drain rules and ignore it. */
    bool watermarkDrain = false;
    /** Drain-entry watermark; 0 derives 3/4 of writeCap. */
    std::size_t hiWatermark = 0;
    /** Drain-exit watermark; 0 derives 1/4 of writeCap. */
    std::size_t loWatermark = 0;
    /** Policy-level bus-turnaround hold after a drain-mode flip: the
     *  channel quiesces this many memory cycles so read/write bursts
     *  cluster instead of thrashing the data-bus direction. */
    Tick drainTurnaround = 8;

    /** PAR-BS: requests marked per (thread, bank) when a batch forms. */
    std::size_t parbsMarkingCap = 5;
    /** ATLAS: quantum length in memory cycles (attained-service ranks
     *  are recomputed on these boundaries; scaled down from the
     *  paper's 10M cycles to match this testbench's short runs). */
    Tick atlasQuantum = 4096;
    /** BLISS: consecutive same-thread services before blacklisting. */
    std::size_t blissThreshold = 4;
    /** BLISS: blacklist clearing interval in memory cycles. */
    Tick blissClearInterval = 8192;
};

/** Everything a scheduler needs from its environment. */
struct SchedulerContext
{
    dram::MemorySystem *mem = nullptr;
    std::uint32_t channel = 0;
    const GlobalCounts *global = nullptr;
    SchedulerParams params;
};

/**
 * Abstract access reordering mechanism for one channel.
 *
 * Subclasses own the queue structures (the paper's mechanisms differ in
 * queue shape: unified per-bank queues, per-bank read queues plus a write
 * queue, or per-bank burst lists).
 */
class Scheduler
{
  public:
    /** What (if anything) was issued during a tick. */
    struct Issued
    {
        MemAccess *access = nullptr; //!< access whose transaction issued
        dram::CmdType cmd = dram::CmdType::Precharge;
        bool columnAccess = false;   //!< access left the queues this tick
        Tick dataStart = 0;          //!< valid when columnAccess
        Tick dataEnd = 0;            //!< valid when columnAccess
    };

    explicit Scheduler(const SchedulerContext &ctx) : ctx_(ctx)
    {
        const std::uint32_t n = ctx_.mem ? numBanks() : 0;
        boundTick_.assign(n, 0);
        boundEpoch_.assign(n, 0);
    }
    virtual ~Scheduler() = default;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Add an admitted access to this channel's queues. */
    virtual void enqueue(MemAccess *a) = 0;

    /** Offer the command slot for @p now; issue at most one transaction. */
    virtual Issued tick(Tick now) = 0;

    /** Reads waiting or in service in this channel. */
    virtual std::size_t readCount() const = 0;

    /** Writes waiting or in service in this channel. */
    virtual std::size_t writeCount() const = 0;

    /** True when any access is queued or in service. */
    virtual bool hasWork() const = 0;

    /**
     * Latest still-queued write covering block @p block_base, for read
     * forwarding (paper Figure 4, lines 2-4); nullptr when none.
     * Virtual so decorating schedulers (e.g. the fault-injection
     * wrapper) can delegate to the wrapped policy's index.
     */
    virtual MemAccess *
    findWrite(Addr block_base) const
    {
        auto it = latestWrite_.find(block_base);
        return it == latestWrite_.end() ? nullptr : it->second;
    }

    /** Policy-specific statistics (e.g. preemption/piggyback counts). */
    virtual std::map<std::string, double> extraStats() const { return {}; }

    /**
     * Explain an idle command slot: called by the controller only on
     * cycles where tick() issued nothing (and stall attribution is on),
     * never on the issue path. Returns the channel-level stall cause —
     * what blocked the access the policy would have served — and may
     * deepen it with per-bank causes via @p sink.noteBankStall().
     *
     * The default cannot see policy queues, so it reports the coarse
     * split only: ArbLoss when work exists, NoWork otherwise.
     */
    virtual dram::StallCause stallScan(Tick now,
                                       obs::StallAttribution &sink) const;

    /**
     * The blocked access behind the channel-level cause the most recent
     * stallScan() returned — the critical-path tracer's stall victim.
     * nullptr when the cause had no specific queued access behind it
     * (NoWork, or a policy-level fallback with nothing nominated).
     * Purely observational: reading it never changes scheduling.
     */
    virtual const MemAccess *lastStallVictim() const
    {
        return stallVictim_;
    }

    /**
     * Earliest future tick at which this channel might issue a command
     * or change observable state, assuming no new work arrives: the
     * cycle-skipping engine's per-channel horizon. Must never overshoot
     * — returning @p now (skip nothing) is always safe; returning a tick
     * past an issue, arbitration fill, preemption, or any other state
     * change is a correctness bug (the equivalence suite catches it).
     * kTickMax means "idle until new work arrives".
     *
     * The default cannot see policy queues, so it is maximally
     * conservative: @p now whenever any work exists.
     */
    virtual Tick
    nextEventTick(Tick now) const
    {
        pin_ = hasWork() ? HorizonPin::Conservative : HorizonPin::None;
        return hasWork() ? now : kTickMax;
    }

    /** Why the most recent nextEventTick returned its bound. */
    HorizonPin lastHorizonPin() const { return pin_; }

    /**
     * Tell the scheduler it is driving the event-driven engine: it may
     * maintain horizon caches keyed on the monotone evolution of device
     * timing state (deadlines only move later, except through this
     * channel's own issues and the refresh engine — see
     * onExternalCommand()). Off by default so the step engine stays a
     * cache-free per-cycle reference. Virtual (like the other engine
     * flags) so decorating schedulers can forward the flag to the
     * wrapped policy — the inner scheduler computes the bounds.
     */
    virtual void setEventDriven(bool on) { eventDriven_ = on; }

    /**
     * The controller's refresh engine issued a command (Precharge or
     * RefreshAll) on this channel — or a refresh-drain gate flipped:
     * channel timing state changed outside the scheduler's own issue
     * path, so every cached bank bound is stale. Overrides must call
     * the base (or invalidateBounds()) to keep the shared cache exact.
     */
    virtual void onExternalCommand() { invalidateBounds(); }

    /**
     * Allow or forbid the per-bank bound cache (and any policy-level
     * memo). On by default; `--no-horizon-memo` turns it off so the
     * fuzzer can difference introspection totals cached vs uncached.
     */
    virtual void setHorizonMemo(bool on) { horizonMemo_ = on; }

    /**
     * Use exact max-composed issue bounds (MemorySystem::readyAt)
     * instead of the first-binding blockedUntil. The controller enables
     * this for event-driven runs without per-cycle stall attribution:
     * attribution spans must stop at stall-cause flip points, exact
     * bounds deliberately do not. The bound cache requires exact bounds
     * (a first-binding bound that has expired proves nothing).
     */
    virtual void setExactBounds(bool on) { exactBounds_ = on; }

    /**
     * A band signature over the global counters this policy's
     * arbitration actually compares against (write-queue watermarks,
     * burst thresholds). The controller's per-channel horizon memo for
     * a globally-sensitive policy stays valid while this signature and
     * the channel's queue version both hold, so unrelated count drift
     * (e.g. another channel completing reads) no longer forces a
     * re-derivation. Policies returning true from globallySensitive()
     * must override this to cover every banded comparison they make.
     */
    virtual std::uint64_t globalSignature() const { return 0; }

    /**
     * Does the issue decision read state outside this channel — the
     * global read/write counts (GlobalCounts)? The controller's horizon
     * memo must then be invalidated whenever those counts change, not
     * only on this channel's own enqueues and issues. Policies with
     * write-queue thresholds or drain modes (Intel, Burst) return true.
     */
    virtual bool globallySensitive() const { return false; }

    /**
     * Notify the scheduler that ticks [@p from, @p from + @p span) were
     * skipped as dead cycles. Policies whose idle tick() has an
     * idempotent side effect (Burst's last-serviced-bank tracking)
     * replay it here once; the default idle tick is a pure no-op.
     */
    virtual void onIdleSpan(Tick from, Tick span)
    {
        (void)from;
        (void)span;
    }

    /** Burst-invariant audit hook sink; nullptr when auditing is off. */
    virtual void setAuditor(obs::ProtocolAuditor *auditor)
    {
        auditor_ = auditor;
    }

    /** Engine-introspection sink (horizon-cache hit/miss counters);
     *  nullptr when the pillar is off. */
    virtual void setIntrospect(obs::EngineIntrospect *intro)
    {
        intro_ = intro;
    }

    /**
     * Append this channel's per-bank queued access counts (waiting or
     * in service) to @p reads / @p writes — numBanks() entries each, in
     * flat rank-major bank order. Called by the metrics sampler once
     * per epoch, never on the issue path. The default reports zeros so
     * external policies need not implement it.
     */
    virtual void
    queueOccupancy(std::vector<std::uint32_t> &reads,
                   std::vector<std::uint32_t> &writes) const
    {
        reads.insert(reads.end(), numBanks(), 0);
        writes.insert(writes.end(), numBanks(), 0);
    }

  protected:
    /** Banks on this channel (rank-major flat index). */
    std::uint32_t
    numBanks() const
    {
        const auto &cfg = ctx_.mem->config();
        return cfg.ranksPerChannel * cfg.banksPerRank;
    }

    /** Flat bank index of @p c on this channel. */
    std::uint32_t
    bankIndex(const dram::Coords &c) const
    {
        return c.rank * ctx_.mem->config().banksPerRank + c.bank;
    }

    /** Next transaction @p a needs given current bank state. */
    dram::CmdType
    nextCmd(const MemAccess *a) const
    {
        return ctx_.mem->nextCmdFor(a->coords, a->type);
    }

    /** May @p a's next transaction issue at @p now? */
    bool
    canIssueFor(const MemAccess *a, Tick now) const
    {
        obs::prof::Scope prof(obs::prof::Phase::TimingCheck);
        dram::Command cmd{nextCmd(a), a->coords, a->id};
        return ctx_.mem->canIssue(cmd, now);
    }

    /** First constraint blocking @p a's next transaction at @p now. */
    dram::StallCause
    blockOf(const MemAccess *a, Tick now) const
    {
        dram::Command cmd{nextCmd(a), a->coords, a->id};
        return ctx_.mem->whyBlocked(cmd, now);
    }

    /** When @p a's currently-binding constraint expires (see
     *  MemorySystem::blockedUntil); @p now when already issuable. */
    Tick
    blockedUntilFor(const MemAccess *a, Tick now) const
    {
        obs::prof::Scope prof(obs::prof::Phase::TimingCheck);
        dram::Command cmd{nextCmd(a), a->coords, a->id};
        return ctx_.mem->blockedUntil(cmd, now);
    }

    /**
     * The engine-facing issue bound for @p a at @p now: the exact
     * earliest issue tick (readyAt) under exact bounds, the
     * first-binding blockedUntil otherwise. In both modes
     * `boundFor(a, now) <= now` is exactly `canIssueFor(a, now)`, so
     * one call serves as legality probe and horizon source at once.
     */
    Tick
    boundFor(const MemAccess *a, Tick now) const
    {
        obs::prof::Scope prof(obs::prof::Phase::TimingCheck);
        dram::Command cmd{nextCmd(a), a->coords, a->id};
        return exactBounds_ ? ctx_.mem->readyAt(cmd, now)
                            : ctx_.mem->blockedUntil(cmd, now);
    }

    /** Is the per-bank bound cache usable? Requires exact bounds:
     *  every constraint readyAt() composes is a fixed deadline moved
     *  only by this channel's own commands, so a cached bound stays
     *  *equal* to a fresh computation until invalidateBounds(). */
    bool
    cacheOn() const
    {
        return eventDriven_ && horizonMemo_ && exactBounds_;
    }

    /** Every cached bank bound is stale (a command issued on this
     *  channel, a drain gate flipped, a refresh fired). */
    void invalidateBounds() const { cmdEpoch_ += 1; }

    /** Bank @p b's probe candidate changed (new front / new ongoing):
     *  its cached bound no longer describes the right command. */
    void clearBound(std::uint32_t b) const { boundEpoch_[b] = 0; }

    /**
     * Cached boundFor(): returns the exact issue bound for bank @p b's
     * candidate @p a, reusing the cached value when nothing on this
     * channel changed since it was computed. `result <= now` is the
     * legality predicate; `result > now` is a sound (and exact) wake
     * tick. Falls back to an uncached boundFor() when the cache is off.
     */
    Tick bankBound(std::uint32_t b, const MemAccess *a, Tick now) const;

    /**
     * Issue @p a's next transaction (must be legal). Classifies the row
     * outcome on the access's first transaction and fills in an Issued
     * record; on a column access also stamps colIssuedAt / dataEnd.
     */
    Issued issueFor(MemAccess *a, Tick now);

    /** Track @p a as the latest write to its block (on write enqueue). */
    void
    noteWriteEnqueued(MemAccess *a)
    {
        latestWrite_[a->addr] = a;
    }

    /** Drop @p a from the forwarding index (on write issue). */
    void
    noteWriteIssued(MemAccess *a)
    {
        auto it = latestWrite_.find(a->addr);
        if (it != latestWrite_.end() && it->second == a)
            latestWrite_.erase(it);
    }

    SchedulerContext ctx_;
    obs::ProtocolAuditor *auditor_ = nullptr;
    obs::EngineIntrospect *intro_ = nullptr; //!< nullptr = pillar off
    bool eventDriven_ = false; //!< horizon caches allowed (skip engine)
    bool horizonMemo_ = true;  //!< bound caches permitted (debug flag)
    bool exactBounds_ = false; //!< boundFor() = readyAt, not blockedUntil
    /** Per-bank cached issue bound, valid while boundEpoch_ matches
     *  cmdEpoch_ (exact under the own-channel-command invalidation
     *  discipline; see cacheOn()). */
    mutable std::vector<Tick> boundTick_;
    mutable std::vector<std::uint64_t> boundEpoch_;
    mutable std::uint64_t cmdEpoch_ = 1; //!< 0 is the "stale" sentinel
    /** Set by nextEventTick implementations at each bound site. */
    mutable HorizonPin pin_ = HorizonPin::None;
    /** Set by stallScan implementations: the access behind the returned
     *  channel-level cause (see lastStallVictim()). */
    mutable const MemAccess *stallVictim_ = nullptr;

  private:
    std::unordered_map<Addr, MemAccess *> latestWrite_;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_SCHEDULER_HH
