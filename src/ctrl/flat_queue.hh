/**
 * @file
 * A contiguous FIFO for scheduler queues: a vector plus a head index.
 *
 * The scheduler hot path is dominated by short scans over small queues
 * (reorder windows of 4, per-bank FIFOs of a handful of entries), where
 * std::deque's chunked indirection costs more than it saves. FlatQueue
 * keeps the elements contiguous; pop_front advances a head cursor and
 * the dead prefix is reclaimed wholesale whenever the queue drains or
 * the prefix outgrows the live part. push_front is O(live) but rare
 * (read preemption re-queues at most one write at a time).
 *
 * Iterators cover the live range [begin, end) and are invalidated by
 * every mutation, exactly like the deques they replace were used.
 */

#ifndef BURSTSIM_CTRL_FLAT_QUEUE_HH
#define BURSTSIM_CTRL_FLAT_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace bsim::ctrl
{

/** Vector-backed FIFO with deque-ish interface for scheduler queues. */
template <typename T> class FlatQueue
{
  public:
    using iterator = typename std::vector<T>::iterator;
    using const_iterator = typename std::vector<T>::const_iterator;

    bool empty() const { return head_ == buf_.size(); }
    std::size_t size() const { return buf_.size() - head_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_.back(); }
    const T &back() const { return buf_.back(); }

    T &operator[](std::size_t i) { return buf_[head_ + i]; }
    const T &operator[](std::size_t i) const { return buf_[head_ + i]; }

    iterator begin() { return buf_.begin() + std::ptrdiff_t(head_); }
    iterator end() { return buf_.end(); }
    const_iterator begin() const
    {
        return buf_.begin() + std::ptrdiff_t(head_);
    }
    const_iterator end() const { return buf_.end(); }

    void
    push_back(const T &v)
    {
        buf_.push_back(v);
    }

    void
    push_back(T &&v)
    {
        buf_.push_back(std::move(v));
    }

    void
    push_front(const T &v)
    {
        if (head_ > 0)
            buf_[--head_] = v;
        else
            buf_.insert(buf_.begin(), v);
    }

    void
    pop_front()
    {
        head_ += 1;
        compact();
    }

    iterator
    erase(iterator it)
    {
        if (it == begin()) {
            pop_front();
            return begin();
        }
        return buf_.erase(it);
    }

    iterator
    insert(iterator pos, const T &v)
    {
        return buf_.insert(pos, v);
    }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
    }

  private:
    /** Reclaim the dead prefix when it dominates the storage. */
    void
    compact()
    {
        if (head_ == buf_.size()) {
            buf_.clear();
            head_ = 0;
        } else if (head_ > 32 && head_ > buf_.size() - head_) {
            buf_.erase(buf_.begin(), buf_.begin() + std::ptrdiff_t(head_));
            head_ = 0;
        }
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_FLAT_QUEUE_HH
