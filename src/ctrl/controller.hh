/**
 * @file
 * The memory controller: access pool, admission rules, write-queue read
 * forwarding, refresh engine, response path and statistics. The actual
 * ordering decisions are delegated to one Scheduler per channel.
 *
 * Baseline parameters follow Table 3 of the paper: a 256-entry access
 * pool of which at most 64 may be writes. When the write queue is full
 * the controller accepts no new accesses at all (Section 3.2) — this is
 * what makes write-queue saturation expensive and motivates the
 * read-preemption / write-piggybacking threshold.
 */

#ifndef BURSTSIM_CTRL_CONTROLLER_HH
#define BURSTSIM_CTRL_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "ctrl/access.hh"
#include "ctrl/scheduler.hh"
#include "dram/memory_system.hh"

namespace bsim::obs
{
class CritPathTracer;
class EngineIntrospect;
class LatencyBreakdown;
class MetricsSampler;
class Observability;
class ProtocolAuditor;
class StallAttribution;
struct WakeSource;
} // namespace bsim::obs

namespace bsim::ctrl
{

/** Controller configuration (Table 3 baseline defaults). */
struct ControllerConfig
{
    Mechanism mechanism = Mechanism::BkInOrder;
    std::size_t poolCap = 256;   //!< total outstanding accesses
    std::size_t writeCap = 64;   //!< maximal queued writes
    std::size_t threshold = 52;  //!< Burst_TH threshold
    Tick forwardLatency = 2;     //!< write-queue-hit read response time

    /** Extension: merge a newly admitted write into an already-queued
     *  write to the same block instead of enqueueing a duplicate (real
     *  controllers coalesce; the paper's model does not). */
    bool coalesceWrites = false;

    /** Debug switch (`--no-horizon-memo`): disable every horizon memo
     *  and bound cache in the event-driven engine. Results and the
     *  introspection skip/step totals must be identical either way —
     *  the fuzzer's engine_equivalence oracle differences the two. */
    bool horizonMemo = true;

    // Extension / ablation switches (see SchedulerParams).
    bool dynamicThreshold = false;
    bool sortBurstsBySize = false;
    bool criticalFirst = false;
    bool rankAware = true;
    /** Watermark write-drain policy axis for the contention-aware
     *  families (HI_WM/LO_WM + bus-turnaround; see SchedulerParams).
     *  The paper's Table 4 mechanisms ignore it. */
    bool watermarkDrain = false;

    /**
     * Optional scheduler factory override. When set, the controller
     * builds each channel's scheduler through this hook instead of the
     * built-in makeScheduler() — the injection point for custom
     * policies and for the fault-injection harness (e.g. wrapping a
     * real scheduler in ctrl::FaultyScheduler to exercise the
     * forward-progress watchdog).
     */
    std::function<std::unique_ptr<Scheduler>(Mechanism,
                                             const SchedulerContext &)>
        schedulerFactory;

    /** Derive per-channel scheduler parameters for this mechanism. */
    SchedulerParams schedulerParams() const;
};

/** Aggregated controller statistics (the quantities in Figures 7-12). */
struct ControllerStats
{
    RunningMean readLatency;   //!< arrival -> end of data, memory cycles
    RunningMean writeLatency;  //!< arrival -> end of data, memory cycles

    std::uint64_t reads = 0;           //!< read accesses completed
    std::uint64_t writes = 0;          //!< write accesses completed
    std::uint64_t forwardedReads = 0;  //!< satisfied from the write queue

    std::uint64_t rowHits = 0;
    std::uint64_t rowEmpties = 0;
    std::uint64_t rowConflicts = 0;

    Histogram outstandingReads{64};
    Histogram outstandingWrites{72};

    std::uint64_t ticks = 0;
    std::uint64_t writeSatTicks = 0; //!< ticks with the write queue full
    std::uint64_t refreshes = 0;
    std::uint64_t bytesTransferred = 0;
    std::uint64_t coalescedWrites = 0; //!< writes merged into queued ones

    /** Per-bank row outcomes (flat channel-major (ch, rank, bank) index;
     *  sized by the controller). hits / accesses is the per-bank row hit
     *  rate exported through the metrics sampler. */
    std::vector<std::uint64_t> bankRowHits;
    std::vector<std::uint64_t> bankRowAccesses;

    /** Row hit rate among DRAM-serviced accesses. */
    double rowHitRate() const;
    /** Row conflict rate. */
    double rowConflictRate() const;
    /** Row empty rate. */
    double rowEmptyRate() const;
    /** Fraction of time the write queue was saturated. */
    double writeSaturationRate() const;
};

/**
 * Main memory controller front door.
 *
 * The owner calls tick() once per memory bus cycle, submits accesses
 * subject to canAccept(), and receives read completions through the
 * response callback (writes are acknowledged synchronously on admission,
 * "completed from the view of the CPU" as in Figure 4).
 */
class MemoryController
{
  public:
    /** Invoked when a read's data is available: (access, now). */
    using ReadCallback = std::function<void(const MemAccess &, Tick)>;

    /** Build a controller driving @p mem with policy @p cfg. */
    MemoryController(dram::MemorySystem &mem, const ControllerConfig &cfg);
    ~MemoryController();

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    /** Register the read completion callback. */
    void setReadCallback(ReadCallback cb) { readCb_ = std::move(cb); }

    /**
     * May a new access be admitted right now? A saturated write queue
     * blocks all admission; a full pool likewise.
     */
    bool canAccept() const;

    /**
     * Admit an access at @p now (caller must have checked canAccept()).
     * For writes, @p data optionally supplies blockBytes of payload that
     * is committed to the backing store; @p tag is an opaque requester
     * id handed back with the response (e.g. the core id in CMP
     * systems). Returns the access id.
     */
    std::uint64_t submit(AccessType type, Addr addr, Tick now,
                         const std::uint8_t *data = nullptr,
                         std::uint64_t tag = 0, bool critical = false);

    /** Advance one memory bus cycle. */
    void tick(Tick now);

    /**
     * Earliest tick >= @p now at which this controller might act —
     * complete a read, run the refresh engine, issue through a
     * scheduler, or close a metrics epoch — assuming no new submissions.
     * Never overshoots; kTickMax means idle until new work arrives.
     *
     * When @p src is non-null the winning bound is attributed to its
     * component (first-minimum-wins over the same scan order, so the
     * returned horizon is identical with and without attribution).
     */
    Tick nextEventTick(Tick now, obs::WakeSource *src) const;
    Tick nextEventTick(Tick now) const
    {
        return nextEventTick(now, nullptr);
    }

    /**
     * Bulk-apply the dead span [@p from, @p from + @p span): per-cycle
     * occupancy samples, stall attribution (one stallScan stands for
     * every cycle of the span), idempotent idle-tick scheduler effects,
     * and the tick counter. Only legal when nextEventTick(@p from) is
     * at least @p from + @p span.
     */
    void tickSpan(Tick from, Tick span);

    /** True while any access is queued, in flight, or awaiting response. */
    bool busy() const;

    /** Statistics so far. */
    const ControllerStats &stats() const { return stats_; }

    /** Policy-specific statistics merged over channels. */
    std::map<std::string, double> schedulerStats() const;

    /** The device this controller drives. */
    dram::MemorySystem &mem() { return mem_; }

    /** Current queued-write count (for tests). */
    std::size_t writesOutstanding() const
    {
        return counts_.writesOutstanding;
    }

    /** Current outstanding-read count (for tests). */
    std::size_t readsOutstanding() const
    {
        return counts_.readsOutstanding;
    }

    /**
     * Enable the event-driven fast path: per-channel scheduler-horizon
     * memos let tick() skip a channel's scheduler scan on cycles where
     * the horizon proves no command can issue, and let nextEventTick()
     * reuse the memo instead of rescanning. Results are identical; the
     * step engine leaves this off to stay a plain per-cycle reference.
     */
    void setEventDriven(bool on)
    {
        eventDriven_ = on;
        refreshEngineFlags();
    }

    /**
     * Attach (or detach, with nullptr) the run's observability pillars.
     * The controller caches raw pointers to the latency breakdown and
     * metrics sampler; when both are off the hot paths degrade to one
     * null check each.
     */
    void attachObservability(obs::Observability *o);

    /**
     * Commit the trailing partial epoch at end-of-run tick @p end
     * (exclusive). A no-op without a sampler or when the run ended on
     * an epoch boundary, so every run yields exactly
     * ceil(cycles / interval) rows.
     */
    void flushMetrics(Tick end);

    /**
     * Human-readable queue/bank snapshot for hang diagnostics: global
     * occupancy, per-channel scheduler queue depths and event horizons,
     * refresh engine state, and open-row state of every bank with
     * pending work. Attached as context to the forward-progress
     * watchdog's SimError; never called on the hot path.
     */
    std::string progressSnapshot(Tick now) const;

  private:
    /** Per-(channel,rank) refresh engine state. */
    struct RefreshState
    {
        Tick nextDue = 0;
        bool pending = false;
        /** Drain gate currently asserted for this rank. Tracked so the
         *  false->true transition (which turns Activate bounds into
         *  state gates) invalidates the channel's cached horizons. */
        bool draining = false;
    };

    /**
     * Cached per-channel scheduler horizon. Valid while the channel's
     * queue version matches (enqueues; issues clear the memo directly)
     * and, for globally sensitive policies, the scheduler's global-count
     * band signature still holds: the channel's scheduler then provably
     * cannot issue (nor make an arbitration move) strictly before
     * `until`, so its per-tick scan can be skipped and nextEventTick()
     * can reuse the bound without rescanning. Signature banding is what
     * keeps Burst/Intel memos alive while other channels complete
     * accesses without crossing a threshold.
     */
    struct SchedMemo
    {
        Tick until = 0;            //!< no issue strictly before this
        std::uint64_t version = 0; //!< chanVersion_ stamp when computed
        std::uint64_t signature = 0; //!< globalSignature() when computed
        bool global = false;       //!< scheduler reads global counts
        /** Why `until` is where it is (from the computing scheduler);
         *  carried alongside so memo hits stay attributable. */
        HorizonPin pin = HorizonPin::None;
    };

    /** Is @p channel's memo still a proof at the current state? */
    bool
    memoValid(std::uint32_t channel) const
    {
        const SchedMemo &m = schedMemo_[channel];
        if (!cfg_.horizonMemo || m.version != chanVersion_[channel])
            return false;
        return !m.global ||
               m.signature == schedulers_[channel]->globalSignature();
    }

    /** Re-stamp @p channel's memo as valid for the current state. */
    void
    stampMemo(std::uint32_t channel) const
    {
        SchedMemo &m = schedMemo_[channel];
        m.version = chanVersion_[channel];
        if (m.global)
            m.signature = schedulers_[channel]->globalSignature();
    }

    /** Propagate engine flags to every scheduler (exact bounds are only
     *  sound without per-cycle stall attribution; see Scheduler). */
    void refreshEngineFlags();

    /** Take a recycled arena slot (or grow the arena) for a new access. */
    MemAccess *allocAccess();
    /** Return @p a's arena slot to the free list. */
    void freeAccess(MemAccess *a);

    void completeReads(Tick now);
    void sampleOccupancy();
    /** Valid (possibly refreshed) scheduler horizon for @p channel. */
    Tick schedHorizon(std::uint32_t channel, Tick now) const;
    /** Snapshot counters/queues at the end of tick @p now. */
    void sampleMetrics(Tick now);
    /** Run the refresh engine for @p channel; true if it used the slot. */
    bool refreshTick(std::uint32_t channel, Tick now);
    void handleIssued(const Scheduler::Issued &issued);
    void finishAccess(MemAccess *a);
    /** Ensure the per-requester vectors cover @p tag (perCore_ only). */
    void touchCore(std::uint64_t tag);

    dram::MemorySystem &mem_;
    ControllerConfig cfg_;
    GlobalCounts counts_;
    ControllerStats stats_;
    ReadCallback readCb_;

    std::vector<std::unique_ptr<Scheduler>> schedulers_; //!< per channel
    /**
     * Arena of access slots: grown on demand (never shrunk), recycled
     * through freeSlots_. A deque keeps every MemAccess at a stable
     * address for the pointers held by scheduler queues, pendingReads_
     * and the observability pillars, while staying cache-friendlier and
     * allocation-free in steady state compared to the id-keyed
     * unordered_map of unique_ptrs it replaced.
     */
    std::deque<MemAccess> pool_;
    std::vector<std::uint32_t> freeSlots_;
    std::size_t inflightCount_ = 0;
    /** Reads whose data transfer is scheduled, keyed by completion tick. */
    std::multimap<Tick, MemAccess *> pendingReads_;
    std::vector<RefreshState> refresh_; //!< channel-major [ch*ranks + r]
    /** Event-driven engine: no refresh work on this channel before this
     *  tick (min nextDue while no rank is pending; 0 = must run). */
    std::vector<Tick> refreshWake_;
    std::uint64_t nextId_ = 1;

    /** Per-channel enqueue version: covers every decision input beyond
     *  the channel's own device state (cleared directly on issues) and
     *  the global-count bands (covered by the memo signature). */
    std::vector<std::uint64_t> chanVersion_;
    mutable std::vector<SchedMemo> schedMemo_; //!< per channel
    bool eventDriven_ = false;

    // Observability hooks; null when the respective pillar is off.
    obs::LatencyBreakdown *lat_ = nullptr;
    obs::MetricsSampler *sampler_ = nullptr;
    obs::StallAttribution *stalls_ = nullptr;
    obs::ProtocolAuditor *audit_ = nullptr;
    obs::EngineIntrospect *intro_ = nullptr;
    obs::CritPathTracer *crit_ = nullptr;

    /** Per-requester telemetry (obs perCoreMetrics); indexed by the
     *  MemAccess tag, grown on first sight of a tag. */
    bool perCore_ = false;
    std::vector<std::uint32_t> coreReadQ_;
    std::vector<std::uint32_t> coreWriteQ_;
    std::vector<std::uint64_t> coreRowHits_;
    std::vector<std::uint64_t> coreRowAccesses_;
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_CONTROLLER_HH
