#include "ctrl/access.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::ctrl
{

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::BkInOrder: return "BkInOrder";
      case Mechanism::RowHit: return "RowHit";
      case Mechanism::Intel: return "Intel";
      case Mechanism::IntelRP: return "Intel_RP";
      case Mechanism::Burst: return "Burst";
      case Mechanism::BurstRP: return "Burst_RP";
      case Mechanism::BurstWP: return "Burst_WP";
      case Mechanism::BurstTH: return "Burst_TH";
      case Mechanism::AdaptiveHistory: return "AdaptiveHistory";
      case Mechanism::FrFcfs: return "FR-FCFS";
      case Mechanism::Parbs: return "PARBS";
      case Mechanism::Atlas: return "ATLAS";
      case Mechanism::Bliss: return "BLISS";
    }
    return "?";
}

Mechanism
parseMechanism(const std::string &name)
{
    for (Mechanism m : kExtendedMechanisms)
        if (name == mechanismName(m))
            return m;
    throwSimError(ErrorCategory::Config, "unknown mechanism '%s'", name.c_str());
}

} // namespace bsim::ctrl
