/**
 * @file
 * Memory access objects and the mechanism taxonomy of Table 4.
 *
 * Throughout (as in the paper, Section 2) an "access" is a read or write
 * issued by the lowest level cache; it expands into one or more SDRAM
 * transactions depending on device state.
 */

#ifndef BURSTSIM_CTRL_ACCESS_HH
#define BURSTSIM_CTRL_ACCESS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "dram/command.hh"

namespace bsim::ctrl
{

/** The eight simulated access reordering mechanisms (paper Table 4). */
enum class Mechanism : std::uint8_t
{
    BkInOrder, //!< in order intra bank, round robin inter banks
    RowHit,    //!< row hit first intra bank, round robin inter banks
    Intel,     //!< Intel's patented out of order scheduling
    IntelRP,   //!< Intel's scheduling with read preemption
    Burst,     //!< burst scheduling
    BurstRP,   //!< burst scheduling with read preemption
    BurstWP,   //!< burst scheduling with write piggybacking
    BurstTH,   //!< burst scheduling with threshold (RP + WP)

    // Extended comparison points beyond the paper's Table 4:
    AdaptiveHistory, //!< Hur & Lin MICRO'04 (paper Section 2.2)

    // Contention-aware CMP scheduler zoo (ROADMAP item 1). These are
    // the multi-core scheduling classics, ported onto the Scheduler
    // interface so the CMP fairness layer can judge them against the
    // paper's burst mechanisms.
    FrFcfs, //!< FR-FCFS: row hit first, then oldest, across banks
    Parbs,  //!< PAR-BS: request batching + per-thread ranking
    Atlas,  //!< ATLAS: long-term attained-service ranking
    Bliss,  //!< BLISS: streak-based blacklisting
};

/** The paper's Table 4 mechanisms, in presentation order. */
inline constexpr Mechanism kAllMechanisms[] = {
    Mechanism::BkInOrder, Mechanism::RowHit,  Mechanism::Intel,
    Mechanism::IntelRP,   Mechanism::Burst,   Mechanism::BurstRP,
    Mechanism::BurstWP,   Mechanism::BurstTH,
};

/** The contention-aware CMP scheduler zoo (ROADMAP item 1). */
inline constexpr Mechanism kContentionMechanisms[] = {
    Mechanism::FrFcfs, Mechanism::Parbs, Mechanism::Atlas,
    Mechanism::Bliss,
};

/** Table 4 plus the extended related-work comparison points. */
inline constexpr Mechanism kExtendedMechanisms[] = {
    Mechanism::BkInOrder, Mechanism::RowHit,  Mechanism::Intel,
    Mechanism::IntelRP,   Mechanism::Burst,   Mechanism::BurstRP,
    Mechanism::BurstWP,   Mechanism::BurstTH,
    Mechanism::AdaptiveHistory,
    Mechanism::FrFcfs,    Mechanism::Parbs,
    Mechanism::Atlas,     Mechanism::Bliss,
};

/** Is @p m one of the contention-aware (thread-aware) families? */
constexpr bool
isContentionMechanism(Mechanism m)
{
    return m == Mechanism::FrFcfs || m == Mechanism::Parbs ||
           m == Mechanism::Atlas || m == Mechanism::Bliss;
}

/** Printable mechanism name matching the paper's figures. */
const char *mechanismName(Mechanism m);

/** Parse a mechanism name (as printed by mechanismName); fatal on error. */
Mechanism parseMechanism(const std::string &name);

/**
 * One outstanding main-memory access inside the controller.
 *
 * Owned by the MemoryController; schedulers hold non-owning pointers while
 * the access sits in their queues. State transitions: admitted ->
 * (optionally selected as a bank's ongoing access) -> first transaction
 * issued (row outcome classified) -> column access issued -> data
 * transferred (completed).
 */
struct MemAccess
{
    std::uint64_t id = 0;
    AccessType type = AccessType::Read;
    Addr addr = 0; //!< block-aligned byte address
    dram::Coords coords;

    // Lifecycle timestamps, stamped as the access advances. Together
    // they partition the total latency into the contiguous phases the
    // observability layer reports (obs/latency_breakdown.hh); stamping
    // is unconditional because a store into this already-hot struct is
    // free compared to the scheduling work around it.
    Tick arrival = 0;         //!< tick admitted into the controller
    Tick pickedAt = kTickMax; //!< bank arbiter selected it (schedulers
                              //!< without an explicit pick leave this to
                              //!< default to firstCmdAt)
    Tick firstCmdAt = kTickMax; //!< first transaction issue tick
    Tick colIssuedAt = kTickMax; //!< column access issue tick
    Tick dataStart = 0;       //!< first cycle of the data burst
    Tick dataEnd = 0;         //!< end of data transfer

    /** Device state found at first service (row hit/empty/conflict). */
    dram::RowOutcome outcome = dram::RowOutcome::Empty;
    bool outcomeValid = false;

    /** True once the read was satisfied by write-queue forwarding. */
    bool forwarded = false;

    /** Opaque requester tag (e.g. core id in CMP systems). */
    std::uint64_t tag = 0;

    /** Requester hint: a dependence chain is blocked on this read. */
    bool critical = false;

    /** Index of this access's slot in the controller's arena (stable
     *  for the access's lifetime; the slot is recycled afterwards). */
    std::uint32_t poolSlot = 0;

    bool isRead() const { return type == AccessType::Read; }
    bool isWrite() const { return type == AccessType::Write; }
};

} // namespace bsim::ctrl

#endif // BURSTSIM_CTRL_ACCESS_HH
