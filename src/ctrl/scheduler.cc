#include "ctrl/scheduler.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/engine_introspect.hh"
#include "obs/stall_attribution.hh"

namespace bsim::ctrl
{

dram::StallCause
Scheduler::stallScan(Tick now, obs::StallAttribution &sink) const
{
    (void)now;
    (void)sink;
    stallVictim_ = nullptr; // coarse split: no specific access visible
    return hasWork() ? dram::StallCause::ArbLoss
                     : dram::StallCause::NoWork;
}

Tick
Scheduler::bankBound(std::uint32_t b, const MemAccess *a, Tick now) const
{
    if (!cacheOn())
        return boundFor(a, now);
    if (boundEpoch_[b] == cmdEpoch_) {
        if (intro_)
            intro_->noteFrontHorizonHit();
        // max(now, cached) == a fresh readyAt at now: deadlines are
        // unchanged (same epoch) and readyAt floors at now.
        return std::max(now, boundTick_[b]);
    }
    const Tick bound = boundFor(a, now);
    boundTick_[b] = bound;
    boundEpoch_[b] = cmdEpoch_;
    if (intro_)
        intro_->noteFrontHorizonMiss();
    return bound;
}

Scheduler::Issued
Scheduler::issueFor(MemAccess *a, Tick now)
{
    // Any command on this channel can move other banks' deadlines
    // (command bus, tRRD/tFAW, tWTR, data-bus occupancy).
    invalidateBounds();
    const dram::CmdType type = nextCmd(a);
    if (a->firstCmdAt == kTickMax) {
        a->firstCmdAt = now;
        if (a->pickedAt == kTickMax)
            a->pickedAt = now; // no explicit arbitration step
        a->outcome = ctx_.mem->classify(a->coords);
        a->outcomeValid = true;
    }

    dram::Command cmd{type, a->coords, a->id};
    const dram::IssueResult res = ctx_.mem->issue(cmd, now);

    Issued out;
    out.access = a;
    out.cmd = type;
    if (dram::isColumnAccess(type)) {
        out.columnAccess = true;
        out.dataStart = res.dataStart;
        out.dataEnd = res.dataEnd;
        a->colIssuedAt = now;
        a->dataStart = res.dataStart;
        a->dataEnd = res.dataEnd;
        if (a->isWrite())
            noteWriteIssued(a);
    }
    return out;
}

} // namespace bsim::ctrl
