#include "sim/fairness.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/error.hh"
#include "common/log.hh"

namespace bsim::sim
{

namespace
{

// Private copies of the sweep journal's building blocks: sweep.cc keeps
// its fnv1a and JournalWriter in an anonymous namespace on purpose (the
// journal format is an implementation detail of each sweep kind), so
// the fairness journal carries its own rather than widening that API.

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
        h ^= std::uint8_t(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/** Append-only v3-framed journal writer (single O_APPEND write per
 *  record + optional fdatasync; see sweep.cc's JournalWriter). */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    void
    open(const std::string &path, bool sync)
    {
        fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                     0644);
        if (fd_ < 0)
            throwSimError(ErrorCategory::Resource,
                          "cannot open fairness journal '%s' for writing",
                          path.c_str());
        path_ = path;
        sync_ = sync;
    }

    bool isOpen() const { return fd_ >= 0; }

    void
    append(const std::string &payload)
    {
        char head[32];
        std::snprintf(head, sizeof(head), "J3 %zu %08x ", payload.size(),
                      crc32(payload));
        std::string rec = head;
        rec += payload;
        rec += '\n';
        const char *p = rec.data();
        std::size_t left = rec.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, p, left);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                warn("fairness journal %s: append failed (%s)",
                     path_.c_str(), std::strerror(errno));
                return;
            }
            p += n;
            left -= std::size_t(n);
        }
        if (sync_)
            ::fdatasync(fd_);
    }

  private:
    int fd_ = -1;
    bool sync_ = true;
    std::string path_;
};

std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

std::string
mixLabel(const CmpConfig &cfg)
{
    std::string s;
    for (const auto &w : cfg.workloads) {
        if (!s.empty())
            s += '+';
        s += w;
    }
    return s;
}

/** Parse one record payload ("F <key> cores=..."). */
bool
parseFairnessPayload(const std::string &payload, std::uint64_t &key,
                     FairnessRecord &rec)
{
    unsigned long long cores = 0, exec = 0;
    double ws = 0, hs = 0, maxsd = 0;
    int at = 0;
    // %la parses the C99 hexfloats the writer emits (%a), so the
    // journal round-trips doubles bit for bit.
    if (std::sscanf(payload.c_str(),
                    "F %" SCNx64 " cores=%llu exec=%llu ws=%la hs=%la "
                    "maxsd=%la%n",
                    &key, &cores, &exec, &ws, &hs, &maxsd, &at) != 6)
        return false;
    rec.cores = cores;
    rec.execCpuCycles = exec;
    rec.weightedSpeedup = ws;
    rec.harmonicSpeedup = hs;
    rec.maxSlowdown = maxsd;
    rec.perCoreSlowdown.clear();
    const char *p = payload.c_str() + at;
    for (unsigned long long i = 0; i < cores; ++i) {
        unsigned idx = 0;
        double sd = 0;
        int n = 0;
        if (std::sscanf(p, " sd%u=%la%n", &idx, &sd, &n) != 2 ||
            idx != i)
            return false;
        rec.perCoreSlowdown.push_back(sd);
        p += n;
    }
    // Config echo: cfg="..." through the payload's last quote.
    const std::size_t open = payload.find(" cfg=\"");
    const std::size_t close = payload.rfind('"');
    if (open != std::string::npos && close > open + 6)
        rec.configEcho = payload.substr(open + 6, close - (open + 6));
    return true;
}

std::string
formatFairnessPayload(std::uint64_t key, const std::string &canon,
                      const FairnessRecord &rec)
{
    char head[192];
    std::snprintf(head, sizeof(head),
                  "F %016" PRIx64 " cores=%llu exec=%llu ws=%a hs=%a "
                  "maxsd=%a",
                  key, (unsigned long long)rec.cores,
                  (unsigned long long)rec.execCpuCycles,
                  rec.weightedSpeedup, rec.harmonicSpeedup,
                  rec.maxSlowdown);
    std::string payload = head;
    for (std::size_t i = 0; i < rec.perCoreSlowdown.size(); ++i) {
        char sd[64];
        std::snprintf(sd, sizeof(sd), " sd%zu=%a", i,
                      rec.perCoreSlowdown[i]);
        payload += sd;
    }
    payload += " cfg=\"" + canon + '"';
    return payload;
}

} // namespace

std::string
canonicalCmpConfig(const CmpConfig &cfg)
{
    const std::uint64_t instr =
        cfg.instructions ? cfg.instructions : defaultInstructions();
    std::ostringstream os;
    os << "cmp1|";
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        if (i)
            os << ',';
        os << cfg.workloads[i];
    }
    os << '|' << ctrl::mechanismName(cfg.mechanism) << '|' << instr
       << '|' << cfg.threshold << '|' << int(cfg.engine) << '|'
       << int(cfg.watermarkDrain);
    std::string s = os.str();
    for (char &c : s)
        if (c == '"' || c == '\n' || c == '\r')
            c = '?'; // keep the journal echo one parseable line
    return s;
}

std::uint64_t
cmpConfigKey(const CmpConfig &cfg)
{
    return fnv1a(canonicalCmpConfig(cfg));
}

std::unordered_map<std::uint64_t, FairnessRecord>
loadFairnessJournal(const std::string &path)
{
    std::unordered_map<std::uint64_t, FairnessRecord> records;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return records; // no journal yet: nothing to resume

    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        if (line.empty() || line[0] == '#')
            continue;
        const auto skip = [&](const char *why) {
            warn("fairness journal %s:%llu: skipping record (%s)",
                 path.c_str(), (unsigned long long)lineno, why);
        };
        if (line.rfind("J3 ", 0) != 0) {
            skip("unrecognized line");
            continue;
        }
        unsigned long long len = 0;
        unsigned int crc = 0;
        int consumed = 0;
        if (std::sscanf(line.c_str(), "J3 %llu %8x %n", &len, &crc,
                        &consumed) < 2 ||
            consumed <= 0) {
            skip("unparseable v3 frame");
            continue;
        }
        const std::string payload = line.substr(std::size_t(consumed));
        if (payload.size() != len) {
            skip("framed length mismatch (torn tail?)");
            continue;
        }
        if (crc32(payload) != crc) {
            skip("CRC mismatch");
            continue;
        }
        std::uint64_t key = 0;
        FairnessRecord rec;
        if (!parseFairnessPayload(payload, key, rec)) {
            skip("CRC-clean frame with unparseable payload");
            continue;
        }
        records[key] = std::move(rec);
    }
    return records;
}

std::size_t
FairnessReport::journaled() const
{
    std::size_t n = 0;
    for (const FairnessSlot &s : slots)
        if (s.fromJournal)
            n += 1;
    return n;
}

FairnessReport
runFairnessSweep(const std::vector<CmpConfig> &points,
                 const FairnessSweepOptions &opt)
{
    FairnessReport rep;
    rep.slots.resize(points.size());

    std::vector<std::string> canon(points.size());
    std::vector<std::uint64_t> keys(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        canon[i] = canonicalCmpConfig(points[i]);
        keys[i] = fnv1a(canon[i]);
    }

    std::vector<std::size_t> pending;
    if (!opt.journal.empty()) {
        const auto journal = loadFairnessJournal(opt.journal);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto it = journal.find(keys[i]);
            if (it == journal.end()) {
                pending.push_back(i);
                continue;
            }
            if (!it->second.configEcho.empty() &&
                it->second.configEcho != canon[i]) {
                // Same 64-bit key, different config: hash collision —
                // rerun rather than report another mix's numbers.
                warn("fairness journal %s: key %016llx collides with a "
                     "different config; rerunning mix %zu",
                     opt.journal.c_str(),
                     (unsigned long long)keys[i], i);
                pending.push_back(i);
                continue;
            }
            rep.slots[i].ok = true;
            rep.slots[i].fromJournal = true;
            rep.slots[i].record = it->second;
        }
    } else {
        for (std::size_t i = 0; i < points.size(); ++i)
            pending.push_back(i);
    }

    // Open for appending before any work, so an unwritable path fails
    // the sweep up front.
    JournalWriter journal_os;
    if (!opt.journal.empty())
        journal_os.open(opt.journal, opt.journalSync);

    for (const std::size_t i : pending) {
        const CmpResult r = runCmpFairness(points[i]);
        FairnessRecord &rec = rep.slots[i].record;
        rec.cores = r.workloads.size();
        rec.execCpuCycles = r.execCpuCycles;
        rec.weightedSpeedup = r.fairness.weightedSpeedup;
        rec.harmonicSpeedup = r.fairness.harmonicSpeedup;
        rec.maxSlowdown = r.fairness.maxSlowdown;
        rec.perCoreSlowdown = r.fairness.perCoreSlowdown;
        rec.configEcho = canon[i];
        rep.slots[i].ok = true;
        if (journal_os.isOpen())
            journal_os.append(
                formatFairnessPayload(keys[i], canon[i], rec));
    }
    return rep;
}

void
writeFairnessCsv(std::ostream &os, const std::vector<CmpConfig> &points,
                 const FairnessReport &rep)
{
    std::size_t n_cores = 0;
    for (const CmpConfig &p : points)
        n_cores = std::max(n_cores, p.workloads.size());

    os << "mix,mechanism,cores,watermark_drain,status,exec_cycles,"
          "weighted_speedup,harmonic_speedup,max_slowdown";
    for (std::size_t c = 0; c < n_cores; ++c)
        os << ",sd_core" << c;
    os << '\n';

    for (std::size_t i = 0; i < points.size(); ++i) {
        const FairnessSlot &s = rep.slots[i];
        os << mixLabel(points[i]) << ','
           << ctrl::mechanismName(points[i].mechanism) << ','
           << points[i].workloads.size() << ','
           << int(points[i].watermarkDrain) << ',';
        if (s.ok) {
            os << "ok," << s.record.execCpuCycles << ','
               << fmt("%.6f", s.record.weightedSpeedup) << ','
               << fmt("%.6f", s.record.harmonicSpeedup) << ','
               << fmt("%.6f", s.record.maxSlowdown);
            for (std::size_t c = 0; c < n_cores; ++c)
                os << ','
                   << (c < s.record.perCoreSlowdown.size()
                           ? fmt("%.6f", s.record.perCoreSlowdown[c])
                           : std::string());
        } else {
            os << "failed,,,,";
            for (std::size_t c = 0; c < n_cores; ++c)
                os << ',';
        }
        os << '\n';
    }
}

} // namespace bsim::sim
