/**
 * @file
 * Experiment harness: run (workload, mechanism) pairs and collect the
 * metrics reported in the paper's figures. Used by all bench binaries
 * and by the integration tests.
 */

#ifndef BURSTSIM_SIM_EXPERIMENT_HH
#define BURSTSIM_SIM_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/controller.hh"
#include "dram/config.hh"
#include "obs/obs_config.hh"
#include "sim/system.hh"
#include "trace/trace_gen.hh"

namespace bsim::obs::prof
{
struct SelfProfile;
} // namespace bsim::obs::prof

namespace bsim::sim
{

/** SDRAM generation to simulate (Section 6 technology trend). */
enum class DeviceGen : std::uint8_t
{
    DDR2_800, //!< PC2-6400 5-5-5, 400 MHz bus (Table 3 baseline)
    DDR_266,  //!< PC-2100 2-2-2, 133 MHz bus (Section 6 comparison)
};

/** Printable device name. */
const char *deviceGenName(DeviceGen g);

/**
 * Systematic timing perturbation layered on top of the device preset.
 * These are the corner geometries the differential fuzzer (src/fuzz/)
 * sweeps: zeroed inter-activate windows (DDR1-style), refresh intervals
 * prime to any cycle-skipping span lattice, refresh-dominated devices,
 * and refresh disabled outright.
 */
enum class TimingVariant : std::uint8_t
{
    Baseline,     //!< the device preset unchanged
    ZeroWindows,  //!< tFAW = 0, tRRD = 0 (DDR1-style relaxation)
    RefreshPrime, //!< tREFI moved to a nearby prime number
    RefreshHeavy, //!< tREFI cut to ~1/8th (refresh-dominated)
    NoRefresh,    //!< tREFI = 0 (refresh engine off)
};

constexpr std::size_t kNumTimingVariants = 5;

/** Printable variant name (also the repro-file token). */
const char *timingVariantName(TimingVariant v);

/** Parse a variant token; throws SimError(Config) on unknown names. */
TimingVariant timingVariantByName(const std::string &name);

/** One simulation run specification. */
struct ExperimentConfig
{
    /** Profile name (spec_profiles), or "@/path/to/file" to replay a
     *  text trace from disk (no cache prewarm; see trace_file.hh). */
    std::string workload = "swim";
    ctrl::Mechanism mechanism = ctrl::Mechanism::BkInOrder;
    std::uint64_t instructions = 0; //!< 0 = defaultInstructions()
    std::uint64_t seed = 20070212;  //!< HPCA 2007, for determinism
    std::size_t threshold = 52;     //!< Burst_TH threshold
    dram::PagePolicy pagePolicy = dram::PagePolicy::OpenPage;
    dram::AddressMapKind addressMap = dram::AddressMapKind::PageInterleave;
    DeviceGen device = DeviceGen::DDR2_800;
    /** Timing perturbation applied after the device preset. */
    TimingVariant timingVariant = TimingVariant::Baseline;
    /** Simulation engine; both report identical statistics. */
    EngineKind engine = EngineKind::Skip;
    /** Debug switch (`--no-horizon-memo`): run the skip engine with
     *  every horizon memo and bound cache disabled. Statistics AND the
     *  engine_introspect skipped/stepped totals must be unchanged —
     *  the fuzzer's engine_equivalence oracle checks exactly that. */
    bool horizonMemo = true;
    /** Organization overrides (0 = keep the Table 3 baseline value). */
    std::uint32_t channels = 0;
    std::uint32_t ranksPerChannel = 0;
    std::uint32_t banksPerRank = 0;

    // Extension / ablation switches (Section 7 future work + Table 2
    // rank-awareness ablation).
    bool dynamicThreshold = false;
    bool sortBurstsBySize = false;
    bool criticalFirst = false;
    bool rankAware = true;
    bool coalesceWrites = false;
    /** Watermark write-drain mode of the contention-aware scheduler
     *  families (ControllerConfig::watermarkDrain). Ignored by the
     *  paper's Table 4 mechanisms. */
    bool watermarkDrain = false;
    /** Core overrides (0 = Table 3 baseline). A robSize of 1 with
     *  issueWidth 1 approximates a blocking in-order core. */
    std::uint32_t robSize = 0;
    std::uint32_t issueWidth = 0;

    /** Observability pillars (latency breakdown, metrics, trace). */
    obs::ObsConfig obs;

    /** Forward-progress watchdog (SystemConfig::watchdogCycles). */
    Tick watchdogCycles = 50'000;
    /** Wall-clock limit in seconds, 0 = none (SystemConfig::deadlineSec). */
    double deadlineSec = 0.0;
    /** Scheduler factory override (fault injection; ControllerConfig). */
    std::function<std::unique_ptr<ctrl::Scheduler>(
        ctrl::Mechanism, const ctrl::SchedulerContext &)>
        schedulerFactory;
    /**
     * Stable identity of schedulerFactory for sweep journaling: a
     * std::function has no comparable identity of its own, so any user
     * of schedulerFactory who wants resumable sweeps must name the
     * decoration here (e.g. "faulty:freeze@100"). Points whose factory
     * differs then hash to different journal keys instead of silently
     * reusing each other's results.
     */
    std::string schedulerFactoryId;
};

/** Metrics of one run (the quantities behind Figures 7-12). */
struct RunResult
{
    std::string workload;
    ctrl::Mechanism mechanism = ctrl::Mechanism::BkInOrder;

    std::uint64_t instructions = 0;
    std::uint64_t execCpuCycles = 0; //!< the paper's execution time
    std::uint64_t memCycles = 0;

    ctrl::ControllerStats ctrl; //!< latencies, rates, histograms
    std::map<std::string, double> sched; //!< policy extras

    double addrBusUtil = 0.0;
    double dataBusUtil = 0.0;
    double bandwidthGBs = 0.0; //!< effective bandwidth
    double ipc = 0.0;

    std::uint64_t l2Misses = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;

    /** DRAM energy estimate over the run (extension; see dram/power.hh). */
    dram::EnergyBreakdown energy;
    double avgPowerW = 0.0;
    dram::CommandCounts dramCommands;

    /** Observability data collected during the run; null when all
     *  pillars were off. Shared so RunResult stays copyable. */
    std::shared_ptr<obs::Observability> obs;

    /** Host-side self-profile of the run (ObsConfig::selfProf); null
     *  when off. Host wall time — never part of the result JSON. */
    std::shared_ptr<obs::prof::SelfProfile> selfprof;
};

/**
 * Default instruction count per run: 150,000, overridable through the
 * BURSTSIM_INSTR environment variable (the benches print which value was
 * used). Scaled down from the paper's 2 billion so the full figure suite
 * reproduces in minutes.
 */
std::uint64_t defaultInstructions();

/** Run one experiment. */
RunResult runExperiment(const ExperimentConfig &cfg);

/**
 * CMP fairness metrics (Section 6 extension): per-core slowdown against
 * the core's alone-run baseline (same mechanism, same address-region
 * shift and seed, the core running by itself), and the three standard
 * CMP aggregates derived from it.
 */
struct FairnessMetrics
{
    std::vector<double> perCoreIpcAlone; //!< alone-run IPC per core
    std::vector<double> perCoreSlowdown; //!< IPC_alone / IPC_shared
    double maxSlowdown = 0.0;            //!< unfairness (max slowdown)
    /** Weighted speedup: sum of IPC_shared / IPC_alone (== N when every
     *  slowdown is exactly 1). */
    double weightedSpeedup = 0.0;
    /** Harmonic mean of speedups: N / sum of slowdowns (balances
     *  fairness and throughput). */
    double harmonicSpeedup = 0.0;
};

/** Compute the aggregates from shared and alone per-core IPCs. */
FairnessMetrics computeFairness(const std::vector<double> &ipcShared,
                                const std::vector<double> &ipcAlone);

/** One CMP run specification (the keyword form of runCmpExperiment). */
struct CmpConfig
{
    std::vector<std::string> workloads; //!< one per core
    ctrl::Mechanism mechanism = ctrl::Mechanism::BkInOrder;
    std::uint64_t instructions = 0; //!< per core; 0 = default
    std::size_t threshold = 52;
    EngineKind engine = EngineKind::Skip;
    /** Watermark write-drain policy axis (contention families). */
    bool watermarkDrain = false;
};

/** Result of a chip-multiprocessor run (paper Section 6). */
struct CmpResult
{
    std::vector<std::string> workloads; //!< one per core
    ctrl::Mechanism mechanism = ctrl::Mechanism::BkInOrder;
    std::uint64_t instructions = 0;  //!< per core
    std::uint64_t execCpuCycles = 0; //!< last core's completion
    std::vector<std::uint64_t> perCoreCpuCycles;
    std::vector<double> perCoreIpc; //!< shared-run IPC per core
    ctrl::ControllerStats ctrl;
    double dataBusUtil = 0.0;
    double bandwidthGBs = 0.0;
    /** Filled by runCmpFairness() only. */
    bool haveFairness = false;
    FairnessMetrics fairness;
};

/**
 * Run a CMP experiment: one private cache stack per workload, all cores
 * sharing the memory controller. Each core's copy of a workload is
 * shifted to a disjoint address region and seeded differently.
 */
CmpResult runCmpExperiment(const CmpConfig &cfg);

/** Positional-argument compatibility shim for the config form above. */
CmpResult runCmpExperiment(const std::vector<std::string> &workloads,
                           ctrl::Mechanism mechanism,
                           std::uint64_t instructions = 0,
                           std::size_t threshold = 52,
                           EngineKind engine = EngineKind::Skip);

/**
 * Run @p cfg with explicit per-core address-region shift indices (core
 * i's workload is displaced by shifts[i] regions and seeded
 * 20070212 + shifts[i]). The fairness layer uses this to run a core's
 * alone baseline on exactly the address region and seed it had in the
 * shared mix — a 1-core "mix" is then its own baseline and every
 * slowdown is exactly 1.
 */
CmpResult runCmpShifted(const CmpConfig &cfg,
                        const std::vector<std::size_t> &shifts);

/**
 * Run the shared mix, then each core's alone baseline (same mechanism,
 * shift and seed), and fill CmpResult::fairness from the per-core IPC
 * ratios.
 */
CmpResult runCmpFairness(const CmpConfig &cfg);

/**
 * Run @p workload under every mechanism in @p mechanisms, @p jobs runs
 * in parallel (0 = one per hardware thread). Results come back in
 * mechanism order regardless of completion order.
 */
std::vector<RunResult> runMechanismSweep(
    const std::string &workload,
    const std::vector<ctrl::Mechanism> &mechanisms,
    std::uint64_t instructions = 0, unsigned jobs = 1,
    EngineKind engine = EngineKind::Skip);

} // namespace bsim::sim

#endif // BURSTSIM_SIM_EXPERIMENT_HH
