/**
 * @file
 * Parallel sweep runner: executes independent experiment runs (distinct
 * (mechanism, workload, threshold) points) across a thread pool while
 * keeping aggregation deterministic — results land in slot order, so the
 * output is byte-identical whatever the completion interleaving.
 *
 * Each System is confined to the thread that builds it; runs share no
 * mutable state, so no synchronization is needed beyond the work queue.
 */

#ifndef BURSTSIM_SIM_SWEEP_RUNNER_HH
#define BURSTSIM_SIM_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace bsim::sim
{

/** A reusable pool for running independent simulation points. */
class SweepRunner
{
  public:
    /** @p jobs worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0);

    /** Worker count actually used. */
    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p fn(i) for i in [0, count) and return the results in
     * index order. @p fn must be safe to call from multiple threads for
     * distinct i; the first exception thrown cancels remaining work and
     * is rethrown on this thread. T must be default-constructible.
     */
    template <typename T, typename Fn>
    std::vector<T> map(std::size_t count, Fn &&fn) const
    {
        std::vector<T> out(count);
        run(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Index-parallel for-loop over [0, @p count). */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &fn) const;

  private:
    unsigned jobs_;
};

} // namespace bsim::sim

#endif // BURSTSIM_SIM_SWEEP_RUNNER_HH
