/**
 * @file
 * Parallel sweep runner: executes independent experiment runs (distinct
 * (mechanism, workload, threshold) points) across a thread pool while
 * keeping aggregation deterministic — results land in slot order, so the
 * output is byte-identical whatever the completion interleaving.
 *
 * Each System is confined to the thread that builds it; runs share no
 * mutable state, so no synchronization is needed beyond the work queue.
 *
 * Two execution modes:
 *  - map()/run(): fail-fast — the first exception cancels remaining
 *    work and is rethrown (the right behaviour for tests and for
 *    callers that treat any failure as fatal).
 *  - mapGuarded()/guardedRun(): fault-contained — each point yields a
 *    RunOutcome instead of unwinding the sweep; transient failures
 *    (ErrorCategory::Resource) are retried, and an abort threshold
 *    stops claiming new points once too many have failed.
 */

#ifndef BURSTSIM_SIM_SWEEP_RUNNER_HH
#define BURSTSIM_SIM_SWEEP_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hh"

namespace bsim::sim
{

/** Fate of one sweep point under guarded execution. */
struct RunOutcome
{
    /** The point's function eventually returned normally. */
    bool ok = false;
    /** Category of the final failure (meaningful when !ok && attempts). */
    ErrorCategory category = ErrorCategory::Internal;
    /** Final failure description; empty when ok or never started. */
    std::string error;
    /** Times the point was started (0 = skipped: abort or cancel). */
    unsigned attempts = 0;
    /** Wall time spent on the point, all attempts. Nondeterministic —
     *  never included in deterministic reports. */
    double wallMs = 0.0;

    /** Point never ran (sweep aborted or cancelled before its turn). */
    bool skipped() const { return !ok && attempts == 0; }
};

/** Guarded value slot: engaged exactly when the point succeeded. */
template <typename T>
struct Outcome
{
    RunOutcome run;
    std::optional<T> value;
};

/**
 * Observer of guarded-sweep progress. Workers invoke the callbacks
 * concurrently from pool threads, so implementations must synchronize
 * internally; callbacks should be cheap (they sit between points, not
 * inside them). Attempt numbers are 1-based — onPointStart with
 * attempt > 1 is a retry of a transient failure.
 */
class ProgressObserver
{
  public:
    virtual ~ProgressObserver() = default;
    /** Point @p i begins attempt @p attempt on some worker thread. */
    virtual void onPointStart(std::size_t i, unsigned attempt) = 0;
    /** Point @p i is done (after any retries); @p o is its final fate. */
    virtual void onPointFinish(std::size_t i, const RunOutcome &o) = 0;
};

/** Retry / abort / cancellation policy for guarded execution. */
struct FaultPolicy
{
    /** Total tries per point, first included; only failures whose
     *  category is transient (errorCategoryTransient) are retried. */
    unsigned maxAttempts = 1;
    /** Tolerated failed points; one more aborts the rest of the sweep
     *  (default: unlimited — every point runs regardless). */
    std::size_t maxFailures = std::numeric_limits<std::size_t>::max();
    /** External cancel token (e.g. SIGINT): when it becomes true,
     *  in-flight points drain but no new point is claimed. */
    const std::atomic<bool> *cancel = nullptr;
};

/** A reusable pool for running independent simulation points. */
class SweepRunner
{
  public:
    /** Slot-ordered outcome of one guardedRun(). */
    struct GuardedReport
    {
        std::vector<RunOutcome> points;
        bool aborted = false;   //!< maxFailures exceeded; tail skipped
        bool cancelled = false; //!< cancel token set; tail skipped
    };

    /** mapGuarded() result: GuardedReport plus the produced values. */
    template <typename T>
    struct GuardedResults
    {
        std::vector<Outcome<T>> points;
        bool aborted = false;
        bool cancelled = false;
    };

    /** @p jobs worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0);

    /** Worker count actually used. */
    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p fn(i) for i in [0, count) and return the results in
     * index order. @p fn must be safe to call from multiple threads for
     * distinct i; the first exception thrown cancels remaining work and
     * is rethrown on this thread. T need only be move-constructible.
     */
    template <typename T, typename Fn>
    std::vector<T> map(std::size_t count, Fn &&fn) const
    {
        std::vector<std::optional<T>> slots(count);
        run(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> out;
        out.reserve(count);
        for (auto &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

    /**
     * Fault-contained map: every point yields an Outcome<T> in slot
     * order — value engaged on success, RunOutcome describing the
     * failure otherwise — instead of the first failure unwinding the
     * whole sweep. See guardedRun() for the containment rules.
     */
    template <typename T, typename Fn>
    GuardedResults<T> mapGuarded(std::size_t count, Fn &&fn,
                                 const FaultPolicy &policy = {},
                                 ProgressObserver *progress = nullptr) const
    {
        std::vector<std::optional<T>> slots(count);
        GuardedReport rep = guardedRun(
            count, [&](std::size_t i) { slots[i].emplace(fn(i)); },
            policy, progress);
        GuardedResults<T> out;
        out.aborted = rep.aborted;
        out.cancelled = rep.cancelled;
        out.points.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
            out.points[i].run = std::move(rep.points[i]);
            out.points[i].value = std::move(slots[i]);
        }
        return out;
    }

    /** Index-parallel for-loop over [0, @p count); fail-fast. */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &fn) const;

    /**
     * Fault-contained for-loop: each point's exceptions are caught and
     * recorded, never propagated. A SimError with a transient category
     * is retried up to policy.maxAttempts times; any other exception
     * fails the point immediately (recorded as ErrorCategory::Internal
     * for non-SimError exceptions). Once more than policy.maxFailures
     * points have failed, or policy.cancel becomes true, no further
     * point is claimed; skipped points report attempts == 0. A retry of
     * a point always happens on the thread that claimed it, so @p fn
     * may keep plain per-index state. When @p progress is non-null its
     * callbacks bracket every attempt (see ProgressObserver).
     */
    GuardedReport
    guardedRun(std::size_t count,
               const std::function<void(std::size_t)> &fn,
               const FaultPolicy &policy = {},
               ProgressObserver *progress = nullptr) const;

  private:
    unsigned jobs_;
};

} // namespace bsim::sim

#endif // BURSTSIM_SIM_SWEEP_RUNNER_HH
