/**
 * @file
 * Robust sweep driver: fault-contained, resumable execution of a list of
 * experiment points.
 *
 * Each point is one ExperimentConfig; the driver runs them through a
 * SweepRunner with per-point containment (SweepRunner::guardedRun),
 * bounded retry of transient failures, an abort threshold, an optional
 * cancel token (SIGINT: drain in-flight points, then stop), and an
 * append-only journal that makes interrupted sweeps resumable — reruns
 * skip journaled points and reproduce byte-identical reports from the
 * stored summaries.
 *
 * Journal format v3: a text file, one framed record per completed
 * point,
 *   J3 <len> <crc> P <key> attempts=<n> exec=<u64> rdlat=<a> wrlat=<a>
 *       rowhit=<a> bw=<a> cfg="<canonical>"
 * (one line). The payload — everything after the third space — is the
 * v2 record body: <key> is the point's configKey() in hex, the four
 * <a> fields are C99 hexfloats (%a), which round-trip doubles exactly —
 * the property the byte-identical-resume guarantee rests on — and
 * <canonical> echoes the canonicalConfig() encoding the key was hashed
 * from. On resume the echo is compared against the point's own
 * canonical string: a 64-bit hash collision between two different
 * configs is then detected and the point reruns instead of silently
 * reusing the colliding record.
 *
 * The v3 frame hardens each record individually: <len> is the payload
 * byte length in decimal and <crc> its CRC-32 in 8 hex digits, so a
 * record torn by a crash mid-append, or corrupted at rest, is detected
 * at the *record* level rather than inferred from parse failure.
 * Append discipline: each record is written with a single O_APPEND
 * write(2) call, so concurrent appenders never interleave bytes and a
 * crash can only tear the file's tail; with SweepOptions::journalSync
 * (the default) every record is followed by fdatasync(), so an
 * acknowledged point survives an immediate power cut or SIGKILL. A
 * torn or corrupt *tail* is expected crash debris and is skipped (the
 * point reruns); corruption *before* the last record indicates real
 * damage and is reported per record by scanSweepJournal() — see the
 * `burstsim_campaign verify` subcommand, whose --repair mode truncates
 * the file back to its longest valid prefix.
 *
 * Bare v2 records ("P ..." with no frame) and pre-echo records (no
 * cfg= field) are still accepted, without integrity / collision
 * protection. Lines starting with '#' are comments.
 */

#ifndef BURSTSIM_SIM_SWEEP_HH
#define BURSTSIM_SIM_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep_runner.hh"

namespace bsim::sim
{

/**
 * Canonical text encoding of every field of @p cfg that can affect the
 * run's summarised fate: the statistic-determining axes (workload,
 * mechanism, geometry, timing variant, engine, ...), plus the fault-
 * policy fields (watchdog, deadline) — a point that failed under a
 * tight watchdog must not be resumed as if it had run under a loose
 * one — and the scheduler-factory identity (schedulerFactoryId; a bare
 * anonymous factory is encoded as present-but-unnamed). Observability
 * sinks are excluded: they never change the summary. This string is
 * what configKey() hashes and what the journal echoes for collision
 * detection; double quotes and newlines are sanitised to '?' so the
 * echo always stays one parseable line.
 */
std::string canonicalConfig(const ExperimentConfig &cfg);

/** FNV-1a digest of canonicalConfig(): the journal's point identity. */
std::uint64_t configKey(const ExperimentConfig &cfg);

/** The per-point statistics a sweep report is rendered from. */
struct SweepSummary
{
    std::uint64_t execCpuCycles = 0;
    double readLatMean = 0.0;  //!< memory cycles
    double writeLatMean = 0.0; //!< memory cycles
    double rowHitRate = 0.0;
    double bandwidthGBs = 0.0;
};

/** Extract the reported summary from a full run result. */
SweepSummary summarize(const RunResult &r);

/** Fate plus (on success) summary of one sweep point. */
struct SweepSlot
{
    RunOutcome run;        //!< ok / attempts / failure description
    SweepSummary summary;  //!< valid when run.ok
    bool fromJournal = false; //!< restored, not executed, this sweep
};

/**
 * Test-only fault injection: fail a chosen point's first attempts with
 * a synthetic SimError before runExperiment() is even entered. The
 * same injection is reachable from the command line through the
 * BURSTSIM_FAIL_POINT / BURSTSIM_FAIL_TIMES / BURSTSIM_FAIL_CAT
 * environment variables (read only when `point` is negative here).
 *
 * A second, *hard* injector exists purely in the environment:
 * BURSTSIM_CRASH_POINT=<slot> (or BURSTSIM_CRASH_KEY=<hex configKey>)
 * kills the whole process when that point begins —
 * BURSTSIM_CRASH_MODE=abort|segv|exit:<n>|stop, optionally one-shot
 * via a BURSTSIM_CRASH_ONCE=<marker-path> file. It exists to test the
 * campaign supervisor's process isolation (src/campaign/); an
 * in-process sweep has, by design, no defence against it.
 */
struct SweepFault
{
    std::ptrdiff_t point = -1; //!< slot index to poison; -1 = none
    unsigned times = 0;        //!< attempts of it that fail
    ErrorCategory category = ErrorCategory::Resource;
};

/** Execution policy of one sweep. */
struct SweepOptions
{
    unsigned jobs = 1; //!< worker threads (0 = all cores)
    /** Tries per point; failures beyond transient ones never retry. */
    unsigned maxAttempts = 3;
    /** Tolerated failed points before the sweep aborts. */
    std::size_t maxFailures = std::numeric_limits<std::size_t>::max();
    /** Journal path; empty disables checkpoint/resume. */
    std::string journal;
    /** fsync the journal after every record (see the fsync policy in
     *  the file comment). Default on: a journaled point must survive
     *  SIGKILL. Turn off only for throwaway sweeps on slow media. */
    bool journalSync = true;
    /** Cancel token (SIGINT handler sets it; in-flight points drain). */
    const std::atomic<bool> *cancel = nullptr;
    /** Programmatic fault injection (tests). */
    SweepFault fault;

    // --- progress telemetry (see docs/observability.md) ---
    // One JSON object per line (JSONL): sweep_start, point_start,
    // point_retry, point_finish, heartbeat, sweep_end. Host wall times
    // appear here by design — this is a telemetry side channel, never
    // part of the deterministic result set (CSV/table/journal).

    /** Progress JSONL path; empty disables file telemetry. */
    std::string progressPath;
    /** Progress JSONL stream override (tests); wins over progressPath. */
    std::ostream *progressStream = nullptr;
    /** Stderr heartbeat period in seconds; 0 disables the heartbeat. */
    double heartbeatSec = 0.0;
};

/** Slot-ordered outcome of a whole sweep. */
struct SweepReport
{
    std::vector<SweepSlot> slots;
    bool aborted = false;   //!< maxFailures exceeded; tail skipped
    bool cancelled = false; //!< cancel token tripped; tail skipped

    /** Points that ran and failed (skipped points don't count). */
    std::size_t failures() const;
    /** Points restored from the journal instead of executed. */
    std::size_t journaled() const;
};

/**
 * Run every point of @p points under @p opt. Never throws for
 * per-point failures — each lands in its slot; only journal I/O
 * misconfiguration (unwritable path) throws SimError(resource).
 */
SweepReport runExperimentSweep(const std::vector<ExperimentConfig> &points,
                               const SweepOptions &opt = {});

/**
 * Render @p rep as CSV, one row per point in slot order. Deterministic:
 * wall times and host state never appear; a failed point's row carries
 * its status, category and error text instead of numbers.
 */
void writeSweepCsv(std::ostream &os,
                   const std::vector<ExperimentConfig> &points,
                   const SweepReport &rep);

/**
 * Render @p rep as an aligned text table (the CLI's --sweep output).
 * Failed slots print "failed(<category>)" with dashes for the metrics;
 * normalisation uses the first successful slot as the base.
 */
void writeSweepTable(std::ostream &os,
                     const std::vector<ExperimentConfig> &points,
                     const SweepReport &rep);

/** One parsed journal record (exposed for tests). */
struct JournalRecord
{
    unsigned attempts = 0;
    SweepSummary summary;
    /** canonicalConfig() echo; empty for pre-echo (legacy) records. */
    std::string configEcho;
};

/** Load @p path (missing file = empty map; torn lines are skipped). */
std::unordered_map<std::uint64_t, JournalRecord>
loadSweepJournal(const std::string &path);

/** One integrity defect found while scanning a journal. */
struct JournalIssue
{
    enum class Kind : std::uint8_t
    {
        Malformed,      //!< unparseable line / bad frame syntax
        LengthMismatch, //!< v3 frame length != actual payload length
        CrcMismatch,    //!< v3 payload failed its CRC-32
        TornTail,       //!< damaged final record (expected crash debris)
    };
    Kind kind = Kind::Malformed;
    std::uint64_t line = 0; //!< 1-based line number
    std::string detail;     //!< human-readable description
};

/** Printable issue-kind name ("malformed", "crc_mismatch", ...). */
const char *journalIssueKindName(JournalIssue::Kind kind);

/** Full integrity scan of one journal (the `verify` subcommand). */
struct JournalScan
{
    /** Valid records by key (last record wins, as on resume). */
    std::unordered_map<std::uint64_t, JournalRecord> records;
    /** Every defect, in file order. A torn tail is the last entry. */
    std::vector<JournalIssue> issues;
    /** Byte length of the longest valid prefix: every line before this
     *  offset is a clean record or comment. repairSweepJournal()
     *  truncates to exactly here. */
    std::uint64_t validPrefixBytes = 0;
    std::size_t v3Records = 0;     //!< framed records accepted
    std::size_t legacyRecords = 0; //!< bare v2 records accepted
    bool missing = false;          //!< file does not exist
    /** No defects at all (a missing file is trivially clean). */
    bool clean() const { return issues.empty(); }
};

/** Scan @p path without modifying it. Never throws on bad content —
 *  every defect lands in issues. */
JournalScan scanSweepJournal(const std::string &path);

/**
 * Truncate @p path to its longest valid prefix (scan.validPrefixBytes),
 * dropping the torn/corrupt suffix so subsequent loads are clean.
 * Returns true when the file was actually shortened. Throws
 * SimError(Resource) if the file cannot be rewritten.
 */
bool repairSweepJournal(const std::string &path);

/**
 * Contiguous, balanced partition of @p count slots over @p shards
 * shards: shard s gets slots [s*count/shards, (s+1)*count/shards) after
 * remainder spreading — sizes differ by at most one and concatenating
 * all shards in id order yields 0..count-1 exactly once. Throws
 * SimError(Config) when shards == 0 or @p shard is out of range.
 */
std::vector<std::size_t> shardSlots(std::size_t count, unsigned shards,
                                    unsigned shard);

} // namespace bsim::sim

#endif // BURSTSIM_SIM_SWEEP_HH
