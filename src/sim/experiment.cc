#include "sim/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/rng.hh"

#include "common/error.hh"
#include "common/log.hh"
#include "obs/observability.hh"
#include "obs/selfprof.hh"
#include "sim/sweep_runner.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"

namespace bsim::sim
{

namespace
{

/**
 * Start each run from a warmed steady state instead of cold caches: the
 * hot set is resident (its hottest prefix in L1), and part of L2 holds
 * dirty write-stream blocks, so streaming fills displace dirty victims
 * and produce main-memory writeback traffic from the first cycle — as a
 * long-running benchmark would. Without this, short runs see no writes
 * at all until the L2 fills (the paper simulates 2 billion instructions
 * and never observes that transient).
 */
void
prewarmCaches(cpu::CacheHierarchy &h, const trace::SyntheticGenerator &gen,
              std::uint64_t seed)
{
    const trace::WorkloadProfile &p = gen.profile();
    const std::uint64_t blk = h.l1d().config().blockBytes;
    Rng rng(seed ^ 0x5eedcafe);

    const std::uint64_t l1_blocks = h.l1d().config().sizeBytes / blk;
    const std::uint64_t hot_blocks = p.hotBytes / blk;
    for (std::uint64_t i = 0; i < hot_blocks; ++i) {
        const Addr a = p.regionBase + i * blk;
        h.prefill(a, rng.chance(p.writeFraction), i < l1_blocks);
    }

    // Fill the remaining L2 capacity completely, alternating dirty
    // write-stream blocks with clean read-stream blocks: every fill of a
    // warmed run then displaces a victim, and roughly half the victims
    // are dirty — the steady-state writeback behaviour of a long run.
    const std::uint64_t l2_blocks = h.l2().config().sizeBytes / blk;
    const std::uint64_t budget =
        l2_blocks > hot_blocks ? l2_blocks - hot_blocks : 0;
    std::uint32_t ws = 0, rs = 0;
    std::uint64_t woff = 0, roff = 0;
    for (std::uint64_t i = 0; i < budget; ++i) {
        if (i % 2 == 0) {
            h.prefill(gen.writeStreamBase(ws) + woff, true);
            ws = (ws + 1) % p.numWriteStreams;
            if (ws == 0)
                woff += blk;
        } else {
            h.prefill(gen.readStreamBase(rs) + roff, false);
            rs = (rs + 1) % p.numStreams;
            if (rs == 0)
                roff += blk;
        }
    }
}

/**
 * Arms the host self-profiler for the guarded region. The enable flag
 * and the sample tree are thread-local, so parallel sweep slots profile
 * independently; the destructor disarms on every exit path (including
 * SimError unwinds) so a failed point never leaks profiling into the
 * next run on its worker thread.
 */
struct SelfProfGuard
{
    explicit SelfProfGuard(bool on) : on_(on)
    {
        if (on_) {
            obs::prof::reset();
            obs::prof::setEnabled(true);
        }
    }
    ~SelfProfGuard()
    {
        if (on_)
            obs::prof::setEnabled(false);
    }
    bool on_;
};

} // namespace

const char *
deviceGenName(DeviceGen g)
{
    switch (g) {
      case DeviceGen::DDR2_800: return "DDR2-800 PC2-6400";
      case DeviceGen::DDR_266: return "DDR-266 PC-2100";
    }
    return "?";
}

const char *
timingVariantName(TimingVariant v)
{
    switch (v) {
      case TimingVariant::Baseline: return "baseline";
      case TimingVariant::ZeroWindows: return "zero-windows";
      case TimingVariant::RefreshPrime: return "refresh-prime";
      case TimingVariant::RefreshHeavy: return "refresh-heavy";
      case TimingVariant::NoRefresh: return "no-refresh";
    }
    return "?";
}

TimingVariant
timingVariantByName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumTimingVariants; ++i) {
        const auto v = TimingVariant(i);
        if (name == timingVariantName(v))
            return v;
    }
    throwSimError(ErrorCategory::Config, "unknown timing variant '%s'",
                  name.c_str());
}

std::uint64_t
defaultInstructions()
{
    if (const char *env = std::getenv("BURSTSIM_INSTR")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return std::uint64_t(v);
        warn("ignoring invalid BURSTSIM_INSTR='%s'", env);
    }
    return 150'000;
}

RunResult
runExperiment(const ExperimentConfig &cfg)
{
    SystemConfig sys_cfg = SystemConfig::baseline();
    sys_cfg.ctrl.mechanism = cfg.mechanism;
    sys_cfg.ctrl.threshold = cfg.threshold;
    sys_cfg.ctrl.dynamicThreshold = cfg.dynamicThreshold;
    sys_cfg.ctrl.sortBurstsBySize = cfg.sortBurstsBySize;
    sys_cfg.ctrl.criticalFirst = cfg.criticalFirst;
    sys_cfg.ctrl.rankAware = cfg.rankAware;
    sys_cfg.ctrl.coalesceWrites = cfg.coalesceWrites;
    sys_cfg.ctrl.watermarkDrain = cfg.watermarkDrain;
    sys_cfg.ctrl.horizonMemo = cfg.horizonMemo;
    sys_cfg.engine = cfg.engine;
    if (cfg.robSize)
        sys_cfg.core.robSize = cfg.robSize;
    if (cfg.issueWidth)
        sys_cfg.core.issueWidth = cfg.issueWidth;
    sys_cfg.dram.pagePolicy = cfg.pagePolicy;
    sys_cfg.dram.addressMap = cfg.addressMap;
    sys_cfg.obs = cfg.obs;
    if (cfg.channels)
        sys_cfg.dram.channels = cfg.channels;
    if (cfg.ranksPerChannel)
        sys_cfg.dram.ranksPerChannel = cfg.ranksPerChannel;
    if (cfg.banksPerRank)
        sys_cfg.dram.banksPerRank = cfg.banksPerRank;
    if (cfg.device == DeviceGen::DDR_266) {
        // Section 6: DDR PC-2100 has a 133 MHz bus but nearly the same
        // absolute core timings — 2-2-2 in cycles. Keep the 64 B block
        // (burst of 8 beats, 4 bus clocks) so traffic is comparable.
        sys_cfg.dram.timing = dram::Timing::ddr_266();
        sys_cfg.dram.timing.burstLength = 8;
        sys_cfg.busMHz = 133.0;
        sys_cfg.cpuCyclesPerMemCycle = 30; // 4 GHz / 133 MHz
    }
    {
        // Timing perturbations stack on the device preset (fuzz axis).
        dram::Timing &t = sys_cfg.dram.timing;
        switch (cfg.timingVariant) {
          case TimingVariant::Baseline:
            break;
          case TimingVariant::ZeroWindows:
            t.tFAW = 0;
            t.tRRD = 0;
            break;
          case TimingVariant::RefreshPrime:
            // Primes near the presets' tREFI, so refresh deadlines never
            // fall on any periodic span lattice of the skip engine.
            t.tREFI = cfg.device == DeviceGen::DDR_266 ? 1039 : 3119;
            break;
          case TimingVariant::RefreshHeavy:
            t.tREFI = std::max(t.tREFI / 8, t.tRFC + 1);
            break;
          case TimingVariant::NoRefresh:
            t.tREFI = 0;
            break;
        }
        t.validate();
    }

    sys_cfg.ctrl.schedulerFactory = cfg.schedulerFactory;
    sys_cfg.watchdogCycles = cfg.watchdogCycles;
    sys_cfg.deadlineSec = cfg.deadlineSec;

    std::uint64_t instructions =
        cfg.instructions ? cfg.instructions : defaultInstructions();

    // "@/path" workloads replay a text trace from disk; anything else
    // is a synthetic profile. File traces run cold (no prewarm) and at
    // their recorded length.
    std::unique_ptr<trace::VectorTrace> file_trace;
    std::unique_ptr<trace::SyntheticGenerator> gen;
    trace::TraceSource *src = nullptr;
    if (!cfg.workload.empty() && cfg.workload[0] == '@') {
        file_trace = trace::loadTraceFile(cfg.workload.substr(1));
        instructions = file_trace->size();
        src = file_trace.get();
    } else {
        const trace::WorkloadProfile &prof =
            trace::profileByName(cfg.workload);
        gen = std::make_unique<trace::SyntheticGenerator>(
            prof, instructions, cfg.seed);
        src = gen.get();
    }

    System sys(sys_cfg, *src);
    if (gen)
        prewarmCaches(sys.caches(), *gen, cfg.seed);
    // Safety net: no run should need more than ~10k memory cycles per
    // thousand instructions; a hang here is a simulator bug.
    const Tick cap = instructions * 100 + 10'000'000;
    SelfProfGuard prof_guard(cfg.obs.selfProf);
    sys.run(cap);
    if (!sys.done())
        throwSimError(
            ErrorCategory::Internal,
            "experiment %s/%s did not drain within %llu memory cycles",
            cfg.workload.c_str(), ctrl::mechanismName(cfg.mechanism),
            static_cast<unsigned long long>(cap));

    // Commit the trailing partial metrics epoch before detaching.
    sys.controller().flushMetrics(sys.memCycles());

    RunResult r;
    if (cfg.obs.selfProf)
        r.selfprof = std::make_shared<obs::prof::SelfProfile>(
            obs::prof::collect());
    r.obs = sys.releaseObservability();
    r.workload = cfg.workload;
    r.mechanism = cfg.mechanism;
    r.instructions = instructions;
    r.execCpuCycles = sys.execCpuCycles();
    r.memCycles = sys.memCycles();
    r.ctrl = sys.controller().stats();
    r.sched = sys.controller().schedulerStats();
    r.addrBusUtil = sys.mem().addressBusUtilization(sys.memCycles());
    r.dataBusUtil = sys.mem().dataBusUtilization(sys.memCycles());
    r.ipc = r.execCpuCycles
                ? double(instructions) / double(r.execCpuCycles)
                : 0.0;
    // Effective bandwidth: transferred bytes over the execution interval.
    const double seconds =
        double(r.memCycles) / (sys_cfg.busMHz * 1e6);
    r.bandwidthGBs =
        seconds > 0 ? double(r.ctrl.bytesTransferred) / seconds / 1e9 : 0.0;
    r.l2Misses = sys.caches().l2().misses();
    r.memReads = sys.caches().memReads();
    r.memWrites = sys.caches().memWrites();
    r.dramCommands = sys.mem().commandCounts();
    const double clock_ns = 1e3 / sys_cfg.busMHz;
    r.energy = dram::estimateEnergy(r.dramCommands, r.memCycles,
                                    sys_cfg.dram,
                                    dram::PowerParams::ddr2_800(),
                                    clock_ns);
    r.avgPowerW = r.energy.averagePower(seconds);
    return r;
}

CmpResult
runCmpShifted(const CmpConfig &cfg, const std::vector<std::size_t> &shifts)
{
    if (shifts.size() != cfg.workloads.size())
        throwSimError(ErrorCategory::Config,
                      "CMP experiment: %zu workloads but %zu region shifts",
                      cfg.workloads.size(), shifts.size());

    SystemConfig sys_cfg = SystemConfig::baseline();
    sys_cfg.ctrl.mechanism = cfg.mechanism;
    sys_cfg.ctrl.threshold = cfg.threshold;
    sys_cfg.ctrl.watermarkDrain = cfg.watermarkDrain;
    sys_cfg.engine = cfg.engine;

    const std::uint64_t instr =
        cfg.instructions ? cfg.instructions : defaultInstructions();

    // Build one generator per core on a disjoint address region. The
    // shift index — not the core index — selects region and seed, so a
    // core's alone baseline replays exactly the address stream it had
    // in the shared mix.
    std::vector<std::unique_ptr<trace::SyntheticGenerator>> gens;
    std::vector<trace::TraceSource *> sources;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        trace::WorkloadProfile prof =
            trace::profileByName(cfg.workloads[i]);
        prof.regionBase +=
            Addr(shifts[i]) * (prof.footprintBytes + (64ULL << 20));
        gens.push_back(std::make_unique<trace::SyntheticGenerator>(
            prof, instr, 20070212 + shifts[i]));
        sources.push_back(gens.back().get());
    }

    System sys(sys_cfg, sources);
    for (std::uint32_t i = 0; i < sys.numCores(); ++i)
        prewarmCaches(sys.caches(i), *gens[i], 20070212 + shifts[i]);

    const Tick cap = instr * 200 * cfg.workloads.size() + 10'000'000;
    sys.run(cap);
    if (!sys.done())
        throwSimError(ErrorCategory::Internal,
                      "CMP experiment (%zu cores, %s) did not drain",
                      cfg.workloads.size(),
                      ctrl::mechanismName(cfg.mechanism));

    CmpResult r;
    r.workloads = cfg.workloads;
    r.mechanism = cfg.mechanism;
    r.instructions = instr;
    r.execCpuCycles = sys.execCpuCycles();
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        const std::uint64_t cycles = sys.coreExecCpuCycles(i);
        r.perCoreCpuCycles.push_back(cycles);
        r.perCoreIpc.push_back(
            cycles ? double(instr) / double(cycles) : 0.0);
    }
    r.ctrl = sys.controller().stats();
    r.dataBusUtil = sys.mem().dataBusUtilization(sys.memCycles());
    const double seconds =
        double(sys.memCycles()) / (sys_cfg.busMHz * 1e6);
    r.bandwidthGBs = seconds > 0
                         ? double(r.ctrl.bytesTransferred) / seconds / 1e9
                         : 0.0;
    return r;
}

CmpResult
runCmpExperiment(const CmpConfig &cfg)
{
    std::vector<std::size_t> shifts(cfg.workloads.size());
    for (std::size_t i = 0; i < shifts.size(); ++i)
        shifts[i] = i;
    return runCmpShifted(cfg, shifts);
}

CmpResult
runCmpExperiment(const std::vector<std::string> &workloads,
                 ctrl::Mechanism mechanism, std::uint64_t instructions,
                 std::size_t threshold, EngineKind engine)
{
    CmpConfig cfg;
    cfg.workloads = workloads;
    cfg.mechanism = mechanism;
    cfg.instructions = instructions;
    cfg.threshold = threshold;
    cfg.engine = engine;
    return runCmpExperiment(cfg);
}

FairnessMetrics
computeFairness(const std::vector<double> &ipcShared,
                const std::vector<double> &ipcAlone)
{
    if (ipcShared.size() != ipcAlone.size())
        throwSimError(ErrorCategory::Internal,
                      "fairness: %zu shared IPCs vs %zu alone IPCs",
                      ipcShared.size(), ipcAlone.size());
    FairnessMetrics m;
    m.perCoreIpcAlone = ipcAlone;
    double slowdown_sum = 0.0;
    for (std::size_t i = 0; i < ipcShared.size(); ++i) {
        const double sd = ipcShared[i] > 0 ? ipcAlone[i] / ipcShared[i]
                                           : 0.0;
        m.perCoreSlowdown.push_back(sd);
        m.maxSlowdown = std::max(m.maxSlowdown, sd);
        slowdown_sum += sd;
        m.weightedSpeedup +=
            ipcAlone[i] > 0 ? ipcShared[i] / ipcAlone[i] : 0.0;
    }
    m.harmonicSpeedup = slowdown_sum > 0
                            ? double(ipcShared.size()) / slowdown_sum
                            : 0.0;
    return m;
}

CmpResult
runCmpFairness(const CmpConfig &cfg)
{
    CmpResult shared = runCmpExperiment(cfg);

    // Alone baselines: the same core alone on the machine, with the
    // address-region shift and seed it had in the mix, under the same
    // mechanism and policy axes.
    std::vector<double> alone_ipc;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        CmpConfig alone = cfg;
        alone.workloads = {cfg.workloads[i]};
        const CmpResult r = runCmpShifted(alone, {i});
        alone_ipc.push_back(r.perCoreIpc.at(0));
    }

    shared.fairness = computeFairness(shared.perCoreIpc, alone_ipc);
    shared.haveFairness = true;
    return shared;
}

std::vector<RunResult>
runMechanismSweep(const std::string &workload,
                  const std::vector<ctrl::Mechanism> &mechanisms,
                  std::uint64_t instructions, unsigned jobs,
                  EngineKind engine)
{
    return SweepRunner(jobs).map<RunResult>(
        mechanisms.size(), [&](std::size_t i) {
            ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.mechanism = mechanisms[i];
            cfg.instructions = instructions;
            cfg.engine = engine;
            return runExperiment(cfg);
        });
}

} // namespace bsim::sim
