/**
 * @file
 * Result reporting: render RunResult / CmpResult as JSON (machine
 * readable) or as a human-readable text summary. Shared by the CLI tool
 * and available to library users.
 */

#ifndef BURSTSIM_SIM_REPORT_HH
#define BURSTSIM_SIM_REPORT_HH

#include <iosfwd>

#include "sim/experiment.hh"

namespace bsim::sim
{

/** Emit @p r as a JSON object (pretty-printed). */
void writeResultJson(std::ostream &os, const RunResult &r);

/** Emit @p r as a JSON object (pretty-printed). */
void writeCmpResultJson(std::ostream &os, const CmpResult &r);

/** Emit a human-readable one-run summary. */
void writeResultText(std::ostream &os, const RunResult &r);

/** Emit a human-readable CMP-run summary (per-core table; fairness
 *  metrics when CmpResult::haveFairness is set). */
void writeCmpResultText(std::ostream &os, const CmpResult &r);

} // namespace bsim::sim

#endif // BURSTSIM_SIM_REPORT_HH
