#include "sim/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "obs/selfprof.hh"

namespace bsim::sim
{

namespace
{

/** FNV-1a, the repo's standard cheap digest. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
        h ^= std::uint8_t(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/** "workload/Mechanism" display label of one point. */
std::string
pointLabel(const ExperimentConfig &cfg)
{
    return cfg.workload + "/" + ctrl::mechanismName(cfg.mechanism);
}

/** CSV-quote @p s (always quoted; inner quotes doubled). */
std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c == '\n' ? ' ' : c; // keep one row per point
    }
    out += '"';
    return out;
}

std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

/** Environment-variable fault spec (CLI smoke tests); see SweepFault. */
SweepFault
faultFromEnv()
{
    SweepFault f;
    const char *point = std::getenv("BURSTSIM_FAIL_POINT");
    if (!point || !*point)
        return f;
    f.point = std::atoll(point);
    f.times = 1;
    if (const char *times = std::getenv("BURSTSIM_FAIL_TIMES"))
        f.times = unsigned(std::atoll(times));
    if (const char *cat = std::getenv("BURSTSIM_FAIL_CAT"))
        f.category = parseErrorCategory(cat);
    return f;
}

/**
 * Hard-crash injection (campaign fault-isolation tests): unlike the
 * SweepFault exception injector above, this one takes the *process*
 * down, exactly as a segfault or OOM kill would, so worker isolation
 * is testable deterministically.
 *
 *   BURSTSIM_CRASH_POINT=<n>    crash when slot n begins, or
 *   BURSTSIM_CRASH_KEY=<hex>    crash when the point whose configKey()
 *                               matches begins (stable across shard
 *                               partitions and restarts)
 *   BURSTSIM_CRASH_MODE=abort | segv | exit:<n> | stop   (default abort)
 *   BURSTSIM_CRASH_ONCE=<path>  arm only while <path> does not exist;
 *                               the file is created just before the
 *                               crash, so exactly one incarnation dies
 *
 * "stop" raises SIGSTOP — the whole process freezes, heartbeats and
 * all, which is how a stuck-syscall hang presents to the campaign
 * supervisor's liveness monitor (and, being unblockable, it exercises
 * the SIGTERM-then-SIGKILL escalation path end to end).
 */
struct CrashSpec
{
    std::ptrdiff_t point = -1; //!< slot index to kill at; -1 = none
    bool byKey = false;
    std::uint64_t key = 0;
    std::string mode = "abort";
    std::string onceFile;

    bool armed() const { return point >= 0 || byKey; }
};

CrashSpec
crashFromEnv()
{
    CrashSpec c;
    const char *point = std::getenv("BURSTSIM_CRASH_POINT");
    const char *key = std::getenv("BURSTSIM_CRASH_KEY");
    if ((!point || !*point) && (!key || !*key))
        return c;
    if (key && *key) {
        c.byKey = true;
        c.key = std::strtoull(key, nullptr, 16);
    } else {
        c.point = std::atoll(point);
    }
    if (const char *mode = std::getenv("BURSTSIM_CRASH_MODE"))
        c.mode = mode;
    if (const char *once = std::getenv("BURSTSIM_CRASH_ONCE"))
        c.onceFile = once;
    return c;
}

[[noreturn]] void
executeCrash(const std::string &mode)
{
    if (mode == "segv") {
        std::signal(SIGSEGV, SIG_DFL);
        std::raise(SIGSEGV);
    } else if (mode == "stop") {
        std::raise(SIGSTOP); // freeze; only SIGKILL gets us from here
    } else if (mode.rfind("exit:", 0) == 0) {
        ::_exit(std::atoi(mode.c_str() + 5));
    } else {
        std::signal(SIGABRT, SIG_DFL);
        std::abort();
    }
    // segv/stop can nominally return (handler reset races, SIGCONT);
    // keep the injection fatal either way.
    std::abort();
}

/** One-shot gating: false once the marker exists; creates it when it
 *  is about to allow the crash, so the next incarnation survives. */
bool
crashGateOpen(const CrashSpec &crash)
{
    if (crash.onceFile.empty())
        return true;
    if (std::ifstream(crash.onceFile).good())
        return false;
    std::ofstream marker(crash.onceFile);
    marker << "crashed\n";
    return true;
}

/**
 * Append-only v3 journal writer. Each record is framed
 * (J3 <len> <crc32> <payload>\n), assembled into one buffer and
 * written with a single O_APPEND write(2): concurrent appenders never
 * interleave and a crash can only tear the tail. With @p sync every
 * record is followed by fdatasync() — the journal's durability point —
 * so a point acknowledged on disk survives SIGKILL and power loss.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open @p path for appending; throws SimError(Resource). */
    void
    open(const std::string &path, bool sync)
    {
        fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                     0644);
        if (fd_ < 0)
            throwSimError(ErrorCategory::Resource,
                          "cannot open sweep journal '%s' for writing",
                          path.c_str());
        path_ = path;
        sync_ = sync;
    }

    bool isOpen() const { return fd_ >= 0; }

    /** Frame and append one payload (atomic single-write + fsync). */
    void
    append(const std::string &payload)
    {
        char head[32];
        std::snprintf(head, sizeof(head), "J3 %zu %08x ", payload.size(),
                      crc32(payload));
        std::string rec = head;
        rec += payload;
        rec += '\n';
        const char *p = rec.data();
        std::size_t left = rec.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, p, left);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                warn("sweep journal %s: append failed (%s)",
                     path_.c_str(), std::strerror(errno));
                return;
            }
            p += n;
            left -= std::size_t(n);
        }
        if (sync_)
            ::fdatasync(fd_);
    }

  private:
    int fd_ = -1;
    bool sync_ = true;
    std::string path_;
};

/**
 * JSONL progress telemetry + stderr heartbeat for one sweep.
 *
 * Every event is one compact JSON object per line, flushed immediately
 * so a tail -f (or the CI validator) always sees whole records. The
 * runner's workers call the observer callbacks concurrently; one mutex
 * serialises event assembly, pace bookkeeping and rollup handoff. The
 * heartbeat runs on its own timer thread and stops before sweep_end.
 *
 * The emitted ETA is clamped to be non-increasing across events, so
 * consumers can render a stable countdown — pace noise (a slow point,
 * scheduler jitter) never makes the estimate jump back up.
 */
class SweepProgress final : public ProgressObserver
{
  public:
    SweepProgress(std::ostream *os, std::vector<std::size_t> slots,
                  std::vector<std::string> labels, std::size_t total,
                  std::size_t journaled, unsigned jobs,
                  double heartbeat_sec)
        : os_(os), slots_(std::move(slots)), labels_(std::move(labels)),
          total_(total), started_(std::chrono::steady_clock::now())
    {
        {
            std::lock_guard<std::mutex> g(mu_);
            emitLocked([&](JsonWriter &w) {
                w.key("event").value("sweep_start");
                w.key("points").value(std::uint64_t(total_));
                w.key("pending").value(std::uint64_t(slots_.size()));
                w.key("journaled").value(std::uint64_t(journaled));
                w.key("jobs").value(std::uint64_t(jobs));
            });
        }
        if (heartbeat_sec > 0)
            heartbeat_ = std::thread(
                [this, heartbeat_sec] { heartbeatLoop(heartbeat_sec); });
    }

    ~SweepProgress() override { stopHeartbeat(); }

    void
    onPointStart(std::size_t i, unsigned attempt) override
    {
        std::lock_guard<std::mutex> g(mu_);
        emitLocked([&](JsonWriter &w) {
            w.key("event").value(attempt > 1 ? "point_retry"
                                             : "point_start");
            w.key("point").value(std::uint64_t(slots_[i]));
            w.key("label").value(labels_[i]);
            w.key("attempt").value(std::uint64_t(attempt));
        });
    }

    void
    onPointFinish(std::size_t i, const RunOutcome &o) override
    {
        std::lock_guard<std::mutex> g(mu_);
        std::shared_ptr<obs::prof::SelfProfile> prof;
        if (const auto it = rollups_.find(slots_[i]);
            it != rollups_.end()) {
            prof = std::move(it->second);
            rollups_.erase(it);
        }
        done_ += 1;
        const double pps = pointsPerSec();
        const double eta = clampedEtaSec(pps);
        emitLocked([&](JsonWriter &w) {
            w.key("event").value("point_finish");
            w.key("point").value(std::uint64_t(slots_[i]));
            w.key("label").value(labels_[i]);
            w.key("status").value(o.ok ? "ok" : "failed");
            w.key("attempts").value(std::uint64_t(o.attempts));
            if (!o.ok) {
                w.key("category").value(errorCategoryName(o.category));
                w.key("error").value(o.error);
            }
            w.key("wall_ms").value(o.wallMs);
            w.key("done").value(std::uint64_t(done_));
            w.key("total").value(std::uint64_t(slots_.size()));
            w.key("points_per_sec").value(pps);
            w.key("eta_sec").value(eta);
            if (prof && prof->valid) {
                w.key("selfprof").beginObject();
                w.key("total_us").value(prof->totalUs);
                w.key("phases").beginObject();
                for (std::size_t p = 0; p < obs::prof::kNumPhases; ++p)
                    if (prof->selfUsByPhase[p] > 0)
                        w.key(obs::prof::phaseName(obs::prof::Phase(p)))
                            .value(prof->selfUsByPhase[p]);
                w.endObject();
                w.endObject();
            }
        });
    }

    /** Self-profile to fold into slot @p slot's point_finish event
     *  (called from the point's own worker thread, before the runner
     *  fires onPointFinish). */
    void
    attachRollup(std::size_t slot,
                 std::shared_ptr<obs::prof::SelfProfile> prof)
    {
        std::lock_guard<std::mutex> g(mu_);
        rollups_[slot] = std::move(prof);
    }

    /** Final sweep_end event; the heartbeat stops first so no event
     *  ever follows sweep_end in the file. */
    void
    finish(std::size_t failures, bool aborted, bool cancelled)
    {
        stopHeartbeat();
        std::lock_guard<std::mutex> g(mu_);
        emitLocked([&](JsonWriter &w) {
            w.key("event").value("sweep_end");
            w.key("done").value(std::uint64_t(done_));
            w.key("total").value(std::uint64_t(slots_.size()));
            w.key("failures").value(std::uint64_t(failures));
            w.key("aborted").value(aborted);
            w.key("cancelled").value(cancelled);
            w.key("elapsed_sec").value(elapsedSec());
        });
    }

  private:
    template <typename Fn>
    void
    emitLocked(Fn &&fields) // mu_ held by the caller
    {
        if (!os_)
            return;
        JsonWriter w(*os_, /*pretty=*/false);
        w.beginObject();
        fields(w);
        w.endObject();
        *os_ << '\n';
        os_->flush(); // tail -f / validators see whole records
    }

    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started_)
            .count();
    }

    double
    pointsPerSec() const // mu_ held
    {
        const double el = elapsedSec();
        return el > 0 ? double(done_) / el : 0.0;
    }

    double
    clampedEtaSec(double pps) // mu_ held
    {
        const std::size_t remaining =
            slots_.size() > done_ ? slots_.size() - done_ : 0;
        if (remaining == 0) {
            etaCap_ = 0.0;
            return 0.0;
        }
        if (pps <= 0)
            return -1.0; // no estimate until the first point lands
        double eta = double(remaining) / pps;
        if (eta > etaCap_)
            eta = etaCap_;
        etaCap_ = eta;
        return eta;
    }

    void
    heartbeatLoop(double period)
    {
        std::unique_lock<std::mutex> lk(hbMu_);
        while (!hbStop_) {
            if (hbCv_.wait_for(lk, std::chrono::duration<double>(period),
                               [this] { return hbStop_; }))
                return;
            beat();
        }
    }

    void
    beat()
    {
        std::lock_guard<std::mutex> g(mu_);
        const double pps = pointsPerSec();
        const double eta = clampedEtaSec(pps);
        emitLocked([&](JsonWriter &w) {
            w.key("event").value("heartbeat");
            w.key("done").value(std::uint64_t(done_));
            w.key("total").value(std::uint64_t(slots_.size()));
            w.key("points_per_sec").value(pps);
            w.key("eta_sec").value(eta);
            w.key("elapsed_sec").value(elapsedSec());
        });
        if (eta < 0)
            std::fprintf(stderr,
                         "sweep: %zu/%zu points, %.2f pts/s, eta ?\n",
                         done_, slots_.size(), pps);
        else
            std::fprintf(stderr,
                         "sweep: %zu/%zu points, %.2f pts/s, eta %.0f s\n",
                         done_, slots_.size(), pps, eta);
    }

    void
    stopHeartbeat()
    {
        {
            std::lock_guard<std::mutex> g(hbMu_);
            hbStop_ = true;
        }
        hbCv_.notify_all();
        if (heartbeat_.joinable())
            heartbeat_.join();
    }

    std::ostream *os_; //!< may be null (heartbeat-only operation)
    const std::vector<std::size_t> slots_;  //!< pending -> point index
    const std::vector<std::string> labels_; //!< pending -> display label
    const std::size_t total_;               //!< all points, incl. journaled
    const std::chrono::steady_clock::time_point started_;

    std::mutex mu_; //!< serialises events, pace state and rollups
    std::size_t done_ = 0;
    double etaCap_ = std::numeric_limits<double>::infinity();
    std::unordered_map<std::size_t,
                       std::shared_ptr<obs::prof::SelfProfile>>
        rollups_;

    std::thread heartbeat_;
    std::mutex hbMu_;
    std::condition_variable hbCv_;
    bool hbStop_ = false;
};

} // namespace

std::string
canonicalConfig(const ExperimentConfig &cfg)
{
    // Canonical text encoding of every fate-determining field.
    // cfg.instructions == 0 is resolved first so "default count" and
    // "explicitly the default count" journal identically even if the
    // BURSTSIM_INSTR override changes between runs.
    const std::uint64_t instr =
        cfg.instructions ? cfg.instructions : defaultInstructions();
    std::ostringstream os;
    os << "v2|" << cfg.workload << '|'
       << ctrl::mechanismName(cfg.mechanism) << '|' << instr << '|'
       << cfg.seed << '|' << cfg.threshold << '|'
       << int(cfg.pagePolicy) << '|' << int(cfg.addressMap) << '|'
       << int(cfg.device) << '|' << int(cfg.timingVariant) << '|'
       << int(cfg.engine) << '|'
       << cfg.channels << '|' << cfg.ranksPerChannel << '|'
       << cfg.banksPerRank << '|' << cfg.dynamicThreshold << '|'
       << cfg.sortBurstsBySize << '|' << cfg.criticalFirst << '|'
       << cfg.rankAware << '|' << cfg.coalesceWrites << '|'
       << cfg.robSize << '|' << cfg.issueWidth << '|'
       // Fault-policy fields: a point that failed a 10k-cycle watchdog
       // is a different journal identity from one run without it.
       << cfg.watchdogCycles << '|' << cfg.deadlineSec << '|'
       // Scheduler-factory identity. A set factory with no declared id
       // still flavours the key (the run is NOT a stock run), but two
       // anonymous factories cannot be told apart — name them.
       << (cfg.schedulerFactory
               ? (cfg.schedulerFactoryId.empty()
                      ? std::string("factory:?")
                      : "factory:" + cfg.schedulerFactoryId)
               : std::string());
    // Appended conditionally so every pre-existing journal key is
    // byte-stable: only points that actually enable the axis gain the
    // token (and thereby a distinct key).
    if (cfg.watermarkDrain)
        os << "|wd";
    std::string s = os.str();
    for (char &c : s)
        if (c == '"' || c == '\n' || c == '\r')
            c = '?'; // keep the journal echo one parseable line
    return s;
}

std::uint64_t
configKey(const ExperimentConfig &cfg)
{
    return fnv1a(canonicalConfig(cfg));
}

SweepSummary
summarize(const RunResult &r)
{
    SweepSummary s;
    s.execCpuCycles = r.execCpuCycles;
    s.readLatMean = r.ctrl.readLatency.mean();
    s.writeLatMean = r.ctrl.writeLatency.mean();
    s.rowHitRate = r.ctrl.rowHitRate();
    s.bandwidthGBs = r.bandwidthGBs;
    return s;
}

std::size_t
SweepReport::failures() const
{
    std::size_t n = 0;
    for (const SweepSlot &s : slots)
        if (!s.run.ok && s.run.attempts > 0)
            n += 1;
    return n;
}

std::size_t
SweepReport::journaled() const
{
    std::size_t n = 0;
    for (const SweepSlot &s : slots)
        if (s.fromJournal)
            n += 1;
    return n;
}

namespace
{

/** Parse a v2/v3 record *payload* ("P <key> attempts=..."). */
bool
parsePointPayload(const std::string &payload, std::uint64_t &key,
                  JournalRecord &rec)
{
    unsigned attempts = 0;
    unsigned long long exec = 0;
    double rdlat = 0, wrlat = 0, rowhit = 0, bw = 0;
    // %la parses C99 hexfloats (and any other strtod-able form).
    const int n = std::sscanf(
        payload.c_str(),
        "P %" SCNx64 " attempts=%u exec=%llu rdlat=%la wrlat=%la "
        "rowhit=%la bw=%la",
        &key, &attempts, &exec, &rdlat, &wrlat, &rowhit, &bw);
    if (n != 7)
        return false;
    rec.attempts = attempts;
    rec.summary.execCpuCycles = exec;
    rec.summary.readLatMean = rdlat;
    rec.summary.writeLatMean = wrlat;
    rec.summary.rowHitRate = rowhit;
    rec.summary.bandwidthGBs = bw;
    // Optional config echo: cfg="..." through the payload's last quote.
    const std::size_t open = payload.find(" cfg=\"");
    const std::size_t close = payload.rfind('"');
    if (open != std::string::npos && close > open + 6)
        rec.configEcho = payload.substr(open + 6, close - (open + 6));
    return true;
}

/** Parse a v3 frame header "J3 <len> <crc> "; returns the payload
 *  start offset within @p line, or npos on syntax failure. */
std::size_t
parseFrameHeader(const std::string &line, std::size_t &len,
                 std::uint32_t &crc)
{
    unsigned long long l = 0;
    unsigned int c = 0;
    int consumed = 0;
    if (std::sscanf(line.c_str(), "J3 %llu %8x %n", &l, &c, &consumed) < 2 ||
        consumed <= 0)
        return std::string::npos;
    len = std::size_t(l);
    crc = c;
    return std::size_t(consumed);
}

} // namespace

const char *
journalIssueKindName(JournalIssue::Kind kind)
{
    switch (kind) {
      case JournalIssue::Kind::Malformed: return "malformed";
      case JournalIssue::Kind::LengthMismatch: return "length_mismatch";
      case JournalIssue::Kind::CrcMismatch: return "crc_mismatch";
      case JournalIssue::Kind::TornTail: return "torn_tail";
    }
    return "?";
}

JournalScan
scanSweepJournal(const std::string &path)
{
    JournalScan scan;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        scan.missing = true;
        return scan; // no journal yet: nothing to resume, nothing torn
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string content = buf.str();

    bool cleanPrefix = true;
    std::uint64_t lineno = 0;
    std::size_t pos = 0;
    while (pos < content.size()) {
        lineno += 1;
        const std::size_t nl = content.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const std::size_t lineEnd = terminated ? nl + 1 : content.size();
        const std::string line =
            content.substr(pos, (terminated ? nl : content.size()) - pos);
        const bool lastLine = lineEnd == content.size();

        const auto fail = [&](JournalIssue::Kind kind,
                              const std::string &detail) {
            // An unterminated or short final record is the expected
            // footprint of a crash mid-append, not corruption.
            JournalIssue issue;
            issue.kind = lastLine && kind != JournalIssue::Kind::CrcMismatch
                             ? JournalIssue::Kind::TornTail
                             : kind;
            issue.line = lineno;
            issue.detail = detail;
            scan.issues.push_back(std::move(issue));
            cleanPrefix = false;
        };

        if (line.empty() || line[0] == '#') {
            // Comment / blank: clean filler, extends the valid prefix.
        } else if (line.rfind("J3 ", 0) == 0) {
            std::size_t len = 0;
            std::uint32_t crc = 0;
            const std::size_t payloadAt = parseFrameHeader(line, len, crc);
            if (payloadAt == std::string::npos) {
                fail(JournalIssue::Kind::Malformed, "unparseable v3 frame");
            } else {
                const std::string payload = line.substr(payloadAt);
                std::uint64_t key = 0;
                JournalRecord rec;
                if (payload.size() != len) {
                    fail(JournalIssue::Kind::LengthMismatch,
                         "framed length " + std::to_string(len) +
                             ", actual " + std::to_string(payload.size()));
                } else if (crc32(payload) != crc) {
                    fail(JournalIssue::Kind::CrcMismatch,
                         "stored CRC does not match payload");
                } else if (!terminated) {
                    fail(JournalIssue::Kind::TornTail,
                         "record missing its trailing newline");
                } else if (!parsePointPayload(payload, key, rec)) {
                    fail(JournalIssue::Kind::Malformed,
                         "CRC-clean frame with unparseable payload");
                } else {
                    scan.v3Records += 1;
                    scan.records[key] = std::move(rec);
                }
            }
        } else if (line.rfind("P ", 0) == 0) {
            // Bare v2 record: accepted, but with no integrity check
            // beyond parseability.
            std::uint64_t key = 0;
            JournalRecord rec;
            if (!terminated) {
                fail(JournalIssue::Kind::TornTail,
                     "record missing its trailing newline");
            } else if (!parsePointPayload(line, key, rec)) {
                fail(JournalIssue::Kind::Malformed,
                     "unparseable legacy record");
            } else {
                scan.legacyRecords += 1;
                scan.records[key] = std::move(rec);
            }
        } else {
            fail(JournalIssue::Kind::Malformed, "unrecognized line");
        }

        if (cleanPrefix)
            scan.validPrefixBytes = lineEnd;
        pos = lineEnd;
    }
    return scan;
}

std::unordered_map<std::uint64_t, JournalRecord>
loadSweepJournal(const std::string &path)
{
    JournalScan scan = scanSweepJournal(path);
    for (const JournalIssue &issue : scan.issues)
        warn("sweep journal %s:%llu: skipping %s record (%s)",
             path.c_str(), (unsigned long long)issue.line,
             journalIssueKindName(issue.kind), issue.detail.c_str());
    return std::move(scan.records);
}

bool
repairSweepJournal(const std::string &path)
{
    const JournalScan scan = scanSweepJournal(path);
    if (scan.missing)
        return false;
    std::uintmax_t size = 0;
    {
        std::ifstream is(path, std::ios::binary | std::ios::ate);
        if (!is)
            throwSimError(ErrorCategory::Resource,
                          "cannot reopen journal '%s'", path.c_str());
        size = std::uintmax_t(is.tellg());
    }
    if (scan.validPrefixBytes >= size)
        return false; // nothing to drop
    if (::truncate(path.c_str(), off_t(scan.validPrefixBytes)) != 0)
        throwSimError(ErrorCategory::Resource,
                      "cannot truncate journal '%s' to %llu bytes (%s)",
                      path.c_str(),
                      (unsigned long long)scan.validPrefixBytes,
                      std::strerror(errno));
    return true;
}

std::vector<std::size_t>
shardSlots(std::size_t count, unsigned shards, unsigned shard)
{
    if (shards == 0)
        throwSimError(ErrorCategory::Config,
                      "shard count must be positive");
    if (shard >= shards)
        throwSimError(ErrorCategory::Config,
                      "shard id %u out of range (%u shards)", shard,
                      shards);
    const std::size_t base = count / shards;
    const std::size_t rem = count % shards;
    const std::size_t begin =
        std::size_t(shard) * base + std::min<std::size_t>(shard, rem);
    const std::size_t len = base + (shard < rem ? 1 : 0);
    std::vector<std::size_t> out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        out.push_back(begin + i);
    return out;
}

SweepReport
runExperimentSweep(const std::vector<ExperimentConfig> &points,
                   const SweepOptions &opt)
{
    SweepReport rep;
    rep.slots.resize(points.size());

    const SweepFault fault =
        opt.fault.point >= 0 ? opt.fault : faultFromEnv();

    // Resume: restore journaled points, collect the rest for execution.
    std::vector<std::string> canon(points.size());
    std::vector<std::uint64_t> keys(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        canon[i] = canonicalConfig(points[i]);
        keys[i] = configKey(points[i]);
    }
    std::vector<std::size_t> pending;
    if (!opt.journal.empty()) {
        const auto journal = loadSweepJournal(opt.journal);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto it = journal.find(keys[i]);
            if (it == journal.end()) {
                pending.push_back(i);
                continue;
            }
            if (!it->second.configEcho.empty() &&
                it->second.configEcho != canon[i]) {
                // Same 64-bit key, different config: a hash collision.
                // Trusting the record would silently report another
                // point's numbers — rerun this point instead.
                warn("sweep journal %s: key %016llx collides with a "
                     "different config; rerunning point %zu",
                     opt.journal.c_str(),
                     (unsigned long long)keys[i], i);
                pending.push_back(i);
                continue;
            }
            SweepSlot &s = rep.slots[i];
            s.run.ok = true;
            s.run.attempts = it->second.attempts;
            s.summary = it->second.summary;
            s.fromJournal = true;
        }
    } else {
        for (std::size_t i = 0; i < points.size(); ++i)
            pending.push_back(i);
    }

    // Open the journal for appending before any work starts, so an
    // unwritable path fails the sweep up front rather than after the
    // first completed point.
    JournalWriter journal_os;
    std::mutex journal_mu;
    if (!opt.journal.empty())
        journal_os.open(opt.journal, opt.journalSync);

    SweepRunner runner(opt.jobs);

    // Progress telemetry: JSONL sink (file or injected stream) plus the
    // optional stderr heartbeat. Built before any work starts so that
    // sweep_start is always the first record; an unwritable path fails
    // the sweep up front, exactly like the journal.
    std::ofstream progress_file;
    std::ostream *progress_os = opt.progressStream;
    if (!progress_os && !opt.progressPath.empty()) {
        progress_file.open(opt.progressPath);
        if (!progress_file)
            throwSimError(ErrorCategory::Resource,
                          "cannot open progress file '%s' for writing",
                          opt.progressPath.c_str());
        progress_os = &progress_file;
    }
    std::unique_ptr<SweepProgress> progress;
    if (progress_os || opt.heartbeatSec > 0) {
        std::vector<std::string> labels;
        labels.reserve(pending.size());
        for (const std::size_t i : pending)
            labels.push_back(pointLabel(points[i]));
        progress = std::make_unique<SweepProgress>(
            progress_os, pending, std::move(labels), points.size(),
            points.size() - pending.size(), runner.jobs(),
            opt.heartbeatSec);
    }

    // Per-point attempt counters for journal records: each point is
    // claimed by exactly one worker and retried on that same thread,
    // so plain (non-atomic) counters are safe.
    std::vector<unsigned> attempts(points.size(), 0);

    const CrashSpec crash = crashFromEnv();

    const auto runPoint = [&](std::size_t slot) {
        const unsigned attempt = ++attempts[slot];
        if (crash.armed()) {
            const bool match = crash.byKey
                                   ? keys[slot] == crash.key
                                   : crash.point == std::ptrdiff_t(slot);
            if (match && crashGateOpen(crash))
                executeCrash(crash.mode); // the process dies right here
        }
        if (fault.point == std::ptrdiff_t(slot) && attempt <= fault.times)
            throwSimError(fault.category,
                          "injected fault: point %zu attempt %u", slot,
                          attempt);
        const RunResult r = runExperiment(points[slot]);
        rep.slots[slot].summary = summarize(r);
        if (progress && r.selfprof)
            progress->attachRollup(slot, r.selfprof);
        if (journal_os.isOpen()) {
            char line[256];
            std::snprintf(line, sizeof(line),
                          "P %016" PRIx64
                          " attempts=%u exec=%llu rdlat=%a wrlat=%a "
                          "rowhit=%a bw=%a cfg=",
                          keys[slot], attempt,
                          (unsigned long long)
                              rep.slots[slot].summary.execCpuCycles,
                          rep.slots[slot].summary.readLatMean,
                          rep.slots[slot].summary.writeLatMean,
                          rep.slots[slot].summary.rowHitRate,
                          rep.slots[slot].summary.bandwidthGBs);
            const std::string payload =
                std::string(line) + '"' + canon[slot] + '"';
            std::lock_guard<std::mutex> g(journal_mu);
            journal_os.append(payload); // one atomic framed write
        }
    };

    FaultPolicy policy;
    policy.maxAttempts = opt.maxAttempts;
    policy.maxFailures = opt.maxFailures;
    policy.cancel = opt.cancel;

    const SweepRunner::GuardedReport gr = runner.guardedRun(
        pending.size(), [&](std::size_t j) { runPoint(pending[j]); },
        policy, progress.get());

    for (std::size_t j = 0; j < pending.size(); ++j)
        rep.slots[pending[j]].run = gr.points[j];
    rep.aborted = gr.aborted;
    rep.cancelled = gr.cancelled;
    if (progress)
        progress->finish(rep.failures(), rep.aborted, rep.cancelled);
    return rep;
}

void
writeSweepCsv(std::ostream &os,
              const std::vector<ExperimentConfig> &points,
              const SweepReport &rep)
{
    os << "workload,mechanism,status,attempts,category,error,"
          "exec_cycles,read_lat,write_lat,row_hit,bandwidth_gbs\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepSlot &s = rep.slots[i];
        os << points[i].workload << ','
           << ctrl::mechanismName(points[i].mechanism) << ',';
        if (s.run.ok) {
            os << "ok," << s.run.attempts << ",,,"
               << s.summary.execCpuCycles << ','
               << fmt("%.3f", s.summary.readLatMean) << ','
               << fmt("%.3f", s.summary.writeLatMean) << ','
               << fmt("%.6f", s.summary.rowHitRate) << ','
               << fmt("%.6f", s.summary.bandwidthGBs) << '\n';
        } else if (s.run.skipped()) {
            os << "skipped,0,,,,,,,\n";
        } else {
            os << "failed," << s.run.attempts << ','
               << errorCategoryName(s.run.category) << ','
               << csvQuote(s.run.error) << ",,,,,\n";
        }
    }
}

void
writeSweepTable(std::ostream &os,
                const std::vector<ExperimentConfig> &points,
                const SweepReport &rep)
{
    // Normalise against the first successful point, as the CLI's
    // original sweep normalised against its first row.
    double base = 0.0;
    for (const SweepSlot &s : rep.slots)
        if (s.run.ok) {
            base = double(s.summary.execCpuCycles);
            break;
        }

    Table t;
    t.header({"point", "status", "exec cycles", "norm", "read lat",
              "write lat", "row hit", "GB/s", "tries"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepSlot &s = rep.slots[i];
        if (s.run.ok) {
            t.row({pointLabel(points[i]), "ok",
                   std::to_string(s.summary.execCpuCycles),
                   base > 0
                       ? Table::num(
                             double(s.summary.execCpuCycles) / base, 3)
                       : "-",
                   Table::num(s.summary.readLatMean, 1),
                   Table::num(s.summary.writeLatMean, 1),
                   Table::pct(s.summary.rowHitRate),
                   Table::num(s.summary.bandwidthGBs, 2),
                   std::to_string(s.run.attempts)});
        } else {
            const std::string status =
                s.run.skipped()
                    ? "skipped"
                    : std::string("failed(") +
                          errorCategoryName(s.run.category) + ")";
            t.row({pointLabel(points[i]), status, "-", "-", "-", "-",
                   "-", "-", std::to_string(s.run.attempts)});
        }
    }
    t.print(os);
}

} // namespace bsim::sim
