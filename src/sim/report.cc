#include "sim/report.hh"

#include <ostream>

#include "common/json.hh"
#include "common/table.hh"
#include "obs/engine_introspect.hh"
#include "obs/observability.hh"
#include "obs/selfprof.hh"

namespace bsim::sim
{

namespace
{

void
writeLatencyBreakdownJson(JsonWriter &w, const obs::LatencyBreakdown &lat)
{
    w.key("latency_breakdown").beginObject();
    for (std::size_t i = 0; i < obs::kNumAccessClasses; ++i) {
        const auto c = obs::AccessClass(i);
        const obs::PhaseStats &ps = lat.of(c);
        w.key(obs::accessClassName(c)).beginObject();
        w.key("count").value(ps.count());
        w.key("queue_mean").value(ps.queueMean.mean());
        w.key("pick_mean").value(ps.pickMean.mean());
        w.key("prep_mean").value(ps.prepMean.mean());
        w.key("data_mean").value(ps.dataMean.mean());
        w.key("total_mean").value(ps.totalMean.mean());
        w.key("total_p50").value(ps.total.percentile(0.50));
        w.key("total_p95").value(ps.total.percentile(0.95));
        w.key("total_p99").value(ps.total.percentile(0.99));
        w.endObject();
    }
    w.key("forwarded").beginObject();
    w.key("count").value(lat.forwardedMean().count());
    w.key("total_mean").value(lat.forwardedMean().mean());
    w.endObject();
    w.endObject();
}

void
writeCycleAccountingJson(JsonWriter &w, const obs::StallAttribution &st)
{
    w.key("cycle_accounting").beginObject();
    const auto totals = st.totals();
    w.key("totals").beginObject();
    for (std::size_t i = 0; i < dram::kNumStallCauses; ++i)
        if (totals[i])
            w.key(dram::stallCauseName(dram::StallCause(i)))
                .value(totals[i]);
    w.endObject();
    w.key("channels").beginArray();
    for (std::uint32_t ch = 0; ch < st.numChannels(); ++ch) {
        w.beginObject();
        w.key("channel").value(std::uint64_t(ch));
        w.key("cycles").value(st.cycles(ch));
        w.key("causes").beginObject();
        for (std::size_t i = 0; i < dram::kNumStallCauses; ++i) {
            const std::uint64_t n = st.count(ch, dram::StallCause(i));
            if (n)
                w.key(dram::stallCauseName(dram::StallCause(i))).value(n);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeProtocolAuditJson(JsonWriter &w, const obs::ProtocolAuditor &a)
{
    w.key("protocol_audit").beginObject();
    w.key("mode").value(obs::auditModeName(a.mode()));
    w.key("commands_audited").value(a.commandsAudited());
    w.key("violations").value(a.violationCount());
    w.endObject();
}

void
writeControllerStats(JsonWriter &w, const ctrl::ControllerStats &st)
{
    w.key("reads").value(st.reads);
    w.key("writes").value(st.writes);
    w.key("forwarded_reads").value(st.forwardedReads);
    w.key("read_latency_mean").value(st.readLatency.mean());
    w.key("write_latency_mean").value(st.writeLatency.mean());
    w.key("row_hit_rate").value(st.rowHitRate());
    w.key("row_conflict_rate").value(st.rowConflictRate());
    w.key("row_empty_rate").value(st.rowEmptyRate());
    w.key("write_saturation_rate").value(st.writeSaturationRate());
    w.key("refreshes").value(st.refreshes);
    w.key("bytes_transferred").value(st.bytesTransferred);
    w.key("mem_ticks").value(st.ticks);
    w.key("outstanding_reads_mean").value(st.outstandingReads.mean());
    w.key("outstanding_writes_mean").value(st.outstandingWrites.mean());
}

} // namespace

void
writeResultJson(std::ostream &os, const RunResult &r)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("workload").value(r.workload);
    w.key("mechanism").value(ctrl::mechanismName(r.mechanism));
    w.key("instructions").value(r.instructions);
    w.key("exec_cpu_cycles").value(r.execCpuCycles);
    w.key("mem_cycles").value(r.memCycles);
    w.key("ipc").value(r.ipc);
    w.key("addr_bus_utilization").value(r.addrBusUtil);
    w.key("data_bus_utilization").value(r.dataBusUtil);
    w.key("bandwidth_gbs").value(r.bandwidthGBs);
    w.key("l2_misses").value(r.l2Misses);
    w.key("mem_reads").value(r.memReads);
    w.key("mem_writes").value(r.memWrites);
    w.key("controller").beginObject();
    writeControllerStats(w, r.ctrl);
    w.endObject();
    w.key("scheduler").beginObject();
    for (const auto &[k, v] : r.sched)
        w.key(k).value(v);
    w.endObject();
    w.key("energy").beginObject();
    w.key("total_joules").value(r.energy.total());
    w.key("act_pre_joules").value(r.energy.actPre);
    w.key("read_joules").value(r.energy.readBurst);
    w.key("write_joules").value(r.energy.writeBurst);
    w.key("refresh_joules").value(r.energy.refresh);
    w.key("background_joules").value(r.energy.background);
    w.key("average_watts").value(r.avgPowerW);
    w.endObject();
    if (r.obs && r.obs->latency())
        writeLatencyBreakdownJson(w, *r.obs->latency());
    if (r.obs && r.obs->stalls())
        writeCycleAccountingJson(w, *r.obs->stalls());
    if (r.obs && r.obs->auditor())
        writeProtocolAuditJson(w, *r.obs->auditor());
    if (r.obs && r.obs->introspect()) {
        // Deterministic (simulated state only); the host self-profile
        // deliberately never appears here — see writeResultText.
        w.key("engine_introspect");
        r.obs->introspect()->writeJson(w);
    }
    if (r.obs && r.obs->critpath()) {
        w.key("critical_path");
        r.obs->critpath()->writeJson(w);
    }
    w.endObject();
    os << '\n';
}

void
writeCmpResultJson(std::ostream &os, const CmpResult &r)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("mechanism").value(ctrl::mechanismName(r.mechanism));
    w.key("workloads").beginArray();
    for (const auto &wl : r.workloads)
        w.value(wl);
    w.endArray();
    w.key("instructions").value(r.instructions);
    w.key("exec_cpu_cycles").value(r.execCpuCycles);
    w.key("per_core_cpu_cycles").beginArray();
    for (auto c : r.perCoreCpuCycles)
        w.value(c);
    w.endArray();
    w.key("per_core_ipc").beginArray();
    for (double v : r.perCoreIpc)
        w.value(v);
    w.endArray();
    w.key("data_bus_utilization").value(r.dataBusUtil);
    w.key("bandwidth_gbs").value(r.bandwidthGBs);
    w.key("controller").beginObject();
    writeControllerStats(w, r.ctrl);
    w.endObject();
    if (r.haveFairness) {
        const FairnessMetrics &f = r.fairness;
        w.key("fairness").beginObject();
        w.key("per_core_ipc_alone").beginArray();
        for (double v : f.perCoreIpcAlone)
            w.value(v);
        w.endArray();
        w.key("per_core_slowdown").beginArray();
        for (double v : f.perCoreSlowdown)
            w.value(v);
        w.endArray();
        w.key("max_slowdown").value(f.maxSlowdown);
        w.key("weighted_speedup").value(f.weightedSpeedup);
        w.key("harmonic_speedup").value(f.harmonicSpeedup);
        w.endObject();
    }
    w.endObject();
    os << '\n';
}

void
writeCmpResultText(std::ostream &os, const CmpResult &r)
{
    os << r.workloads.size() << "-core CMP, mechanism "
       << ctrl::mechanismName(r.mechanism) << ", " << r.instructions
       << " instructions per core\n";
    Table t;
    if (r.haveFairness)
        t.header({"core", "workload", "cpu cycles", "IPC", "IPC alone",
                  "slowdown"});
    else
        t.header({"core", "workload", "cpu cycles", "IPC"});
    for (std::size_t i = 0; i < r.workloads.size(); ++i) {
        std::vector<std::string> row = {
            std::to_string(i), r.workloads[i],
            i < r.perCoreCpuCycles.size()
                ? std::to_string(r.perCoreCpuCycles[i])
                : "-",
            i < r.perCoreIpc.size() ? Table::num(r.perCoreIpc[i], 3)
                                    : "-"};
        if (r.haveFairness) {
            row.push_back(
                i < r.fairness.perCoreIpcAlone.size()
                    ? Table::num(r.fairness.perCoreIpcAlone[i], 3)
                    : "-");
            row.push_back(
                i < r.fairness.perCoreSlowdown.size()
                    ? Table::num(r.fairness.perCoreSlowdown[i], 3)
                    : "-");
        }
        t.row(row);
    }
    t.print(os);

    os << "execution time (CPU cycles): " << r.execCpuCycles << '\n'
       << "effective bandwidth: " << Table::num(r.bandwidthGBs, 2)
       << " GB/s, data bus utilization " << Table::pct(r.dataBusUtil)
       << '\n';
    if (r.haveFairness) {
        os << "fairness: max slowdown "
           << Table::num(r.fairness.maxSlowdown, 3)
           << ", weighted speedup "
           << Table::num(r.fairness.weightedSpeedup, 3)
           << ", harmonic speedup "
           << Table::num(r.fairness.harmonicSpeedup, 3) << '\n';
    }
}

void
writeResultText(std::ostream &os, const RunResult &r)
{
    os << "workload " << r.workload << ", mechanism "
       << ctrl::mechanismName(r.mechanism) << ", " << r.instructions
       << " instructions\n";
    Table t;
    t.header({"metric", "value"});
    t.row({"execution time (CPU cycles)",
           std::to_string(r.execCpuCycles)});
    t.row({"IPC", Table::num(r.ipc, 3)});
    t.row({"read latency (mem cycles)",
           Table::num(r.ctrl.readLatency.mean(), 1)});
    t.row({"write latency (mem cycles)",
           Table::num(r.ctrl.writeLatency.mean(), 1)});
    t.row({"row hit / conflict / empty",
           Table::pct(r.ctrl.rowHitRate()) + " / " +
               Table::pct(r.ctrl.rowConflictRate()) + " / " +
               Table::pct(r.ctrl.rowEmptyRate())});
    t.row({"addr / data bus utilization",
           Table::pct(r.addrBusUtil) + " / " + Table::pct(r.dataBusUtil)});
    t.row({"write queue saturation",
           Table::pct(r.ctrl.writeSaturationRate())});
    t.row({"effective bandwidth", Table::num(r.bandwidthGBs, 2) + " GB/s"});
    t.row({"memory reads / writes", std::to_string(r.ctrl.reads) + " / " +
                                        std::to_string(r.ctrl.writes)});
    t.row({"DRAM energy / avg power",
           Table::num(r.energy.total() * 1e3, 2) + " mJ / " +
               Table::num(r.avgPowerW, 2) + " W"});
    for (const auto &[k, v] : r.sched)
        t.row({"scheduler: " + k, Table::num(v, 0)});
    t.print(os);

    if (r.obs && r.obs->latency()) {
        const obs::LatencyBreakdown &lat = *r.obs->latency();
        os << "\nlatency breakdown (mem cycles, means per phase)\n";
        Table lt;
        lt.header({"class", "count", "queue", "pick", "prep", "data",
                   "total", "p95"});
        for (std::size_t i = 0; i < obs::kNumAccessClasses; ++i) {
            const auto c = obs::AccessClass(i);
            const obs::PhaseStats &ps = lat.of(c);
            lt.row({obs::accessClassName(c),
                    std::to_string(ps.count()),
                    Table::num(ps.queueMean.mean(), 1),
                    Table::num(ps.pickMean.mean(), 1),
                    Table::num(ps.prepMean.mean(), 1),
                    Table::num(ps.dataMean.mean(), 1),
                    Table::num(ps.totalMean.mean(), 1),
                    std::to_string(ps.total.percentile(0.95))});
        }
        lt.row({"forwarded",
                std::to_string(lat.forwardedMean().count()), "-", "-",
                "-", "-", Table::num(lat.forwardedMean().mean(), 1),
                std::to_string(lat.forwarded().percentile(0.95))});
        lt.print(os);
    }

    if (r.obs && r.obs->stalls()) {
        os << '\n';
        r.obs->stalls()->writeText(os);
    }

    if (r.obs && r.obs->auditor()) {
        const obs::ProtocolAuditor &a = *r.obs->auditor();
        os << "\nprotocol audit (" << obs::auditModeName(a.mode())
           << "): " << a.commandsAudited() << " commands, "
           << a.violationCount() << " violations\n";
    }

    if (r.obs && r.obs->introspect()) {
        os << '\n';
        r.obs->introspect()->writeText(os, r.memCycles);
    }

    if (r.obs && r.obs->critpath()) {
        os << '\n';
        r.obs->critpath()->writeText(os);
    }

    if (r.selfprof && r.selfprof->valid) {
        // Host wall time: text report only, never the result JSON, so
        // simulated outputs stay reproducible byte for byte.
        os << '\n';
        r.selfprof->writeText(os);
    }
}

} // namespace bsim::sim
