/**
 * @file
 * CMP fairness sweeps: run runCmpFairness over a list of mixes with a
 * crash-safe resume journal and CSV output, mirroring the single-core
 * sweep machinery in sim/sweep.hh.
 *
 * The journal shares the sweep journal's v3 framing
 * (`J3 <len> <crc32> <payload>`) but uses its own record kind
 * (payload prefix "F ") and its own canonical-config key space, so a
 * fairness journal and a point journal can never claim each other's
 * records even if the files are mixed up.
 */

#ifndef BURSTSIM_SIM_FAIRNESS_HH
#define BURSTSIM_SIM_FAIRNESS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hh"

namespace bsim::sim
{

/**
 * Canonical text encoding of every fate-determining CmpConfig field
 * ("cmp1|w0,w1,...|mech|instr|threshold|engine|wd"). Instruction count
 * 0 is resolved to defaultInstructions() first, exactly like the
 * single-run canonicalConfig, so "default" and "explicitly the
 * default" journal identically.
 */
std::string canonicalCmpConfig(const CmpConfig &cfg);

/** FNV-1a key of canonicalCmpConfig (the journal record key). */
std::uint64_t cmpConfigKey(const CmpConfig &cfg);

/** One journaled fairness result. */
struct FairnessRecord
{
    std::uint64_t cores = 0;
    std::uint64_t execCpuCycles = 0;
    double weightedSpeedup = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;
    std::vector<double> perCoreSlowdown;
    std::string configEcho; //!< canonical config echoed in the record
};

/**
 * Load a fairness journal: CRC-clean, well-framed "F" records keyed by
 * cmpConfigKey. Malformed or torn lines are warned about and skipped —
 * a torn tail is the expected footprint of a crash mid-append.
 */
std::unordered_map<std::uint64_t, FairnessRecord>
loadFairnessJournal(const std::string &path);

/** Options of one fairness sweep. */
struct FairnessSweepOptions
{
    /** Resume journal path; empty = no journaling. */
    std::string journal;
    /** fdatasync() after every record (crash durability). */
    bool journalSync = true;
};

/** Outcome of one mix within a fairness sweep. */
struct FairnessSlot
{
    bool ok = false;
    bool fromJournal = false;
    FairnessRecord record;
};

/** Result of runFairnessSweep, one slot per input mix. */
struct FairnessReport
{
    std::vector<FairnessSlot> slots;

    std::size_t journaled() const;
};

/**
 * Run runCmpFairness for every mix in @p points, resuming journaled
 * results (same key AND same canonical-config echo) instead of
 * re-running them. Each completed mix is appended to the journal
 * before the next one starts, so a killed sweep resumes at the first
 * unfinished mix.
 */
FairnessReport runFairnessSweep(const std::vector<CmpConfig> &points,
                                const FairnessSweepOptions &opt);

/**
 * CSV rendering: one row per mix with the three aggregates plus
 * sd_core<i> columns sized to the widest mix in the sweep (narrower
 * mixes leave the extra cells empty).
 */
void writeFairnessCsv(std::ostream &os,
                      const std::vector<CmpConfig> &points,
                      const FairnessReport &rep);

} // namespace bsim::sim

#endif // BURSTSIM_SIM_FAIRNESS_HH
