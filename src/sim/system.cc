#include "sim/system.hh"

#include "common/log.hh"
#include "obs/observability.hh"

namespace bsim::sim
{

SystemConfig
SystemConfig::baseline()
{
    SystemConfig cfg;
    // Table 3: 4 GHz 8-way CPU, 32 LSQ, 196 ROB; 128 KB 2-way L1s; 2 MB
    // 16-way L2; 64 B lines; 4 GB DDR2 PC2-6400 5-5-5; 2 channels x 4
    // ranks x 4 banks; open page; page interleaving; pool 256 / 64
    // writes. All of those are the defaults of the component configs.
    cfg.ctrl.mechanism = ctrl::Mechanism::BkInOrder;
    return cfg;
}

/** Routes one core's misses/writebacks into its FSB queue. */
class System::CorePort : public cpu::MemPort
{
  public:
    CorePort(System &sys, std::uint32_t core) : sys_(sys), core_(core) {}

    bool
    canSend(unsigned n) const override
    {
        return sys_.cores_[core_].fsbQueue.size() + n <=
               sys_.cfg_.memQueueCap;
    }

    void
    sendRead(Addr block_addr, bool critical) override
    {
        sys_.cores_[core_].fsbQueue.push_back(
            {block_addr, false, critical,
             sys_.now_ + sys_.cfg_.fsbLatency});
    }

    void
    sendWrite(Addr block_addr) override
    {
        sys_.cores_[core_].fsbQueue.push_back(
            {block_addr, true, false, sys_.now_ + sys_.cfg_.fsbLatency});
    }

  private:
    System &sys_;
    std::uint32_t core_;
};

System::System(const SystemConfig &cfg, trace::TraceSource &trace)
    : cfg_(cfg)
{
    build({&trace});
}

System::System(const SystemConfig &cfg,
               const std::vector<trace::TraceSource *> &traces)
    : cfg_(cfg)
{
    build(traces);
}

System::~System() = default;

void
System::build(const std::vector<trace::TraceSource *> &traces)
{
    if (traces.empty())
        fatal("system: at least one workload trace is required");

    mem_ = std::make_unique<dram::MemorySystem>(cfg_.dram);
    ctrl_ = std::make_unique<ctrl::MemoryController>(*mem_, cfg_.ctrl);

    if (cfg_.obs.any()) {
        obs_ = std::make_unique<obs::Observability>(cfg_.obs, cfg_.dram,
                                                    cfg_.busMHz);
        if (obs_->commandLog())
            mem_->attachLog(obs_->commandLog());
        if (obs_->auditor())
            mem_->attachObserver(obs_->auditor());
        ctrl_->attachObservability(obs_.get());
    }

    cores_.resize(traces.size());
    for (std::uint32_t i = 0; i < traces.size(); ++i) {
        CoreNode &node = cores_[i];
        node.port = std::make_unique<CorePort>(*this, i);
        node.caches =
            std::make_unique<cpu::CacheHierarchy>(cfg_.caches, *node.port);
        node.core = std::make_unique<cpu::Core>(cfg_.core, *node.caches,
                                                *traces[i]);
    }

    ctrl_->setReadCallback([this](const ctrl::MemAccess &a, Tick now) {
        // Read data crosses the FSB back to the requesting core.
        respQueue_.emplace(now + cfg_.fsbLatency,
                           std::make_pair(a.addr,
                                          std::uint32_t(a.tag)));
    });
}

std::unique_ptr<obs::Observability>
System::releaseObservability()
{
    if (obs_) {
        mem_->attachLog(nullptr);
        mem_->attachObserver(nullptr);
        ctrl_->attachObservability(nullptr);
    }
    return std::move(obs_);
}

bool
System::canSend(unsigned n) const
{
    return cores_[0].fsbQueue.size() + n <= cfg_.memQueueCap;
}

void
System::sendRead(Addr block_addr, bool critical)
{
    cores_[0].fsbQueue.push_back(
        {block_addr, false, critical, now_ + cfg_.fsbLatency});
}

void
System::sendWrite(Addr block_addr)
{
    cores_[0].fsbQueue.push_back(
        {block_addr, true, false, now_ + cfg_.fsbLatency});
}

void
System::tick()
{
    // 1. Deliver read data that has crossed the bus back to its core.
    while (!respQueue_.empty() && respQueue_.begin()->first <= now_) {
        const auto [addr, core_id] = respQueue_.begin()->second;
        cores_[core_id].core->onMemResponse(addr, cpuNow_);
        respQueue_.erase(respQueue_.begin());
    }

    // 2. Memory controller cycle (schedules SDRAM transactions).
    ctrl_->tick(now_);

    // 3. Admit FSB requests round robin across cores. A saturated write
    //    queue or full pool backs requests up into the per-core FSB
    //    queues, which in turn stalls caches and pipelines (Section 3.2).
    const std::uint32_t n = numCores();
    for (std::uint32_t scanned = 0, served = 0;
         scanned < n * cfg_.memQueueCap && ctrl_->canAccept(); ++scanned) {
        CoreNode &node = cores_[rrCore_];
        if (!node.fsbQueue.empty() &&
            node.fsbQueue.front().readyAt <= now_) {
            const FsbRequest &rq = node.fsbQueue.front();
            ctrl_->submit(rq.isWrite ? AccessType::Write
                                     : AccessType::Read,
                          rq.addr, now_, nullptr, rrCore_, rq.critical);
            node.fsbQueue.pop_front();
            served += 1;
        }
        rrCore_ = (rrCore_ + 1) % n;
        if (served >= n * cfg_.memQueueCap)
            break;
    }

    // 4. CPU cycles within this memory cycle, for every running core.
    bool all_done = true;
    for (std::uint32_t i = 0; i < n; ++i) {
        CoreNode &node = cores_[i];
        if (node.done)
            continue;
        for (std::uint32_t c = 0; c < cfg_.cpuCyclesPerMemCycle; ++c) {
            node.core->cpuCycle(cpuNow_ + c);
            if (node.core->done()) {
                node.done = true;
                node.doneAtCpu = cpuNow_ + c + 1;
                break;
            }
        }
        all_done = all_done && node.done;
    }
    cpuNow_ += cfg_.cpuCyclesPerMemCycle;
    if (all_done && !allDone_) {
        allDone_ = true;
        execCpuCycles_ = cpuNow_;
    }

    now_ += 1;
}

bool
System::done() const
{
    if (!allDone_ || ctrl_->busy())
        return false;
    for (const auto &node : cores_)
        if (!node.fsbQueue.empty())
            return false;
    return true;
}

Tick
System::run(Tick max_ticks)
{
    const Tick start = now_;
    while (!done()) {
        if (now_ - start >= max_ticks)
            break;
        tick();
    }
    return now_ - start;
}

} // namespace bsim::sim
