#include "sim/system.hh"

#include <chrono>
#include <cstdio>

#include "common/error.hh"
#include "common/log.hh"
#include "obs/engine_introspect.hh"
#include "obs/observability.hh"
#include "obs/selfprof.hh"

namespace bsim::sim
{

const char *
engineKindName(EngineKind k)
{
    return k == EngineKind::Step ? "step" : "skip";
}

SystemConfig
SystemConfig::baseline()
{
    SystemConfig cfg;
    // Table 3: 4 GHz 8-way CPU, 32 LSQ, 196 ROB; 128 KB 2-way L1s; 2 MB
    // 16-way L2; 64 B lines; 4 GB DDR2 PC2-6400 5-5-5; 2 channels x 4
    // ranks x 4 banks; open page; page interleaving; pool 256 / 64
    // writes. All of those are the defaults of the component configs.
    cfg.ctrl.mechanism = ctrl::Mechanism::BkInOrder;
    return cfg;
}

/** Routes one core's misses/writebacks into its FSB queue. */
class System::CorePort : public cpu::MemPort
{
  public:
    CorePort(System &sys, std::uint32_t core) : sys_(sys), core_(core) {}

    bool
    canSend(unsigned n) const override
    {
        return sys_.cores_[core_].fsbQueue.size() + n <=
               sys_.cfg_.memQueueCap;
    }

    void
    sendRead(Addr block_addr, bool critical) override
    {
        sys_.cores_[core_].fsbQueue.push_back(
            {block_addr, false, critical,
             sys_.now_ + sys_.cfg_.fsbLatency});
    }

    void
    sendWrite(Addr block_addr) override
    {
        sys_.cores_[core_].fsbQueue.push_back(
            {block_addr, true, false, sys_.now_ + sys_.cfg_.fsbLatency});
    }

  private:
    System &sys_;
    std::uint32_t core_;
};

System::System(const SystemConfig &cfg, trace::TraceSource &trace)
    : cfg_(cfg)
{
    build({&trace});
}

System::System(const SystemConfig &cfg,
               const std::vector<trace::TraceSource *> &traces)
    : cfg_(cfg)
{
    build(traces);
}

System::~System() = default;

void
System::build(const std::vector<trace::TraceSource *> &traces)
{
    if (traces.empty())
        throwSimError(ErrorCategory::Config,
                      "system: at least one workload trace is required");

    mem_ = std::make_unique<dram::MemorySystem>(cfg_.dram);
    ctrl_ = std::make_unique<ctrl::MemoryController>(*mem_, cfg_.ctrl);
    ctrl_->setEventDriven(cfg_.engine == EngineKind::Skip);

    if (cfg_.obs.any()) {
        obs_ = std::make_unique<obs::Observability>(cfg_.obs, cfg_.dram,
                                                    cfg_.busMHz);
        if (obs_->commandLog())
            mem_->attachLog(obs_->commandLog());
        if (obs_->auditor())
            mem_->attachObserver(obs_->auditor());
        ctrl_->attachObservability(obs_.get());
        intro_ = obs_->introspect();
    }

    cores_.resize(traces.size());
    for (std::uint32_t i = 0; i < traces.size(); ++i) {
        CoreNode &node = cores_[i];
        node.port = std::make_unique<CorePort>(*this, i);
        node.caches =
            std::make_unique<cpu::CacheHierarchy>(cfg_.caches, *node.port);
        node.core = std::make_unique<cpu::Core>(cfg_.core, *node.caches,
                                                *traces[i]);
    }

    ctrl_->setReadCallback([this](const ctrl::MemAccess &a, Tick now) {
        // Read data crosses the FSB back to the requesting core.
        respQueue_.push({now + cfg_.fsbLatency, respSeq_++, a.addr,
                         std::uint32_t(a.tag)});
    });
}

std::unique_ptr<obs::Observability>
System::releaseObservability()
{
    if (obs_) {
        mem_->attachLog(nullptr);
        mem_->attachObserver(nullptr);
        ctrl_->attachObservability(nullptr);
        intro_ = nullptr;
    }
    return std::move(obs_);
}

bool
System::canSend(unsigned n) const
{
    return cores_[0].fsbQueue.size() + n <= cfg_.memQueueCap;
}

void
System::sendRead(Addr block_addr, bool critical)
{
    cores_[0].fsbQueue.push_back(
        {block_addr, false, critical, now_ + cfg_.fsbLatency});
}

void
System::sendWrite(Addr block_addr)
{
    cores_[0].fsbQueue.push_back(
        {block_addr, true, false, now_ + cfg_.fsbLatency});
}

void
System::admitFsb()
{
    // Admit FSB requests round robin across cores. A saturated write
    // queue or full pool backs requests up into the per-core FSB
    // queues, which in turn stalls caches and pipelines (Section 3.2).
    // A full admission-less rotation is a fixed point (queue fronts
    // only change on a pop, acceptance only tightens), so the loop
    // stops after one instead of burning n * memQueueCap scans; the
    // round robin then lands where the exhausted scan would have
    // (the old bound was a whole number of rotations).
    const std::uint32_t n = numCores();
    const std::uint32_t r0 = rrCore_;
    for (std::uint32_t idle = 0; ctrl_->canAccept();) {
        CoreNode &node = cores_[rrCore_];
        if (!node.fsbQueue.empty() &&
            node.fsbQueue.front().readyAt <= now_) {
            const FsbRequest &rq = node.fsbQueue.front();
            ctrl_->submit(rq.isWrite ? AccessType::Write
                                     : AccessType::Read,
                          rq.addr, now_, nullptr, rrCore_, rq.critical);
            node.fsbQueue.pop_front();
            idle = 0;
        } else {
            idle += 1;
        }
        rrCore_ = (rrCore_ + 1) % n;
        if (idle >= n) {
            rrCore_ = r0;
            break;
        }
    }
}

void
System::tick()
{
    if (intro_)
        intro_->noteStepped();

    // 1. Deliver read data that has crossed the bus back to its core.
    while (!respQueue_.empty() && respQueue_.top().at <= now_) {
        const Response r = respQueue_.top();
        respQueue_.pop();
        cores_[r.core].core->onMemResponse(r.addr, cpuNow_);
        cores_[r.core].quiesceValid = false; // may wake the core
    }

    // 2. Memory controller cycle (schedules SDRAM transactions).
    {
        obs::prof::Scope prof(obs::prof::Phase::CtrlTick);
        ctrl_->tick(now_);
    }

    // 3. FSB admission.
    {
        obs::prof::Scope prof(obs::prof::Phase::FsbAdmit);
        admitFsb();
    }

    // 4. CPU cycles within this memory cycle, for every running core.
    obs::prof::Scope cpu_prof(obs::prof::Phase::CpuPhase);
    const bool ed = cfg_.engine == EngineKind::Skip;
    const std::uint32_t window = cfg_.cpuCyclesPerMemCycle;
    bool all_done = true;
    for (std::uint32_t i = 0; i < numCores(); ++i) {
        CoreNode &node = cores_[i];
        if (node.done)
            continue;
        node.quiesceValid = false; // the phase below mutates the core
        for (std::uint32_t c = 0; c < window; ++c) {
            node.core->cpuCycle(cpuNow_ + c);
            if (node.core->done()) {
                node.done = true;
                node.doneAtCpu = cpuNow_ + c + 1;
                break;
            }
            // Skip engine: once the core goes quiescent mid-window with
            // no local wakeup before the window ends, the remaining CPU
            // cycles are pure head-stalls (responses arrive only at
            // tick boundaries) — apply them in bulk. The verdict also
            // primes the quiescence cache for the next cpuQuiet().
            if (ed && c + 1 < window &&
                node.core->quiescentAt(cpuNow_ + c + 1)) {
                const std::uint64_t ev =
                    node.core->nextLocalEventCpu(cpuNow_ + c + 1);
                if (ev >= cpuNow_ + window) {
                    node.core->skipStallCycles(window - c - 1);
                    node.quiesceValid = true;
                    node.quiesceEventCpu = ev;
                    break;
                }
            }
        }
        all_done = all_done && node.done;
    }
    cpuNow_ += cfg_.cpuCyclesPerMemCycle;
    if (all_done && !allDone_) {
        allDone_ = true;
        execCpuCycles_ = cpuNow_;
    }

    now_ += 1;
}

bool
System::coreQuiescent(CoreNode &node)
{
    if (!node.quiesceValid) {
        if (!node.core->quiescentAt(cpuNow_))
            return false;
        node.quiesceEventCpu = node.core->nextLocalEventCpu(cpuNow_);
        node.quiesceValid = true;
    }
    return true;
}

bool
System::cpuQuiet()
{
    if (!respQueue_.empty() && respQueue_.top().at <= now_)
        return false;
    for (CoreNode &node : cores_) {
        if (node.done)
            continue;
        if (!coreQuiescent(node) ||
            node.quiesceEventCpu < cpuNow_ + cfg_.cpuCyclesPerMemCycle)
            return false;
    }
    return true;
}

void
System::fastTick()
{
    // cpuQuiet() established: no response due, every running core
    // quiescent through this tick's whole CPU-cycle window. Each of
    // those CPU cycles would only bump headStalls_, so apply them in
    // bulk; the memory side runs exactly as in tick().
    if (intro_)
        intro_->noteStepped();
    {
        obs::prof::Scope prof(obs::prof::Phase::CtrlTick);
        ctrl_->tick(now_);
    }
    {
        obs::prof::Scope prof(obs::prof::Phase::FsbAdmit);
        admitFsb();
    }
    for (CoreNode &node : cores_)
        if (!node.done)
            node.core->skipStallCycles(cfg_.cpuCyclesPerMemCycle);
    cpuNow_ += cfg_.cpuCyclesPerMemCycle;
    now_ += 1;
}

bool
System::done() const
{
    if (!allDone_ || ctrl_->busy())
        return false;
    for (const auto &node : cores_)
        if (!node.fsbQueue.empty())
            return false;
    return true;
}

Tick
System::skipHorizon(obs::WakeSource *src)
{
    obs::prof::Scope prof(obs::prof::Phase::Horizon);
    if (src)
        *src = obs::WakeSource{}; // Unbounded until a bound wins
    Tick h = kTickMax;
    const auto consider = [&h, src](Tick t, obs::WakeReason r) {
        // Strict < keeps first-minimum-wins over the unchanged scan
        // order, so the returned horizon is identical with and without
        // attribution.
        if (t < h) {
            h = t;
            if (src) {
                src->reason = r;
                src->channel = -1;
            }
        }
    };

    // Cores: every running core must be provably quiescent, and its
    // next self-wakeup bounds the span. CPU cycle e lands in memory
    // tick now_ + (e - cpuNow_) / cpuCyclesPerMemCycle, which must run
    // for real.
    for (CoreNode &node : cores_) {
        if (node.done)
            continue;
        if (!coreQuiescent(node)) {
            if (src)
                src->reason = obs::WakeReason::CoreActive;
            return now_;
        }
        if (node.quiesceEventCpu != kTickMax)
            consider(now_ + (node.quiesceEventCpu - cpuNow_) /
                                cfg_.cpuCyclesPerMemCycle,
                     obs::WakeReason::CoreWake);
    }

    // Response delivery, controller activity (completions, refresh,
    // scheduler issue opportunities, metrics epochs).
    if (!respQueue_.empty())
        consider(respQueue_.top().at, obs::WakeReason::Response);
    obs::WakeSource ctrl_src;
    const Tick ctrl_t =
        ctrl_->nextEventTick(now_, src ? &ctrl_src : nullptr);
    if (ctrl_t < h) {
        h = ctrl_t;
        if (src)
            *src = ctrl_src;
    }

    // FSB admission: with room in the controller, the next request to
    // come of age is admitted that very tick. (Without room, the
    // unblocking issue is already a controller event.)
    if (ctrl_->canAccept()) {
        for (const CoreNode &node : cores_)
            if (!node.fsbQueue.empty())
                consider(node.fsbQueue.front().readyAt,
                         obs::WakeReason::FsbAdmit);
    }

    return h;
}

void
System::skipTo(Tick target)
{
    obs::prof::Scope prof(obs::prof::Phase::SkipSpan);
    const Tick span = target - now_;
    ctrl_->tickSpan(now_, span);
    const std::uint64_t cpu_span =
        std::uint64_t(span) * cfg_.cpuCyclesPerMemCycle;
    for (CoreNode &node : cores_)
        if (!node.done)
            node.core->skipStallCycles(cpu_span);
    cpuNow_ += cpu_span;
    now_ = target;
}

std::uint64_t
System::retiredAccesses() const
{
    const ctrl::ControllerStats &s = ctrl_->stats();
    return s.reads + s.writes + s.forwardedReads;
}

void
System::checkProgress(WatchState &w)
{
    // Wall-clock deadline, polled coarsely so the steady_clock read
    // stays off the per-tick path. The iteration count understates
    // elapsed time under the skip engine (one iteration may cover a
    // long span), which only makes the poll more frequent per second.
    if (cfg_.deadlineSec > 0 && (++w.iter & 1023u) == 0) {
        const auto spent = std::chrono::steady_clock::now() - w.started;
        if (std::chrono::duration<double>(spent).count() >=
            cfg_.deadlineSec)
            throwSimError(
                ErrorCategory::Resource,
                "simulation exceeded the %.1f s wall-clock deadline "
                "at memory cycle %llu",
                cfg_.deadlineSec, (unsigned long long)now_);
    }

    if (cfg_.watchdogCycles == 0)
        return;
    const std::uint64_t retired = retiredAccesses();
    if (retired != w.lastRetired || !ctrl_->busy()) {
        // Progress, or nothing on the memory side to make progress on
        // (an idle controller is allowed to sit still indefinitely).
        w.lastRetired = retired;
        w.lastProgress = now_;
        return;
    }
    if (now_ - w.lastProgress < cfg_.watchdogCycles)
        return;
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "forward-progress watchdog: no access retired for %llu "
                  "memory cycles while the controller was busy (now=%llu, "
                  "retired=%llu)",
                  (unsigned long long)(now_ - w.lastProgress),
                  (unsigned long long)now_, (unsigned long long)retired);
    throw SimError(ErrorCategory::Internal, msg,
                   ctrl_->progressSnapshot(now_));
}

Tick
System::run(Tick max_ticks)
{
    obs::prof::Scope prof(obs::prof::Phase::Run);
    const Tick start = now_;
    const bool skip = cfg_.engine == EngineKind::Skip;
    WatchState watch;
    watch.lastRetired = retiredAccesses();
    watch.lastProgress = now_;
    watch.started = std::chrono::steady_clock::now();
    while (!done()) {
        checkProgress(watch);
        if (now_ - start >= max_ticks)
            break;
        if (!skip) {
            tick();
            continue;
        }
        // With a dead CPU phase the tick degrades to its memory side
        // plus a bulk stall update; when the memory side is idle too,
        // the horizon then covers whole spans of such ticks at once.
        const bool quiet = cpuQuiet();
        if (quiet)
            fastTick();
        else
            tick();
        if (done())
            continue;
        obs::WakeSource wake;
        Tick h = skipHorizon(intro_ ? &wake : nullptr);
        if (h == kTickMax) {
            if (intro_)
                intro_->noteBlocked(wake); // wake stays Unbounded
            continue; // no bounded dead span provable; keep stepping
        }
        if (h - start > max_ticks)
            h = start + max_ticks; // stop exactly where stepping would
        if (h > now_) {
            if (intro_)
                intro_->noteSkip(wake, h - now_);
            skipTo(h);
        } else if (intro_) {
            intro_->noteBlocked(wake);
        }
    }
    return now_ - start;
}

} // namespace bsim::sim
