#include "sim/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace bsim::sim
{

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : std::thread::hardware_concurrency())
{
    if (jobs_ == 0)
        jobs_ = 1; // hardware_concurrency() may be unknown
}

void
SweepRunner::run(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const
{
    const std::size_t workers =
        std::size_t(jobs_) < count ? jobs_ : count;
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::exception_ptr err;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(mu);
                if (!err)
                    err = std::current_exception();
                next.store(count); // cancel unclaimed work
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 0; w + 1 < workers; ++w)
        pool.emplace_back(worker);
    worker(); // this thread participates
    for (std::thread &t : pool)
        t.join();
    if (err)
        std::rethrow_exception(err);
}

SweepRunner::GuardedReport
SweepRunner::guardedRun(std::size_t count,
                        const std::function<void(std::size_t)> &fn,
                        const FaultPolicy &policy,
                        ProgressObserver *progress) const
{
    GuardedReport rep;
    rep.points.resize(count);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<bool> aborted{false};
    std::atomic<bool> cancelled{false};
    const unsigned max_attempts =
        policy.maxAttempts ? policy.maxAttempts : 1;

    const auto runPoint = [&](std::size_t i) {
        RunOutcome &o = rep.points[i];
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
            o.attempts = attempt;
            if (progress)
                progress->onPointStart(i, attempt);
            try {
                fn(i);
                o.ok = true;
                o.error.clear();
                break;
            } catch (const SimError &e) {
                o.category = e.category();
                o.error = e.describe();
                if (!errorCategoryTransient(e.category()))
                    break;
            } catch (const std::exception &e) {
                o.category = ErrorCategory::Internal;
                o.error = std::string("[internal] ") + e.what();
                break;
            }
        }
        o.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (progress)
            progress->onPointFinish(i, o);
        if (!o.ok &&
            failures.fetch_add(1) + 1 > policy.maxFailures)
            aborted.store(true);
    };

    const auto worker = [&]() {
        for (;;) {
            if (aborted.load())
                return;
            if (policy.cancel && policy.cancel->load()) {
                cancelled.store(true);
                return;
            }
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            runPoint(i);
        }
    };

    const std::size_t workers =
        std::size_t(jobs_) < count ? jobs_ : count;
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (std::size_t w = 0; w + 1 < workers; ++w)
            pool.emplace_back(worker);
        worker(); // this thread participates
        for (std::thread &t : pool)
            t.join();
    }

    rep.aborted = aborted.load();
    rep.cancelled =
        cancelled.load() || (policy.cancel && policy.cancel->load());
    return rep;
}

} // namespace bsim::sim
