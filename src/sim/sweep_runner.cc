#include "sim/sweep_runner.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace bsim::sim
{

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : std::thread::hardware_concurrency())
{
    if (jobs_ == 0)
        jobs_ = 1; // hardware_concurrency() may be unknown
}

void
SweepRunner::run(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const
{
    const std::size_t workers =
        std::size_t(jobs_) < count ? jobs_ : count;
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::exception_ptr err;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(mu);
                if (!err)
                    err = std::current_exception();
                next.store(count); // cancel unclaimed work
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 0; w + 1 < workers; ++w)
        pool.emplace_back(worker);
    worker(); // this thread participates
    for (std::thread &t : pool)
        t.join();
    if (err)
        std::rethrow_exception(err);
}

} // namespace bsim::sim
