/**
 * @file
 * Full-system wiring: core(s) -> caches -> front-side buffer -> memory
 * controller -> SDRAM, with the Table 3 baseline configuration and the
 * 4 GHz CPU : 400 MHz memory bus clock-domain crossing (10 CPU cycles per
 * memory cycle).
 *
 * The system supports chip multiprocessing (paper Section 6: "access
 * reordering mechanisms will play a more important role with chip level
 * multiple processors"): each core has private L1/L2 caches and its own
 * FSB queue; all cores share the memory controller. Workloads are
 * assumed address-disjoint (no coherence is modelled).
 */

#ifndef BURSTSIM_SIM_SYSTEM_HH
#define BURSTSIM_SIM_SYSTEM_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "cpu/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "ctrl/controller.hh"
#include "dram/memory_system.hh"
#include "obs/obs_config.hh"
#include "trace/instr.hh"

namespace bsim::obs
{
class EngineIntrospect;
class Observability;
struct WakeSource;
} // namespace bsim::obs

namespace bsim::sim
{

/**
 * Simulation engine selection.
 *
 * Both engines produce bit-identical statistics (asserted by the
 * engine-equivalence suite); Skip additionally fast-forwards across
 * provably dead tick spans, so it is the default.
 */
enum class EngineKind : std::uint8_t
{
    Step, //!< tick-accurate: every memory cycle is simulated
    Skip, //!< event-driven: dead cycles are batched (same results)
};

/** Printable engine name. */
const char *engineKindName(EngineKind k);

/** Complete machine configuration. */
struct SystemConfig
{
    cpu::CoreConfig core;
    cpu::HierarchyConfig caches;
    dram::DramConfig dram;
    ctrl::ControllerConfig ctrl;

    /** CPU cycles per memory bus cycle (4 GHz / 400 MHz). */
    std::uint32_t cpuCyclesPerMemCycle = 10;
    /** Front-side bus buffer depth per core (requests toward memory). */
    std::size_t memQueueCap = 6;
    /** FSB transfer latency, memory cycles, each direction. */
    Tick fsbLatency = 2;
    /** Memory bus clock in MHz (for bandwidth reporting). */
    double busMHz = 400.0;
    /** Simulation engine (results are identical either way). */
    EngineKind engine = EngineKind::Skip;

    /** Observability pillars to enable (all off by default). */
    obs::ObsConfig obs;

    /**
     * Forward-progress watchdog: if the controller stays busy for this
     * many memory cycles without a single access retiring (read or
     * write completion, or a forwarded read), run() throws a SimError
     * (category internal) whose context carries the controller's
     * queue/bank snapshot. Refreshes deliberately do not count as
     * progress — a stuck scheduler leaves the refresh engine running,
     * and counting them would mask exactly the hangs the watchdog
     * exists to catch. The default is far above any legitimate
     * completion gap (tRFC and tREFI are a few thousand cycles at
     * most); 0 disables the watchdog.
     */
    Tick watchdogCycles = 50'000;
    /**
     * Wall-clock guard: run() throws a SimError (category resource)
     * once the run has consumed this many real seconds. 0 disables.
     */
    double deadlineSec = 0.0;

    /** The baseline machine of Table 3. */
    static SystemConfig baseline();
};

/** One simulated machine running one or more workloads. */
class System
{
  public:
    /** Single-core machine; @p trace must outlive the system. */
    System(const SystemConfig &cfg, trace::TraceSource &trace);

    /** CMP machine with one private cache stack per trace. */
    System(const SystemConfig &cfg,
           const std::vector<trace::TraceSource *> &traces);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Advance one memory bus cycle. */
    void tick();

    /**
     * Run until every workload retires and memory drains, or
     * @p max_ticks elapse. Returns memory cycles simulated.
     */
    Tick run(Tick max_ticks = kTickMax);

    /** All workloads retired and all memory traffic drained. */
    bool done() const;

    /** Memory cycles elapsed. */
    Tick memCycles() const { return now_; }

    /** CPU cycles elapsed. */
    std::uint64_t cpuCycles() const { return cpuNow_; }

    /** CPU cycle at which the last core finished (execution time). */
    std::uint64_t execCpuCycles() const { return execCpuCycles_; }

    /** CPU cycle at which core @p i finished (0 while running). */
    std::uint64_t coreExecCpuCycles(std::uint32_t i) const
    {
        return cores_[i].doneAtCpu;
    }

    /** Number of cores. */
    std::uint32_t numCores() const
    {
        return std::uint32_t(cores_.size());
    }

    /** Components (stats access). */
    cpu::Core &core(std::uint32_t i = 0) { return *cores_[i].core; }
    cpu::CacheHierarchy &caches(std::uint32_t i = 0)
    {
        return *cores_[i].caches;
    }
    ctrl::MemoryController &controller() { return *ctrl_; }
    dram::MemorySystem &mem() { return *mem_; }
    const SystemConfig &config() const { return cfg_; }

    /** Observability pillars of this run; nullptr when all disabled. */
    obs::Observability *observability() { return obs_.get(); }

    /**
     * Detach the observability pillars from the machine and transfer
     * ownership to the caller (so collected data can outlive the
     * System). Returns nullptr when observability was off.
     */
    std::unique_ptr<obs::Observability> releaseObservability();

    // Single-core MemPort convenience (routes to core 0's FSB queue);
    // primarily for tests exercising the queue discipline.
    bool canSend(unsigned n) const;
    void sendRead(Addr block_addr, bool critical = false);
    void sendWrite(Addr block_addr);

  private:
    struct FsbRequest
    {
        Addr addr = 0;
        bool isWrite = false;
        bool critical = false;
        Tick readyAt = 0; //!< memory tick when it may enter the controller
    };

    /** Per-core MemPort shim feeding the core's FSB queue. */
    class CorePort;

    struct CoreNode
    {
        std::unique_ptr<CorePort> port;
        std::unique_ptr<cpu::CacheHierarchy> caches;
        std::unique_ptr<cpu::Core> core;
        std::deque<FsbRequest> fsbQueue;
        bool done = false;
        std::uint64_t doneAtCpu = 0;

        /**
         * Cached quiescence verdict (skip engine). Once a core is
         * quiescent it stays so until its own wakeup cycle
         * (quiesceEventCpu) or a memory response; the cache is
         * invalidated on delivery and after any real CPU phase, so the
         * per-tick check is O(1) instead of a ROB/pending-load walk.
         */
        bool quiesceValid = false;
        std::uint64_t quiesceEventCpu = 0;
    };

    /** Read data in flight back to a core. */
    struct Response
    {
        Tick at = 0;           //!< delivery tick
        std::uint64_t seq = 0; //!< FIFO order among equal delivery ticks
        Addr addr = 0;
        std::uint32_t core = 0;
    };

    /** Min-heap order: earliest delivery tick first, FIFO within a tick. */
    struct ResponseLater
    {
        bool operator()(const Response &a, const Response &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    /** Forward-progress / deadline bookkeeping local to one run(). */
    struct WatchState
    {
        std::uint64_t lastRetired = 0; //!< retired count at lastProgress
        Tick lastProgress = 0;         //!< last tick an access retired
        std::chrono::steady_clock::time_point started;
        std::uint32_t iter = 0; //!< loop iterations (deadline polling)
    };

    void build(const std::vector<trace::TraceSource *> &traces);

    /** Accesses retired so far (reads + writes + forwarded reads). */
    std::uint64_t retiredAccesses() const;

    /**
     * Enforce the forward-progress watchdog and wall-clock deadline
     * (SystemConfig::watchdogCycles / deadlineSec); throws SimError.
     */
    void checkProgress(WatchState &w);

    /** FSB admission (tick step 3), shared by tick() and fastTick(). */
    void admitFsb();

    /**
     * Refresh @p node's quiescence cache; false when the core is not
     * quiescent at cpuNow_.
     */
    bool coreQuiescent(CoreNode &node);

    /**
     * True when this tick's whole CPU phase is provably dead: no
     * response due and every running core quiescent past the end of
     * the tick's CPU-cycle window.
     */
    bool cpuQuiet();

    /**
     * tick() with the CPU phase replaced by a bulk head-stall update.
     * Only legal when cpuQuiet() holds; statistics are identical.
     */
    void fastTick();

    /**
     * Earliest tick >= now_ at which anything observable can happen:
     * a core leaving quiescence, a response delivery, a controller
     * event, or an FSB admission. now_ itself when any core is not
     * quiescent (no skip possible). Assumes tick() has just run.
     *
     * When @p src is non-null the winning bound is attributed to the
     * component that pinned it (first-minimum-wins over the same scan
     * order, so the horizon is identical with and without attribution).
     */
    Tick skipHorizon(obs::WakeSource *src = nullptr);

    /** Bulk-apply the dead span [now_, @p target) and jump to it. */
    void skipTo(Tick target);

    SystemConfig cfg_;
    std::unique_ptr<dram::MemorySystem> mem_;
    std::unique_ptr<ctrl::MemoryController> ctrl_;
    std::unique_ptr<obs::Observability> obs_;
    /** Engine introspection sink; null unless the pillar is on. */
    obs::EngineIntrospect *intro_ = nullptr;
    std::vector<CoreNode> cores_;

    std::priority_queue<Response, std::vector<Response>, ResponseLater>
        respQueue_;
    std::uint64_t respSeq_ = 0;

    Tick now_ = 0;
    std::uint64_t cpuNow_ = 0;
    std::uint64_t execCpuCycles_ = 0;
    bool allDone_ = false;
    std::uint32_t rrCore_ = 0; //!< FSB admission round robin
};

} // namespace bsim::sim

#endif // BURSTSIM_SIM_SYSTEM_HH
