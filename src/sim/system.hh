/**
 * @file
 * Full-system wiring: core(s) -> caches -> front-side buffer -> memory
 * controller -> SDRAM, with the Table 3 baseline configuration and the
 * 4 GHz CPU : 400 MHz memory bus clock-domain crossing (10 CPU cycles per
 * memory cycle).
 *
 * The system supports chip multiprocessing (paper Section 6: "access
 * reordering mechanisms will play a more important role with chip level
 * multiple processors"): each core has private L1/L2 caches and its own
 * FSB queue; all cores share the memory controller. Workloads are
 * assumed address-disjoint (no coherence is modelled).
 */

#ifndef BURSTSIM_SIM_SYSTEM_HH
#define BURSTSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "cpu/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "ctrl/controller.hh"
#include "dram/memory_system.hh"
#include "obs/obs_config.hh"
#include "trace/instr.hh"

namespace bsim::obs
{
class Observability;
} // namespace bsim::obs

namespace bsim::sim
{

/** Complete machine configuration. */
struct SystemConfig
{
    cpu::CoreConfig core;
    cpu::HierarchyConfig caches;
    dram::DramConfig dram;
    ctrl::ControllerConfig ctrl;

    /** CPU cycles per memory bus cycle (4 GHz / 400 MHz). */
    std::uint32_t cpuCyclesPerMemCycle = 10;
    /** Front-side bus buffer depth per core (requests toward memory). */
    std::size_t memQueueCap = 6;
    /** FSB transfer latency, memory cycles, each direction. */
    Tick fsbLatency = 2;
    /** Memory bus clock in MHz (for bandwidth reporting). */
    double busMHz = 400.0;

    /** Observability pillars to enable (all off by default). */
    obs::ObsConfig obs;

    /** The baseline machine of Table 3. */
    static SystemConfig baseline();
};

/** One simulated machine running one or more workloads. */
class System
{
  public:
    /** Single-core machine; @p trace must outlive the system. */
    System(const SystemConfig &cfg, trace::TraceSource &trace);

    /** CMP machine with one private cache stack per trace. */
    System(const SystemConfig &cfg,
           const std::vector<trace::TraceSource *> &traces);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Advance one memory bus cycle. */
    void tick();

    /**
     * Run until every workload retires and memory drains, or
     * @p max_ticks elapse. Returns memory cycles simulated.
     */
    Tick run(Tick max_ticks = kTickMax);

    /** All workloads retired and all memory traffic drained. */
    bool done() const;

    /** Memory cycles elapsed. */
    Tick memCycles() const { return now_; }

    /** CPU cycles elapsed. */
    std::uint64_t cpuCycles() const { return cpuNow_; }

    /** CPU cycle at which the last core finished (execution time). */
    std::uint64_t execCpuCycles() const { return execCpuCycles_; }

    /** CPU cycle at which core @p i finished (0 while running). */
    std::uint64_t coreExecCpuCycles(std::uint32_t i) const
    {
        return cores_[i].doneAtCpu;
    }

    /** Number of cores. */
    std::uint32_t numCores() const
    {
        return std::uint32_t(cores_.size());
    }

    /** Components (stats access). */
    cpu::Core &core(std::uint32_t i = 0) { return *cores_[i].core; }
    cpu::CacheHierarchy &caches(std::uint32_t i = 0)
    {
        return *cores_[i].caches;
    }
    ctrl::MemoryController &controller() { return *ctrl_; }
    dram::MemorySystem &mem() { return *mem_; }
    const SystemConfig &config() const { return cfg_; }

    /** Observability pillars of this run; nullptr when all disabled. */
    obs::Observability *observability() { return obs_.get(); }

    /**
     * Detach the observability pillars from the machine and transfer
     * ownership to the caller (so collected data can outlive the
     * System). Returns nullptr when observability was off.
     */
    std::unique_ptr<obs::Observability> releaseObservability();

    // Single-core MemPort convenience (routes to core 0's FSB queue);
    // primarily for tests exercising the queue discipline.
    bool canSend(unsigned n) const;
    void sendRead(Addr block_addr, bool critical = false);
    void sendWrite(Addr block_addr);

  private:
    struct FsbRequest
    {
        Addr addr = 0;
        bool isWrite = false;
        bool critical = false;
        Tick readyAt = 0; //!< memory tick when it may enter the controller
    };

    /** Per-core MemPort shim feeding the core's FSB queue. */
    class CorePort;

    struct CoreNode
    {
        std::unique_ptr<CorePort> port;
        std::unique_ptr<cpu::CacheHierarchy> caches;
        std::unique_ptr<cpu::Core> core;
        std::deque<FsbRequest> fsbQueue;
        bool done = false;
        std::uint64_t doneAtCpu = 0;
    };

    void build(const std::vector<trace::TraceSource *> &traces);

    SystemConfig cfg_;
    std::unique_ptr<dram::MemorySystem> mem_;
    std::unique_ptr<ctrl::MemoryController> ctrl_;
    std::unique_ptr<obs::Observability> obs_;
    std::vector<CoreNode> cores_;

    /** Read data in flight back to a core: tick -> (addr, core id). */
    std::multimap<Tick, std::pair<Addr, std::uint32_t>> respQueue_;

    Tick now_ = 0;
    std::uint64_t cpuNow_ = 0;
    std::uint64_t execCpuCycles_ = 0;
    bool allDone_ = false;
    std::uint32_t rrCore_ = 0; //!< FSB admission round robin
};

} // namespace bsim::sim

#endif // BURSTSIM_SIM_SYSTEM_HH
