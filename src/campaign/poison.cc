#include "campaign/poison.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::campaign
{

namespace
{

/** Extract a field="..." value from @p line (sanitised, one line). */
std::string
quotedField(const std::string &line, const char *field)
{
    const std::string tag = std::string(" ") + field + "=\"";
    const std::size_t open = line.find(tag);
    if (open == std::string::npos)
        return "";
    const std::size_t start = open + tag.size();
    const std::size_t close = line.find('"', start);
    if (close == std::string::npos)
        return "";
    return line.substr(start, close - start);
}

} // namespace

std::string
PoisonEntry::describeDeath() const
{
    char buf[96];
    if (signal > 0)
        std::snprintf(buf, sizeof(buf), "signal %d (%s)", signal,
                      strsignal(signal));
    else
        std::snprintf(buf, sizeof(buf), "exit %d", exitCode);
    return buf;
}

void
PoisonList::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return; // no ledger yet
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        if (line.empty() || line[0] == '#')
            continue;
        std::uint64_t key = 0;
        unsigned strikes = 0;
        int sig = 0, exitCode = -1;
        const int n = std::sscanf(line.c_str(),
                                  "X %" SCNx64
                                  " strikes=%u signal=%d exit=%d",
                                  &key, &strikes, &sig, &exitCode);
        if (n != 4) {
            warn("poison list %s:%llu: skipping malformed record",
                 path.c_str(), (unsigned long long)lineno);
            continue;
        }
        PoisonEntry e;
        e.key = key;
        e.strikes = strikes;
        e.signal = sig;
        e.exitCode = exitCode;
        e.label = quotedField(line, "label");
        e.canonical = quotedField(line, "cfg");
        // Merge: keep the worse (higher-strike) record for a key.
        const auto it = entries_.find(key);
        if (it == entries_.end() || it->second.strikes < e.strikes)
            entries_[key] = std::move(e);
    }
}

void
PoisonList::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            throwSimError(ErrorCategory::Resource,
                          "cannot write poison list '%s'", tmp.c_str());
        os << "# burstsim campaign poison list: one strike record per "
              "point\n";
        // Deterministic order for diffing and tests.
        std::vector<std::uint64_t> keys;
        keys.reserve(entries_.size());
        for (const auto &[key, e] : entries_)
            keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (const std::uint64_t key : keys) {
            const PoisonEntry &e = entries_.at(key);
            char head[128];
            std::snprintf(head, sizeof(head),
                          "X %016" PRIx64
                          " strikes=%u signal=%d exit=%d",
                          key, e.strikes, e.signal, e.exitCode);
            os << head << " label=\"" << e.label << "\" cfg=\""
               << e.canonical << "\"\n";
        }
        os.flush();
        if (!os)
            throwSimError(ErrorCategory::Resource,
                          "error while writing poison list '%s'",
                          tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throwSimError(ErrorCategory::Resource,
                      "cannot replace poison list '%s' (%s)",
                      path.c_str(), std::strerror(errno));
}

const PoisonEntry &
PoisonList::strike(std::uint64_t key, const std::string &canonical,
                   const std::string &label, int signal, int exitCode)
{
    PoisonEntry &e = entries_[key];
    e.key = key;
    e.strikes += 1;
    e.signal = signal;
    e.exitCode = exitCode;
    e.label = label;
    e.canonical = canonical;
    return e;
}

bool
PoisonList::quarantined(std::uint64_t key) const
{
    const auto it = entries_.find(key);
    return it != entries_.end() &&
           it->second.strikes >= quarantineStrikes_;
}

unsigned
PoisonList::strikes(std::uint64_t key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.strikes;
}

std::vector<PoisonEntry>
PoisonList::quarantinedEntries() const
{
    std::vector<PoisonEntry> out;
    for (const auto &[key, e] : entries_)
        if (e.strikes >= quarantineStrikes_)
            out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const PoisonEntry &a, const PoisonEntry &b) {
                  return a.key < b.key;
              });
    return out;
}

} // namespace bsim::campaign
