#include "campaign/shard.hh"

#include <cstdio>
#include <fstream>
#include <set>

#include <sys/stat.h>

#include "common/error.hh"
#include "sim/sweep.hh"

namespace bsim::campaign
{

namespace
{

std::string
shardFile(const std::string &dir, unsigned shard, const char *suffix)
{
    char name[64];
    std::snprintf(name, sizeof(name), "/shard-%03u.%s", shard, suffix);
    return dir + name;
}

} // namespace

std::string
CampaignLayout::shardJournal(unsigned shard) const
{
    return shardFile(dir, shard, "journal");
}

std::string
CampaignLayout::shardProgress(unsigned shard) const
{
    return shardFile(dir, shard, "progress");
}

std::string
CampaignLayout::shardLog(unsigned shard) const
{
    return shardFile(dir, shard, "log");
}

std::string
CampaignLayout::poisonList() const
{
    return dir + "/poison.list";
}

std::vector<ShardPlan>
planShards(std::size_t points, unsigned shards,
           const std::vector<unsigned> &only)
{
    if (points == 0)
        throwSimError(ErrorCategory::Config,
                      "campaign has no points to run");
    if (shards == 0)
        throwSimError(ErrorCategory::Config,
                      "shard count must be positive");
    if (std::size_t(shards) > points)
        throwSimError(ErrorCategory::Config,
                      "shard count %u exceeds point count %zu — every "
                      "shard must own at least one point",
                      shards, points);

    std::vector<unsigned> ids;
    if (only.empty()) {
        for (unsigned s = 0; s < shards; ++s)
            ids.push_back(s);
    } else {
        std::set<unsigned> seen;
        for (const unsigned s : only) {
            if (s >= shards)
                throwSimError(ErrorCategory::Config,
                              "shard id %u out of range (%u shards)", s,
                              shards);
            if (!seen.insert(s).second)
                throwSimError(ErrorCategory::Config,
                              "duplicate shard id %u — two workers "
                              "would race on one journal",
                              s);
        }
        ids.assign(seen.begin(), seen.end());
    }

    std::vector<ShardPlan> plans;
    plans.reserve(ids.size());
    for (const unsigned s : ids) {
        ShardPlan plan;
        plan.id = s;
        plan.slots = sim::shardSlots(points, shards, s);
        plans.push_back(std::move(plan));
    }
    return plans;
}

void
ensureCampaignDir(const std::string &dir)
{
    if (dir.empty())
        throwSimError(ErrorCategory::Config,
                      "campaign directory must be given (--dir)");
    ::mkdir(dir.c_str(), 0755); // EEXIST is fine; probe decides below
    const std::string probe = dir + "/.probe";
    {
        std::ofstream os(probe);
        if (!os)
            throwSimError(ErrorCategory::Resource,
                          "campaign directory '%s' is not writable",
                          dir.c_str());
    }
    std::remove(probe.c_str());
}

} // namespace bsim::campaign
