/**
 * @file
 * Campaign supervisor: crash-isolated execution of a sweep across
 * forked worker processes.
 *
 * The supervisor partitions the campaign's point space into contiguous
 * shards (campaign/shard.hh), forks one worker per shard
 * (campaign/worker.hh — each worker is an ordinary in-process sweep
 * over its slice, with a v3 fsync'd journal and SweepProgress JSONL
 * telemetry), and then supervises:
 *
 *  - **liveness** — the shard's progress JSONL doubles as a heartbeat
 *    channel: any append (point events or periodic heartbeats) proves
 *    the worker alive. A worker whose file stops growing for
 *    workerDeadlineSec is sent SIGTERM (a live-but-slow worker drains
 *    in-flight points and journals them); killGraceSec later the
 *    escalation is SIGKILL, which no state can block.
 *  - **restart with backoff** — a crashed or killed worker is
 *    relaunched over the same shard (journal resume skips everything
 *    already completed) after a capped exponential backoff
 *    (min(backoffCapSec, backoffBaseSec * 2^(crashes-1))), up to
 *    maxLaunches incarnations per shard.
 *  - **poison-point quarantine** — on every abnormal worker death the
 *    points in flight (point_start without point_finish in the
 *    progress JSONL) each receive a strike in the persistent poison
 *    ledger (campaign/poison.hh). A point with quarantineStrikes
 *    strikes is excluded from all further incarnations and reported
 *    failed with category worker_lost; the campaign completes degraded
 *    (exit 3 at the CLI) instead of crash-looping or aborting.
 *
 * All campaign state that matters lives on disk (shard journals,
 * poison ledger), so SIGKILLing the *supervisor* mid-campaign loses
 * nothing: rerunning the same campaign resumes every shard from its
 * journal and merges to a byte-identical report.
 */

#ifndef BURSTSIM_CAMPAIGN_SUPERVISOR_HH
#define BURSTSIM_CAMPAIGN_SUPERVISOR_HH

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/poison.hh"
#include "campaign/shard.hh"
#include "sim/sweep.hh"

namespace bsim::campaign
{

/** Execution policy of one campaign. */
struct CampaignOptions
{
    std::string dir;     //!< campaign directory (journals, poison list)
    unsigned shards = 2; //!< worker process count (point-space partition)
    /** Run only these shard ids (multi-host operation); empty = all.
     *  Ids must be unique and < shards. */
    std::vector<unsigned> onlyShards;
    unsigned workerJobs = 1;  //!< threads inside each worker
    unsigned maxAttempts = 3; //!< in-worker tries per transient failure

    // --- liveness / kill policy ---
    double heartbeatSec = 0.25;     //!< worker progress heartbeat period
    double workerDeadlineSec = 10.0; //!< stale-progress kill deadline
    double killGraceSec = 2.0;       //!< SIGTERM -> SIGKILL escalation

    // --- restart / quarantine policy ---
    unsigned maxLaunches = 10;   //!< incarnation cap per shard
    double backoffBaseSec = 0.25; //!< first-restart delay
    double backoffCapSec = 5.0;   //!< exponential backoff ceiling
    unsigned quarantineStrikes = PoisonList::kDefaultQuarantineStrikes;

    bool journalSync = true; //!< per-record fdatasync in workers
    /** Cancel token (SIGINT): workers get SIGTERM and drain. */
    const std::atomic<bool> *cancel = nullptr;
    /** Supervisor narration (launches, kills, quarantines); null = quiet. */
    std::ostream *log = nullptr;
};

/** Supervision history of one shard. */
struct ShardOutcome
{
    unsigned id = 0;
    unsigned launches = 0;      //!< worker incarnations forked
    unsigned crashes = 0;       //!< abnormal worker deaths
    unsigned deadlineKills = 0; //!< liveness-deadline kill sequences
    bool completed = false;     //!< shard finished cleanly
    bool gaveUp = false;        //!< maxLaunches exhausted
    int lastExit = 0;   //!< last worker's exit code (-1 if signaled)
    int lastSignal = 0; //!< last worker's killing signal (0 if exited)
};

/** One quarantined point in the final report. */
struct QuarantinedPoint
{
    std::size_t slot = 0; //!< campaign point index
    PoisonEntry entry;    //!< strikes + recorded death
};

/** Outcome of a whole campaign. */
struct CampaignReport
{
    sim::SweepReport sweep; //!< slot-ordered, merged from shard state
    std::vector<ShardOutcome> shards;
    std::vector<QuarantinedPoint> quarantined;
    bool cancelled = false;

    /** Anything short of every-point-ok (failures, quarantines,
     *  given-up shards): the CLI's exit-3 condition. */
    bool degraded() const;
};

/**
 * Fail-fast argument validation, run before any fork: shard count vs
 * point count, duplicate / out-of-range --only-shards ids, liveness
 * deadline vs heartbeat period, restart and backoff sanity (config
 * SimError), and an unwritable campaign directory (resource SimError).
 */
void validateCampaign(const std::vector<sim::ExperimentConfig> &points,
                      const CampaignOptions &opt);

/** Run the campaign to completion (degraded or not); see file comment. */
CampaignReport runCampaign(const std::vector<sim::ExperimentConfig> &points,
                           const CampaignOptions &opt);

/**
 * Merge on-disk campaign state (shard journals + poison ledger +
 * final progress files) into a slot-ordered SweepReport without
 * executing anything. For a campaign whose points all completed, the
 * CSV/table rendered from this report is byte-identical to an
 * unsharded --sweep run over the same point list.
 */
CampaignReport mergeCampaign(const std::vector<sim::ExperimentConfig> &points,
                             const CampaignOptions &opt);

} // namespace bsim::campaign

#endif // BURSTSIM_CAMPAIGN_SUPERVISOR_HH
