#include "campaign/worker.hh"

#include <atomic>
#include <csignal>
#include <cstdio>

#include "common/error.hh"
#include "sim/sweep.hh"

namespace bsim::campaign
{

namespace
{

/** SIGTERM from the supervisor: drain in-flight points, then exit. */
std::atomic<bool> g_workerCancel{false};

extern "C" void
onWorkerTerm(int)
{
    g_workerCancel.store(true);
}

} // namespace

int
runWorkerShard(const WorkerSpec &spec)
{
    std::signal(SIGTERM, onWorkerTerm);
    // The supervisor owns SIGINT policy; a ^C on the controlling
    // terminal reaches the whole process group, and the worker should
    // drain exactly as it does for SIGTERM rather than die mid-append.
    std::signal(SIGINT, onWorkerTerm);

    sim::SweepOptions opt;
    opt.jobs = spec.jobs;
    opt.maxAttempts = spec.maxAttempts;
    opt.journal = spec.journal;
    opt.journalSync = spec.journalSync;
    opt.progressPath = spec.progress;
    opt.heartbeatSec = spec.heartbeatSec;
    opt.cancel = &g_workerCancel;

    try {
        const sim::SweepReport rep =
            sim::runExperimentSweep(spec.points, opt);
        if (rep.cancelled)
            return kWorkerCancelled;
        if (rep.aborted)
            return kWorkerAborted;
        if (rep.failures() > 0)
            return kWorkerFailures;
        return kWorkerOk;
    } catch (const SimError &e) {
        std::fprintf(stderr, "worker: %s\n", e.describe().c_str());
        return kWorkerError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "worker: %s\n", e.what());
        return kWorkerError;
    }
}

} // namespace bsim::campaign
