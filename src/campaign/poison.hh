/**
 * @file
 * Poison-point ledger: which sweep points have killed workers, how
 * often, and with what exit status — the campaign's memory of crashes
 * across worker restarts *and* supervisor restarts.
 *
 * When a worker process dies abnormally, every point it had in flight
 * (per the shard's progress JSONL) receives a *strike*. A point whose
 * strikes reach the quarantine threshold (default 2 — crash once may
 * be bad luck, crash twice is the point's fault) is quarantined: it is
 * excluded from all future worker incarnations and reported as failed
 * with category worker_lost, so the rest of the campaign completes
 * degraded instead of crash-looping.
 *
 * The ledger is persisted to <dir>/poison.list after every strike via
 * an atomic tmp+rename rewrite, so a SIGKILLed supervisor resumes with
 * its strike memory intact. Format: one record per line,
 *   X <key> strikes=<n> signal=<s> exit=<e> label="<wl/mech>"
 *       cfg="<canonical>"
 * Malformed lines are skipped on load (same torn-tail tolerance as the
 * sweep journal).
 */

#ifndef BURSTSIM_CAMPAIGN_POISON_HH
#define BURSTSIM_CAMPAIGN_POISON_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace bsim::campaign
{

/** Strike history of one point. */
struct PoisonEntry
{
    std::uint64_t key = 0;  //!< sim::configKey of the point
    unsigned strikes = 0;   //!< worker deaths with this point in flight
    int signal = 0;         //!< killing signal of the last strike (0 = none)
    int exitCode = -1;      //!< exit code of the last strike (-1 = signaled)
    std::string label;      //!< display label (workload/mechanism)
    std::string canonical;  //!< canonicalConfig echo (collision guard)

    /** One-line description of the recorded death, e.g.
     *  "signal 6 (Aborted)" or "exit 139". */
    std::string describeDeath() const;
};

/** In-memory ledger with load/save persistence. */
class PoisonList
{
  public:
    /** Strikes at which a point is quarantined. */
    static constexpr unsigned kDefaultQuarantineStrikes = 2;

    explicit PoisonList(unsigned quarantineStrikes =
                            kDefaultQuarantineStrikes)
        : quarantineStrikes_(quarantineStrikes ? quarantineStrikes
                                               : kDefaultQuarantineStrikes)
    {}

    /** Merge @p path into the ledger; a missing file is empty. */
    void load(const std::string &path);

    /** Atomically rewrite @p path (tmp + rename). Throws
     *  SimError(Resource) when the rewrite fails. */
    void save(const std::string &path) const;

    /** Record one worker death with this point in flight. @p signal is
     *  the killing signal (0 if the worker exited), @p exitCode the
     *  exit code (-1 if signaled). Returns the updated entry. */
    const PoisonEntry &strike(std::uint64_t key,
                              const std::string &canonical,
                              const std::string &label, int signal,
                              int exitCode);

    /** Has @p key accumulated enough strikes to be excluded? */
    bool quarantined(std::uint64_t key) const;

    /** Strikes currently recorded for @p key (0 = never struck). */
    unsigned strikes(std::uint64_t key) const;

    /** All quarantined entries, sorted by key (deterministic). */
    std::vector<PoisonEntry> quarantinedEntries() const;

    const std::unordered_map<std::uint64_t, PoisonEntry> &entries() const
    {
        return entries_;
    }

    unsigned quarantineStrikes() const { return quarantineStrikes_; }

  private:
    unsigned quarantineStrikes_;
    std::unordered_map<std::uint64_t, PoisonEntry> entries_;
};

} // namespace bsim::campaign

#endif // BURSTSIM_CAMPAIGN_POISON_HH
