/**
 * @file
 * Campaign shard layout: how a sweep's point space is partitioned into
 * per-process shards, and where each shard's on-disk state lives.
 *
 * A campaign directory holds everything a campaign needs to survive
 * the death of any process, including the supervisor itself:
 *
 *   <dir>/shard-NNN.journal   v3 sweep journal (completed points)
 *   <dir>/shard-NNN.progress  SweepProgress JSONL (liveness channel)
 *   <dir>/shard-NNN.log       worker stdout+stderr (appended across
 *                             incarnations)
 *   <dir>/poison.list         per-point crash strikes + quarantine
 *
 * Shards are contiguous, balanced slot ranges (sim::shardSlots), so a
 * shard maps to an easily described sub-range of the campaign's
 * deterministic point order.
 */

#ifndef BURSTSIM_CAMPAIGN_SHARD_HH
#define BURSTSIM_CAMPAIGN_SHARD_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bsim::campaign
{

/** Path schema of one campaign directory. */
struct CampaignLayout
{
    std::string dir;

    explicit CampaignLayout(std::string d = "") : dir(std::move(d)) {}

    std::string shardJournal(unsigned shard) const;
    std::string shardProgress(unsigned shard) const;
    std::string shardLog(unsigned shard) const;
    std::string poisonList() const;
};

/** One shard's slice of the campaign's point space. */
struct ShardPlan
{
    unsigned id = 0;
    std::vector<std::size_t> slots; //!< global point indices, ascending
};

/**
 * Partition @p points slots into @p shards contiguous balanced shards
 * (see sim::shardSlots). When @p only is non-empty, just those shard
 * ids are planned (distributing a campaign across hosts); the ids must
 * be in range and unique. Throws SimError(Config) on an empty point
 * set, shards == 0, shards > points, duplicate or out-of-range ids.
 */
std::vector<ShardPlan> planShards(std::size_t points, unsigned shards,
                                  const std::vector<unsigned> &only = {});

/**
 * Fail-fast directory check: create @p dir if missing and prove it is
 * writable by creating and removing a probe file. Throws
 * SimError(Resource) before any fork when the campaign could not
 * journal a single point.
 */
void ensureCampaignDir(const std::string &dir);

} // namespace bsim::campaign

#endif // BURSTSIM_CAMPAIGN_SHARD_HH
