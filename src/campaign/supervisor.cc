#include "campaign/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/worker.hh"
#include "common/error.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "ctrl/access.hh"

namespace bsim::campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

double
nowSec()
{
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

/** "workload/Mechanism" display label of one point (the same label the
 *  sweep table and progress telemetry use). */
std::string
pointLabel(const sim::ExperimentConfig &cfg)
{
    return cfg.workload + "/" + ctrl::mechanismName(cfg.mechanism);
}

/** Final recorded fate of one worker-local point index. */
struct PointFate
{
    bool ok = false;
    unsigned attempts = 0;
    std::string category;
    std::string error;
};

/**
 * What a shard's progress JSONL says happened: which worker-local point
 * indices were in flight when the file ends (point_start/point_retry
 * without a matching point_finish — the supervisor's blame set after a
 * crash) and the final fate of every finished point. Torn last lines
 * (the worker died mid-append) are skipped, exactly like journal tails.
 */
struct ProgressScan
{
    std::vector<std::size_t> inFlight; //!< worker point indices, sorted
    std::unordered_map<std::size_t, PointFate> finished;
};

ProgressScan
scanShardProgress(const std::string &path)
{
    ProgressScan out;
    std::ifstream is(path);
    if (!is)
        return out;
    std::unordered_set<std::size_t> open;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const auto doc = parseJson(line);
        if (!doc || !doc->isObject())
            continue; // torn tail / foreign line
        const JsonValue *ev = doc->find("event");
        const JsonValue *pt = doc->find("point");
        if (!ev || !ev->isString() || !pt || !pt->isNumber())
            continue;
        const std::size_t idx = std::size_t(pt->number);
        if (ev->string == "point_start" || ev->string == "point_retry") {
            open.insert(idx);
        } else if (ev->string == "point_finish") {
            open.erase(idx);
            PointFate f;
            if (const JsonValue *s = doc->find("status"))
                f.ok = s->isString() && s->string == "ok";
            if (const JsonValue *a = doc->find("attempts");
                a && a->isNumber())
                f.attempts = unsigned(a->number);
            if (const JsonValue *c = doc->find("category");
                c && c->isString())
                f.category = c->string;
            if (const JsonValue *e = doc->find("error");
                e && e->isString())
                f.error = e->string;
            out.finished[idx] = std::move(f);
        }
    }
    out.inFlight.assign(open.begin(), open.end());
    std::sort(out.inFlight.begin(), out.inFlight.end());
    return out;
}

/** Supervisor-side runtime state of one shard. */
struct ShardRt
{
    enum class St : std::uint8_t
    {
        Idle,    //!< waiting to (re)launch, possibly backing off
        Running, //!< worker forked and unreaped
        Done,    //!< worker exited cleanly; shard settled
        GaveUp,  //!< maxLaunches exhausted
    };

    ShardPlan plan;
    ShardOutcome out;
    St st = St::Idle;
    pid_t pid = -1;
    /** Global slots of the current/last incarnation's points, in worker
     *  point-index order (the progress file's "point" field indexes
     *  this vector). */
    std::vector<std::size_t> incarnation;
    double backoffUntil = 0.0;
    long lastProgressSize = -1;
    double lastActivity = 0.0;
    bool termSent = false;
    double termAt = 0.0;
};

/** printf-style narration into the supervisor log (if any). */
void
slog(std::ostream *os, const char *fmt, ...)
{
    if (!os)
        return;
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    *os << "campaign: " << buf << '\n';
    os->flush();
}

/**
 * Child-process body: redirect stdout+stderr to the shard log (appended
 * across incarnations, so crash backtraces from every life survive) and
 * run the shard. Only async-signal-safe-ish work happens between fork
 * and the sweep itself; the child never returns.
 */
[[noreturn]] void
workerMain(const WorkerSpec &spec, const std::string &logPath)
{
    const int fd =
        ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO)
            ::close(fd);
    }
    ::_exit(runWorkerShard(spec));
}

/** parseErrorCategory with a fallback instead of a throw: progress
 *  files may carry names from a different build. */
ErrorCategory
categoryFromNameOr(const std::string &name, ErrorCategory fallback)
{
    try {
        return parseErrorCategory(name);
    } catch (const SimError &) {
        return fallback;
    }
}

/** Exponential backoff with cap: base * 2^(crashes-1), crashes >= 1. */
double
backoffSec(const CampaignOptions &opt, unsigned crashes)
{
    const double raw =
        opt.backoffBaseSec * std::ldexp(1.0, int(crashes) - 1);
    return std::min(opt.backoffCapSec, raw);
}

} // namespace

bool
CampaignReport::degraded() const
{
    if (!quarantined.empty())
        return true;
    for (const ShardOutcome &s : shards)
        if (s.gaveUp)
            return true;
    for (const sim::SweepSlot &s : sweep.slots)
        if (!s.run.ok)
            return true;
    return false;
}

void
validateCampaign(const std::vector<sim::ExperimentConfig> &points,
                 const CampaignOptions &opt)
{
    // planShards re-validates shard count vs point count and the
    // --only-shards id list (range, duplicates).
    planShards(points.size(), opt.shards, opt.onlyShards);
    if (opt.maxLaunches == 0)
        throwSimError(ErrorCategory::Config,
                      "campaign --max-launches must be at least 1");
    if (opt.workerDeadlineSec > 0 && opt.heartbeatSec > 0 &&
        opt.workerDeadlineSec <= 2 * opt.heartbeatSec)
        throwSimError(
            ErrorCategory::Config,
            "campaign worker deadline (%.3gs) must exceed twice the "
            "heartbeat period (%.3gs), or every healthy worker gets "
            "killed as stale",
            opt.workerDeadlineSec, opt.heartbeatSec);
    if (opt.backoffBaseSec < 0 || opt.backoffCapSec < 0)
        throwSimError(ErrorCategory::Config,
                      "campaign backoff times must be non-negative");
    ensureCampaignDir(opt.dir);
}

namespace
{

/**
 * Merge all on-disk shard state into a slot-ordered report. Precedence
 * per point: quarantined (failed, worker_lost) > journal record (ok) >
 * last incarnation's point_finish (failed, recorded category/error) >
 * skipped. The non-journal fallbacks exist because contained failures
 * are deliberately *not* journaled (a resumed sweep retries them), so
 * their fate lives only in telemetry.
 */
CampaignReport
mergeFromDisk(const std::vector<sim::ExperimentConfig> &points,
              const CampaignOptions &opt)
{
    CampaignReport rep;
    rep.sweep.slots.resize(points.size());

    const CampaignLayout layout(opt.dir);
    PoisonList poison(opt.quarantineStrikes);
    poison.load(layout.poisonList());

    std::vector<std::uint64_t> keys(points.size());
    std::vector<std::string> canon(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        canon[i] = sim::canonicalConfig(points[i]);
        keys[i] = sim::configKey(points[i]);
    }

    // Merge maps the *whole* campaign, not just --only-shards: every
    // shard's on-disk state participates.
    const std::vector<ShardPlan> plans =
        planShards(points.size(), opt.shards);

    for (const ShardPlan &plan : plans) {
        const auto journal =
            sim::loadSweepJournal(layout.shardJournal(plan.id));
        // Reconstruct the final incarnation's worker-local point order:
        // the shard's slots minus currently-quarantined points. (A
        // shard's last incarnation always runs under the final
        // quarantine set — strikes only grow between incarnations.)
        std::vector<std::size_t> incarnation;
        for (const std::size_t slot : plan.slots)
            if (!poison.quarantined(keys[slot]))
                incarnation.push_back(slot);
        const ProgressScan progress =
            scanShardProgress(layout.shardProgress(plan.id));

        for (const std::size_t slot : plan.slots) {
            sim::SweepSlot &s = rep.sweep.slots[slot];
            if (poison.quarantined(keys[slot])) {
                const PoisonEntry &e =
                    poison.entries().at(keys[slot]);
                s.run.ok = false;
                s.run.category = ErrorCategory::WorkerLost;
                s.run.attempts = e.strikes;
                s.run.error =
                    "quarantined after " + std::to_string(e.strikes) +
                    " worker crashes (last death: " + e.describeDeath() +
                    ")";
                rep.quarantined.push_back({slot, e});
                continue;
            }
            if (const auto it = journal.find(keys[slot]);
                it != journal.end() &&
                (it->second.configEcho.empty() ||
                 it->second.configEcho == canon[slot])) {
                s.run.ok = true;
                s.run.attempts = it->second.attempts;
                s.summary = it->second.summary;
                s.fromJournal = true;
                continue;
            }
            // Worker-local index of this slot in the final incarnation.
            const auto pos = std::find(incarnation.begin(),
                                       incarnation.end(), slot);
            if (pos != incarnation.end()) {
                const std::size_t idx =
                    std::size_t(pos - incarnation.begin());
                if (const auto f = progress.finished.find(idx);
                    f != progress.finished.end() && !f->second.ok) {
                    s.run.ok = false;
                    s.run.attempts = std::max(1u, f->second.attempts);
                    s.run.category = categoryFromNameOr(
                        f->second.category, ErrorCategory::Internal);
                    s.run.error = f->second.error;
                    continue;
                }
            }
            // Never completed anywhere: skipped (ok=false, attempts=0).
        }
    }

    std::sort(rep.quarantined.begin(), rep.quarantined.end(),
              [](const QuarantinedPoint &a, const QuarantinedPoint &b) {
                  return a.slot < b.slot;
              });
    return rep;
}

} // namespace

CampaignReport
mergeCampaign(const std::vector<sim::ExperimentConfig> &points,
              const CampaignOptions &opt)
{
    planShards(points.size(), opt.shards); // validate geometry
    return mergeFromDisk(points, opt);
}

CampaignReport
runCampaign(const std::vector<sim::ExperimentConfig> &points,
            const CampaignOptions &opt)
{
    validateCampaign(points, opt);

    const CampaignLayout layout(opt.dir);
    PoisonList poison(opt.quarantineStrikes);
    poison.load(layout.poisonList());

    std::vector<std::uint64_t> keys(points.size());
    std::vector<std::string> canon(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        canon[i] = sim::canonicalConfig(points[i]);
        keys[i] = sim::configKey(points[i]);
    }

    std::vector<ShardRt> shards;
    for (ShardPlan &plan :
         planShards(points.size(), opt.shards, opt.onlyShards)) {
        ShardRt rt;
        rt.out.id = plan.id;
        rt.plan = std::move(plan);
        shards.push_back(std::move(rt));
    }

    bool cancelled = false;

    const auto launch = [&](ShardRt &sh) {
        sh.incarnation.clear();
        for (const std::size_t slot : sh.plan.slots)
            if (!poison.quarantined(keys[slot]))
                sh.incarnation.push_back(slot);
        if (sh.incarnation.empty()) {
            // Everything quarantined (or journal-covered via merge):
            // nothing left for a worker to do.
            sh.st = ShardRt::St::Done;
            sh.out.completed = true;
            slog(opt.log, "shard %u: all points quarantined, nothing to run",
                 sh.out.id);
            return;
        }
        WorkerSpec spec;
        spec.points.reserve(sh.incarnation.size());
        for (const std::size_t slot : sh.incarnation)
            spec.points.push_back(points[slot]);
        spec.journal = layout.shardJournal(sh.out.id);
        spec.progress = layout.shardProgress(sh.out.id);
        spec.jobs = opt.workerJobs;
        spec.maxAttempts = opt.maxAttempts;
        spec.heartbeatSec = opt.heartbeatSec;
        spec.journalSync = opt.journalSync;

        const pid_t pid = ::fork();
        if (pid < 0)
            throwSimError(ErrorCategory::Resource,
                          "cannot fork worker for shard %u (%s)",
                          sh.out.id, std::strerror(errno));
        if (pid == 0)
            workerMain(spec, layout.shardLog(sh.out.id)); // never returns

        sh.pid = pid;
        sh.st = ShardRt::St::Running;
        sh.out.launches += 1;
        sh.lastProgressSize = -1;
        sh.lastActivity = nowSec();
        sh.termSent = false;
        slog(opt.log, "shard %u: launch #%u pid %d (%zu points)",
             sh.out.id, sh.out.launches, int(pid),
             sh.incarnation.size());
    };

    const auto handleExit = [&](ShardRt &sh, int status) {
        const bool exited = WIFEXITED(status);
        const int code = exited ? WEXITSTATUS(status) : -1;
        const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        sh.out.lastExit = code;
        sh.out.lastSignal = sig;
        sh.pid = -1;

        if (exited && (code == kWorkerOk || code == kWorkerFailures ||
                       code == kWorkerAborted)) {
            // Clean completion. kWorkerFailures/kWorkerAborted mean
            // contained failures inside the worker — deterministic, so
            // relaunching would just repeat them; the merge recovers
            // their recorded fate from the progress file.
            sh.st = ShardRt::St::Done;
            sh.out.completed = true;
            slog(opt.log, "shard %u: worker exited %d (%s)", sh.out.id,
                 code,
                 code == kWorkerOk ? "complete"
                 : code == kWorkerFailures
                     ? "complete with contained failures"
                     : "aborted by failure threshold");
            return;
        }
        if (exited && code == kWorkerCancelled) {
            // The worker drained after a SIGTERM. Ours-for-cancel: the
            // shard stays incomplete and the campaign winds down.
            // Ours-for-staleness: the worker was alive after all —
            // relaunch and let journal resume skip its finished work.
            if (cancelled) {
                sh.st = ShardRt::St::Done;
                slog(opt.log, "shard %u: worker drained after cancel",
                     sh.out.id);
                return;
            }
            slog(opt.log,
                 "shard %u: worker drained after deadline kill; "
                 "relaunching", sh.out.id);
        } else {
            // Crash: killed by a signal or an unknown exit code. Blame
            // every point the progress file says was in flight.
            sh.out.crashes += 1;
            const ProgressScan progress = scanShardProgress(
                layout.shardProgress(sh.out.id));
            std::size_t struck = 0;
            for (const std::size_t idx : progress.inFlight) {
                if (idx >= sh.incarnation.size())
                    continue; // stale file from a larger incarnation
                const std::size_t slot = sh.incarnation[idx];
                const PoisonEntry &e = poison.strike(
                    keys[slot], canon[slot], pointLabel(points[slot]),
                    sig, code);
                struck += 1;
                if (poison.quarantined(keys[slot]))
                    slog(opt.log,
                         "shard %u: QUARANTINED point %zu (%s) after "
                         "%u strikes, last death %s",
                         sh.out.id, slot, e.label.c_str(), e.strikes,
                         e.describeDeath().c_str());
                else
                    slog(opt.log,
                         "shard %u: strike %u for point %zu (%s)",
                         sh.out.id, e.strikes, slot, e.label.c_str());
            }
            if (struck > 0)
                poison.save(layout.poisonList());
            if (sig > 0)
                slog(opt.log,
                     "shard %u: worker pid lost to signal %d (%s), "
                     "%zu points struck", sh.out.id, sig,
                     strsignal(sig), struck);
            else
                slog(opt.log,
                     "shard %u: worker exited %d unexpectedly, "
                     "%zu points struck", sh.out.id, code, struck);
        }

        if (cancelled) {
            sh.st = ShardRt::St::Done;
            return;
        }
        if (sh.out.launches >= opt.maxLaunches) {
            sh.st = ShardRt::St::GaveUp;
            sh.out.gaveUp = true;
            slog(opt.log,
                 "shard %u: giving up after %u launches "
                 "(%u crashes); remaining points stay pending",
                 sh.out.id, sh.out.launches, sh.out.crashes);
            return;
        }
        const double delay =
            backoffSec(opt, std::max(1u, sh.out.crashes));
        sh.st = ShardRt::St::Idle;
        sh.backoffUntil = nowSec() + delay;
        slog(opt.log, "shard %u: relaunch in %.2fs", sh.out.id, delay);
    };

    const auto poll = [&](ShardRt &sh) {
        int status = 0;
        const pid_t r = ::waitpid(sh.pid, &status, WNOHANG);
        if (r == sh.pid) {
            handleExit(sh, status);
            return;
        }
        if (r < 0 && errno == ECHILD) {
            // Should not happen (we forked it); treat as a crash with
            // unknown status rather than spinning forever.
            handleExit(sh, 0x7f00);
            return;
        }
        // Liveness: the progress file growing is the heartbeat.
        struct stat sb;
        if (::stat(layout.shardProgress(sh.out.id).c_str(), &sb) == 0 &&
            long(sb.st_size) != sh.lastProgressSize) {
            sh.lastProgressSize = long(sb.st_size);
            sh.lastActivity = nowSec();
        }
        if (opt.workerDeadlineSec <= 0)
            return;
        const double now = nowSec();
        if (!sh.termSent &&
            now - sh.lastActivity > opt.workerDeadlineSec) {
            sh.out.deadlineKills += 1;
            sh.termSent = true;
            sh.termAt = now;
            slog(opt.log,
                 "shard %u: no progress for %.1fs, sending SIGTERM to "
                 "pid %d", sh.out.id, now - sh.lastActivity,
                 int(sh.pid));
            ::kill(sh.pid, SIGTERM);
        } else if (sh.termSent && now - sh.termAt > opt.killGraceSec) {
            slog(opt.log,
                 "shard %u: SIGTERM ignored for %.1fs, escalating to "
                 "SIGKILL", sh.out.id, now - sh.termAt);
            ::kill(sh.pid, SIGKILL);
            // A stopped process ignores everything but SIGKILL/SIGCONT;
            // make sure SIGKILL is actually deliverable.
            ::kill(sh.pid, SIGCONT);
            sh.termAt = now; // re-arm; repeat kills are harmless
        }
    };

    // Supervision loop: tick every shard until all are settled.
    for (;;) {
        if (!cancelled && opt.cancel && opt.cancel->load()) {
            cancelled = true;
            slog(opt.log, "cancel requested; draining workers");
            for (ShardRt &sh : shards)
                if (sh.st == ShardRt::St::Running)
                    ::kill(sh.pid, SIGTERM);
        }
        bool settled = true;
        for (ShardRt &sh : shards) {
            switch (sh.st) {
            case ShardRt::St::Idle:
                if (cancelled) {
                    sh.st = ShardRt::St::Done;
                    break;
                }
                settled = false;
                if (nowSec() >= sh.backoffUntil)
                    launch(sh);
                break;
            case ShardRt::St::Running:
                settled = false;
                poll(sh);
                break;
            case ShardRt::St::Done:
            case ShardRt::St::GaveUp:
                break;
            }
        }
        if (settled)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    CampaignReport rep = mergeFromDisk(points, opt);
    rep.cancelled = cancelled;
    rep.sweep.cancelled = cancelled;
    for (ShardRt &sh : shards)
        rep.shards.push_back(sh.out);
    std::sort(rep.shards.begin(), rep.shards.end(),
              [](const ShardOutcome &a, const ShardOutcome &b) {
                  return a.id < b.id;
              });
    return rep;
}

} // namespace bsim::campaign
