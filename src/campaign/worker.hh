/**
 * @file
 * Campaign worker: the body of one forked shard process.
 *
 * A worker is deliberately thin — it reuses the whole in-process sweep
 * stack (sim::runExperimentSweep: SweepRunner containment and retry,
 * v3 journal resume, SweepProgress JSONL telemetry) over just its
 * shard's points, then reports its fate through the process exit code.
 * Everything crash-hardened lives *below* it (per-record journal
 * fsync) or *above* it (the supervisor's heartbeat monitoring, restart
 * and quarantine logic); the worker itself may die at any instruction
 * and the campaign keeps its invariants.
 *
 * Exit codes (the supervisor's protocol):
 *   0    shard complete, every point ok (or restored from journal)
 *   3    shard aborted (maxFailures exceeded inside the worker)
 *   4    shard complete, but some points failed contained
 *   130  cancelled (SIGTERM drained in-flight points, journal flushed)
 *   1    infrastructure error (journal unwritable, ...)
 *   anything else / killed by signal: crash, handled by the supervisor
 */

#ifndef BURSTSIM_CAMPAIGN_WORKER_HH
#define BURSTSIM_CAMPAIGN_WORKER_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace bsim::campaign
{

/** Worker exit codes (see file comment). */
enum WorkerExit : int
{
    kWorkerOk = 0,
    kWorkerError = 1,
    kWorkerAborted = 3,
    kWorkerFailures = 4,
    kWorkerCancelled = 130,
};

/** Everything one worker incarnation needs. */
struct WorkerSpec
{
    /** The incarnation's points (shard slice minus quarantined points);
     *  journal resume inside the worker skips completed ones. */
    std::vector<sim::ExperimentConfig> points;
    std::string journal;  //!< shard journal path (v3, fsync'd)
    std::string progress; //!< shard progress JSONL (liveness channel)
    unsigned jobs = 1;    //!< threads inside the worker
    unsigned maxAttempts = 3; //!< in-process tries per transient failure
    double heartbeatSec = 0.25; //!< progress heartbeat period
    bool journalSync = true;
};

/**
 * Run one shard to completion in the calling process and return the
 * exit code to report. Installs a SIGTERM handler that trips the sweep
 * cancel token, so a supervisor's polite kill drains in-flight points
 * and journals them before exiting 130. Never throws.
 */
int runWorkerShard(const WorkerSpec &spec);

} // namespace bsim::campaign

#endif // BURSTSIM_CAMPAIGN_WORKER_HH
