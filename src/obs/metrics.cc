#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/json.hh"
#include "common/error.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "dram/stall.hh"

namespace bsim::obs
{

namespace
{

double
wallNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

MetricsSampler::MetricsSampler(Tick interval,
                               std::vector<std::string> bank_labels,
                               bool host_track)
    : interval_(interval), labels_(std::move(bank_labels)),
      hostTrack_(host_track)
{
    if (!interval_)
        throwSimError(ErrorCategory::Config, "metrics sampler: interval must be nonzero");
    if (hostTrack_)
        lastWallUs_ = wallNowUs();
}

void
MetricsSampler::sample(const MetricsSnapshot &s)
{
    const Tick end = s.now + 1;
    if (end <= lastEnd_)
        return; // boundary already emitted (e.g. flush after a full epoch)

    MetricsRow row;
    row.epoch = rows_.size();
    row.tickStart = lastEnd_;
    row.tickEnd = end;

    const double elapsed = double(end - lastEnd_);
    const double lanes = elapsed * double(s.channels);
    row.dataBusUtil =
        ratio(double(s.dataBusyCycles - prev_.dataBusyCycles), lanes);
    row.addrBusUtil =
        ratio(double(s.cmdBusyCycles - prev_.cmdBusyCycles), lanes);

    const std::uint64_t hits = s.rowHits - prev_.rowHits;
    const std::uint64_t classified = hits +
                                     (s.rowEmpties - prev_.rowEmpties) +
                                     (s.rowConflicts - prev_.rowConflicts);
    row.rowHitRate = ratio(double(hits), double(classified));
    row.epochReads = s.readsCompleted - prev_.readsCompleted;
    row.epochWrites = s.writesCompleted - prev_.writesCompleted;

    const double formed = s.burstsFormed - prev_.burstsFormed;
    const double joins = s.burstJoins - prev_.burstJoins;
    row.avgBurstLen = formed > 0.0 ? (formed + joins) / formed : 0.0;

    row.readsOutstanding = s.readsOutstanding;
    row.writesOutstanding = s.writesOutstanding;
    row.rpActive = s.rpActive;
    row.wpActive = s.wpActive;
    row.bankReadQ = s.bankReadQ;
    row.bankWriteQ = s.bankWriteQ;

    // Satellite tracks, emitted only when the controller supplies them.
    row.bankRowHitRate.reserve(s.bankRowHits.size());
    for (std::size_t i = 0; i < s.bankRowHits.size(); ++i) {
        const std::uint64_t prev_hits =
            i < prev_.bankRowHits.size() ? prev_.bankRowHits[i] : 0;
        const std::uint64_t prev_acc = i < prev_.bankRowAccesses.size()
                                           ? prev_.bankRowAccesses[i]
                                           : 0;
        row.bankRowHitRate.push_back(
            ratio(double(s.bankRowHits[i] - prev_hits),
                  double(s.bankRowAccesses[i] - prev_acc)));
    }
    row.stallCycles.reserve(s.stallCounts.size());
    for (std::size_t i = 0; i < s.stallCounts.size(); ++i) {
        const std::uint64_t prev_count =
            i < prev_.stallCounts.size() ? prev_.stallCounts[i] : 0;
        row.stallCycles.push_back(s.stallCounts[i] - prev_count);
    }

    row.coreReadQ = s.coreReadQ;
    row.coreWriteQ = s.coreWriteQ;
    // Per-requester row hit rate; the core vectors grow as new tags
    // appear, so earlier snapshots may be shorter than this one.
    row.coreRowHitRate.reserve(s.coreRowAccesses.size());
    for (std::size_t i = 0; i < s.coreRowAccesses.size(); ++i) {
        const std::uint64_t prev_hits =
            i < prev_.coreRowHits.size() ? prev_.coreRowHits[i] : 0;
        const std::uint64_t prev_acc =
            i < prev_.coreRowAccesses.size() ? prev_.coreRowAccesses[i] : 0;
        const std::uint64_t acc = s.coreRowAccesses[i] - prev_acc;
        // An idle core (no classified access this epoch) has no hit
        // rate; keep a NaN sentinel internally and let the writers map
        // it to 0 (CSV) / null (JSON) instead of a misleading 0.0 —
        // or, worse, a literal `nan` cell.
        row.coreRowHitRate.push_back(
            acc == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : ratio(double(s.coreRowHits[i] - prev_hits),
                             double(acc)));
    }

    if (s.haveEngine) {
        row.haveEngine = true;
        row.steppedCycles = s.steppedCycles - prev_.steppedCycles;
        row.skippedCycles = s.skippedCycles - prev_.skippedCycles;
    }
    if (hostTrack_) {
        const double now_us = wallNowUs();
        row.hostWallUs = now_us - lastWallUs_;
        lastWallUs_ = now_us;
    }

    rows_.push_back(std::move(row));
    prev_ = s;
    lastEnd_ = end;
}

void
MetricsSampler::writeCsv(std::ostream &os) const
{
    // Satellite columns appear only when the run produced the data, so
    // plain runs keep the historical column set.
    const bool have_rhr =
        !rows_.empty() && !rows_.front().bankRowHitRate.empty();
    const bool have_stalls =
        !rows_.empty() && !rows_.front().stallCycles.empty();
    const bool have_engine = !rows_.empty() && rows_.front().haveEngine;
    const bool have_host = !rows_.empty() && rows_.front().hostWallUs >= 0;
    // Requester tags appear over time, so the per-core vectors are
    // ragged across rows; size the column set to the widest row.
    std::size_t n_cores = 0;
    for (const auto &r : rows_) {
        n_cores = std::max(n_cores, r.coreReadQ.size());
        n_cores = std::max(n_cores, r.coreRowHitRate.size());
    }

    os << "epoch,tick_start,tick_end,data_bus_util,addr_bus_util,"
          "row_hit_rate,epoch_reads,epoch_writes,avg_burst_len,"
          "reads_outstanding,writes_outstanding,rp_active,wp_active";
    for (const auto &l : labels_)
        os << ",rq_" << l;
    for (const auto &l : labels_)
        os << ",wq_" << l;
    if (have_rhr)
        for (const auto &l : labels_)
            os << ",rhr_" << l;
    if (have_stalls)
        for (std::size_t i = 0; i < dram::kNumStallCauses; ++i)
            os << ",stall_" << dram::stallCauseName(dram::StallCause(i));
    for (std::size_t c = 0; c < n_cores; ++c)
        os << ",rq_core" << c;
    for (std::size_t c = 0; c < n_cores; ++c)
        os << ",wq_core" << c;
    for (std::size_t c = 0; c < n_cores; ++c)
        os << ",rhr_core" << c;
    if (have_engine)
        os << ",stepped_cycles,skipped_cycles";
    if (have_host)
        os << ",host_wall_us";
    os << '\n';

    for (const auto &r : rows_) {
        os << r.epoch << ',' << r.tickStart << ',' << r.tickEnd << ','
           << r.dataBusUtil << ',' << r.addrBusUtil << ',' << r.rowHitRate
           << ',' << r.epochReads << ',' << r.epochWrites << ','
           << r.avgBurstLen << ',' << r.readsOutstanding << ','
           << r.writesOutstanding << ',' << int(r.rpActive) << ','
           << int(r.wpActive);
        for (std::size_t i = 0; i < labels_.size(); ++i)
            os << ',' << (i < r.bankReadQ.size() ? r.bankReadQ[i] : 0);
        for (std::size_t i = 0; i < labels_.size(); ++i)
            os << ',' << (i < r.bankWriteQ.size() ? r.bankWriteQ[i] : 0);
        if (have_rhr)
            for (std::size_t i = 0; i < labels_.size(); ++i)
                os << ','
                   << (i < r.bankRowHitRate.size() ? r.bankRowHitRate[i]
                                                   : 0.0);
        if (have_stalls)
            for (std::size_t i = 0; i < dram::kNumStallCauses; ++i)
                os << ','
                   << (i < r.stallCycles.size() ? r.stallCycles[i] : 0);
        for (std::size_t c = 0; c < n_cores; ++c)
            os << ',' << (c < r.coreReadQ.size() ? r.coreReadQ[c] : 0);
        for (std::size_t c = 0; c < n_cores; ++c)
            os << ',' << (c < r.coreWriteQ.size() ? r.coreWriteQ[c] : 0);
        for (std::size_t c = 0; c < n_cores; ++c) {
            const double v =
                c < r.coreRowHitRate.size() ? r.coreRowHitRate[c] : 0.0;
            os << ',' << (std::isfinite(v) ? v : 0.0);
        }
        if (have_engine)
            os << ',' << r.steppedCycles << ',' << r.skippedCycles;
        if (have_host)
            os << ',' << (r.hostWallUs >= 0 ? r.hostWallUs : 0.0);
        os << '\n';
    }
}

void
MetricsSampler::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("interval").value(std::uint64_t(interval_));
    w.key("bank_labels").beginArray();
    for (const auto &l : labels_)
        w.value(l);
    w.endArray();
    w.key("rows").beginArray();
    for (const auto &r : rows_) {
        w.beginObject();
        w.key("epoch").value(r.epoch);
        w.key("tick_start").value(std::uint64_t(r.tickStart));
        w.key("tick_end").value(std::uint64_t(r.tickEnd));
        w.key("data_bus_util").value(r.dataBusUtil);
        w.key("addr_bus_util").value(r.addrBusUtil);
        w.key("row_hit_rate").value(r.rowHitRate);
        w.key("epoch_reads").value(r.epochReads);
        w.key("epoch_writes").value(r.epochWrites);
        w.key("avg_burst_len").value(r.avgBurstLen);
        w.key("reads_outstanding").value(std::uint64_t(r.readsOutstanding));
        w.key("writes_outstanding")
            .value(std::uint64_t(r.writesOutstanding));
        w.key("rp_active").value(r.rpActive);
        w.key("wp_active").value(r.wpActive);
        w.key("bank_read_q").beginArray();
        for (auto v : r.bankReadQ)
            w.value(std::uint64_t(v));
        w.endArray();
        w.key("bank_write_q").beginArray();
        for (auto v : r.bankWriteQ)
            w.value(std::uint64_t(v));
        w.endArray();
        if (!r.bankRowHitRate.empty()) {
            w.key("bank_row_hit_rate").beginArray();
            for (double v : r.bankRowHitRate)
                w.value(v);
            w.endArray();
        }
        if (!r.stallCycles.empty()) {
            w.key("stall_cycles").beginObject();
            for (std::size_t i = 0; i < r.stallCycles.size(); ++i)
                if (r.stallCycles[i])
                    w.key(dram::stallCauseName(dram::StallCause(i)))
                        .value(r.stallCycles[i]);
            w.endObject();
        }
        if (!r.coreReadQ.empty() || !r.coreWriteQ.empty()) {
            w.key("core_read_q").beginArray();
            for (auto v : r.coreReadQ)
                w.value(std::uint64_t(v));
            w.endArray();
            w.key("core_write_q").beginArray();
            for (auto v : r.coreWriteQ)
                w.value(std::uint64_t(v));
            w.endArray();
        }
        if (!r.coreRowHitRate.empty()) {
            w.key("core_row_hit_rate").beginArray();
            for (double v : r.coreRowHitRate) {
                if (std::isfinite(v))
                    w.value(v);
                else
                    w.null(); // idle core: no rate this epoch
            }
            w.endArray();
        }
        if (r.haveEngine) {
            w.key("stepped_cycles").value(r.steppedCycles);
            w.key("skipped_cycles").value(r.skippedCycles);
        }
        if (r.hostWallUs >= 0)
            w.key("host_wall_us").value(r.hostWallUs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace bsim::obs
