/**
 * @file
 * Per-access latency decomposition.
 *
 * Every access carries five timestamps (ctrl/access.hh): arrival into
 * the controller, the tick its bank arbiter picked it, first SDRAM
 * transaction issue, first data beat, and end of data. The breakdown
 * splits the total latency into four contiguous phases
 *
 *     queue : arrival  -> picked      (waiting behind other accesses)
 *     pick  : picked   -> first cmd   (picked but transactions blocked)
 *     prep  : first cmd-> data start  (precharge/activate + CAS/WL)
 *     data  : data start -> data end  (the burst itself)
 *
 * which by construction sum to the access's total latency — the
 * property the paper's Figure 7 discussion reasons about when it
 * attributes Burst's wins to queue-wait reduction rather than device
 * time. Histograms are kept per access class (read/write x row
 * hit/miss); reads satisfied by write-queue forwarding never touch the
 * device and are tallied separately.
 */

#ifndef BURSTSIM_OBS_LATENCY_BREAKDOWN_HH
#define BURSTSIM_OBS_LATENCY_BREAKDOWN_HH

#include <cstdint>

#include "common/stats.hh"
#include "ctrl/access.hh"

namespace bsim::obs
{

/** Read/write crossed with the row outcome of the first service. */
enum class AccessClass : std::uint8_t
{
    ReadHit,   //!< read, row open on the target row
    ReadMiss,  //!< read, row empty or conflict
    WriteHit,
    WriteMiss,
};

inline constexpr std::size_t kNumAccessClasses = 4;

/** Reporting name, e.g. "read_hit". */
const char *accessClassName(AccessClass c);

/** Phase statistics of one access class. */
struct PhaseStats
{
    /** Histogram bound: latencies above clamp into the last bucket. */
    static constexpr std::size_t kHistMax = 512;

    Histogram queue{kHistMax};
    Histogram pick{kHistMax};
    Histogram prep{kHistMax};
    Histogram data{kHistMax};
    Histogram total{kHistMax};

    // Means are kept separately from the histograms because histogram
    // samples clamp at kHistMax; the sums below stay exact, which is
    // what makes the phases-sum-to-total invariant testable.
    RunningMean queueMean;
    RunningMean pickMean;
    RunningMean prepMean;
    RunningMean dataMean;
    RunningMean totalMean;

    /** Accesses recorded in this class. */
    std::uint64_t count() const { return totalMean.count(); }
};

/** Accumulates the per-phase latency decomposition of a run. */
class LatencyBreakdown
{
  public:
    /** Record a completed access (call once, after dataEnd is final). */
    void record(const ctrl::MemAccess &a);

    /** Statistics of @p c. */
    const PhaseStats &of(AccessClass c) const
    {
        return classes_[std::size_t(c)];
    }

    /** Total latency of write-queue-forwarded reads. */
    const Histogram &forwarded() const { return forwarded_; }

    /** Mean latency of forwarded reads (exact, unclamped). */
    const RunningMean &forwardedMean() const { return forwardedMean_; }

    /** DRAM-serviced accesses recorded (excludes forwarded reads). */
    std::uint64_t recorded() const { return recorded_; }

  private:
    PhaseStats classes_[kNumAccessClasses];
    Histogram forwarded_{PhaseStats::kHistMax};
    RunningMean forwardedMean_;
    std::uint64_t recorded_ = 0;
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_LATENCY_BREAKDOWN_HH
