#include "obs/engine_introspect.hh"

#include <cstdio>
#include <ostream>

#include "common/json.hh"

namespace bsim::obs
{

namespace
{

std::size_t
spanBucketOf(Tick span)
{
    std::size_t b = 0;
    while (b + 1 < kNumSpanBuckets && (span >> (b + 1)) != 0)
        b += 1;
    return b;
}

} // namespace

const char *
wakeReasonName(WakeReason r)
{
    switch (r) {
      case WakeReason::CoreActive: return "core_active";
      case WakeReason::CoreWake: return "core_wake";
      case WakeReason::Response: return "response";
      case WakeReason::FsbAdmit: return "fsb_admit";
      case WakeReason::PendingData: return "pending_data";
      case WakeReason::Refresh: return "refresh";
      case WakeReason::SchedArbFill: return "sched_arb_fill";
      case WakeReason::SchedPreempt: return "sched_preempt";
      case WakeReason::SchedDrainFlip: return "sched_drain_flip";
      case WakeReason::SchedPiggyback: return "sched_piggyback";
      case WakeReason::SchedWriteDrain: return "sched_write_drain";
      case WakeReason::SchedBound: return "sched_bound";
      case WakeReason::SchedConservative: return "sched_conservative";
      case WakeReason::SchedEpoch: return "sched_epoch";
      case WakeReason::MetricsEpoch: return "metrics_epoch";
      case WakeReason::Unbounded: return "unbounded";
    }
    return "?";
}

EngineIntrospect::EngineIntrospect(std::uint32_t channels)
    : channels_(channels), wakesByChannel_(channels, 0)
{
}

void
EngineIntrospect::noteSkip(const WakeSource &src, Tick span)
{
    const auto r = static_cast<std::size_t>(src.reason);
    wakes_[r] += 1;
    skippedBy_[r] += span;
    skippedTotal_ += span;
    spansTotal_ += 1;
    spanHist_[spanBucketOf(span)] += 1;
    if (src.channel >= 0 &&
        static_cast<std::uint32_t>(src.channel) < channels_)
        wakesByChannel_[static_cast<std::size_t>(src.channel)] += 1;
}

void
EngineIntrospect::noteBlocked(const WakeSource &src)
{
    blocked_[static_cast<std::size_t>(src.reason)] += 1;
    blockedTotal_ += 1;
}

const char *
EngineIntrospect::spanBucketLabel(std::size_t i)
{
    static const char *labels[kNumSpanBuckets] = {
        "1",        "2-3",       "4-7",        "8-15",      "16-31",
        "32-63",    "64-127",    "128-255",    "256-511",   "512-1023",
        "1K-2K",    "2K-4K",     "4K-8K",      "8K-16K",    "16K-32K",
        "32K-64K",  "64K-128K",  "128K-256K",  "256K-512K", "512K-1M",
        ">=1M",
    };
    return i < kNumSpanBuckets ? labels[i] : "?";
}

bool
EngineIntrospect::identityHolds(std::uint64_t mem_cycles) const
{
    if (stepped_ + skippedTotal_ != mem_cycles)
        return false;
    std::uint64_t skipped_sum = 0, wake_sum = 0, blocked_sum = 0,
                  hist_sum = 0;
    for (std::size_t r = 0; r < kNumWakeReasons; ++r) {
        skipped_sum += skippedBy_[r];
        wake_sum += wakes_[r];
        blocked_sum += blocked_[r];
    }
    for (std::size_t b = 0; b < kNumSpanBuckets; ++b)
        hist_sum += spanHist_[b];
    return skipped_sum == skippedTotal_ && wake_sum == spansTotal_ &&
           hist_sum == spansTotal_ && blocked_sum == blockedTotal_ &&
           blockedTotal_ <= stepped_;
}

void
EngineIntrospect::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("stepped_cycles").value(stepped_);
    w.key("skipped_cycles").value(skippedTotal_);
    w.key("skip_spans").value(spansTotal_);
    w.key("blocked_decisions").value(blockedTotal_);
    w.key("wake_reasons").beginArray();
    for (std::size_t r = 0; r < kNumWakeReasons; ++r) {
        if (wakes_[r] == 0 && blocked_[r] == 0)
            continue;
        w.beginObject();
        w.key("reason").value(wakeReasonName(static_cast<WakeReason>(r)));
        w.key("wakes").value(wakes_[r]);
        w.key("skipped_cycles").value(skippedBy_[r]);
        w.key("blocked").value(blocked_[r]);
        w.endObject();
    }
    w.endArray();
    w.key("span_histogram").beginArray();
    for (std::size_t b = 0; b < kNumSpanBuckets; ++b) {
        if (spanHist_[b] == 0)
            continue;
        w.beginObject();
        w.key("span").value(spanBucketLabel(b));
        w.key("count").value(spanHist_[b]);
        w.endObject();
    }
    w.endArray();
    w.key("wakes_by_channel").beginArray();
    for (std::uint64_t c : wakesByChannel_)
        w.value(c);
    w.endArray();
    w.key("sched_memo").beginObject();
    w.key("hits").value(memoHits_);
    w.key("misses").value(memoMisses_);
    w.key("invalidations").value(memoInvalidations_);
    w.endObject();
    w.key("front_horizon").beginObject();
    w.key("hits").value(frontHits_);
    w.key("misses").value(frontMisses_);
    w.endObject();
    w.endObject();
}

void
EngineIntrospect::writeText(std::ostream &os,
                            std::uint64_t mem_cycles) const
{
    char buf[160];
    const double denom = mem_cycles ? static_cast<double>(mem_cycles) : 1.0;
    std::snprintf(buf, sizeof(buf),
                  "Engine introspection: %llu stepped + %llu skipped = "
                  "%llu mem cycles (%.1f%% skipped in %llu spans)\n",
                  static_cast<unsigned long long>(stepped_),
                  static_cast<unsigned long long>(skippedTotal_),
                  static_cast<unsigned long long>(stepped_ + skippedTotal_),
                  100.0 * static_cast<double>(skippedTotal_) / denom,
                  static_cast<unsigned long long>(spansTotal_));
    os << buf;
    os << "  wake reason         wakes     skipped-cycles   blocked\n";
    for (std::size_t r = 0; r < kNumWakeReasons; ++r) {
        if (wakes_[r] == 0 && blocked_[r] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "  %-18s %8llu %16llu %9llu\n",
                      wakeReasonName(static_cast<WakeReason>(r)),
                      static_cast<unsigned long long>(wakes_[r]),
                      static_cast<unsigned long long>(skippedBy_[r]),
                      static_cast<unsigned long long>(blocked_[r]));
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  sched memo: %llu hits / %llu misses / %llu "
                  "invalidations; front horizon: %llu hits / %llu misses\n",
                  static_cast<unsigned long long>(memoHits_),
                  static_cast<unsigned long long>(memoMisses_),
                  static_cast<unsigned long long>(memoInvalidations_),
                  static_cast<unsigned long long>(frontHits_),
                  static_cast<unsigned long long>(frontMisses_));
    os << buf;
    os << "  span histogram:";
    for (std::size_t b = 0; b < kNumSpanBuckets; ++b) {
        if (spanHist_[b] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), " %s:%llu", spanBucketLabel(b),
                      static_cast<unsigned long long>(spanHist_[b]));
        os << buf;
    }
    os << "\n";
}

} // namespace bsim::obs
