#include "obs/stall_attribution.hh"

#include <iomanip>
#include <ostream>

#include "common/json.hh"

namespace bsim::obs
{

using dram::StallCause;
using dram::kNumStallCauses;
using dram::stallCauseName;

StallAttribution::StallAttribution(std::uint32_t channels,
                                   std::uint32_t banks_per_channel,
                                   std::vector<std::string> bank_labels)
    : chans_(channels), banksPerChannel_(banks_per_channel),
      bankLabels_(std::move(bank_labels)),
      bankCounts_(std::size_t(channels) * banks_per_channel)
{}

void
StallAttribution::noteBurst(std::uint32_t ch, Tick start, Tick end)
{
    chans_[ch].pending.emplace_back(start, end);
}

void
StallAttribution::account(std::uint32_t ch, Tick now, bool slot_used,
                          StallCause cause)
{
    ChannelState &c = chans_[ch];

    // Promote bursts that have started into the busy horizon. Bursts are
    // booked in data-bus order, so a simple front scan suffices.
    while (!c.pending.empty() && c.pending.front().first <= now) {
        if (c.pending.front().second > c.busyUntil)
            c.busyUntil = c.pending.front().second;
        c.pending.pop_front();
    }

    StallCause attr;
    if (now < c.busyUntil)
        attr = StallCause::DataTransfer;
    else if (slot_used)
        attr = StallCause::PrepIssue;
    else if (cause == StallCause::NoWork && !c.pending.empty())
        attr = StallCause::PendingData; // only waiting for booked data
    else
        attr = cause;

    c.counts[std::size_t(attr)] += 1;
    c.cycles += 1;
}

void
StallAttribution::accountSpan(std::uint32_t ch, Tick from, Tick span,
                              StallCause cause)
{
    ChannelState &c = chans_[ch];
    Tick t = from;
    const Tick end = from + span;
    while (t < end) {
        while (!c.pending.empty() && c.pending.front().first <= t) {
            if (c.pending.front().second > c.busyUntil)
                c.busyUntil = c.pending.front().second;
            c.pending.pop_front();
        }
        Tick seg_end;
        StallCause attr;
        if (t < c.busyUntil) {
            seg_end = c.busyUntil < end ? c.busyUntil : end;
            attr = StallCause::DataTransfer;
        } else {
            // The attribution can only change where the next booked
            // burst starts; run this segment up to that edge.
            seg_end = end;
            if (!c.pending.empty() && c.pending.front().first < end)
                seg_end = c.pending.front().first;
            attr = (cause == StallCause::NoWork && !c.pending.empty())
                       ? StallCause::PendingData
                       : cause;
        }
        c.counts[std::size_t(attr)] += seg_end - t;
        c.cycles += seg_end - t;
        t = seg_end;
    }
}

void
StallAttribution::noteBankStall(std::uint32_t ch, std::uint32_t bank,
                                StallCause cause)
{
    bankCounts_[std::size_t(ch) * banksPerChannel_ + bank]
               [std::size_t(cause)] += bankWeight_;
}

StallAttribution::Counts
StallAttribution::totals() const
{
    Counts t{};
    for (const auto &c : chans_)
        for (std::size_t i = 0; i < kNumStallCauses; ++i)
            t[i] += c.counts[i];
    return t;
}

namespace
{

void
writeCounts(JsonWriter &w, const StallAttribution::Counts &counts)
{
    w.beginObject();
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        if (counts[i])
            w.key(stallCauseName(StallCause(i))).value(counts[i]);
    w.endObject();
}

} // namespace

void
StallAttribution::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();

    w.key("totals");
    writeCounts(w, totals());

    w.key("channels").beginArray();
    for (std::size_t ch = 0; ch < chans_.size(); ++ch) {
        w.beginObject();
        w.key("channel").value(std::uint64_t(ch));
        w.key("cycles").value(chans_[ch].cycles);
        w.key("causes");
        writeCounts(w, chans_[ch].counts);
        w.endObject();
    }
    w.endArray();

    w.key("banks").beginArray();
    for (std::size_t b = 0; b < bankCounts_.size(); ++b) {
        bool any = false;
        for (std::size_t i = 0; i < kNumStallCauses; ++i)
            any = any || bankCounts_[b][i];
        if (!any)
            continue;
        w.beginObject();
        if (b < bankLabels_.size())
            w.key("bank").value(bankLabels_[b]);
        else
            w.key("bank").value(std::uint64_t(b));
        w.key("causes");
        writeCounts(w, bankCounts_[b]);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << "\n";
}

void
StallAttribution::writeText(std::ostream &os) const
{
    os << "Cycle accounting (one cause per channel-cycle)\n";
    for (std::size_t ch = 0; ch < chans_.size(); ++ch) {
        const ChannelState &c = chans_[ch];
        os << "  channel " << ch << " (" << c.cycles << " cycles)\n";
        for (std::size_t i = 0; i < kNumStallCauses; ++i) {
            if (!c.counts[i])
                continue;
            const double pct =
                c.cycles ? 100.0 * double(c.counts[i]) / double(c.cycles)
                         : 0.0;
            os << "    " << std::setw(16) << std::left
               << stallCauseName(StallCause(i)) << std::right
               << std::setw(12) << c.counts[i] << "  " << std::fixed
               << std::setprecision(1) << std::setw(5) << pct << "%\n";
            os.unsetf(std::ios::floatfield);
        }
    }
}

} // namespace bsim::obs
