/**
 * @file
 * Per-cycle stall attribution.
 *
 * Every memory cycle of every channel is classified into exactly one
 * cause: the data bus was streaming (DataTransfer), the scheduler issued
 * a preparatory or column command (PrepIssue), it had nothing to do
 * (NoWork), it was waiting only for data already in flight to finish
 * (PendingData), or it was blocked — by a specific DDR2 timing window
 * (tRCD, tRP, tRAS, tFAW, tWTR, ...), by a read-preemption / write-
 * piggyback threshold gate, or by losing arbitration to another bank.
 *
 * Because the controller calls account() exactly once per channel per
 * cycle, the counts telescope: for each channel,
 *     sum over causes of count(ch, cause) == cycles(ch) == memCycles.
 * That identity is what makes the report trustworthy — no cycle is
 * double-counted and none goes missing — and the integration test
 * asserts it for every scheduler.
 */

#ifndef BURSTSIM_OBS_STALL_ATTRIBUTION_HH
#define BURSTSIM_OBS_STALL_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "dram/stall.hh"

namespace bsim::obs
{

/** Accumulates one attributed cause per channel per memory cycle. */
class StallAttribution
{
  public:
    using Counts = std::array<std::uint64_t, dram::kNumStallCauses>;

    /**
     * Track @p channels channels of @p banks_per_channel banks each.
     * @p bank_labels is channel-major (all of channel 0's banks first),
     * matching Observability's bank label order.
     */
    StallAttribution(std::uint32_t channels,
                     std::uint32_t banks_per_channel,
                     std::vector<std::string> bank_labels);

    /**
     * Record a data burst [start, end) scheduled on @p ch. Bursts start
     * after the command that books them (tCL / tWL later), so they are
     * queued here and consumed by account() as time passes.
     */
    void noteBurst(std::uint32_t ch, Tick start, Tick end);

    /**
     * Attribute cycle @p now on channel @p ch. @p slot_used means the
     * channel issued a command this cycle (scheduler or refresh engine);
     * otherwise @p cause is the scheduler's reason for sitting idle.
     * Data transfer takes precedence over everything: a cycle where the
     * bus streams is never a stall, whatever the command slot did.
     */
    void account(std::uint32_t ch, Tick now, bool slot_used,
                 dram::StallCause cause);

    /**
     * Bulk-attribute the dead span [@p from, @p from + @p span) on
     * channel @p ch, exactly as @p span successive account() calls with
     * an idle slot and the same @p cause would — including segmenting
     * across booked-burst start and end edges, so DataTransfer /
     * PendingData precedence is preserved tick for tick. Used by the
     * cycle-skipping engine; byte-identity with the step engine is
     * asserted by the equivalence suite.
     */
    void accountSpan(std::uint32_t ch, Tick from, Tick span,
                     dram::StallCause cause);

    /**
     * Make each subsequent noteBankStall() count for @p w cycles. The
     * skip engine runs one stallScan for a whole dead span; the per-bank
     * causes it reports held for every cycle of the span.
     */
    void setBankStallWeight(std::uint64_t w) { bankWeight_ = w; }

    /**
     * Deepen a channel-level stall with its per-bank breakdown: bank
     * @p bank (channel-local index) of channel @p ch was blocked by
     * @p cause this cycle. Several banks may stall in the same cycle,
     * so bank counts do not telescope; they show which banks bind.
     */
    void noteBankStall(std::uint32_t ch, std::uint32_t bank,
                       dram::StallCause cause);

    /** Number of channels tracked. */
    std::uint32_t numChannels() const
    {
        return std::uint32_t(chans_.size());
    }

    /** Cycles attributed on channel @p ch so far. */
    std::uint64_t cycles(std::uint32_t ch) const
    {
        return chans_[ch].cycles;
    }

    /** Cycles of @p ch attributed to @p cause. */
    std::uint64_t
    count(std::uint32_t ch, dram::StallCause cause) const
    {
        return chans_[ch].counts[std::size_t(cause)];
    }

    /** Per-cause totals summed over channels. */
    Counts totals() const;

    /** Machine-readable report (deterministic for identical runs). */
    void writeJson(std::ostream &os) const;

    /** Human-readable per-channel cycle-accounting table. */
    void writeText(std::ostream &os) const;

  private:
    struct ChannelState
    {
        /** Booked data bursts not yet fully in the past (start, end). */
        std::deque<std::pair<Tick, Tick>> pending;
        /** One past the last cycle of the burst currently streaming. */
        Tick busyUntil = 0;
        Counts counts{};
        std::uint64_t cycles = 0;
    };

    std::vector<ChannelState> chans_;
    std::uint64_t bankWeight_ = 1;
    std::uint32_t banksPerChannel_;
    std::vector<std::string> bankLabels_; //!< channel-major
    std::vector<Counts> bankCounts_;      //!< channel-major flat
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_STALL_ATTRIBUTION_HH
