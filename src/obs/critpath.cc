#include "obs/critpath.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "obs/stall_attribution.hh"

namespace bsim::obs
{

using dram::StallCause;
using dram::kNumStallCauses;
using dram::stallCauseName;

namespace
{

/** Top-K records retained for the report (text shows the first 8). */
constexpr std::size_t kTopK = 16;
constexpr std::size_t kTopText = 8;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
sumCounts(const CritPathTracer::Counts &c)
{
    std::uint64_t s = 0;
    for (std::uint64_t n : c)
        s += n;
    return s;
}

/** Ranking order of the top-K list: latency descending, id ascending. */
bool
ranksAbove(const CritPathTracer::Completed &x,
           const CritPathTracer::Completed &y)
{
    if (x.latency != y.latency)
        return x.latency > y.latency;
    return x.id < y.id;
}

const char *
typeName(const CritPathTracer::Completed &c)
{
    return c.forwarded ? "fwd" : c.write ? "write" : "read";
}

void
writeBlame(JsonWriter &w, const CritPathTracer::Counts &blame)
{
    w.beginObject();
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        if (blame[i])
            w.key(stallCauseName(StallCause(i))).value(blame[i]);
    w.endObject();
}

void
writeCompleted(JsonWriter &w, const CritPathTracer::Completed &c)
{
    w.beginObject();
    w.key("id").value(c.id);
    w.key("core").value(c.tag);
    w.key("type").value(typeName(c));
    w.key("critical").value(c.critical);
    w.key("channel").value(int(c.coords.channel));
    w.key("rank").value(int(c.coords.rank));
    w.key("bank").value(int(c.coords.bank));
    w.key("row").value(std::uint64_t(c.coords.row));
    w.key("arrival").value(c.arrival);
    if (!c.forwarded) {
        w.key("col_issued").value(c.colIssuedAt);
        w.key("data_start").value(c.dataStart);
    }
    w.key("data_end").value(c.dataEnd);
    w.key("latency").value(c.latency);
    if (c.outcomeValid)
        w.key("outcome").value(dram::rowOutcomeName(c.outcome));
    w.key("blocked_by").value(c.blockedBy);
    w.key("blame");
    writeBlame(w, c.blame);
    w.endObject();
}

/** "t_faw 12, data_transfer 8" — the heaviest causes of a blame vector. */
std::string
blameSummary(const CritPathTracer::Counts &blame, std::size_t max_causes)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        if (blame[i])
            idx.push_back(i);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) {
                  if (blame[a] != blame[b])
                      return blame[a] > blame[b];
                  return a < b;
              });
    if (idx.size() > max_causes)
        idx.resize(max_causes);
    std::string out;
    for (std::size_t i : idx) {
        if (!out.empty())
            out += ", ";
        out += stallCauseName(StallCause(i));
        out += ' ';
        out += std::to_string(blame[i]);
    }
    return out.empty() ? "-" : out;
}

} // namespace

CritPathTracer::CritPathTracer(std::uint32_t channels,
                               const std::string &jsonl_path)
    : ledgers_(channels), digest_(kFnvOffset)
{
    if (!jsonl_path.empty()) {
        stream_.open(jsonl_path, std::ios::trunc);
        if (!stream_)
            throwSimError(ErrorCategory::Resource,
                          "cannot open access trace '%s' for writing",
                          jsonl_path.c_str());
        streaming_ = true;
    }
}

void
CritPathTracer::onAdmit(const ctrl::MemAccess &a)
{
    live_.emplace(a.id, Live{});
}

CritPathTracer::Applied
CritPathTracer::apply(Ledger &led, Tick now, bool slot_used,
                      StallCause cause)
{
    // Identical promotion and classification to StallAttribution::
    // account(), with the streaming burst's owner carried along for the
    // blocking-command back-pointer.
    while (!led.pending.empty() && led.pending.front().start <= now) {
        if (led.pending.front().end > led.busyUntil) {
            led.busyUntil = led.pending.front().end;
            led.owner = led.pending.front().owner;
        }
        led.pending.pop_front();
    }

    Applied ap{cause, led.owner};
    if (now < led.busyUntil)
        ap.attr = StallCause::DataTransfer;
    else if (slot_used)
        ap.attr = StallCause::PrepIssue;
    else if (cause == StallCause::NoWork && !led.pending.empty())
        ap.attr = StallCause::PendingData;

    led.counts[std::size_t(ap.attr)] += 1;
    led.cycles += 1;
    return ap;
}

void
CritPathTracer::chargeVictim(const ctrl::MemAccess *victim, Applied ap,
                             std::uint64_t n)
{
    if (!victim)
        return;
    // PendingData means the queues were empty — there is no victim to
    // charge — and PrepIssue cannot occur on an idle slot.
    if (ap.attr == StallCause::PendingData)
        return;
    auto it = live_.find(victim->id);
    if (it == live_.end())
        return; // admitted before tracing attached; nothing to blame
    Live &l = it->second;
    if (ap.attr == StallCause::DataTransfer) {
        // The victim was not streaming (it is still queued): it waited
        // behind someone else's burst on the shared data bus.
        l.waits[std::size_t(StallCause::TimingDataBus)] += n;
        l.blockedBy = ap.owner;
    } else {
        l.waits[std::size_t(ap.attr)] += n;
    }
}

void
CritPathTracer::noteSlot(std::uint32_t ch, Tick now)
{
    apply(ledgers_[ch], now, true, StallCause::None);
}

void
CritPathTracer::noteIssue(std::uint32_t ch, Tick now,
                          const ctrl::MemAccess &a, bool column_access,
                          Tick data_start, Tick data_end)
{
    if (column_access)
        ledgers_[ch].pending.push_back({data_start, data_end, a.id});
    apply(ledgers_[ch], now, true, StallCause::None);
    auto it = live_.find(a.id);
    if (it != live_.end())
        it->second.ownIssues += 1;
}

void
CritPathTracer::noteStall(std::uint32_t ch, Tick now, StallCause cause,
                          const ctrl::MemAccess *victim)
{
    chargeVictim(victim, apply(ledgers_[ch], now, false, cause), 1);
}

void
CritPathTracer::noteStallSpan(std::uint32_t ch, Tick from, Tick span,
                              StallCause cause,
                              const ctrl::MemAccess *victim)
{
    // Segment exactly as StallAttribution::accountSpan() does, charging
    // the victim per segment so the blame equals what span successive
    // noteStall() calls would have produced.
    Ledger &led = ledgers_[ch];
    Tick t = from;
    const Tick end = from + span;
    while (t < end) {
        while (!led.pending.empty() && led.pending.front().start <= t) {
            if (led.pending.front().end > led.busyUntil) {
                led.busyUntil = led.pending.front().end;
                led.owner = led.pending.front().owner;
            }
            led.pending.pop_front();
        }
        Tick seg_end;
        Applied ap{cause, led.owner};
        if (t < led.busyUntil) {
            seg_end = led.busyUntil < end ? led.busyUntil : end;
            ap.attr = StallCause::DataTransfer;
        } else {
            seg_end = end;
            if (!led.pending.empty() && led.pending.front().start < end)
                seg_end = led.pending.front().start;
            if (cause == StallCause::NoWork && !led.pending.empty())
                ap.attr = StallCause::PendingData;
        }
        led.counts[std::size_t(ap.attr)] += seg_end - t;
        led.cycles += seg_end - t;
        chargeVictim(victim, ap, seg_end - t);
        t = seg_end;
    }
}

void
CritPathTracer::onComplete(const ctrl::MemAccess &a)
{
    auto it = live_.find(a.id);
    if (it == live_.end())
        throwSimError(ErrorCategory::Internal,
                      "critpath: access %llu completed without a blame "
                      "record",
                      static_cast<unsigned long long>(a.id));
    const Live l = it->second;
    live_.erase(it);

    Completed c;
    c.id = a.id;
    c.tag = a.tag;
    c.blockedBy = l.blockedBy;
    c.write = a.isWrite();
    c.forwarded = a.forwarded;
    c.critical = a.critical;
    c.coords = a.coords;
    c.outcome = a.outcome;
    c.outcomeValid = a.outcomeValid;
    c.arrival = a.arrival;
    c.colIssuedAt = a.colIssuedAt;
    c.dataStart = a.dataStart;
    c.dataEnd = a.dataEnd;
    c.latency = a.dataEnd - a.arrival;

    if (a.forwarded) {
        // Never scheduled: the whole (short) forward latency is time
        // spent waiting for data the write queue already held.
        if (l.ownIssues || sumCounts(l.waits))
            throwSimError(ErrorCategory::Internal,
                          "critpath: forwarded access %llu carries "
                          "scheduler charges",
                          static_cast<unsigned long long>(a.id));
        c.blame[std::size_t(StallCause::PendingData)] = c.latency;
    } else {
        // Queued phase [arrival, colIssuedAt]: own issues + victim
        // charges + arbitration residual.
        const std::uint64_t phase1 = a.colIssuedAt + 1 - a.arrival;
        const std::uint64_t charged = sumCounts(l.waits) + l.ownIssues;
        if (charged > phase1)
            throwSimError(
                ErrorCategory::Internal,
                "critpath: access %llu over-charged (%llu blame cycles "
                "in a %llu-cycle queue phase)",
                static_cast<unsigned long long>(a.id),
                static_cast<unsigned long long>(charged),
                static_cast<unsigned long long>(phase1));
        c.blame = l.waits;
        c.blame[std::size_t(StallCause::PrepIssue)] += l.ownIssues;
        c.blame[std::size_t(StallCause::ArbLoss)] += phase1 - charged;

        // Service tail (colIssuedAt, dataEnd): CAS/write-latency gap,
        // then the burst itself.
        const std::uint64_t phase2 = a.dataEnd - a.colIssuedAt - 1;
        std::uint64_t cas_gap = a.dataStart > a.colIssuedAt + 1
                                    ? a.dataStart - (a.colIssuedAt + 1)
                                    : 0;
        if (cas_gap > phase2)
            cas_gap = phase2;
        c.blame[std::size_t(StallCause::PendingData)] += cas_gap;
        c.blame[std::size_t(StallCause::DataTransfer)] +=
            phase2 - cas_gap;
    }

    if (sumCounts(c.blame) != c.latency)
        throwSimError(ErrorCategory::Internal,
                      "critpath: access %llu blame sums to %llu, "
                      "latency is %llu",
                      static_cast<unsigned long long>(a.id),
                      static_cast<unsigned long long>(sumCounts(c.blame)),
                      static_cast<unsigned long long>(c.latency));

    finalize(a, std::move(c));
}

void
CritPathTracer::finalize(const ctrl::MemAccess &a, Completed &&c)
{
    completed_ += 1;
    latencyTotal_ += c.latency;
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        blameTotals_[i] += c.blame[i];

    CoreRollup &r = rollups_[c.tag];
    r.count += 1;
    r.latencySum += c.latency;
    if (c.outcomeValid) {
        r.rowAccesses += 1;
        if (c.outcome == dram::RowOutcome::Hit)
            r.rowHits += 1;
    }
    for (std::size_t i = 0; i < kNumStallCauses; ++i)
        r.blame[i] += c.blame[i];

    if (top_.size() < kTopK || ranksAbove(c, top_.back())) {
        auto pos = std::lower_bound(top_.begin(), top_.end(), c,
                                    ranksAbove);
        top_.insert(pos, c);
        if (top_.size() > kTopK)
            top_.pop_back();
    }

    emit(c);
    if (retain_)
        retained_.push_back(std::move(c));
    (void)a;
}

void
CritPathTracer::emit(const Completed &c)
{
    std::ostringstream line;
    JsonWriter w(line, /*pretty=*/false);
    writeCompleted(w, c);
    line << '\n';
    const std::string s = line.str();
    for (unsigned char byte : s) {
        digest_ ^= byte;
        digest_ *= kFnvPrime;
    }
    if (streaming_)
        stream_ << s;
}

void
CritPathTracer::flush()
{
    if (streaming_)
        stream_.flush();
}

bool
CritPathTracer::identityHolds() const
{
    return sumCounts(blameTotals_) == latencyTotal_;
}

bool
CritPathTracer::ledgerMatches(const StallAttribution &st,
                              std::string *why) const
{
    if (st.numChannels() != ledgers_.size()) {
        if (why)
            *why = "channel count mismatch";
        return false;
    }
    for (std::uint32_t ch = 0; ch < ledgers_.size(); ++ch) {
        const Ledger &led = ledgers_[ch];
        if (led.cycles != st.cycles(ch)) {
            if (why)
                *why = "ch" + std::to_string(ch) + " cycles: ledger " +
                       std::to_string(led.cycles) + " vs accountant " +
                       std::to_string(st.cycles(ch));
            return false;
        }
        for (std::size_t i = 0; i < kNumStallCauses; ++i) {
            const std::uint64_t n = st.count(ch, StallCause(i));
            if (led.counts[i] != n) {
                if (why)
                    *why = "ch" + std::to_string(ch) + " " +
                           stallCauseName(StallCause(i)) + ": ledger " +
                           std::to_string(led.counts[i]) +
                           " vs accountant " + std::to_string(n);
                return false;
            }
        }
    }
    return true;
}

void
CritPathTracer::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("accesses").value(completed_);
    w.key("latency_cycles").value(latencyTotal_);
    w.key("blame_totals");
    writeBlame(w, blameTotals_);
    w.key("top").beginArray();
    for (const Completed &c : top_)
        writeCompleted(w, c);
    w.endArray();
    w.key("per_core").beginArray();
    for (const auto &[tag, r] : rollups_) {
        w.beginObject();
        w.key("core").value(tag);
        w.key("count").value(r.count);
        w.key("latency_mean")
            .value(r.count ? double(r.latencySum) / double(r.count)
                           : 0.0);
        w.key("row_hit_rate")
            .value(r.rowAccesses
                       ? double(r.rowHits) / double(r.rowAccesses)
                       : 0.0);
        w.key("blame");
        writeBlame(w, r.blame);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
CritPathTracer::writeText(std::ostream &os) const
{
    os << "critical path (" << completed_ << " accesses; top "
       << std::min(top_.size(), kTopText) << " by latency)\n";
    Table t;
    t.header({"id", "core", "type", "latency", "ch/rk/bk", "outcome",
              "blame"});
    for (std::size_t i = 0; i < top_.size() && i < kTopText; ++i) {
        const Completed &c = top_[i];
        t.row({std::to_string(c.id), std::to_string(c.tag), typeName(c),
               std::to_string(c.latency),
               std::to_string(c.coords.channel) + "/" +
                   std::to_string(c.coords.rank) + "/" +
                   std::to_string(c.coords.bank),
               c.outcomeValid ? dram::rowOutcomeName(c.outcome) : "-",
               blameSummary(c.blame, 3)});
    }
    t.print(os);
    if (rollups_.empty())
        return;
    os << "\nper-core critical-path rollup\n";
    Table pc;
    pc.header({"core", "accesses", "mean latency", "row hit",
               "dominant blame"});
    for (const auto &[tag, r] : rollups_) {
        pc.row({std::to_string(tag), std::to_string(r.count),
                Table::num(r.count ? double(r.latencySum) /
                                         double(r.count)
                                   : 0.0,
                           1),
                r.rowAccesses
                    ? Table::pct(double(r.rowHits) /
                                 double(r.rowAccesses))
                    : "-",
                blameSummary(r.blame, 3)});
    }
    pc.print(os);
}

} // namespace bsim::obs
