/**
 * @file
 * Per-access causal critical-path tracing: explain *why each access*
 * was slow, not just where channel-cycles went in aggregate.
 *
 * For every MemAccess the tracer accumulates a blame vector over the
 * StallCause taxonomy. The charges partition the measured latency
 * exactly — the per-access telescoping identity:
 *
 *     sum over causes of blame[cause] == dataEnd - arrival
 *
 * Construction: the queued phase [arrival, colIssuedAt] decomposes into
 * own command-issue cycles (PrepIssue), cycles where this access was
 * the scheduler's stall victim (charged with the scan cause, or with
 * TimingDataBus plus a blocking-burst back-pointer while the data bus
 * streamed someone else's burst), and a non-negative residual charged
 * to ArbLoss (slots spent on other accesses or the refresh engine).
 * The service tail (colIssuedAt, dataEnd) splits into the CAS/write gap
 * (PendingData) and the burst itself (DataTransfer). Forwarded reads
 * charge their whole (short) latency to PendingData. Violations throw
 * an internal SimError rather than silently mis-summing.
 *
 * The tracer also mirrors the aggregate stall accountant's per-cycle
 * algorithm in an internal ledger fed from the same controller call
 * sites (including the skip engine's bulk spans), so tests and the
 * critpath_identity fuzz oracle can assert that the two accountings
 * reconcile channel for channel, cause for cause, under both engines.
 */

#ifndef BURSTSIM_OBS_CRITPATH_HH
#define BURSTSIM_OBS_CRITPATH_HH

#include <array>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "ctrl/access.hh"
#include "dram/stall.hh"

namespace bsim
{
class JsonWriter;
}

namespace bsim::obs
{

class StallAttribution;

/** Per-access causal blame tracer (the fifth observability pillar). */
class CritPathTracer
{
  public:
    using Counts = std::array<std::uint64_t, dram::kNumStallCauses>;

    /** A finished access with its decomposed critical path. */
    struct Completed
    {
        std::uint64_t id = 0;
        std::uint64_t tag = 0;       //!< requester (core) id
        std::uint64_t blockedBy = 0; //!< last burst owner that held the bus
        bool write = false;
        bool forwarded = false;
        bool critical = false;
        dram::Coords coords;
        dram::RowOutcome outcome = dram::RowOutcome::Empty;
        bool outcomeValid = false;
        Tick arrival = 0;
        Tick colIssuedAt = 0; //!< kTickMax for forwarded reads
        Tick dataStart = 0;
        Tick dataEnd = 0;
        std::uint64_t latency = 0;
        Counts blame{};
    };

    /** Per-requester rollup over completed accesses. */
    struct CoreRollup
    {
        std::uint64_t count = 0;
        std::uint64_t latencySum = 0;
        std::uint64_t rowHits = 0;
        std::uint64_t rowAccesses = 0;
        Counts blame{};
    };

    /**
     * Trace @p channels channels; when @p jsonl_path is non-empty, every
     * completed access is streamed there as one JSON object per line.
     * An unwritable path throws a resource SimError up front.
     */
    CritPathTracer(std::uint32_t channels, const std::string &jsonl_path);

    // ----- controller hooks (one call per channel-cycle, mirroring the
    // ----- aggregate stall accountant's feed) -----

    /** An access entered the controller's pool. */
    void onAdmit(const ctrl::MemAccess &a);

    /** The refresh engine used channel @p ch's command slot at @p now. */
    void noteSlot(std::uint32_t ch, Tick now);

    /**
     * The scheduler issued a command for @p a on @p ch at @p now; when
     * @p column_access the data burst [@p data_start, @p data_end) was
     * booked on the channel's data bus.
     */
    void noteIssue(std::uint32_t ch, Tick now, const ctrl::MemAccess &a,
                   bool column_access, Tick data_start, Tick data_end);

    /**
     * Channel @p ch's slot sat idle at @p now for @p cause; @p victim is
     * the blocked access the scheduler's stall scan nominated (nullptr
     * when the cause has no specific queued access behind it).
     */
    void noteStall(std::uint32_t ch, Tick now, dram::StallCause cause,
                   const ctrl::MemAccess *victim);

    /**
     * Bulk form of noteStall() for the skip engine's dead span
     * [@p from, @p from + @p span): charges exactly as @p span
     * successive noteStall() calls would, segmenting across booked
     * burst edges so the blame is byte-identical to the step engine.
     */
    void noteStallSpan(std::uint32_t ch, Tick from, Tick span,
                       dram::StallCause cause,
                       const ctrl::MemAccess *victim);

    /** @p a finished (read data arrived / write left the CPU's view):
     *  close its blame chain and enforce the telescoping identity. */
    void onComplete(const ctrl::MemAccess &a);

    /** Flush the JSONL stream (end of run; records may be read while
     *  the tracer is still alive). */
    void flush();

    // ----- queries -----

    /** Accesses completed so far. */
    std::uint64_t completedCount() const { return completed_; }

    /** Sum of completed access latencies. */
    std::uint64_t latencyTotal() const { return latencyTotal_; }

    /** Per-cause blame summed over all completed accesses. */
    const Counts &blameTotals() const { return blameTotals_; }

    /** Does total blame telescope to total latency? (Per access it is
     *  enforced at completion; this is the aggregate restatement.) */
    bool identityHolds() const;

    /**
     * Does the internal per-cycle ledger agree with the aggregate stall
     * accountant @p st, channel for channel and cause for cause? On
     * mismatch, when @p why is non-null, describes the first diff.
     */
    bool ledgerMatches(const StallAttribution &st,
                       std::string *why = nullptr) const;

    /** FNV-1a digest over the emitted JSONL stream (also maintained
     *  when no file is attached) — engine byte-identity in one word. */
    std::uint64_t digest() const { return digest_; }

    /** Top-K slowest completed accesses, latency-descending (ties:
     *  lower id first). */
    const std::vector<Completed> &topSlowest() const { return top_; }

    /** Per-requester rollups, tag-ascending. */
    const std::map<std::uint64_t, CoreRollup> &perCore() const
    {
        return rollups_;
    }

    /** Test hook: keep every Completed record (unbounded memory). */
    void setRetainCompleted(bool on) { retain_ = on; }
    const std::vector<Completed> &retained() const { return retained_; }

    /** The result JSON's critical_path section. */
    void writeJson(JsonWriter &w) const;

    /** Human-readable top-K table plus per-core rollups. */
    void writeText(std::ostream &os) const;

  private:
    /** Blame being accumulated for an in-flight access. */
    struct Live
    {
        Counts waits{};              //!< victim charges by cause
        std::uint64_t ownIssues = 0; //!< own command slots used
        std::uint64_t blockedBy = 0; //!< last bus-blocking burst owner
    };

    /** Mirror of StallAttribution's per-channel cycle classifier, with
     *  burst ownership kept for the blocking-command back-pointer. */
    struct Ledger
    {
        struct Burst
        {
            Tick start;
            Tick end;
            std::uint64_t owner;
        };
        std::deque<Burst> pending;
        Tick busyUntil = 0;
        std::uint64_t owner = 0; //!< access id of the streaming burst
        Counts counts{};
        std::uint64_t cycles = 0;
    };

    /** Effective classification of one (or a run of) cycle(s). */
    struct Applied
    {
        dram::StallCause attr;
        std::uint64_t owner; //!< valid when attr == DataTransfer
    };

    Applied apply(Ledger &led, Tick now, bool slot_used,
                  dram::StallCause cause);
    void chargeVictim(const ctrl::MemAccess *victim, Applied ap,
                      std::uint64_t n);
    void finalize(const ctrl::MemAccess &a, Completed &&c);
    void emit(const Completed &c);

    std::vector<Ledger> ledgers_;
    std::unordered_map<std::uint64_t, Live> live_;

    std::uint64_t completed_ = 0;
    std::uint64_t latencyTotal_ = 0;
    Counts blameTotals_{};
    std::vector<Completed> top_; //!< sorted, at most kTopK entries
    std::map<std::uint64_t, CoreRollup> rollups_;

    bool retain_ = false;
    std::vector<Completed> retained_;

    std::ofstream stream_;
    bool streaming_ = false;
    std::uint64_t digest_;
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_CRITPATH_HH
