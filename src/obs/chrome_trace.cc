#include "obs/chrome_trace.hh"

#include <ostream>
#include <string>
#include <unordered_map>

#include "common/json.hh"
#include "dram/stall.hh"
#include "obs/metrics.hh"

namespace bsim::obs
{

namespace
{

constexpr int kTidScheduler = 0;
constexpr int kTidDataBus = 1;
constexpr int kTidBankBase = 2;

/** Emit one metadata event naming a process or thread. */
void
nameEvent(JsonWriter &w, const char *what, int pid, int tid,
          const std::string &name)
{
    w.beginObject();
    w.key("ph").value("M");
    w.key("name").value(what);
    w.key("pid").value(pid);
    if (tid >= 0)
        w.key("tid").value(tid);
    w.key("args").beginObject().key("name").value(name).endObject();
    w.endObject();
}

void
eventHeader(JsonWriter &w, const char *ph, const char *name, int pid,
            int tid, double ts)
{
    w.beginObject();
    w.key("ph").value(ph);
    w.key("name").value(name);
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("ts").value(ts);
}

} // namespace

void
writeChromeTrace(std::ostream &os, const dram::CommandLog &log,
                 const dram::DramConfig &cfg, const MetricsSampler *sampler,
                 const ChromeTraceOptions &opts)
{
    const ClockDomain &clk = opts.busClock;
    const int ctrl_pid = int(cfg.channels); // counter tracks live here

    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("generator").value("burstsim");
    w.key("bus_mhz").value(clk.mhz);
    w.key("commands_recorded").value(log.totalRecorded());
    w.key("commands_retained").value(std::uint64_t(log.size()));
    w.endObject();

    w.key("traceEvents").beginArray();

    // Track naming metadata.
    for (std::uint32_t ch = 0; ch < cfg.channels; ++ch) {
        const int pid = int(ch);
        nameEvent(w, "process_name", pid, -1,
                  "channel " + std::to_string(ch));
        nameEvent(w, "thread_name", pid, kTidScheduler, "scheduler");
        nameEvent(w, "thread_name", pid, kTidDataBus, "data bus");
        for (std::uint32_t r = 0; r < cfg.ranksPerChannel; ++r)
            for (std::uint32_t b = 0; b < cfg.banksPerRank; ++b)
                nameEvent(w, "thread_name", pid,
                          kTidBankBase + int(r * cfg.banksPerRank + b),
                          "rank " + std::to_string(r) + " bank " +
                              std::to_string(b));
    }
    if (sampler)
        nameEvent(w, "process_name", ctrl_pid, -1, "controller");

    // Commands already emitted per access, so flow arrows can tell a
    // first sighting ("s") from a continuation ("t"/"f").
    std::unordered_map<std::uint64_t, std::uint32_t> flow_seen;

    for (const auto &rec : log.records()) {
        const int pid = int(rec.coords.channel);
        const int bank_tid =
            kTidBankBase +
            int(rec.coords.rank * cfg.banksPerRank + rec.coords.bank);
        const double ts = clk.usOf(rec.at);
        const char *name = dram::cmdName(rec.type);

        // Scheduler decision stream: every issued command, in order.
        eventHeader(w, "i", name, pid, kTidScheduler, ts);
        w.key("s").value("t");
        w.key("args").beginObject();
        w.key("access").value(rec.accessId);
        w.key("bank").value(int(rec.coords.bank));
        w.key("rank").value(int(rec.coords.rank));
        w.endObject();
        w.endObject();

        if (dram::isColumnAccess(rec.type)) {
            // Bank lane: command issue to end of data (CAS/WL + burst).
            eventHeader(w, "X", name, pid, bank_tid, ts);
            w.key("dur").value(clk.usOf(rec.dataEnd - rec.at));
            w.key("args").beginObject();
            w.key("access").value(rec.accessId);
            w.key("row").value(std::uint64_t(rec.coords.row));
            w.key("col").value(std::uint64_t(rec.coords.col));
            w.endObject();
            w.endObject();

            // Data bus lane: the burst itself.
            eventHeader(w, "X",
                        rec.type == dram::CmdType::Read ? "data RD"
                                                        : "data WR",
                        pid, kTidDataBus, clk.usOf(rec.dataStart));
            w.key("dur").value(clk.usOf(rec.dataEnd - rec.dataStart));
            w.key("args").beginObject();
            w.key("access").value(rec.accessId);
            w.endObject();
            w.endObject();

            // Flow terminator: the column access ends the access's
            // command chain. A row hit has no earlier command, so a
            // single-command access draws no arrow.
            if (rec.accessId && flow_seen.count(rec.accessId)) {
                eventHeader(w, "f", "access", pid, bank_tid, ts);
                w.key("bp").value("e");
                w.key("id").value(rec.accessId);
                w.endObject();
            }
        } else {
            // Precharge / activate / refresh: instant on the bank lane
            // (refresh covers the rank; it is drawn on bank 0's lane).
            eventHeader(w, "i", name, pid, bank_tid, ts);
            w.key("s").value("t");
            w.key("args").beginObject();
            w.key("row").value(std::uint64_t(rec.coords.row));
            w.endObject();
            w.endObject();

            // Flow arrows chain an access's preparatory commands to its
            // column access (refresh records carry accessId 0).
            if (rec.accessId) {
                const auto it = flow_seen.find(rec.accessId);
                eventHeader(w, it == flow_seen.end() ? "s" : "t", "access",
                            pid, bank_tid, ts);
                w.key("id").value(rec.accessId);
                w.endObject();
                flow_seen[rec.accessId] += 1;
            }
        }
    }

    if (sampler) {
        for (const auto &row : sampler->rows()) {
            const double ts = clk.usOf(row.tickStart);
            eventHeader(w, "C", "queue occupancy", ctrl_pid, 0, ts);
            w.key("args").beginObject();
            w.key("reads").value(std::uint64_t(row.readsOutstanding));
            w.key("writes").value(std::uint64_t(row.writesOutstanding));
            w.endObject();
            w.endObject();

            eventHeader(w, "C", "bus utilization", ctrl_pid, 0, ts);
            w.key("args").beginObject();
            w.key("data").value(row.dataBusUtil);
            w.key("addr").value(row.addrBusUtil);
            w.endObject();
            w.endObject();

            if (!row.stallCycles.empty()) {
                eventHeader(w, "C", "stall causes", ctrl_pid, 0, ts);
                w.key("args").beginObject();
                for (std::size_t i = 0; i < row.stallCycles.size(); ++i)
                    if (row.stallCycles[i])
                        w.key(dram::stallCauseName(dram::StallCause(i)))
                            .value(row.stallCycles[i]);
                w.endObject();
                w.endObject();
            }

            // Host-time track (--selfprof): wall microseconds the
            // simulator spent on this epoch. Lets "where was the
            // simulator slow" be read off against simulated activity.
            if (row.hostWallUs >= 0) {
                eventHeader(w, "C", "host", ctrl_pid, 0, ts);
                w.key("args").beginObject();
                w.key("wall_us").value(row.hostWallUs);
                w.endObject();
                w.endObject();
            }
        }
    }

    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace bsim::obs
