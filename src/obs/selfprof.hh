/**
 * @file
 * Host-side self-profiler: hierarchical scoped timers over a
 * thread-local tree, measuring where the *simulator* spends wall time
 * (scheduler pick, timing checks, horizon computation, stall scan,
 * stats export) rather than where simulated time goes.
 *
 * Design constraints:
 *  - near-zero cost when off: Scope checks one thread-local flag and
 *    arms nothing, so instrumented hot paths stay branch-predictable;
 *  - thread-confined: each run owns its thread's tree, so parallel
 *    sweeps profile every slot independently with no synchronization;
 *  - host time never leaks into deterministic outputs: SelfProfile is
 *    exported to the text report and progress telemetry only, never to
 *    the result JSON the engine-equivalence gates byte-compare.
 */

#ifndef BURSTSIM_OBS_SELFPROF_HH
#define BURSTSIM_OBS_SELFPROF_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace bsim::obs::prof
{

/** Instrumented simulator phases (tree nodes aggregate per phase). */
enum class Phase : std::uint8_t
{
    Run,           //!< whole System::run() call
    CpuPhase,      //!< core windows (cache stack + ROB)
    FsbAdmit,      //!< front-side bus arbitration / admission
    CtrlTick,      //!< MemoryController::tick / tickSpan
    SchedPick,     //!< Scheduler::tick (the pick itself)
    TimingCheck,   //!< canIssue / blockedUntil probes into the engine
    StallScan,     //!< stall-attribution scans on idle slots
    RefreshEngine, //!< refresh due/drain handling
    Horizon,       //!< System::skipHorizon
    SchedHorizon,  //!< Scheduler::nextEventTick recomputation
    SkipSpan,      //!< System::skipTo bulk state advance
    ObsExport,     //!< metrics sampling / report export
};

constexpr std::size_t kNumPhases = 12;

/** Printable phase name (stable: used in progress JSONL rollups). */
const char *phaseName(Phase p);

/** Is self-profiling armed on this thread? */
bool enabled();

/** Arm or disarm self-profiling on this thread. */
void setEnabled(bool on);

/** Drop this thread's tree (call before an instrumented run). */
void reset();

/** One aggregated node of the phase tree, preorder with depth. */
struct ProfNode
{
    Phase phase = Phase::Run;
    int depth = 0;
    std::uint64_t count = 0; //!< times the scope was entered
    double totalUs = 0.0;    //!< inclusive wall microseconds
    double selfUs = 0.0;     //!< exclusive (minus instrumented children)
};

/** Snapshot of one thread's profile, exportable after the run. */
struct SelfProfile
{
    bool valid = false;            //!< profiling was on during the run
    std::vector<ProfNode> nodes;   //!< preorder tree
    /** Exclusive time per phase summed over the whole tree. */
    std::array<double, kNumPhases> selfUsByPhase{};
    double totalUs = 0.0; //!< sum of root-level inclusive times

    /** Human-readable indented tree (text report section). */
    void writeText(std::ostream &os) const;
};

/** Snapshot and aggregate this thread's tree (valid iff enabled). */
SelfProfile collect();

/**
 * RAII phase scope. Arms only when profiling is enabled at entry, and
 * stays armed through its own destructor even if the flag flips
 * mid-scope, so enter/leave always pair up.
 */
class Scope
{
  public:
    explicit Scope(Phase p)
    {
        if (enabled()) {
            armed_ = true;
            enter(p);
        }
    }

    ~Scope()
    {
        if (armed_)
            leave();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    static void enter(Phase p);
    static void leave();

    bool armed_ = false;
};

} // namespace bsim::obs::prof

#endif // BURSTSIM_OBS_SELFPROF_HH
