/**
 * @file
 * Chrome trace-event exporter.
 *
 * Converts a CommandLog (and optionally the epoch metrics time series)
 * into the Trace Event JSON format that chrome://tracing and Perfetto
 * load directly — the zoomable replacement for the ASCII waterfall of
 * CommandLog::renderTimeline on runs longer than a screenful.
 *
 * Track layout: one process per channel, whose threads are
 *
 *     tid 0            "scheduler"  — one instant event per issued
 *                                     command (the decision stream)
 *     tid 1            "data bus"   — complete events spanning each
 *                                     data burst
 *     tid 2 + flat     "rank R bank B" — complete events for column
 *                                     accesses (issue to end of data),
 *                                     instants for PRE/ACT/REF
 *
 * plus, when a metrics sampler is supplied, counter tracks for queue
 * occupancy and bus utilization on a separate "controller" process.
 * Timestamps are microseconds (the format's unit), converted from
 * memory cycles through the bus clock domain.
 */

#ifndef BURSTSIM_OBS_CHROME_TRACE_HH
#define BURSTSIM_OBS_CHROME_TRACE_HH

#include <iosfwd>

#include "common/clock.hh"
#include "dram/command_log.hh"
#include "dram/config.hh"

namespace bsim::obs
{

class MetricsSampler;

/** Exporter knobs. */
struct ChromeTraceOptions
{
    ClockDomain busClock{400.0}; //!< memory bus frequency
};

/**
 * Write @p log as a Chrome trace JSON document. @p sampler may be null;
 * when present its rows become counter tracks.
 */
void writeChromeTrace(std::ostream &os, const dram::CommandLog &log,
                      const dram::DramConfig &cfg,
                      const MetricsSampler *sampler,
                      const ChromeTraceOptions &opts = {});

} // namespace bsim::obs

#endif // BURSTSIM_OBS_CHROME_TRACE_HH
