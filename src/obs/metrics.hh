/**
 * @file
 * Epoch metrics sampler: a fixed-interval time series of the controller
 * and device state, the data behind the paper's write-queue-occupancy
 * story (Section 3.2 / Table 4: read preemption below the threshold,
 * write piggybacking above it, saturation at the 64-entry cap).
 *
 * The controller feeds the sampler one cumulative-counter snapshot at
 * the end of every epoch; the sampler differences consecutive snapshots
 * into per-epoch rates (bus utilization, row hit rate, completions) and
 * keeps the instantaneous queue state (global and per-bank occupancy,
 * RP/WP activation). Rows can be exported as CSV or JSON.
 */

#ifndef BURSTSIM_OBS_METRICS_HH
#define BURSTSIM_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bsim::obs
{

/** Cumulative counters and instantaneous state at one sampling point. */
struct MetricsSnapshot
{
    Tick now = 0; //!< tick being observed (last tick of the epoch)

    // Cumulative since the start of the run.
    std::uint64_t dataBusyCycles = 0; //!< summed over channels
    std::uint64_t cmdBusyCycles = 0;  //!< summed over channels
    std::uint64_t rowHits = 0;
    std::uint64_t rowEmpties = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t readsCompleted = 0;
    std::uint64_t writesCompleted = 0;
    double burstsFormed = 0.0; //!< burst schedulers only, else 0
    double burstJoins = 0.0;
    /** Per-bank row hits / classified accesses (channel-major; empty
     *  when the controller does not supply them). */
    std::vector<std::uint64_t> bankRowHits;
    std::vector<std::uint64_t> bankRowAccesses;
    /** Per-cause stall cycles summed over channels, indexed by
     *  dram::StallCause; empty without the stall-attribution pillar. */
    std::vector<std::uint64_t> stallCounts;
    /** Cumulative engine cycle split (engine-introspect pillar);
     *  meaningful only when haveEngine is set. */
    bool haveEngine = false;
    std::uint64_t steppedCycles = 0;
    std::uint64_t skippedCycles = 0;
    /** Per-requester row outcomes, indexed by the MemAccess tag (empty
     *  without the perCoreMetrics satellite; grows as tags appear). */
    std::vector<std::uint64_t> coreRowHits;
    std::vector<std::uint64_t> coreRowAccesses;

    // Instantaneous.
    std::uint32_t channels = 1;
    std::size_t readsOutstanding = 0;
    std::size_t writesOutstanding = 0;
    bool rpActive = false; //!< read preemption currently allowed
    bool wpActive = false; //!< write piggybacking currently allowed
    std::vector<std::uint32_t> bankReadQ;  //!< one entry per bank
    std::vector<std::uint32_t> bankWriteQ; //!< one entry per bank
    /** Per-requester outstanding accesses, indexed by the MemAccess tag
     *  (empty without the perCoreMetrics satellite). */
    std::vector<std::uint32_t> coreReadQ;
    std::vector<std::uint32_t> coreWriteQ;
};

/** One emitted time-series row (rates are per epoch, not cumulative). */
struct MetricsRow
{
    std::uint64_t epoch = 0;
    Tick tickStart = 0; //!< inclusive
    Tick tickEnd = 0;   //!< exclusive

    double dataBusUtil = 0.0;
    double addrBusUtil = 0.0;
    double rowHitRate = 0.0;       //!< among the epoch's classified accesses
    std::uint64_t epochReads = 0;  //!< completions within the epoch
    std::uint64_t epochWrites = 0;
    double avgBurstLen = 0.0; //!< reads per burst formed in the epoch

    std::size_t readsOutstanding = 0;
    std::size_t writesOutstanding = 0;
    bool rpActive = false;
    bool wpActive = false;
    std::vector<std::uint32_t> bankReadQ;
    std::vector<std::uint32_t> bankWriteQ;
    /** Per-bank row hit rate within the epoch (empty when not fed). */
    std::vector<double> bankRowHitRate;
    /** Per-cause stall cycles within the epoch (empty when not fed). */
    std::vector<std::uint64_t> stallCycles;
    /** Engine cycle split within the epoch (introspect pillar only). */
    bool haveEngine = false;
    std::uint64_t steppedCycles = 0;
    std::uint64_t skippedCycles = 0;
    /** Per-requester queue occupancy and row hit rate within the epoch
     *  (perCoreMetrics satellite only; indexed by the MemAccess tag). */
    std::vector<std::uint32_t> coreReadQ;
    std::vector<std::uint32_t> coreWriteQ;
    std::vector<double> coreRowHitRate;
    /** Host wall time spent in the epoch (selfprof host track only;
     *  negative when the track is off). Nondeterministic by nature. */
    double hostWallUs = -1.0;
};

/** Collects MetricsRow time series at a fixed cycle interval. */
class MetricsSampler
{
  public:
    /**
     * Sample every @p interval memory cycles over banks named
     * @p bank_labels (channel-major, matching the order schedulers
     * append occupancy in). @p interval must be nonzero. With
     * @p host_track each row also records the host wall time spent in
     * its epoch (the selfprof "host" track; nondeterministic, so it is
     * only ever emitted into opt-in CSV/trace outputs).
     */
    MetricsSampler(Tick interval, std::vector<std::string> bank_labels,
                   bool host_track = false);

    /** Sampling period in memory cycles. */
    Tick interval() const { return interval_; }

    /** Does tick @p now close an epoch? (cheap; called when enabled) */
    bool
    epochEnd(Tick now) const
    {
        return (now + 1) % interval_ == 0;
    }

    /**
     * Commit a snapshot taken at the end of @p s.now. Differences
     * against the previous snapshot; idempotent for a repeated
     * boundary (a flush after a final full epoch adds no row), so a
     * run of T cycles yields exactly ceil(T / interval) rows.
     */
    void sample(const MetricsSnapshot &s);

    /** Rows emitted so far. */
    const std::vector<MetricsRow> &rows() const { return rows_; }

    /** Bank column labels (e.g. "ch0_r1_b3"). */
    const std::vector<std::string> &bankLabels() const { return labels_; }

    /** Write the time series as CSV with a header row. */
    void writeCsv(std::ostream &os) const;

    /** Write the time series as a JSON document. */
    void writeJson(std::ostream &os) const;

  private:
    Tick interval_;
    std::vector<std::string> labels_;
    bool hostTrack_;
    std::vector<MetricsRow> rows_;
    MetricsSnapshot prev_; //!< counters at the last emitted boundary
    Tick lastEnd_ = 0;     //!< exclusive end tick of the last row
    double lastWallUs_ = 0.0; //!< host clock at the last boundary
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_METRICS_HH
