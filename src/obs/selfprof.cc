#include "obs/selfprof.hh"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace bsim::obs::prof
{

namespace
{

/** Raw timestamp in timer ticks (rdtsc on x86-64, steady ns elsewhere). */
inline std::uint64_t
rawNow()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

/** Microseconds per raw tick, calibrated once per process. */
double
usPerTick()
{
#if defined(__x86_64__) || defined(_M_X64)
    static const double us_per_tick = [] {
        // Calibrate the TSC against steady_clock over a short window.
        // Invariant-TSC hardware makes one calibration good for the
        // whole process; a 2 ms window keeps the error well under 1%.
        const auto wall0 = std::chrono::steady_clock::now();
        const std::uint64_t tsc0 = rawNow();
        for (;;) {
            const auto wall1 = std::chrono::steady_clock::now();
            if (wall1 - wall0 >= std::chrono::milliseconds(2)) {
                const std::uint64_t tsc1 = rawNow();
                const double us =
                    std::chrono::duration<double, std::micro>(wall1 - wall0)
                        .count();
                const double ticks = static_cast<double>(tsc1 - tsc0);
                return ticks > 0 ? us / ticks : 1e-3;
            }
        }
    }();
    return us_per_tick;
#else
    return 1e-3; // raw ticks are steady_clock nanoseconds
#endif
}

/** Intrusive tree node over a per-thread pool (indices, not pointers,
 *  so the pool vector may reallocate while scopes are open). */
struct Node
{
    Phase phase = Phase::Run;
    int parent = -1;
    int firstChild = -1;
    int nextSibling = -1;
    std::uint64_t count = 0;
    std::uint64_t ticks = 0; //!< accumulated inclusive raw ticks
};

struct Tls
{
    bool enabled = false;
    std::vector<Node> pool;
    int current = -1; //!< innermost open scope, -1 = at root level
    /** Open-scope stack: (node index, entry timestamp). */
    std::vector<std::pair<int, std::uint64_t>> open;
    /** Root-level children in creation order. */
    std::vector<int> roots;
};

Tls &
tls()
{
    thread_local Tls t;
    return t;
}

/** Find or create the child of @p parent with phase @p p. */
int
childFor(Tls &t, int parent, Phase p)
{
    int head = parent < 0 ? -1 : t.pool[parent].firstChild;
    for (int i = head; i >= 0; i = t.pool[i].nextSibling)
        if (t.pool[i].phase == p)
            return i;
    if (parent < 0) {
        for (int i : t.roots)
            if (t.pool[i].phase == p)
                return i;
    }
    const int idx = static_cast<int>(t.pool.size());
    Node n;
    n.phase = p;
    n.parent = parent;
    if (parent >= 0) {
        n.nextSibling = t.pool[parent].firstChild;
        t.pool[parent].firstChild = idx;
    } else {
        t.roots.push_back(idx);
    }
    t.pool.push_back(n);
    return idx;
}

void
emit(const Tls &t, int idx, int depth, SelfProfile &out)
{
    const Node &n = t.pool[idx];
    ProfNode pn;
    pn.phase = n.phase;
    pn.depth = depth;
    pn.count = n.count;
    pn.totalUs = static_cast<double>(n.ticks) * usPerTick();
    double child_us = 0.0;
    // firstChild links are LIFO; collect then reverse for stable order.
    std::vector<int> kids;
    for (int c = n.firstChild; c >= 0; c = t.pool[c].nextSibling)
        kids.push_back(c);
    pn.selfUs = pn.totalUs;
    out.nodes.push_back(pn);
    const std::size_t slot = out.nodes.size() - 1;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        child_us += static_cast<double>(t.pool[*it].ticks) * usPerTick();
        emit(t, *it, depth + 1, out);
    }
    out.nodes[slot].selfUs = pn.totalUs - child_us;
    if (out.nodes[slot].selfUs < 0)
        out.nodes[slot].selfUs = 0;
    out.selfUsByPhase[static_cast<std::size_t>(n.phase)] +=
        out.nodes[slot].selfUs;
}

} // namespace

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Run: return "run";
      case Phase::CpuPhase: return "cpu";
      case Phase::FsbAdmit: return "fsb_admit";
      case Phase::CtrlTick: return "ctrl_tick";
      case Phase::SchedPick: return "sched_pick";
      case Phase::TimingCheck: return "timing_check";
      case Phase::StallScan: return "stall_scan";
      case Phase::RefreshEngine: return "refresh";
      case Phase::Horizon: return "horizon";
      case Phase::SchedHorizon: return "sched_horizon";
      case Phase::SkipSpan: return "skip_span";
      case Phase::ObsExport: return "obs_export";
    }
    return "?";
}

bool
enabled()
{
    return tls().enabled;
}

void
setEnabled(bool on)
{
    tls().enabled = on;
}

void
reset()
{
    Tls &t = tls();
    t.pool.clear();
    t.open.clear();
    t.roots.clear();
    t.current = -1;
}

void
Scope::enter(Phase p)
{
    Tls &t = tls();
    const int idx = childFor(t, t.current, p);
    t.pool[idx].count += 1;
    t.open.emplace_back(idx, rawNow());
    t.current = idx;
}

void
Scope::leave()
{
    Tls &t = tls();
    if (t.open.empty())
        return; // tree was reset under an open scope; drop silently
    const auto [idx, start] = t.open.back();
    t.open.pop_back();
    t.pool[idx].ticks += rawNow() - start;
    t.current = t.open.empty() ? -1 : t.open.back().first;
}

SelfProfile
collect()
{
    const Tls &t = tls();
    SelfProfile out;
    out.valid = t.enabled;
    if (!out.valid)
        return out;
    for (int r : t.roots) {
        emit(t, r, 0, out);
        out.totalUs += static_cast<double>(t.pool[r].ticks) * usPerTick();
    }
    return out;
}

void
SelfProfile::writeText(std::ostream &os) const
{
    os << "Self-profile (host wall time; nondeterministic)\n";
    if (!valid) {
        os << "  (profiling was off)\n";
        return;
    }
    char buf[160];
    for (const auto &n : nodes) {
        std::snprintf(buf, sizeof(buf), "  %*s%-14s %12.1f us  self %10.1f us  x%llu\n",
                      n.depth * 2, "", phaseName(n.phase), n.totalUs, n.selfUs,
                      static_cast<unsigned long long>(n.count));
        os << buf;
    }
    std::snprintf(buf, sizeof(buf), "  total %.1f us\n", totalUs);
    os << buf;
}

} // namespace bsim::obs::prof
