/**
 * @file
 * Observability facade: owns whichever pillars a run enabled (latency
 * breakdown, metrics sampler, command trace) and knows how to export
 * them. The System wires it to the memory controller and device; the
 * experiment harness hands it to the RunResult so reports and the CLI
 * can write the outputs after the run.
 */

#ifndef BURSTSIM_OBS_OBSERVABILITY_HH
#define BURSTSIM_OBS_OBSERVABILITY_HH

#include <iosfwd>
#include <memory>

#include "dram/command_log.hh"
#include "dram/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/critpath.hh"
#include "obs/engine_introspect.hh"
#include "obs/latency_breakdown.hh"
#include "obs/metrics.hh"
#include "obs/obs_config.hh"
#include "obs/protocol_audit.hh"
#include "obs/stall_attribution.hh"

namespace bsim::obs
{

/** Owns the enabled observability pillars of one run. */
class Observability
{
  public:
    /**
     * Build the pillars @p cfg enables for a machine with the SDRAM
     * organization @p dram and a @p bus_mhz memory bus.
     */
    Observability(const ObsConfig &cfg, const dram::DramConfig &dram,
                  double bus_mhz);

    const ObsConfig &config() const { return cfg_; }

    /** Latency pillar; nullptr when disabled. */
    LatencyBreakdown *latency() { return latency_.get(); }
    const LatencyBreakdown *latency() const { return latency_.get(); }

    /** Metrics pillar; nullptr when disabled. */
    MetricsSampler *sampler() { return sampler_.get(); }
    const MetricsSampler *sampler() const { return sampler_.get(); }

    /** Trace pillar; nullptr when disabled. */
    dram::CommandLog *commandLog() { return log_.get(); }
    const dram::CommandLog *commandLog() const { return log_.get(); }

    /** Stall-attribution pillar; nullptr when disabled. */
    StallAttribution *stalls() { return stalls_.get(); }
    const StallAttribution *stalls() const { return stalls_.get(); }

    /** Protocol auditor; nullptr when audit mode is Off. */
    ProtocolAuditor *auditor() { return auditor_.get(); }
    const ProtocolAuditor *auditor() const { return auditor_.get(); }

    /** Engine-introspection pillar; nullptr when disabled. */
    EngineIntrospect *introspect() { return introspect_.get(); }
    const EngineIntrospect *introspect() const { return introspect_.get(); }

    /** Critical-path tracing pillar; nullptr when disabled. */
    CritPathTracer *critpath() { return critpath_.get(); }
    const CritPathTracer *critpath() const { return critpath_.get(); }

    /** Export the wake-reason attribution (introspect pillar on). */
    void writeIntrospectJson(std::ostream &os) const;

    /** Export the command trace as Chrome trace JSON (trace pillar on). */
    void writeChromeTrace(std::ostream &os) const;

    /** Export the metrics time series (sampler pillar on). */
    void writeMetricsCsv(std::ostream &os) const;
    void writeMetricsJson(std::ostream &os) const;

    /** Export cycle accounting (stall-attribution pillar on). */
    void writeStallJson(std::ostream &os) const;
    void writeStallText(std::ostream &os) const;

  private:
    ObsConfig cfg_;
    dram::DramConfig dram_;
    double busMHz_;
    std::unique_ptr<LatencyBreakdown> latency_;
    std::unique_ptr<MetricsSampler> sampler_;
    std::unique_ptr<dram::CommandLog> log_;
    std::unique_ptr<StallAttribution> stalls_;
    std::unique_ptr<ProtocolAuditor> auditor_;
    std::unique_ptr<EngineIntrospect> introspect_;
    std::unique_ptr<CritPathTracer> critpath_;
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_OBSERVABILITY_HH
