#include "obs/protocol_audit.hh"

#include <algorithm>
#include <ostream>

#include "common/error.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace bsim::obs
{

using dram::CmdType;
using dram::CommandRecord;
using dram::Coords;

namespace
{

/** How many violations to keep verbatim for the report. */
constexpr std::size_t kKeepViolations = 64;

std::string
tickStr(Tick t)
{
    return std::to_string(static_cast<unsigned long long>(t));
}

} // namespace

ProtocolAuditor::ProtocolAuditor(AuditMode mode,
                                 const dram::DramConfig &cfg)
    : mode_(mode), t_(cfg.timing), ranksPerChannel_(cfg.ranksPerChannel),
      banksPerRank_(cfg.banksPerRank), channels_(cfg.channels),
      ranks_(std::size_t(cfg.channels) * cfg.ranksPerChannel),
      banks_(std::size_t(cfg.channels) * cfg.ranksPerChannel *
             cfg.banksPerRank)
{}

ProtocolAuditor::BankShadow &
ProtocolAuditor::bankOf(const Coords &c)
{
    return banks_[(std::size_t(c.channel) * ranksPerChannel_ + c.rank) *
                      banksPerRank_ +
                  c.bank];
}

ProtocolAuditor::RankShadow &
ProtocolAuditor::rankOf(const Coords &c)
{
    return ranks_[std::size_t(c.channel) * ranksPerChannel_ + c.rank];
}

Tick
ProtocolAuditor::earliestDataStart(const ChannelShadow &ch,
                                   std::uint32_t rank,
                                   bool is_write) const
{
    if (!ch.dataUsed)
        return 0;
    Tick start = ch.dataFreeAt;
    if (rank != ch.lastDataRank)
        start += t_.tRTRS;
    else if (!ch.lastDataWrite && is_write)
        start += t_.tRTW;
    return start;
}

Tick
ProtocolAuditor::impliedPreAt(const BankShadow &b, Tick at,
                              bool is_write) const
{
    // The earliest point a precharge (explicit or auto) may close the
    // bank once this column access at @p at has issued: tRAS from the
    // activate, read-to-precharge from the latest read, write recovery
    // from the latest write's data end — including this access itself.
    const Tick dc = Tick(t_.dataCycles());
    Tick pre = b.lastActAt + t_.tRAS;
    Tick last_rd = b.rdValid ? b.lastRdAt : 0;
    Tick last_wr_end = b.wrValid ? b.lastWrDataEnd : 0;
    if (is_write)
        last_wr_end = std::max(last_wr_end, at + t_.tWL + dc);
    else
        last_rd = std::max(last_rd, at);
    if (b.rdValid || !is_write)
        pre = std::max(pre,
                       last_rd + std::max<Tick>(1, dc + t_.tRTP - 2));
    if (b.wrValid || is_write)
        pre = std::max(pre, last_wr_end + t_.tWR);
    return pre;
}

void
ProtocolAuditor::flag(Tick at, CmdType type, const Coords &coords,
                      const char *rule, std::string detail)
{
    violationCount_ += 1;
    if (violations_.size() < kKeepViolations) {
        AuditViolation v;
        v.at = at;
        v.type = type;
        v.coords = coords;
        v.rule = rule;
        v.detail = detail;
        violations_.push_back(std::move(v));
    }
    char msg[512];
    std::snprintf(msg, sizeof(msg),
                  "audit: %s violation at tick %llu: %s ch%u r%u b%u "
                  "row%u: %s",
                  rule, static_cast<unsigned long long>(at), cmdName(type),
                  coords.channel, coords.rank, coords.bank, coords.row,
                  detail.c_str());
    if (mode_ == AuditMode::Fatal)
        throw SimError(ErrorCategory::Protocol, msg);
    warn("%s", msg);
}

void
ProtocolAuditor::onCommand(const CommandRecord &rec)
{
    audited_ += 1;

    // One command per channel per cycle, time flowing forward.
    ChannelShadow &ch = channels_[rec.coords.channel];
    if (ch.cmdValid && rec.at <= ch.lastCmdAt)
        flag(rec.at, rec.type, rec.coords, "cmd_bus",
             "command bus already used at tick " + tickStr(ch.lastCmdAt));
    ch.cmdValid = true;
    ch.lastCmdAt = rec.at;

    switch (rec.type) {
      case CmdType::Activate:
        checkActivate(rec);
        break;
      case CmdType::Read:
        checkRead(rec);
        break;
      case CmdType::Write:
        checkWrite(rec);
        break;
      case CmdType::Precharge:
        checkPrecharge(rec);
        break;
      case CmdType::RefreshAll:
        checkRefresh(rec);
        break;
    }
}

void
ProtocolAuditor::checkActivate(const CommandRecord &rec)
{
    BankShadow &b = bankOf(rec.coords);
    RankShadow &r = rankOf(rec.coords);
    const Tick at = rec.at;

    if (b.open)
        flag(at, rec.type, rec.coords, "bank_state",
             "activate while row " + std::to_string(b.row) + " is open");
    if (b.preValid && at < b.lastPreAt + t_.tRP)
        flag(at, rec.type, rec.coords, "t_rp",
             "precharge at " + tickStr(b.lastPreAt) + " + tRP=" +
                 tickStr(t_.tRP) + " not met");
    if (b.everActivated && at < b.lastActEver + t_.tRC)
        flag(at, rec.type, rec.coords, "t_rc",
             "activate at " + tickStr(b.lastActEver) + " + tRC=" +
                 tickStr(t_.tRC) + " not met");
    if (at < r.refreshEnd)
        flag(at, rec.type, rec.coords, "t_rfc",
             "refresh completes at " + tickStr(r.refreshEnd));
    if (r.actValid && at < r.lastActAt + t_.tRRD)
        flag(at, rec.type, rec.coords, "t_rrd",
             "rank activate at " + tickStr(r.lastActAt) + " + tRRD=" +
                 tickStr(t_.tRRD) + " not met");
    if (t_.tFAW && r.actHistory.size() == 4 &&
        at < r.actHistory.front() + t_.tFAW)
        flag(at, rec.type, rec.coords, "t_faw",
             "5th activate in rolling window; 4th-last at " +
                 tickStr(r.actHistory.front()) + " + tFAW=" +
                 tickStr(t_.tFAW) + " not met");

    b.open = true;
    b.row = rec.coords.row;
    b.lastActAt = at;
    b.lastActEver = at;
    b.everActivated = true;
    b.rdValid = false;
    b.wrValid = false;

    r.actValid = true;
    r.lastActAt = at;
    r.actHistory.push_back(at);
    if (r.actHistory.size() > 4)
        r.actHistory.pop_front();
}

void
ProtocolAuditor::checkRead(const CommandRecord &rec)
{
    BankShadow &b = bankOf(rec.coords);
    RankShadow &r = rankOf(rec.coords);
    ChannelShadow &ch = channels_[rec.coords.channel];
    const Tick at = rec.at;
    const Tick dc = Tick(t_.dataCycles());

    if (!b.open || b.row != rec.coords.row)
        flag(at, rec.type, rec.coords, "bank_state",
             b.open ? "read to row " + std::to_string(rec.coords.row) +
                          " but row " + std::to_string(b.row) + " open"
                    : std::string("read on closed bank"));
    else if (at < b.lastActAt + t_.tRCD)
        flag(at, rec.type, rec.coords, "t_rcd",
             "activate at " + tickStr(b.lastActAt) + " + tRCD=" +
                 tickStr(t_.tRCD) + " not met");
    if (at < r.rdReadyAt)
        flag(at, rec.type, rec.coords, "t_wtr",
             "write-to-read turnaround blocks reads until " +
                 tickStr(r.rdReadyAt));
    if (rec.dataStart != at + t_.tCL || rec.dataEnd != rec.dataStart + dc)
        flag(at, rec.type, rec.coords, "data_latency",
             "read burst must span [" + tickStr(at + t_.tCL) + ", " +
                 tickStr(at + t_.tCL + dc) + "), got [" +
                 tickStr(rec.dataStart) + ", " + tickStr(rec.dataEnd) +
                 ")");
    if (rec.dataStart < earliestDataStart(ch, rec.coords.rank, false))
        flag(at, rec.type, rec.coords, "data_bus",
             "data bus not free until " +
                 tickStr(earliestDataStart(ch, rec.coords.rank, false)));

    const Tick pre_at = impliedPreAt(b, at, false);
    b.rdValid = true;
    b.lastRdAt = at;
    if (rec.autoPrecharge) {
        b.open = false;
        b.preValid = true;
        b.lastPreAt = pre_at;
        // An auto-precharge is tracked apart from explicit PRE/REF
        // disturbances: the burst hook for this very command fires at
        // the same tick and must not count it against this access (see
        // noteBurstRead). An older unconsumed one folds into the
        // ordinary disturbed flag first.
        if (b.selfPre)
            b.disturbed = true;
        b.selfPre = true;
        b.selfPreAt = at;
    }

    ch.dataUsed = true;
    ch.dataFreeAt = rec.dataStart + dc;
    ch.lastDataRank = rec.coords.rank;
    ch.lastDataWrite = false;
}

void
ProtocolAuditor::checkWrite(const CommandRecord &rec)
{
    BankShadow &b = bankOf(rec.coords);
    RankShadow &r = rankOf(rec.coords);
    ChannelShadow &ch = channels_[rec.coords.channel];
    const Tick at = rec.at;
    const Tick dc = Tick(t_.dataCycles());

    if (!b.open || b.row != rec.coords.row)
        flag(at, rec.type, rec.coords, "bank_state",
             b.open ? "write to row " + std::to_string(rec.coords.row) +
                          " but row " + std::to_string(b.row) + " open"
                    : std::string("write on closed bank"));
    else if (at < b.lastActAt + t_.tRCD)
        flag(at, rec.type, rec.coords, "t_rcd",
             "activate at " + tickStr(b.lastActAt) + " + tRCD=" +
                 tickStr(t_.tRCD) + " not met");
    if (rec.dataStart != at + t_.tWL || rec.dataEnd != rec.dataStart + dc)
        flag(at, rec.type, rec.coords, "data_latency",
             "write burst must span [" + tickStr(at + t_.tWL) + ", " +
                 tickStr(at + t_.tWL + dc) + "), got [" +
                 tickStr(rec.dataStart) + ", " + tickStr(rec.dataEnd) +
                 ")");
    if (rec.dataStart < earliestDataStart(ch, rec.coords.rank, true))
        flag(at, rec.type, rec.coords, "data_bus",
             "data bus not free until " +
                 tickStr(earliestDataStart(ch, rec.coords.rank, true)));

    const Tick pre_at = impliedPreAt(b, at, true);
    b.wrValid = true;
    b.lastWrDataEnd = at + t_.tWL + dc;
    if (rec.autoPrecharge) {
        b.open = false;
        b.preValid = true;
        b.lastPreAt = pre_at;
        if (b.selfPre)
            b.disturbed = true;
        b.selfPre = true;
        b.selfPreAt = at;
    }

    r.rdReadyAt = std::max(r.rdReadyAt, b.lastWrDataEnd + t_.tWTR);

    ch.dataUsed = true;
    ch.dataFreeAt = rec.dataStart + dc;
    ch.lastDataRank = rec.coords.rank;
    ch.lastDataWrite = true;
}

void
ProtocolAuditor::checkPrecharge(const CommandRecord &rec)
{
    BankShadow &b = bankOf(rec.coords);
    const Tick at = rec.at;
    const Tick dc = Tick(t_.dataCycles());

    if (!b.open) {
        flag(at, rec.type, rec.coords, "bank_state",
             "precharge on closed bank");
    } else {
        if (at < b.lastActAt + t_.tRAS)
            flag(at, rec.type, rec.coords, "t_ras",
                 "activate at " + tickStr(b.lastActAt) + " + tRAS=" +
                     tickStr(t_.tRAS) + " not met");
        if (b.rdValid &&
            at < b.lastRdAt + std::max<Tick>(1, dc + t_.tRTP - 2))
            flag(at, rec.type, rec.coords, "t_rtp",
                 "read at " + tickStr(b.lastRdAt) +
                     " not yet clear of the array (tRTP)");
        if (b.wrValid && at < b.lastWrDataEnd + t_.tWR)
            flag(at, rec.type, rec.coords, "t_wr",
                 "write data ends at " + tickStr(b.lastWrDataEnd) +
                     " + tWR=" + tickStr(t_.tWR) + " not met");
    }

    b.open = false;
    b.preValid = true;
    b.lastPreAt = at;
    b.disturbed = true;
}

void
ProtocolAuditor::checkRefresh(const CommandRecord &rec)
{
    RankShadow &r = rankOf(rec.coords);
    const Tick at = rec.at;
    const std::size_t base =
        (std::size_t(rec.coords.channel) * ranksPerChannel_ +
         rec.coords.rank) *
        banksPerRank_;

    for (std::uint32_t i = 0; i < banksPerRank_; ++i) {
        BankShadow &b = banks_[base + i];
        Coords c = rec.coords;
        c.bank = i;
        if (b.open)
            flag(at, rec.type, c, "bank_open",
                 "refresh with row " + std::to_string(b.row) + " open");
        if (b.preValid && at < b.lastPreAt + t_.tRP)
            flag(at, rec.type, c, "t_rp",
                 "precharge at " + tickStr(b.lastPreAt) +
                     " not settled before refresh");
        if (b.everActivated && at < b.lastActEver + t_.tRC)
            flag(at, rec.type, c, "t_rc",
                 "activate at " + tickStr(b.lastActEver) +
                     " not settled before refresh");
        if (at < r.refreshEnd)
            flag(at, rec.type, c, "t_rfc",
                 "previous refresh completes at " + tickStr(r.refreshEnd));
        b.disturbed = true;
    }

    r.refreshEnd = at + t_.tRFC;
}

void
ProtocolAuditor::noteBurstRead(Tick now, const Coords &coords,
                               bool first_of_burst,
                               dram::RowOutcome outcome)
{
    BankShadow &b = bankOf(coords);
    // This hook fires after the column access itself was audited, so a
    // close-page auto-precharge carried by this very command is already
    // recorded (selfPre at tick `now`). That precharge is an intervening
    // disturbance for the NEXT access of the burst, not for this one:
    // judge this access only on disturbances strictly before `now`, and
    // consume only those, leaving a same-tick auto-precharge armed.
    const bool disturbed_before =
        b.disturbed || (b.selfPre && b.selfPreAt < now);
    if (!first_of_burst && !disturbed_before &&
        outcome != dram::RowOutcome::Hit)
        flag(now, CmdType::Read, coords, "burst_row_hit",
             std::string("non-first access of a burst classified ") +
                 rowOutcomeName(outcome) +
                 " with no intervening precharge/refresh");
    b.disturbed = false;
    if (b.selfPre && b.selfPreAt < now)
        b.selfPre = false;
}

void
ProtocolAuditor::notePreemption(Tick now, std::uint64_t writes_outstanding,
                                std::uint64_t threshold)
{
    if (writes_outstanding >= threshold)
        flag(now, CmdType::Read, Coords{}, "rp_gate",
             "read preemption fired with write occupancy " +
                 std::to_string(writes_outstanding) +
                 " >= threshold " + std::to_string(threshold));
}

void
ProtocolAuditor::notePiggyback(Tick now, std::uint64_t writes_outstanding,
                               std::uint64_t threshold)
{
    if (writes_outstanding <= threshold)
        flag(now, CmdType::Write, Coords{}, "wp_gate",
             "write piggyback fired with write occupancy " +
                 std::to_string(writes_outstanding) +
                 " <= threshold " + std::to_string(threshold));
}

void
ProtocolAuditor::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("mode").value(auditModeName(mode_));
    w.key("commands_audited").value(audited_);
    w.key("violations").value(violationCount_);
    w.key("entries").beginArray();
    for (const auto &v : violations_) {
        w.beginObject();
        w.key("tick").value(std::uint64_t(v.at));
        w.key("cmd").value(cmdName(v.type));
        w.key("channel").value(std::uint64_t(v.coords.channel));
        w.key("rank").value(std::uint64_t(v.coords.rank));
        w.key("bank").value(std::uint64_t(v.coords.bank));
        w.key("row").value(std::uint64_t(v.coords.row));
        w.key("rule").value(v.rule);
        w.key("detail").value(v.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace bsim::obs
