#include "obs/latency_breakdown.hh"

#include "common/log.hh"

namespace bsim::obs
{

const char *
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::ReadHit: return "read_hit";
      case AccessClass::ReadMiss: return "read_miss";
      case AccessClass::WriteHit: return "write_hit";
      case AccessClass::WriteMiss: return "write_miss";
    }
    return "?";
}

void
LatencyBreakdown::record(const ctrl::MemAccess &a)
{
    if (a.forwarded) {
        const Tick total = a.dataEnd - a.arrival;
        forwarded_.sample(total);
        forwardedMean_.sample(double(total));
        return;
    }

    // pickedAt falls back to firstCmdAt for schedulers without an
    // explicit arbitration step (their pick phase is then 0 by
    // definition); both are always stamped before a column access.
    const Tick picked = a.pickedAt != kTickMax ? a.pickedAt : a.firstCmdAt;
    if (a.firstCmdAt == kTickMax || a.dataStart < a.firstCmdAt ||
        picked < a.arrival || a.firstCmdAt < picked ||
        a.dataEnd < a.dataStart) {
        panic("latency breakdown: non-monotonic timestamps on access %llu",
              static_cast<unsigned long long>(a.id));
    }

    const bool hit = a.outcome == dram::RowOutcome::Hit;
    const AccessClass c =
        a.isRead() ? (hit ? AccessClass::ReadHit : AccessClass::ReadMiss)
                   : (hit ? AccessClass::WriteHit : AccessClass::WriteMiss);
    PhaseStats &ps = classes_[std::size_t(c)];

    const Tick queue = picked - a.arrival;
    const Tick pick = a.firstCmdAt - picked;
    const Tick prep = a.dataStart - a.firstCmdAt;
    const Tick data = a.dataEnd - a.dataStart;
    const Tick total = a.dataEnd - a.arrival;

    ps.queue.sample(queue);
    ps.pick.sample(pick);
    ps.prep.sample(prep);
    ps.data.sample(data);
    ps.total.sample(total);
    ps.queueMean.sample(double(queue));
    ps.pickMean.sample(double(pick));
    ps.prepMean.sample(double(prep));
    ps.dataMean.sample(double(data));
    ps.totalMean.sample(double(total));
    recorded_ += 1;
}

} // namespace bsim::obs
