#include "obs/observability.hh"

#include <string>

#include "common/error.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace bsim::obs
{

namespace
{

std::vector<std::string>
bankLabels(const dram::DramConfig &cfg)
{
    std::vector<std::string> labels;
    labels.reserve(std::size_t(cfg.channels) * cfg.ranksPerChannel *
                   cfg.banksPerRank);
    for (std::uint32_t ch = 0; ch < cfg.channels; ++ch)
        for (std::uint32_t r = 0; r < cfg.ranksPerChannel; ++r)
            for (std::uint32_t b = 0; b < cfg.banksPerRank; ++b)
                labels.push_back("ch" + std::to_string(ch) + "_r" +
                                 std::to_string(r) + "_b" +
                                 std::to_string(b));
    return labels;
}

} // namespace

Observability::Observability(const ObsConfig &cfg,
                             const dram::DramConfig &dram, double bus_mhz)
    : cfg_(cfg), dram_(dram), busMHz_(bus_mhz)
{
    if (cfg_.latencyBreakdown)
        latency_ = std::make_unique<LatencyBreakdown>();
    if (cfg_.metricsInterval)
        sampler_ = std::make_unique<MetricsSampler>(
            cfg_.metricsInterval, bankLabels(dram_), cfg_.selfProf);
    if (cfg_.commandTrace)
        log_ = std::make_unique<dram::CommandLog>(cfg_.traceCapacity);
    if (cfg_.stallAttribution || cfg_.critPathOn())
        // The tracer's victim charges ride on the stall scans, so
        // critical-path tracing implies the accountant.
        stalls_ = std::make_unique<StallAttribution>(
            dram_.channels, dram_.ranksPerChannel * dram_.banksPerRank,
            bankLabels(dram_));
    if (cfg_.critPathOn()) {
        critpath_ = std::make_unique<CritPathTracer>(
            dram_.channels, cfg_.accessTraceOut);
        if (cfg_.critPathRetain)
            critpath_->setRetainCompleted(true);
    }
    if (cfg_.audit != AuditMode::Off)
        auditor_ = std::make_unique<ProtocolAuditor>(cfg_.audit, dram_);
    if (cfg_.engineIntrospect)
        introspect_ = std::make_unique<EngineIntrospect>(dram_.channels);
}

void
Observability::writeIntrospectJson(std::ostream &os) const
{
    if (!introspect_)
        throwSimError(ErrorCategory::Config, "observability: introspect output requested without the pillar");
    JsonWriter w(os);
    introspect_->writeJson(w);
    os << "\n";
}

void
Observability::writeChromeTrace(std::ostream &os) const
{
    if (!log_)
        throwSimError(ErrorCategory::Config, "observability: chrome trace requested without commandTrace");
    ChromeTraceOptions opts;
    opts.busClock.mhz = busMHz_;
    obs::writeChromeTrace(os, *log_, dram_, sampler_.get(), opts);
}

void
Observability::writeMetricsCsv(std::ostream &os) const
{
    if (!sampler_)
        throwSimError(ErrorCategory::Config, "observability: metrics requested without a sampler");
    sampler_->writeCsv(os);
}

void
Observability::writeMetricsJson(std::ostream &os) const
{
    if (!sampler_)
        throwSimError(ErrorCategory::Config, "observability: metrics requested without a sampler");
    sampler_->writeJson(os);
}

void
Observability::writeStallJson(std::ostream &os) const
{
    if (!stalls_)
        throwSimError(ErrorCategory::Config, "observability: stall output requested without attribution");
    stalls_->writeJson(os);
}

void
Observability::writeStallText(std::ostream &os) const
{
    if (!stalls_)
        throwSimError(ErrorCategory::Config, "observability: stall output requested without attribution");
    stalls_->writeText(os);
}

} // namespace bsim::obs
