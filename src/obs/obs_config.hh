/**
 * @file
 * Observability configuration. Kept in its own tiny header so that
 * SystemConfig / ExperimentConfig can embed it without dragging the
 * whole obs subsystem into every translation unit.
 *
 * All three pillars default to off; the instrumented hot paths reduce
 * to a single null-pointer check per hook when nothing is enabled.
 */

#ifndef BURSTSIM_OBS_OBS_CONFIG_HH
#define BURSTSIM_OBS_OBS_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace bsim::obs
{

/** What the runtime protocol auditor does with a violation. */
enum class AuditMode
{
    Off,   //!< auditor not built; zero cost
    Warn,  //!< log each violation, keep running
    Fatal, //!< log and exit non-zero on the first violation
};

/** Printable audit mode name (matches the --audit CLI values). */
inline const char *
auditModeName(AuditMode m)
{
    switch (m) {
      case AuditMode::Off: return "off";
      case AuditMode::Warn: return "warn";
      case AuditMode::Fatal: return "fatal";
    }
    return "?";
}

/** Which observability pillars to enable for a run. */
struct ObsConfig
{
    /** Per-access latency phase histograms (queue / pick / prep / data). */
    bool latencyBreakdown = false;

    /** Epoch metrics sampler period in memory cycles; 0 disables it. */
    Tick metricsInterval = 0;

    /** Record the full command history for Chrome trace export. */
    bool commandTrace = false;

    /** Command records retained while tracing (ring buffer). */
    std::size_t traceCapacity = 1u << 20;

    /** Attribute every un-issued scheduler cycle to a stall cause. */
    bool stallAttribution = false;

    /** Re-validate the issued command stream against DDR2 timing. */
    AuditMode audit = AuditMode::Off;

    /** Attribute skip-engine wakes and horizon-memo behaviour (the
     *  counters are deterministic but engine-dependent, so the
     *  engine-equivalence gates compare runs with this off). */
    bool engineIntrospect = false;

    /**
     * Per-access causal critical-path tracing (critpath.hh). Implies
     * the stall-attribution pillar: the tracer's victim charges are fed
     * by the same stall scans.
     */
    bool critPath = false;

    /** Stream every completed access as one JSON object per line to
     *  this path; non-empty implies critPath. */
    std::string accessTraceOut;

    /** Test hook: make the tracer retain every completed record
     *  in memory (unbounded) so tests can assert per-access identities. */
    bool critPathRetain = false;

    /** Per-requester (MemAccess tag) queue-occupancy and row-hit-rate
     *  columns in the epoch metrics CSV/JSON. */
    bool perCoreMetrics = false;

    /** Is critical-path tracing requested (flag or stream)? */
    bool
    critPathOn() const
    {
        return critPath || !accessTraceOut.empty();
    }

    /**
     * Host-side self-profiling (selfprof.hh). Deliberately NOT part of
     * any(): it needs no pillar object, only the thread-local profiler
     * armed around the run — and it must never force an Observability
     * instance into existence, so that simulated output stays
     * byte-identical with the flag on.
     */
    bool selfProf = false;

    /** Is any pillar enabled? */
    bool
    any() const
    {
        return latencyBreakdown || metricsInterval != 0 || commandTrace ||
               stallAttribution || audit != AuditMode::Off ||
               engineIntrospect || critPathOn();
    }
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_OBS_CONFIG_HH
