/**
 * @file
 * Observability configuration. Kept in its own tiny header so that
 * SystemConfig / ExperimentConfig can embed it without dragging the
 * whole obs subsystem into every translation unit.
 *
 * All three pillars default to off; the instrumented hot paths reduce
 * to a single null-pointer check per hook when nothing is enabled.
 */

#ifndef BURSTSIM_OBS_OBS_CONFIG_HH
#define BURSTSIM_OBS_OBS_CONFIG_HH

#include <cstddef>

#include "common/types.hh"

namespace bsim::obs
{

/** Which observability pillars to enable for a run. */
struct ObsConfig
{
    /** Per-access latency phase histograms (queue / pick / prep / data). */
    bool latencyBreakdown = false;

    /** Epoch metrics sampler period in memory cycles; 0 disables it. */
    Tick metricsInterval = 0;

    /** Record the full command history for Chrome trace export. */
    bool commandTrace = false;

    /** Command records retained while tracing (ring buffer). */
    std::size_t traceCapacity = 1u << 20;

    /** Is any pillar enabled? */
    bool
    any() const
    {
        return latencyBreakdown || metricsInterval != 0 || commandTrace;
    }
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_OBS_CONFIG_HH
