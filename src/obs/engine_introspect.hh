/**
 * @file
 * Skip-engine introspection: attributes every resume-from-skip to the
 * component whose nextEventTick bound won the horizon argmin (a wake
 * reason), with span-length histograms and horizon-memo counters, so
 * the "why is skip only 1.1x on mcf" question has a measured answer.
 *
 * All counters are functions of simulated state only — no host time —
 * so the pillar's output is deterministic for a given run. It differs
 * between the step and skip engines *by design* (the step engine never
 * skips), which is why the engine-equivalence gates compare runs with
 * this pillar off.
 *
 * Telescoping identity (asserted in tests and fuzzed as an oracle):
 *   steppedCycles + skippedCycles == mem_cycles
 *   sum over reasons of skipped-by-reason == skippedCycles
 *   sum over reasons of wake counts    == number of skip spans
 */

#ifndef BURSTSIM_OBS_ENGINE_INTROSPECT_HH
#define BURSTSIM_OBS_ENGINE_INTROSPECT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

namespace bsim
{
class JsonWriter;
} // namespace bsim

namespace bsim::obs
{

/**
 * Which component's nextEventTick bound ended (or forbade) a skip.
 * First-minimum-wins over the same scan order the horizon computation
 * already uses, so attribution never changes the computed horizon.
 */
enum class WakeReason : std::uint8_t
{
    CoreActive,        //!< a core was not quiescent: cannot skip at all
    CoreWake,          //!< a quiesced core's wake-up event
    Response,          //!< a completed read's delivery tick
    FsbAdmit,          //!< a front-side-bus front becomes admittable
    PendingData,       //!< an in-flight read's data completion
    Refresh,           //!< refresh due / drain completion
    SchedArbFill,      //!< scheduler: idle bank with queued work
    SchedPreempt,      //!< scheduler: read preemption is pending
    SchedDrainFlip,    //!< scheduler: write drain mode about to flip
    SchedPiggyback,    //!< scheduler: end-of-burst piggyback window
    SchedWriteDrain,   //!< scheduler: a postponed write is being taken
    SchedBound,        //!< scheduler: device-timing release (memoized)
    SchedConservative, //!< scheduler: conservative "never skip" default
    SchedEpoch,        //!< scheduler: policy epoch (quantum / blacklist /
                       //!< batch) boundary binds the horizon
    MetricsEpoch,      //!< metrics sampler epoch boundary
    Unbounded,         //!< no finite bound (idle until new work)
};

constexpr std::size_t kNumWakeReasons = 16;

/** Stable printable name (used in JSON, CSV and docs). */
const char *wakeReasonName(WakeReason r);

/** Winning horizon bound: the reason plus the channel it came from
 *  (-1 for system-level reasons with no channel). */
struct WakeSource
{
    WakeReason reason = WakeReason::Unbounded;
    std::int32_t channel = -1;
};

/** Log2 span-length histogram buckets: 1, 2-3, 4-7, ..., >= 2^20. */
constexpr std::size_t kNumSpanBuckets = 21;

/** Collects the skip engine's wake attribution for one run. */
class EngineIntrospect
{
  public:
    explicit EngineIntrospect(std::uint32_t channels);

    // --- engine hooks (hot path: plain counter bumps) ---

    /** @p n memory cycles were simulated tick-by-tick. */
    void noteStepped(std::uint64_t n = 1) { stepped_ += n; }

    /** A skip of @p span cycles ended at the bound @p src won. */
    void noteSkip(const WakeSource &src, Tick span);

    /** The horizon landed at now (or was unbounded with work pending):
     *  one stepped cycle could not be skipped because of @p src. */
    void noteBlocked(const WakeSource &src);

    // --- horizon-cache hooks ---

    void noteMemoHit() { memoHits_ += 1; }
    void noteMemoMiss() { memoMisses_ += 1; }
    void noteMemoInvalidate() { memoInvalidations_ += 1; }
    void noteFrontHorizonHit() { frontHits_ += 1; }
    void noteFrontHorizonMiss() { frontMisses_ += 1; }

    // --- accessors (tests, reports, fuzz oracles) ---

    std::uint64_t steppedCycles() const { return stepped_; }
    std::uint64_t skippedCycles() const { return skippedTotal_; }
    std::uint64_t skipSpans() const { return spansTotal_; }
    std::uint64_t wakeCount(WakeReason r) const
    {
        return wakes_[static_cast<std::size_t>(r)];
    }
    std::uint64_t skippedBy(WakeReason r) const
    {
        return skippedBy_[static_cast<std::size_t>(r)];
    }
    std::uint64_t blockedCount(WakeReason r) const
    {
        return blocked_[static_cast<std::size_t>(r)];
    }
    std::uint64_t blockedTotal() const { return blockedTotal_; }
    std::uint64_t memoHits() const { return memoHits_; }
    std::uint64_t memoMisses() const { return memoMisses_; }
    std::uint64_t memoInvalidations() const { return memoInvalidations_; }
    std::uint64_t frontHorizonHits() const { return frontHits_; }
    std::uint64_t frontHorizonMisses() const { return frontMisses_; }
    std::uint64_t spanBucket(std::size_t i) const { return spanHist_[i]; }

    /** Bucket label, e.g. "4-7" or ">=2^20". */
    static const char *spanBucketLabel(std::size_t i);

    /**
     * Attribution sums must telescope (see file comment); @p mem_cycles
     * is the run's simulated length. Returns false on any mismatch —
     * the fuzz oracle and identity tests call this.
     */
    bool identityHolds(std::uint64_t mem_cycles) const;

    /** Export as one JSON object (deterministic). */
    void writeJson(JsonWriter &w) const;

    /** Human-readable wake-reason table (text report section). */
    void writeText(std::ostream &os, std::uint64_t mem_cycles) const;

  private:
    std::uint32_t channels_;
    std::uint64_t stepped_ = 0;
    std::uint64_t skippedTotal_ = 0;
    std::uint64_t spansTotal_ = 0;
    std::uint64_t blockedTotal_ = 0;
    std::array<std::uint64_t, kNumWakeReasons> wakes_{};
    std::array<std::uint64_t, kNumWakeReasons> skippedBy_{};
    std::array<std::uint64_t, kNumWakeReasons> blocked_{};
    std::array<std::uint64_t, kNumSpanBuckets> spanHist_{};
    /** Wakes attributed to each channel's scheduler bound. */
    std::vector<std::uint64_t> wakesByChannel_;
    std::uint64_t memoHits_ = 0;
    std::uint64_t memoMisses_ = 0;
    std::uint64_t memoInvalidations_ = 0;
    std::uint64_t frontHits_ = 0;
    std::uint64_t frontMisses_ = 0;
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_ENGINE_INTROSPECT_HH
