/**
 * @file
 * Runtime DDR2 protocol auditor.
 *
 * An independent re-implementation of the JEDEC-style timing rules that
 * watches the issued command stream (dram::CommandObserver) and validates
 * every ACT / RD / WR / PRE / REF against its own shadow device state.
 * It shares no bookkeeping with src/dram — the Bank/Rank/Channel classes
 * enforce timing with accumulated ready-ticks, while the auditor derives
 * each window from named first principles (last activate, last precharge,
 * last read, last write-data end) — so a bug in the engine's constraint
 * arithmetic cannot hide from it.
 *
 * On top of the electrical rules it checks the paper's burst-scheduling
 * invariants via scheduler hooks: non-first accesses of a burst must be
 * row hits, read preemption may only fire while the write queue is below
 * its threshold, and write piggybacking only while it is above.
 *
 * AuditMode::Warn logs each violation and keeps going; AuditMode::Fatal
 * exits non-zero on the first one (CI mode).
 */

#ifndef BURSTSIM_OBS_PROTOCOL_AUDIT_HH
#define BURSTSIM_OBS_PROTOCOL_AUDIT_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/command_log.hh"
#include "dram/config.hh"
#include "obs/obs_config.hh"

namespace bsim::obs
{

/** One rule violation the auditor observed. */
struct AuditViolation
{
    Tick at = 0;
    dram::CmdType type = dram::CmdType::Precharge;
    dram::Coords coords;
    std::string rule;   //!< short rule id, e.g. "t_faw", "burst_row_hit"
    std::string detail; //!< human-readable explanation
};

/** Validates the command stream against DDR2 and burst invariants. */
class ProtocolAuditor : public dram::CommandObserver
{
  public:
    /** Audit a device with organization/timing @p cfg in @p mode. */
    ProtocolAuditor(AuditMode mode, const dram::DramConfig &cfg);

    /** Active mode (never Off; Off means "don't construct one"). */
    AuditMode mode() const { return mode_; }

    /** Validate and apply one issued command. */
    void onCommand(const dram::CommandRecord &rec) override;

    /**
     * Burst-invariant hook: a burst scheduler issued the column access of
     * @p coords at @p now; @p first_of_burst when it opens its burst.
     * Non-first accesses must find their row open (@p outcome == Hit)
     * unless a precharge or refresh disturbed the bank in between.
     */
    void noteBurstRead(Tick now, const dram::Coords &coords,
                       bool first_of_burst, dram::RowOutcome outcome);

    /**
     * Burst-invariant hook: read preemption fired at @p now while the
     * write queue held @p writes_outstanding entries against threshold
     * @p threshold. Legal only while occupancy < threshold.
     */
    void notePreemption(Tick now, std::uint64_t writes_outstanding,
                        std::uint64_t threshold);

    /**
     * Burst-invariant hook: write piggybacking appended a write at
     * @p now. Legal only while occupancy > threshold.
     */
    void notePiggyback(Tick now, std::uint64_t writes_outstanding,
                       std::uint64_t threshold);

    /** Total commands validated. */
    std::uint64_t commandsAudited() const { return audited_; }

    /** Total violations observed (including ones beyond the kept list). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** First violations, up to an internal cap. */
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

    /** Machine-readable audit summary. */
    void writeJson(std::ostream &os) const;

  private:
    struct BankShadow
    {
        bool open = false;
        std::uint32_t row = 0;
        bool everActivated = false;
        Tick lastActAt = 0;    //!< current interval (tRCD, tRAS)
        Tick lastActEver = 0;  //!< across intervals (tRC)
        bool preValid = false;
        Tick lastPreAt = 0;    //!< explicit or implied (auto) precharge
        bool rdValid = false;
        Tick lastRdAt = 0;     //!< latest read of the current interval
        bool wrValid = false;
        Tick lastWrDataEnd = 0; //!< latest write's data end, this interval
        bool disturbed = true;  //!< PRE/REF since the last burst access
        bool selfPre = false;   //!< unconsumed auto-precharge disturbance
        Tick selfPreAt = 0;     //!< tick of that auto-precharge
    };

    struct RankShadow
    {
        std::deque<Tick> actHistory; //!< recent ACT ticks (tFAW window)
        bool actValid = false;
        Tick lastActAt = 0;          //!< tRRD
        Tick rdReadyAt = 0;          //!< write data end + tWTR
        Tick refreshEnd = 0;         //!< REF blocks activates until here
    };

    struct ChannelShadow
    {
        bool cmdValid = false;
        Tick lastCmdAt = 0;
        bool dataUsed = false;
        Tick dataFreeAt = 0;
        std::uint32_t lastDataRank = 0;
        bool lastDataWrite = false;
    };

    BankShadow &bankOf(const dram::Coords &c);
    RankShadow &rankOf(const dram::Coords &c);

    /** Earliest legal data-burst start (mirror of the channel rules). */
    Tick earliestDataStart(const ChannelShadow &ch, std::uint32_t rank,
                           bool is_write) const;

    /** Implied earliest precharge point of @p b at column access @p at. */
    Tick impliedPreAt(const BankShadow &b, Tick at, bool is_write) const;

    void checkActivate(const dram::CommandRecord &rec);
    void checkRead(const dram::CommandRecord &rec);
    void checkWrite(const dram::CommandRecord &rec);
    void checkPrecharge(const dram::CommandRecord &rec);
    void checkRefresh(const dram::CommandRecord &rec);

    void flag(Tick at, dram::CmdType type, const dram::Coords &coords,
              const char *rule, std::string detail);

    AuditMode mode_;
    dram::Timing t_;
    std::uint32_t ranksPerChannel_;
    std::uint32_t banksPerRank_;
    std::vector<ChannelShadow> channels_;
    std::vector<RankShadow> ranks_;   //!< channel-major
    std::vector<BankShadow> banks_;   //!< channel-major
    std::uint64_t audited_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<AuditViolation> violations_;
};

} // namespace bsim::obs

#endif // BURSTSIM_OBS_PROTOCOL_AUDIT_HH
