/**
 * @file
 * Tiny command-line argument parser for the burstsim tools.
 *
 * Supports --flag (boolean), --opt value and --opt=value forms, typed
 * accessors with defaults, automatic --help text, and strict unknown-
 * option rejection.
 */

#ifndef BURSTSIM_COMMON_ARGS_HH
#define BURSTSIM_COMMON_ARGS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace bsim
{

/** Declarative command-line parser. */
class ArgParser
{
  public:
    /** Create a parser for a program called @p program. */
    explicit ArgParser(std::string program, std::string description = "");

    /** Declare a boolean flag (present = true). */
    void addFlag(const std::string &name, const std::string &help);

    /** Declare a string option with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /**
     * Parse argv. Returns false (after printing a message) on --help or
     * on errors; callers should exit in both cases, with status 0 for
     * help and nonzero for errors (see helpRequested()).
     */
    bool parse(int argc, const char *const *argv, std::ostream &err);

    /** True if parse() returned false because of --help. */
    bool helpRequested() const { return helpRequested_; }

    /** Was @p name given on the command line? */
    bool given(const std::string &name) const;

    /** Boolean flag value. */
    bool flag(const std::string &name) const;

    /** String option value (default when absent). */
    const std::string &str(const std::string &name) const;

    /** Unsigned option value; throws SimError(ErrorCategory::Config) on
     *  non-numeric input. */
    std::uint64_t u64(const std::string &name) const;

    /** Positional arguments (everything not starting with --). */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the --help text. */
    void printHelp(std::ostream &os) const;

  private:
    struct Spec
    {
        bool isFlag = false;
        std::string def;
        std::string help;
    };

    std::string program_;
    std::string description_;
    std::vector<std::string> order_; //!< declaration order for help
    std::map<std::string, Spec> specs_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    bool helpRequested_ = false;
};

} // namespace bsim

#endif // BURSTSIM_COMMON_ARGS_HH
