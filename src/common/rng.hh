/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * We deliberately avoid std::mt19937 plus distribution objects because the
 * standard distributions are not bit-reproducible across library
 * implementations; every experiment in the paper reproduction must be
 * deterministic for a given seed on any platform. The generator is
 * xoshiro256** (public domain, Blackman & Vigna).
 */

#ifndef BURSTSIM_COMMON_RNG_HH
#define BURSTSIM_COMMON_RNG_HH

#include <cstdint>

namespace bsim
{

/** Deterministic, platform-independent PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize state from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to fill the state; guards against all-zero state.
        std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
        for (auto &s : state_) {
            std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next();
        __uint128_t m = __uint128_t(x) * __uint128_t(bound);
        std::uint64_t l = std::uint64_t(m);
        if (l < bound) {
            std::uint64_t t = (0 - bound) % bound;
            while (l < t) {
                x = next();
                m = __uint128_t(x) * __uint128_t(bound);
                l = std::uint64_t(m);
            }
        }
        return std::uint64_t(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish run length in [1, cap]: mean approximately @p mean.
     * Used to synthesize row-reuse runs in the workload generators.
     */
    std::uint64_t
    runLength(double mean, std::uint64_t cap)
    {
        if (mean <= 1.0)
            return 1;
        std::uint64_t len = 1;
        const double p_continue = 1.0 - 1.0 / mean;
        while (len < cap && chance(p_continue))
            ++len;
        return len;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace bsim

#endif // BURSTSIM_COMMON_RNG_HH
