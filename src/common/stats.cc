#include "common/stats.hh"

#include <algorithm>

namespace bsim
{

double
Histogram::fractionAtLeast(std::size_t v) const
{
    if (!total_)
        return 0.0;
    std::uint64_t n = 0;
    for (std::size_t i = std::min(v, buckets_.size() - 1); i < buckets_.size();
         ++i) {
        n += buckets_[i];
    }
    // When v is clamped we must not count lower buckets.
    if (v >= buckets_.size())
        n = buckets_.back();
    return double(n) / double(total_);
}

double
Histogram::mean() const
{
    if (!total_)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        sum += double(i) * double(buckets_[i]);
    return sum / double(total_);
}

std::size_t
Histogram::percentile(double p) const
{
    if (!total_)
        return 0;
    const double target = p * double(total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (double(cum) >= target)
            return i;
    }
    return buckets_.size() - 1;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
}

void
StatGroup::set(const std::string &key, double value)
{
    values_[key] = value;
}

double
StatGroup::get(const std::string &key) const
{
    auto it = values_.find(key);
    return it != values_.end() ? it->second : 0.0;
}

bool
StatGroup::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

} // namespace bsim
