/**
 * @file
 * Clock-domain helper: conversions between memory-bus cycles and wall
 * time for a given bus frequency. The simulator ticks in memory bus
 * cycles (see common/types.hh); exporters that talk to outside tools
 * (Chrome trace events use microseconds, bandwidth reports use seconds)
 * convert through one of these instead of hand-rolling the arithmetic.
 */

#ifndef BURSTSIM_COMMON_CLOCK_HH
#define BURSTSIM_COMMON_CLOCK_HH

#include "common/types.hh"

namespace bsim
{

/** A fixed-frequency clock domain (e.g. the 400 MHz DDR2-800 bus). */
struct ClockDomain
{
    double mhz = 400.0;

    /** Cycle period in nanoseconds. */
    double periodNs() const { return 1e3 / mhz; }

    /** Microseconds spanned by @p cycles (Chrome trace ts/dur unit). */
    double usOf(Tick cycles) const { return double(cycles) / mhz; }

    /** Nanoseconds spanned by @p cycles. */
    double nsOf(Tick cycles) const { return double(cycles) * periodNs(); }

    /** Seconds spanned by @p cycles. */
    double secondsOf(Tick cycles) const
    {
        return double(cycles) / (mhz * 1e6);
    }

    /** Cycles (rounded down) in @p us microseconds. */
    Tick cyclesInUs(double us) const { return Tick(us * mhz); }
};

} // namespace bsim

#endif // BURSTSIM_COMMON_CLOCK_HH
