/**
 * @file
 * Fundamental simulator-wide types.
 *
 * The simulator ticks at memory-bus-cycle granularity. A Tick is one cycle
 * of the SDRAM bus clock (400 MHz for DDR2-800); the CPU model advances
 * `cpuCyclesPerMemCycle` CPU cycles per Tick.
 */

#ifndef BURSTSIM_COMMON_TYPES_HH
#define BURSTSIM_COMMON_TYPES_HH

#include <cstdint>

namespace bsim
{

/** Simulation time in memory bus cycles. */
using Tick = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kTickMax = ~Tick{0};

/** Kind of a main-memory access issued by the lowest level cache. */
enum class AccessType : std::uint8_t { Read, Write };

/** Printable name of an access type. */
inline const char *
accessTypeName(AccessType t)
{
    return t == AccessType::Read ? "read" : "write";
}

} // namespace bsim

#endif // BURSTSIM_COMMON_TYPES_HH
