/**
 * @file
 * Statistics primitives used throughout the simulator: scalar counters,
 * running means, bounded histograms and ratio helpers. All statistics are
 * plain value types; a StatGroup provides named registration so modules can
 * dump their statistics uniformly.
 */

#ifndef BURSTSIM_COMMON_STATS_HH
#define BURSTSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bsim
{

/**
 * Arithmetic mean accumulator.
 *
 * Keeps a running sum and sample count; mean() of an empty accumulator is
 * defined as 0 so report code does not need special cases.
 */
class RunningMean
{
  public:
    /** Add one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
    }

    /** Number of samples observed. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-range histogram over integer values [0, maxValue]; samples above
 * the range are clamped into the final bucket.
 *
 * Used for e.g. the distribution of outstanding reads/writes (Figures 8
 * and 11 in the paper), where each memory cycle contributes one sample.
 */
class Histogram
{
  public:
    /** Construct with inclusive upper bound @p max_value. */
    explicit Histogram(std::size_t max_value = 0)
        : buckets_(max_value + 1, 0)
    {}

    /** Add one sample (clamped to the bucket range). */
    void
    sample(std::size_t v)
    {
        sample(v, 1);
    }

    /** Add @p n identical samples of value @p v in one step, as when a
     *  span of cycles all observed the same occupancy. */
    void
    sample(std::size_t v, std::uint64_t n)
    {
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        buckets_[v] += n;
        total_ += n;
    }

    /** Count in bucket @p v. */
    std::uint64_t
    bucket(std::size_t v) const
    {
        return v < buckets_.size() ? buckets_[v] : 0;
    }

    /** Number of buckets (maxValue + 1). */
    std::size_t size() const { return buckets_.size(); }

    /** Total number of samples. */
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bucket @p v (0 when empty). */
    double
    fraction(std::size_t v) const
    {
        return total_ ? double(bucket(v)) / double(total_) : 0.0;
    }

    /** Fraction of samples at or above @p v. */
    double fractionAtLeast(std::size_t v) const;

    /** Mean of the sampled values. */
    double mean() const;

    /**
     * Smallest bucket value whose cumulative fraction reaches @p p
     * (0 < p <= 1). 0 when the histogram is empty. Note that samples
     * above the range were clamped into the final bucket, so high
     * percentiles saturate at size() - 1.
     */
    std::size_t percentile(double p) const;

    /** Discard all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of scalar statistics for uniform reporting.
 *
 * Modules register name/value pairs at dump time; the experiment harness
 * merges groups into CSV rows or human-readable tables.
 */
class StatGroup
{
  public:
    /** Create a group with a reporting prefix, e.g. "dram". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Record (overwrite) a scalar statistic. */
    void set(const std::string &key, double value);

    /** Value of @p key, or 0 if absent. */
    double get(const std::string &key) const;

    /** True if @p key has been recorded. */
    bool has(const std::string &key) const;

    /** Group name / prefix. */
    const std::string &name() const { return name_; }

    /** All recorded statistics in key order. */
    const std::map<std::string, double> &values() const { return values_; }

  private:
    std::string name_;
    std::map<std::string, double> values_;
};

/** Safe ratio: returns 0 when the denominator is 0. */
inline double
ratio(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

} // namespace bsim

#endif // BURSTSIM_COMMON_STATS_HH
