#include "common/error.hh"

#include <cstdarg>
#include <cstdio>

namespace bsim
{

const char *
errorCategoryName(ErrorCategory cat)
{
    switch (cat) {
      case ErrorCategory::Config: return "config";
      case ErrorCategory::Trace: return "trace";
      case ErrorCategory::Protocol: return "protocol";
      case ErrorCategory::Resource: return "resource";
      case ErrorCategory::Internal: return "internal";
      case ErrorCategory::WorkerLost: return "worker_lost";
    }
    return "?";
}

ErrorCategory
parseErrorCategory(const std::string &name)
{
    for (ErrorCategory cat :
         {ErrorCategory::Config, ErrorCategory::Trace,
          ErrorCategory::Protocol, ErrorCategory::Resource,
          ErrorCategory::Internal, ErrorCategory::WorkerLost}) {
        if (name == errorCategoryName(cat))
            return cat;
    }
    throwSimError(ErrorCategory::Config, "unknown error category '%s'",
                  name.c_str());
}

bool
errorCategoryTransient(ErrorCategory cat)
{
    return cat == ErrorCategory::Resource ||
           cat == ErrorCategory::WorkerLost;
}

std::string
SimError::describe() const
{
    std::string out = "[";
    out += errorCategoryName(category_);
    out += "] ";
    out += what();
    if (!context_.empty()) {
        out += "\n";
        out += context_;
    }
    return out;
}

void
throwSimError(ErrorCategory cat, const char *fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    throw SimError(cat, buf);
}

} // namespace bsim
