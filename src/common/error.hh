/**
 * @file
 * Structured simulator errors.
 *
 * Library code never terminates the process on a user-visible failure:
 * it throws SimError, an exception carrying an error *category* plus an
 * optional multi-line diagnostic context (e.g. the watchdog's queue
 * snapshot). Deciding what a failure means — exit, retry, mark the
 * sweep slot failed and move on — is the caller's job, and process exit
 * belongs solely to the CLI top level.
 *
 * panic() (common/log.hh) remains for internal invariant violations
 * that indicate memory corruption or logic bugs where unwinding is not
 * meaningful; fatal() remains for CLI-level code that owns the process.
 */

#ifndef BURSTSIM_COMMON_ERROR_HH
#define BURSTSIM_COMMON_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace bsim
{

/**
 * What kind of failure a SimError reports — the unit of policy for the
 * sweep runner's containment and retry decisions.
 */
enum class ErrorCategory : std::uint8_t
{
    Config,   //!< invalid configuration / parameters (permanent)
    Trace,    //!< malformed or unreadable workload trace (permanent)
    Protocol, //!< DDR protocol audit violation (permanent)
    Resource, //!< environment: I/O, deadlines, exhaustion (transient)
    Internal, //!< simulator defect detected at runtime (permanent)
    /** A campaign worker process died (crash, OOM-kill, deadline kill)
     *  with this point in flight. Transient: worker death is usually an
     *  environmental accident, so the point is retried in a fresh
     *  process — until the campaign's poison logic decides the point
     *  itself is the killer and quarantines it. */
    WorkerLost,
};

/** Lower-case category name ("config", "trace", ...). */
const char *errorCategoryName(ErrorCategory cat);

/** Parse a category name; throws SimError(Config) on unknown input. */
ErrorCategory parseErrorCategory(const std::string &name);

/**
 * Is the category worth retrying? Resource failures are assumed
 * transient (a busy filesystem, a missed deadline under load), as is
 * WorkerLost (the next worker incarnation may well survive); all other
 * categories are deterministic properties of the input and would fail
 * identically on every attempt.
 */
bool errorCategoryTransient(ErrorCategory cat);

/** A recoverable simulator error with category and diagnostic context. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCategory category, const std::string &message,
             std::string context = "")
        : std::runtime_error(message), category_(category),
          context_(std::move(context))
    {}

    /** The failure's category (drives retry / containment policy). */
    ErrorCategory category() const { return category_; }

    /** Multi-line diagnostic payload (may be empty). */
    const std::string &context() const { return context_; }

    /** "[category] message" plus the context block when present. */
    std::string describe() const;

  private:
    ErrorCategory category_;
    std::string context_;
};

/** Throw a SimError with a printf-formatted message. */
[[noreturn]] void throwSimError(ErrorCategory cat, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace bsim

#endif // BURSTSIM_COMMON_ERROR_HH
