/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
 * behind the sweep journal's v3 record framing. Table-driven, no
 * dependencies; stable across platforms so journals written on one
 * host verify on another.
 */

#ifndef BURSTSIM_COMMON_CRC32_HH
#define BURSTSIM_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace bsim
{

/** CRC-32 of @p len bytes at @p data (init/final XOR 0xFFFFFFFF). */
std::uint32_t crc32(const void *data, std::size_t len);

/** CRC-32 of a string's bytes. */
inline std::uint32_t
crc32(const std::string &s)
{
    return crc32(s.data(), s.size());
}

} // namespace bsim

#endif // BURSTSIM_COMMON_CRC32_HH
