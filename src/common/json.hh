/**
 * @file
 * Minimal streaming JSON writer — enough for emitting simulation results
 * to machine-readable output without an external dependency.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("reads").value(42);
 *   w.key("hist").beginArray().value(1).value(2).endArray();
 *   w.endObject();
 */

#ifndef BURSTSIM_COMMON_JSON_HH
#define BURSTSIM_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bsim
{

/** Streaming JSON emitter with automatic comma/indent handling. */
class JsonWriter
{
  public:
    /** Write to @p os; @p pretty adds newlines and two-space indent. */
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    /** Open an object ('{'). */
    JsonWriter &beginObject();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Open an array ('['). */
    JsonWriter &beginArray();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    /** Emit a string value (escaped). */
    JsonWriter &value(const std::string &v);

    /** Emit a string value (escaped). */
    JsonWriter &value(const char *v);

    /** Emit a numeric value. */
    JsonWriter &value(double v);

    /** Emit an integer value. */
    JsonWriter &value(std::uint64_t v);

    /** Emit an integer value. */
    JsonWriter &value(int v);

    /** Emit a boolean value. */
    JsonWriter &value(bool v);

    /** Emit a JSON null (e.g. for not-a-value numeric sentinels —
     *  value(double) would print an invalid bare `nan`). */
    JsonWriter &null();

    /** True once every container has been closed. */
    bool complete() const;

  private:
    enum class Frame { Object, Array };

    void separator();
    void newlineIndent();
    void writeEscaped(const std::string &s);

    std::ostream &os_;
    bool pretty_;
    std::vector<Frame> stack_;
    bool firstInFrame_ = true;
    bool afterKey_ = false;
    bool rootWritten_ = false;
};

/**
 * Parsed JSON document node.
 *
 * The counterpart of JsonWriter: a small recursive value type that can
 * hold anything the writer emits, so outputs (reports, metrics, Chrome
 * traces) can be round-tripped in tests and post-processing tools
 * without an external dependency. Object member order is preserved.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null, Bool, Number, String, Array, Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;                           //!< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members; //!< Kind::Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup in an object; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Number of array elements / object members. */
    std::size_t size() const;
};

/**
 * Parse a complete JSON document. Returns std::nullopt on malformed
 * input and, when @p err is non-null, stores a one-line description
 * with the byte offset of the failure.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *err = nullptr);

} // namespace bsim

#endif // BURSTSIM_COMMON_JSON_HH
