/**
 * @file
 * Minimal streaming JSON writer — enough for emitting simulation results
 * to machine-readable output without an external dependency.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("reads").value(42);
 *   w.key("hist").beginArray().value(1).value(2).endArray();
 *   w.endObject();
 */

#ifndef BURSTSIM_COMMON_JSON_HH
#define BURSTSIM_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bsim
{

/** Streaming JSON emitter with automatic comma/indent handling. */
class JsonWriter
{
  public:
    /** Write to @p os; @p pretty adds newlines and two-space indent. */
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    /** Open an object ('{'). */
    JsonWriter &beginObject();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Open an array ('['). */
    JsonWriter &beginArray();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    /** Emit a string value (escaped). */
    JsonWriter &value(const std::string &v);

    /** Emit a string value (escaped). */
    JsonWriter &value(const char *v);

    /** Emit a numeric value. */
    JsonWriter &value(double v);

    /** Emit an integer value. */
    JsonWriter &value(std::uint64_t v);

    /** Emit an integer value. */
    JsonWriter &value(int v);

    /** Emit a boolean value. */
    JsonWriter &value(bool v);

    /** True once every container has been closed. */
    bool complete() const;

  private:
    enum class Frame { Object, Array };

    void separator();
    void newlineIndent();
    void writeEscaped(const std::string &s);

    std::ostream &os_;
    bool pretty_;
    std::vector<Frame> stack_;
    bool firstInFrame_ = true;
    bool afterKey_ = false;
    bool rootWritten_ = false;
};

} // namespace bsim

#endif // BURSTSIM_COMMON_JSON_HH
