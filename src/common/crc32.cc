#include "common/crc32.hh"

#include <array>

namespace bsim
{

namespace
{

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace bsim
