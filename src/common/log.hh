/**
 * @file
 * Minimal logging / error-reporting helpers in the spirit of gem5's
 * base/logging.hh: panic() for simulator bugs, fatal() for user errors,
 * warn()/inform() for status.
 */

#ifndef BURSTSIM_COMMON_LOG_HH
#define BURSTSIM_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace bsim
{

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global verbosity (default Normal). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message (suppressed at LogLevel::Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace bsim

#endif // BURSTSIM_COMMON_LOG_HH
