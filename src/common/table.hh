/**
 * @file
 * Text table and CSV emission used by the benchmark harness to print
 * paper-style result tables.
 */

#ifndef BURSTSIM_COMMON_TABLE_HH
#define BURSTSIM_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace bsim
{

/**
 * A simple column-aligned text table.
 *
 * Rows are added as vectors of preformatted cells; the first row added via
 * header() is underlined in text output and becomes the CSV header row.
 */
class Table
{
  public:
    /** Create a table with an optional caption printed above it. */
    explicit Table(std::string caption = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render as aligned text. */
    void print(std::ostream &os) const;

    /** Render as CSV (header first if present). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Format a double with @p digits decimal places. */
    static std::string num(double v, int digits = 2);

    /** Format a percentage (0.42 -> "42.0%"). */
    static std::string pct(double v, int digits = 1);

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bsim

#endif // BURSTSIM_COMMON_TABLE_HH
