#include "common/args.hh"

#include <cstdlib>
#include <ostream>

#include "common/error.hh"
#include "common/log.hh"

namespace bsim
{

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    Spec s;
    s.isFlag = true;
    s.help = help;
    specs_[name] = std::move(s);
    order_.push_back(name);
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    Spec s;
    s.def = def;
    s.help = help;
    specs_[name] = std::move(s);
    order_.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv, std::ostream &err)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(err);
            helpRequested_ = true;
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }
        const auto it = specs_.find(name);
        if (it == specs_.end()) {
            err << program_ << ": unknown option --" << name
                << " (try --help)\n";
            return false;
        }
        if (it->second.isFlag) {
            if (has_inline) {
                err << program_ << ": flag --" << name
                    << " takes no value\n";
                return false;
            }
            values_[name] = "1";
            continue;
        }
        if (has_inline) {
            values_[name] = inline_value;
        } else if (i + 1 < argc) {
            values_[name] = argv[++i];
        } else {
            err << program_ << ": option --" << name
                << " requires a value\n";
            return false;
        }
    }
    return true;
}

bool
ArgParser::given(const std::string &name) const
{
    return values_.count(name) != 0;
}

bool
ArgParser::flag(const std::string &name) const
{
    const auto it = specs_.find(name);
    if (it == specs_.end() || !it->second.isFlag)
        panic("args: '%s' is not a declared flag", name.c_str());
    return values_.count(name) != 0;
}

const std::string &
ArgParser::str(const std::string &name) const
{
    const auto it = specs_.find(name);
    if (it == specs_.end() || it->second.isFlag)
        panic("args: '%s' is not a declared option", name.c_str());
    const auto v = values_.find(name);
    return v != values_.end() ? v->second : it->second.def;
}

std::uint64_t
ArgParser::u64(const std::string &name) const
{
    const std::string &s = str(name);
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        throwSimError(ErrorCategory::Config, "option --%s: '%s' is not a number", name.c_str(),
              s.c_str());
    return v;
}

void
ArgParser::printHelp(std::ostream &os) const
{
    os << "usage: " << program_ << " [options]\n";
    if (!description_.empty())
        os << description_ << "\n";
    os << "\noptions:\n";
    for (const auto &name : order_) {
        const Spec &s = specs_.at(name);
        std::string left = "  --" + name;
        if (!s.isFlag)
            left += " <value>";
        if (left.size() < 28)
            left.resize(28, ' ');
        os << left << s.help;
        if (!s.isFlag && !s.def.empty())
            os << " (default: " << s.def << ")";
        os << '\n';
    }
    os << "  --help                    show this message\n";
}

} // namespace bsim
