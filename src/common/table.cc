#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace bsim
{

Table::Table(std::string caption) : caption_(std::move(caption)) {}

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    if (!caption_.empty())
        os << caption_ << '\n';

    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            // Cells are simple identifiers/numbers; quote if a comma leaks.
            if (cells[i].find(',') != std::string::npos)
                os << '"' << cells[i] << '"';
            else
                os << cells[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

} // namespace bsim
