#include "common/json.hh"

#include <cstdio>
#include <ostream>

#include "common/log.hh"

namespace bsim
{

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::separator()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // value follows its key directly
    }
    if (stack_.empty()) {
        if (rootWritten_)
            panic("json: more than one root value");
        rootWritten_ = true;
        return;
    }
    if (!firstInFrame_)
        os_ << ',';
    firstInFrame_ = false;
    newlineIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    stack_.push_back(Frame::Object);
    firstInFrame_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("json: endObject without matching beginObject");
    const bool was_empty = firstInFrame_;
    stack_.pop_back();
    if (!was_empty)
        newlineIndent();
    os_ << '}';
    firstInFrame_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    stack_.push_back(Frame::Array);
    firstInFrame_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        panic("json: endArray without matching beginArray");
    const bool was_empty = firstInFrame_;
    stack_.pop_back();
    if (!was_empty)
        newlineIndent();
    os_ << ']';
    firstInFrame_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("json: key outside an object");
    if (!firstInFrame_)
        os_ << ',';
    firstInFrame_ = false;
    newlineIndent();
    writeEscaped(k);
    os_ << (pretty_ ? ": " : ":");
    afterKey_ = true;
    return *this;
}

void
JsonWriter::writeEscaped(const std::string &s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"': os_ << "\\\""; break;
          case '\\': os_ << "\\\\"; break;
          case '\n': os_ << "\\n"; break;
          case '\t': os_ << "\\t"; break;
          case '\r': os_ << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    writeEscaped(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separator();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    return *this;
}

bool
JsonWriter::complete() const
{
    return stack_.empty() && rootWritten_ && !afterKey_;
}

} // namespace bsim
