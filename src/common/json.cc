#include "common/json.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "common/log.hh"

namespace bsim
{

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::separator()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // value follows its key directly
    }
    if (stack_.empty()) {
        if (rootWritten_)
            panic("json: more than one root value");
        rootWritten_ = true;
        return;
    }
    if (!firstInFrame_)
        os_ << ',';
    firstInFrame_ = false;
    newlineIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    stack_.push_back(Frame::Object);
    firstInFrame_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("json: endObject without matching beginObject");
    const bool was_empty = firstInFrame_;
    stack_.pop_back();
    if (!was_empty)
        newlineIndent();
    os_ << '}';
    firstInFrame_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    stack_.push_back(Frame::Array);
    firstInFrame_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        panic("json: endArray without matching beginArray");
    const bool was_empty = firstInFrame_;
    stack_.pop_back();
    if (!was_empty)
        newlineIndent();
    os_ << ']';
    firstInFrame_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("json: key outside an object");
    if (!firstInFrame_)
        os_ << ',';
    firstInFrame_ = false;
    newlineIndent();
    writeEscaped(k);
    os_ << (pretty_ ? ": " : ":");
    afterKey_ = true;
    return *this;
}

void
JsonWriter::writeEscaped(const std::string &s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"': os_ << "\\\""; break;
          case '\\': os_ << "\\\\"; break;
          case '\n': os_ << "\\n"; break;
          case '\t': os_ << "\\t"; break;
          case '\r': os_ << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    writeEscaped(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separator();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    os_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    return *this;
}

bool
JsonWriter::complete() const
{
    return stack_.empty() && rootWritten_ && !afterKey_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

std::size_t
JsonValue::size() const
{
    switch (kind) {
      case Kind::Array: return array.size();
      case Kind::Object: return members.size();
      default: return 0;
    }
}

namespace
{

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    std::optional<JsonValue>
    parse()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (err_ && err_->empty())
            *err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Kind kind,
            bool boolean)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't': return literal("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Kind::Bool, false);
          case 'n': return literal("null", out, JsonValue::Kind::Null, false);
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs are
                // not combined; the writer never emits them).
                if (cp < 0x80) {
                    out.push_back(char(cp));
                } else if (cp < 0x800) {
                    out.push_back(char(0xc0 | (cp >> 6)));
                    out.push_back(char(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(char(0xe0 | (cp >> 12)));
                    out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(char(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default: return fail("invalid escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("invalid number");
        pos_ += std::size_t(end - start);
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *err)
{
    return JsonParser(text, err).parse();
}

} // namespace bsim
