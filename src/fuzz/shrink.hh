/**
 * @file
 * Automatic minimisation of a failing FuzzPoint.
 *
 * The shrinker walks the point's config axes greedily: one axis at a
 * time it tries resetting the axis to its default and keeps the reset
 * whenever the point still fails an oracle. After the axes settle it
 * minimises the workload dimension — halving the instruction count of
 * synthetic workloads, or binary-searching the shortest failing prefix
 * of an inline trace — and repeats until a fixpoint. The result is the
 * smallest repro in the partial order "fewer axes changed from
 * default, then shorter trace": typically one or two axes and a few
 * hundred instructions, small enough to read and check in as a corpus
 * file.
 *
 * The shrunk point is re-verified on every probe by the full oracle
 * battery, so a shrink can never "walk off" the bug onto a different,
 * coincidental failure without that failure itself being real.
 */

#ifndef BURSTSIM_FUZZ_SHRINK_HH
#define BURSTSIM_FUZZ_SHRINK_HH

#include "fuzz/oracle.hh"
#include "fuzz/point.hh"

namespace bsim::fuzz
{

/** Shrinking policy. */
struct ShrinkOptions
{
    /** Probe budget: oracle evaluations before giving up (the point
     *  shrunk so far is still returned). */
    unsigned maxEvaluations = 120;
    /** Synthetic runs are not shrunk below this many instructions. */
    std::uint64_t minInstructions = 500;
    /** Inline traces are not shrunk below this many lines. */
    std::size_t minTraceLines = 8;
    OracleOptions oracle;
};

/** A minimised failing point plus the verdict it still triggers. */
struct ShrinkOutcome
{
    FuzzPoint point;
    OracleVerdict verdict;
    unsigned evaluations = 0; //!< oracle probes spent
};

/**
 * Minimise @p failing, which must currently fail checkPoint() under
 * @p opt.oracle (if it does not, it is returned unchanged with an ok
 * verdict and the caller should treat the failure as flaky).
 */
ShrinkOutcome shrinkPoint(const FuzzPoint &failing,
                          const ShrinkOptions &opt = {});

} // namespace bsim::fuzz

#endif // BURSTSIM_FUZZ_SHRINK_HH
