#include "fuzz/oracle.hh"

#include <sstream>

#include "common/error.hh"
#include "obs/engine_introspect.hh"
#include "obs/observability.hh"
#include "sim/report.hh"
#include "trace/spec_profiles.hh"

namespace bsim::fuzz
{

namespace
{

/** First byte position where @p a and @p b differ, with context. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::size_t i = 0;
    const std::size_t n = std::min(a.size(), b.size());
    while (i < n && a[i] == b[i])
        i += 1;
    const std::size_t from = i > 30 ? i - 30 : 0;
    std::ostringstream os;
    os << "first diff at byte " << i << ": step=\""
       << a.substr(from, 60) << "\" skip=\"" << b.substr(from, 60)
       << '"';
    return os.str();
}

std::string
resultJson(const sim::RunResult &r)
{
    std::ostringstream os;
    sim::writeResultJson(os, r);
    return os.str();
}

std::string
stallJson(const sim::RunResult &r)
{
    std::ostringstream os;
    if (r.obs)
        r.obs->writeStallJson(os);
    return os.str();
}

/**
 * Run @p p on @p engine with the auditing pillars on. SimErrors are
 * translated into oracle verdicts: protocol errors are audit findings,
 * anything else (watchdog, drain cap, unexpected config rejection) is
 * a simulator defect the fuzzer must report, not swallow.
 */
bool
runOne(const FuzzPoint &p, const OracleOptions &opt,
       sim::EngineKind engine, sim::RunResult &out, OracleVerdict &v)
{
    sim::ExperimentConfig cfg = toConfig(p, opt.scratchDir);
    cfg.engine = engine;
    cfg.obs.audit = obs::AuditMode::Fatal;
    cfg.obs.stallAttribution = true;
    if (opt.configTweak)
        opt.configTweak(cfg);
    try {
        out = sim::runExperiment(cfg);
        return true;
    } catch (const SimError &e) {
        v.ok = false;
        switch (e.category()) {
          case ErrorCategory::Protocol:
            v.oracle = "audit_clean";
            break;
          case ErrorCategory::Internal:
            v.oracle = "no_hang";
            break;
          case ErrorCategory::Config:
            v.oracle = "valid_config";
            break;
          default:
            v.oracle = "run_error";
            break;
        }
        v.detail = std::string(sim::engineKindName(engine)) +
                   " engine: " + e.describe();
        return false;
    }
}

/**
 * Row-hit-heavy means the miss stream is dominated by sequential
 * same-row runs: exactly the workloads for which the paper's Figure 10
 * ordering (Burst at least matches BkInOrder) must hold. Pointer-chase
 * or latency-bound profiles are excluded — with MLP 1 there is nothing
 * to reorder and the comparison is noise.
 */
bool
rowHitHeavy(const FuzzPoint &p)
{
    if (p.workload == kInlineTraceWorkload)
        return false;
    const trace::WorkloadProfile &prof =
        trace::profileByName(p.workload);
    return prof.seqFraction >= 0.5 && prof.chaseFraction == 0.0 &&
           prof.clusterBlocks >= 2;
}

} // namespace

OracleVerdict
checkPoint(const FuzzPoint &p, const OracleOptions &opt)
{
    OracleVerdict v;

    sim::RunResult step, skip;
    if (!runOne(p, opt, sim::EngineKind::Step, step, v))
        return v;
    if (!runOne(p, opt, sim::EngineKind::Skip, skip, v))
        return v;

    // Engine equivalence: every exported statistic, byte for byte.
    const std::string sj = resultJson(step), kj = resultJson(skip);
    if (sj != kj) {
        v.ok = false;
        v.oracle = "engine_equivalence";
        v.detail = "result JSON diverges; " + firstDiff(sj, kj);
        return v;
    }
    const std::string ss = stallJson(step), ks = stallJson(skip);
    if (ss != ks) {
        v.ok = false;
        v.oracle = "engine_equivalence";
        v.detail = "stall JSON diverges; " + firstDiff(ss, ks);
        return v;
    }

    // Telescoping identity: each channel's cause counts partition its
    // attributed cycles, and every channel was attributed for exactly
    // the run's memory cycles.
    if (const obs::StallAttribution *st =
            skip.obs ? skip.obs->stalls() : nullptr) {
        for (std::uint32_t ch = 0; ch < st->numChannels(); ++ch) {
            std::uint64_t sum = 0;
            for (std::size_t c = 0; c < dram::kNumStallCauses; ++c)
                sum += st->count(ch, dram::StallCause(c));
            if (sum != st->cycles(ch) ||
                st->cycles(ch) != skip.memCycles) {
                v.ok = false;
                v.oracle = "telescoping";
                std::ostringstream os;
                os << "channel " << ch << ": cause sum " << sum
                   << ", attributed cycles " << st->cycles(ch)
                   << ", mem cycles " << skip.memCycles;
                v.detail = os.str();
                return v;
            }
        }
    }

    // Wake-reason attribution identity: rerun the skip engine with
    // introspection on (a separate run — introspection output would
    // break the byte-equality compare above) and require its counters
    // to telescope: stepped + skipped cycles equal the run's memory
    // cycles, and every per-reason resume/blocked sum matches its
    // total. A miss means skipHorizon() attributed a wake to the wrong
    // place or the engine skipped cycles nobody accounted for.
    if (opt.selfprofIdentity) {
        OracleOptions iopt = opt;
        iopt.configTweak = [&opt](sim::ExperimentConfig &cfg) {
            cfg.obs.engineIntrospect = true;
            if (opt.configTweak)
                opt.configTweak(cfg);
        };
        sim::RunResult ri;
        if (!runOne(p, iopt, sim::EngineKind::Skip, ri, v))
            return v;
        const obs::EngineIntrospect *in =
            ri.obs ? ri.obs->introspect() : nullptr;
        if (!in || !in->identityHolds(ri.memCycles)) {
            v.ok = false;
            v.oracle = "selfprof_identity";
            std::ostringstream os;
            if (in)
                os << "stepped " << in->steppedCycles() << " + skipped "
                   << in->skippedCycles() << " vs mem cycles "
                   << ri.memCycles
                   << " (or a per-reason sum mismatch)";
            else
                os << "introspection pillar missing on the skip run";
            v.detail = os.str();
            return v;
        }
        // The introspected run must not perturb the simulation (its
        // JSON gains an engine_introspect section by design, so compare
        // the core statistics rather than bytes).
        if (ri.memCycles != skip.memCycles ||
            ri.execCpuCycles != skip.execCpuCycles) {
            v.ok = false;
            v.oracle = "selfprof_identity";
            std::ostringstream os;
            os << "introspection changed simulated stats: mem "
               << ri.memCycles << " vs " << skip.memCycles << ", cpu "
               << ri.execCpuCycles << " vs " << skip.execCpuCycles;
            v.detail = os.str();
            return v;
        }
    }

    // Memo transparency: the horizon memos and per-bank bound caches
    // must never change what the skip engine computes, only how fast.
    // Run the skip engine twice with introspection on and per-cycle
    // stall attribution off (the exact bound caches only arm without
    // it), once with every cache force-disabled, and require identical
    // skipped/stepped totals and simulated stats. The cache counters
    // themselves differ by design, so this compares semantics, not
    // bytes.
    if (opt.memoTransparency) {
        sim::RunResult cached, uncached;
        for (int memo = 0; memo < 2; ++memo) {
            OracleOptions mopt = opt;
            mopt.configTweak = [&opt, memo](sim::ExperimentConfig &cfg) {
                cfg.obs.stallAttribution = false;
                cfg.obs.engineIntrospect = true;
                cfg.horizonMemo = memo == 1;
                if (opt.configTweak)
                    opt.configTweak(cfg);
            };
            if (!runOne(p, mopt, sim::EngineKind::Skip,
                        memo ? cached : uncached, v))
                return v;
        }
        const obs::EngineIntrospect *ic =
            cached.obs ? cached.obs->introspect() : nullptr;
        const obs::EngineIntrospect *iu =
            uncached.obs ? uncached.obs->introspect() : nullptr;
        if (!ic || !iu) {
            v.ok = false;
            v.oracle = "memo_transparency";
            v.detail = "introspection pillar missing on a memo run";
            return v;
        }
        if (ic->steppedCycles() != iu->steppedCycles() ||
            ic->skippedCycles() != iu->skippedCycles() ||
            cached.memCycles != uncached.memCycles ||
            cached.execCpuCycles != uncached.execCpuCycles) {
            v.ok = false;
            v.oracle = "memo_transparency";
            std::ostringstream os;
            os << "caches changed engine behaviour: stepped/skipped "
               << ic->steppedCycles() << "/" << ic->skippedCycles()
               << " cached vs " << iu->steppedCycles() << "/"
               << iu->skippedCycles() << " uncached, mem "
               << cached.memCycles << " vs " << uncached.memCycles
               << ", cpu " << cached.execCpuCycles << " vs "
               << uncached.execCpuCycles;
            v.detail = os.str();
            return v;
        }
    }

    // Per-access blame identity: rerun both engines with the critical-
    // path tracer on (separate runs — the result JSON gains a
    // critical_path section by design) and require (a) the per-access
    // telescoping identity, (b) the tracer's internal cycle ledger to
    // reconcile with the aggregate stall accountant, (c) byte-identical
    // access streams across engines (FNV digest over the JSONL lines),
    // and (d) unperturbed simulated statistics.
    if (opt.critpathIdentity) {
        OracleOptions copt = opt;
        copt.configTweak = [&opt](sim::ExperimentConfig &cfg) {
            cfg.obs.critPath = true;
            if (opt.configTweak)
                opt.configTweak(cfg);
        };
        sim::RunResult cs, ck;
        if (!runOne(p, copt, sim::EngineKind::Step, cs, v))
            return v;
        if (!runOne(p, copt, sim::EngineKind::Skip, ck, v))
            return v;
        const obs::CritPathTracer *ts = cs.obs ? cs.obs->critpath() : nullptr;
        const obs::CritPathTracer *tk = ck.obs ? ck.obs->critpath() : nullptr;
        if (!ts || !tk) {
            v.ok = false;
            v.oracle = "critpath_identity";
            v.detail = "critical-path pillar missing on a traced run";
            return v;
        }
        const sim::RunResult *runs[2] = {&cs, &ck};
        const obs::CritPathTracer *tracers[2] = {ts, tk};
        for (int i = 0; i < 2; ++i) {
            const obs::CritPathTracer *t = tracers[i];
            const char *eng = i == 0 ? "step" : "skip";
            if (!t->identityHolds()) {
                v.ok = false;
                v.oracle = "critpath_identity";
                std::ostringstream os;
                os << eng << " engine: blame totals do not telescope to "
                   << t->latencyTotal() << " latency cycles over "
                   << t->completedCount() << " accesses";
                v.detail = os.str();
                return v;
            }
            std::string why;
            const obs::StallAttribution *st =
                runs[i]->obs ? runs[i]->obs->stalls() : nullptr;
            if (st && !t->ledgerMatches(*st, &why)) {
                v.ok = false;
                v.oracle = "critpath_identity";
                v.detail = std::string(eng) +
                           " engine: tracer ledger disagrees with the "
                           "stall accountant: " +
                           why;
                return v;
            }
        }
        if (ts->digest() != tk->digest() ||
            ts->completedCount() != tk->completedCount()) {
            v.ok = false;
            v.oracle = "critpath_identity";
            std::ostringstream os;
            os << "access streams diverge across engines: step digest "
               << ts->digest() << " (" << ts->completedCount()
               << " accesses) vs skip digest " << tk->digest() << " ("
               << tk->completedCount() << " accesses)";
            v.detail = os.str();
            return v;
        }
        if (ck.memCycles != skip.memCycles ||
            ck.execCpuCycles != skip.execCpuCycles) {
            v.ok = false;
            v.oracle = "critpath_identity";
            std::ostringstream os;
            os << "tracing changed simulated stats: mem " << ck.memCycles
               << " vs " << skip.memCycles << ", cpu "
               << ck.execCpuCycles << " vs " << skip.execCpuCycles;
            v.detail = os.str();
            return v;
        }
    }

    // Cross-scheduler sanity bound on row-hit-heavy streams.
    if (opt.crossScheduler && rowHitHeavy(p)) {
        FuzzPoint burst = p, base = p;
        burst.mechanism = ctrl::Mechanism::Burst;
        base.mechanism = ctrl::Mechanism::BkInOrder;
        sim::RunResult rb, r0;
        if (!runOne(burst, opt, sim::EngineKind::Skip, rb, v))
            return v;
        if (!runOne(base, opt, sim::EngineKind::Skip, r0, v))
            return v;
        if (double(rb.execCpuCycles) >
            double(r0.execCpuCycles) * opt.crossSchedTolerance) {
            v.ok = false;
            v.oracle = "cross_scheduler";
            std::ostringstream os;
            os << "Burst " << rb.execCpuCycles
               << " cycles vs BkInOrder " << r0.execCpuCycles
               << " (tolerance " << opt.crossSchedTolerance << "x)";
            v.detail = os.str();
            return v;
        }

        // Contention-aware families trade single-stream latency for
        // multi-core fairness, so they get a looser bound — but even
        // they must stay within shouting distance of in-order issue
        // on a row-hit-heavy stream.
        if (ctrl::isContentionMechanism(p.mechanism)) {
            sim::RunResult rc;
            if (!runOne(p, opt, sim::EngineKind::Skip, rc, v))
                return v;
            if (double(rc.execCpuCycles) >
                double(r0.execCpuCycles) * opt.contentionTolerance) {
                v.ok = false;
                v.oracle = "cross_scheduler";
                std::ostringstream os;
                os << ctrl::mechanismName(p.mechanism) << " "
                   << rc.execCpuCycles << " cycles vs BkInOrder "
                   << r0.execCpuCycles << " (tolerance "
                   << opt.contentionTolerance << "x)";
                v.detail = os.str();
                return v;
            }
        }
    }
    return v;
}

} // namespace bsim::fuzz
