#include "fuzz/shrink.hh"

#include <vector>

namespace bsim::fuzz
{

namespace
{

/** One resettable config axis: copy the default's field into a probe. */
using AxisReset = void (*)(FuzzPoint &, const FuzzPoint &);

const std::vector<AxisReset> &
axisResets()
{
    // Order matters only for taste: reset the exotic axes first so the
    // surviving repro reads as "default + the interesting bits".
    static const std::vector<AxisReset> kResets = {
        [](FuzzPoint &p, const FuzzPoint &d) { p.robSize = d.robSize; },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.issueWidth = d.issueWidth;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.dynamicThreshold = d.dynamicThreshold;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.sortBurstsBySize = d.sortBurstsBySize;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.criticalFirst = d.criticalFirst;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.rankAware = d.rankAware;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.coalesceWrites = d.coalesceWrites;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.watermarkDrain = d.watermarkDrain;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.channels = d.channels;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.ranksPerChannel = d.ranksPerChannel;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.banksPerRank = d.banksPerRank;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.timingVariant = d.timingVariant;
        },
        [](FuzzPoint &p, const FuzzPoint &d) { p.device = d.device; },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.addressMap = d.addressMap;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.pagePolicy = d.pagePolicy;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.threshold = d.threshold;
        },
        [](FuzzPoint &p, const FuzzPoint &d) { p.seed = d.seed; },
        [](FuzzPoint &p, const FuzzPoint &d) {
            p.mechanism = d.mechanism;
        },
        [](FuzzPoint &p, const FuzzPoint &d) {
            // Workload and its inline trace travel together.
            p.workload = d.workload;
            p.trace = d.trace;
        },
    };
    return kResets;
}

} // namespace

ShrinkOutcome
shrinkPoint(const FuzzPoint &failing, const ShrinkOptions &opt)
{
    ShrinkOutcome out;
    out.point = failing;

    // A probe "succeeds" (the shrink step is kept) when the point
    // still fails *some* oracle: chasing the smallest failing input is
    // more valuable than pinning the original oracle, and the verdict
    // returned always matches the final minimised point.
    const auto stillFails = [&](const FuzzPoint &p,
                                OracleVerdict &v) -> bool {
        out.evaluations += 1;
        v = checkPoint(p, opt.oracle);
        return !v.ok;
    };

    OracleVerdict v;
    if (!stillFails(out.point, v)) {
        out.verdict = v; // flaky original: hand it back unshrunk
        return out;
    }
    out.verdict = v;

    const FuzzPoint defaults = defaultPoint();
    bool changed = true;
    while (changed && out.evaluations < opt.maxEvaluations) {
        changed = false;

        // Axis pass: try resetting each non-default axis.
        for (const AxisReset reset : axisResets()) {
            if (out.evaluations >= opt.maxEvaluations)
                break;
            FuzzPoint probe = out.point;
            reset(probe, defaults);
            if (axesChangedFromDefault(probe) ==
                    axesChangedFromDefault(out.point) &&
                probe.instructions == out.point.instructions &&
                probe.trace.size() == out.point.trace.size())
                continue; // axis already default: no probe to make
            if (stillFails(probe, v)) {
                out.point = probe;
                out.verdict = v;
                changed = true;
            }
        }

        // Trace-prefix pass: halve the workload dimension.
        if (out.point.workload == kInlineTraceWorkload) {
            while (out.point.trace.size() / 2 >= opt.minTraceLines &&
                   out.evaluations < opt.maxEvaluations) {
                FuzzPoint probe = out.point;
                probe.trace.resize(probe.trace.size() / 2);
                if (!stillFails(probe, v))
                    break;
                out.point = probe;
                out.verdict = v;
                changed = true;
            }
        } else {
            while (out.point.instructions / 2 >= opt.minInstructions &&
                   out.evaluations < opt.maxEvaluations) {
                FuzzPoint probe = out.point;
                probe.instructions /= 2;
                if (!stillFails(probe, v))
                    break;
                out.point = probe;
                out.verdict = v;
                changed = true;
            }
        }
    }
    return out;
}

} // namespace bsim::fuzz
