/**
 * @file
 * The oracles: properties every FuzzPoint must satisfy.
 *
 *  - valid_config    the sampled point must be accepted by the config
 *                    validators (a rejection is a sampler bug);
 *  - audit_clean     with the protocol auditor fatal, no run may
 *                    violate a DDR2 timing rule or burst invariant;
 *  - no_hang         the forward-progress watchdog must never fire
 *                    (and no other internal error may surface);
 *  - engine_equivalence
 *                    the step and skip engines must produce byte-
 *                    identical result and stall-attribution JSON;
 *  - telescoping     per channel, the per-cause stall counts must sum
 *                    exactly to the attributed cycles, which must equal
 *                    the run's memory cycles;
 *  - selfprof_identity
 *                    an introspected skip run's wake-reason attribution
 *                    must telescope exactly: stepped + skipped cycles
 *                    equal the run's memory cycles and every per-reason
 *                    sum matches its total (EngineIntrospect's
 *                    identityHolds);
 *  - memo_transparency
 *                    the horizon memos and per-bank bound caches must be
 *                    pure caches: an introspected skip run with
 *                    --no-horizon-memo semantics (all caches force-
 *                    disabled) must report the same skipped/stepped
 *                    totals and simulated stats as the cached run —
 *                    these runs turn stall attribution off so the exact
 *                    bound caches are actually exercised;
 *  - critpath_identity
 *                    with per-access tracing on, every access's blame
 *                    vector must sum exactly to its measured latency,
 *                    the tracer's internal ledger must reconcile with
 *                    the aggregate stall accountant, both engines must
 *                    stream byte-identical access records (FNV digest),
 *                    and tracing must not perturb simulated stats;
 *  - cross_scheduler on row-hit-heavy synthetic streams, Burst must
 *                    not be slower than BkInOrder beyond a tolerance
 *                    (the paper's headline ordering, Figure 10); for
 *                    points using a contention-aware family the
 *                    point's own mechanism is additionally bounded
 *                    against BkInOrder with a looser tolerance.
 *
 * checkPoint() runs them all and returns the first failure. The
 * configTweak hook exists for the test suite: it lets a test inject a
 * deliberate bug (e.g. a freezing scheduler decorator) underneath the
 * oracles to prove the fuzzer catches and shrinks it.
 */

#ifndef BURSTSIM_FUZZ_ORACLE_HH
#define BURSTSIM_FUZZ_ORACLE_HH

#include <functional>
#include <string>

#include "fuzz/point.hh"

namespace bsim::fuzz
{

/** Oracle evaluation knobs. */
struct OracleOptions
{
    /** Scratch dir for inline-trace materialisation ("" = temp dir). */
    std::string scratchDir;
    /** Burst may be at most this factor slower than BkInOrder. */
    double crossSchedTolerance = 1.15;
    /**
     * Contention-family (FR-FCFS/PARBS/ATLAS/BLISS) bound against
     * BkInOrder. Looser than the Burst bound: these policies optimise
     * fairness/throughput under multi-core contention, not single-
     * stream latency, so a modest single-core regression is by design.
     */
    double contentionTolerance = 1.30;
    /** Skip the (expensive) two-run cross-scheduler bound. */
    bool crossScheduler = true;
    /** Skip the extra introspected run of the selfprof_identity oracle. */
    bool selfprofIdentity = true;
    /** Skip the two extra runs of the memo_transparency oracle. */
    bool memoTransparency = true;
    /** Skip the two extra traced runs of the critpath_identity oracle. */
    bool critpathIdentity = true;
    /** Test hook: mutate the lowered config before each run. */
    std::function<void(sim::ExperimentConfig &)> configTweak;
};

/** Outcome of evaluating one point against every oracle. */
struct OracleVerdict
{
    bool ok = true;
    std::string oracle; //!< failing oracle id ("" when ok)
    std::string detail; //!< human-readable failure description
};

/** Evaluate @p p against all oracles; first failure wins. */
OracleVerdict checkPoint(const FuzzPoint &p,
                         const OracleOptions &opt = {});

} // namespace bsim::fuzz

#endif // BURSTSIM_FUZZ_ORACLE_HH
