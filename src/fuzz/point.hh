/**
 * @file
 * One point of the differential fuzzer's search space.
 *
 * A FuzzPoint is a flat, serialisable description of everything a run
 * depends on: workload (a synthetic SPEC profile, or an inline text
 * trace carried inside the point), scheduler mechanism, threshold,
 * DRAM geometry and page/mapping policy, device generation, timing
 * variant, and the extension switches. Points round-trip through a
 * text "repro file" format, so every failure the fuzzer finds becomes
 * a checked-in file anyone can replay with
 *     burstsim_fuzz --replay <file>
 * and the shrinker (shrink.hh) can walk the space axis by axis.
 *
 * The point deliberately excludes std::function hooks and file paths:
 * everything needed to reproduce a run travels in the file itself.
 */

#ifndef BURSTSIM_FUZZ_POINT_HH
#define BURSTSIM_FUZZ_POINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/experiment.hh"

namespace bsim::fuzz
{

/** Sentinel workload name: the point carries its own trace lines. */
inline const char *const kInlineTraceWorkload = "@inline";

/** One sampled / shrunk / replayed configuration point. */
struct FuzzPoint
{
    /** Synthetic profile name, or kInlineTraceWorkload with `trace`. */
    std::string workload = "swim";
    /** Trace-file lines (without newlines) when workload is inline. */
    std::vector<std::string> trace;

    ctrl::Mechanism mechanism = ctrl::Mechanism::BkInOrder;
    std::uint64_t instructions = 6000; //!< ignored for inline traces
    std::uint64_t seed = 20070212;
    std::size_t threshold = 52;
    dram::PagePolicy pagePolicy = dram::PagePolicy::OpenPage;
    dram::AddressMapKind addressMap = dram::AddressMapKind::PageInterleave;
    sim::DeviceGen device = sim::DeviceGen::DDR2_800;
    sim::TimingVariant timingVariant = sim::TimingVariant::Baseline;
    std::uint32_t channels = 0; //!< 0 = Table 3 baseline
    std::uint32_t ranksPerChannel = 0;
    std::uint32_t banksPerRank = 0;
    bool dynamicThreshold = false;
    bool sortBurstsBySize = false;
    bool criticalFirst = false;
    bool rankAware = true;
    bool coalesceWrites = false;
    /** Watermark write-drain mode (contention-aware families only). */
    bool watermarkDrain = false;
    std::uint32_t robSize = 0;
    std::uint32_t issueWidth = 0;
};

/** The all-defaults point (the shrinker's target). */
FuzzPoint defaultPoint();

/** Deterministically sample one point from @p rng. */
FuzzPoint samplePoint(Rng &rng);

/**
 * Lower @p p onto an ExperimentConfig. Inline traces are materialised
 * under @p scratch_dir (content-addressed file name, so repeated runs
 * of the same point reuse one file); empty uses the system temp dir.
 */
sim::ExperimentConfig toConfig(const FuzzPoint &p,
                               const std::string &scratch_dir = "");

/**
 * Number of config axes of @p p that differ from defaultPoint().
 * `instructions` and the inline trace length do not count: they are
 * the "trace prefix" dimension, minimised separately by the shrinker.
 */
int axesChangedFromDefault(const FuzzPoint &p);

/** Compact one-line description, e.g. "mcf/Burst pp=predictive". */
std::string pointLabel(const FuzzPoint &p);

/** Render @p p as a repro file; @p note becomes a header comment. */
std::string serializePoint(const FuzzPoint &p,
                           const std::string &note = "");

/** Parse a repro file; throws SimError(Config) on malformed input. */
FuzzPoint parsePoint(const std::string &text);

} // namespace bsim::fuzz

#endif // BURSTSIM_FUZZ_POINT_HH
