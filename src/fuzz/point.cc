#include "fuzz/point.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "trace/spec_profiles.hh"

namespace bsim::fuzz
{

namespace
{

/** FNV-1a for content-addressed scratch trace files. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
        h ^= std::uint8_t(c);
        h *= 1099511628211ULL;
    }
    return h;
}

// Token tables; the string forms match the burstsim CLI's options so a
// repro file reads like a command line.

const char *
pagePolicyToken(dram::PagePolicy p)
{
    switch (p) {
      case dram::PagePolicy::OpenPage: return "open";
      case dram::PagePolicy::ClosePageAuto: return "cpa";
      case dram::PagePolicy::Predictive: return "predictive";
    }
    return "?";
}

dram::PagePolicy
parsePagePolicy(const std::string &s)
{
    if (s == "open")
        return dram::PagePolicy::OpenPage;
    if (s == "cpa")
        return dram::PagePolicy::ClosePageAuto;
    if (s == "predictive")
        return dram::PagePolicy::Predictive;
    throwSimError(ErrorCategory::Config, "repro: unknown page policy '%s'",
                  s.c_str());
}

const char *
addressMapToken(dram::AddressMapKind k)
{
    switch (k) {
      case dram::AddressMapKind::PageInterleave: return "page";
      case dram::AddressMapKind::BlockInterleave: return "block";
      case dram::AddressMapKind::BitReversal: return "bitrev";
      case dram::AddressMapKind::PermutationInterleave: return "perm";
    }
    return "?";
}

dram::AddressMapKind
parseAddressMap(const std::string &s)
{
    if (s == "page")
        return dram::AddressMapKind::PageInterleave;
    if (s == "block")
        return dram::AddressMapKind::BlockInterleave;
    if (s == "bitrev")
        return dram::AddressMapKind::BitReversal;
    if (s == "perm")
        return dram::AddressMapKind::PermutationInterleave;
    throwSimError(ErrorCategory::Config, "repro: unknown address map '%s'",
                  s.c_str());
}

const char *
deviceToken(sim::DeviceGen d)
{
    return d == sim::DeviceGen::DDR_266 ? "ddr-266" : "ddr2-800";
}

sim::DeviceGen
parseDevice(const std::string &s)
{
    if (s == "ddr2-800")
        return sim::DeviceGen::DDR2_800;
    if (s == "ddr-266")
        return sim::DeviceGen::DDR_266;
    throwSimError(ErrorCategory::Config, "repro: unknown device '%s'",
                  s.c_str());
}

std::uint64_t
parseU64(const std::string &key, const std::string &s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (!end || *end != '\0' || s.empty())
        throwSimError(ErrorCategory::Config,
                      "repro: %s expects a number, got '%s'", key.c_str(),
                      s.c_str());
    return v;
}

bool
parseBool(const std::string &key, const std::string &s)
{
    if (s == "0" || s == "1")
        return s == "1";
    throwSimError(ErrorCategory::Config,
                  "repro: %s expects 0 or 1, got '%s'", key.c_str(),
                  s.c_str());
}

/** Workloads the sampler draws from (paper set + pchase). */
std::vector<std::string>
sampleWorkloads()
{
    std::vector<std::string> names = trace::specProfileNames();
    for (const std::string &m : trace::microProfileNames())
        names.push_back(m);
    return names;
}

/** Generate a small random inline trace (the trace-workload axis). */
std::vector<std::string>
sampleTrace(Rng &rng)
{
    const std::uint64_t lines = 200 + rng.below(1800);
    // Keep the footprint modest so short traces still produce bank
    // contention and row reuse; block-align addresses like a real L2.
    const std::uint64_t footprint = 1ULL << (20 + rng.below(6)); // 1M-32M
    std::vector<std::string> out;
    out.reserve(lines);
    char buf[48];
    for (std::uint64_t i = 0; i < lines; ++i) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 45) {
            out.emplace_back("C");
            continue;
        }
        const std::uint64_t addr = rng.below(footprint) & ~63ULL;
        const char kind = roll < 75 ? 'L' : (roll < 90 ? 'S' : 'D');
        std::snprintf(buf, sizeof(buf), "%c %" PRIx64, kind, addr);
        out.emplace_back(buf);
    }
    return out;
}

} // namespace

FuzzPoint
defaultPoint()
{
    return FuzzPoint{};
}

FuzzPoint
samplePoint(Rng &rng)
{
    FuzzPoint p;

    const auto workloads = sampleWorkloads();
    if (rng.chance(0.15)) {
        p.workload = kInlineTraceWorkload;
        p.trace = sampleTrace(rng);
    } else {
        p.workload = workloads[rng.below(workloads.size())];
    }

    constexpr ctrl::Mechanism kMechs[] = {
        ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
        ctrl::Mechanism::Intel,     ctrl::Mechanism::IntelRP,
        ctrl::Mechanism::Burst,     ctrl::Mechanism::BurstRP,
        ctrl::Mechanism::BurstWP,   ctrl::Mechanism::BurstTH,
        ctrl::Mechanism::AdaptiveHistory,
        ctrl::Mechanism::FrFcfs,    ctrl::Mechanism::Parbs,
        ctrl::Mechanism::Atlas,     ctrl::Mechanism::Bliss,
    };
    p.mechanism = kMechs[rng.below(std::size(kMechs))];
    // The drain-mode axis only exists for the contention families;
    // keeping it default elsewhere keeps shrunk repros honest (the
    // axis never appears in a repro it cannot influence).
    if (ctrl::isContentionMechanism(p.mechanism))
        p.watermarkDrain = rng.chance(0.35);

    constexpr std::uint64_t kInstr[] = {2000, 4000, 6000, 8000, 12000};
    p.instructions = kInstr[rng.below(std::size(kInstr))];
    p.seed = 1 + rng.below(1'000'000);

    constexpr std::size_t kThresholds[] = {0, 1, 8, 16, 32, 52, 64, 128};
    p.threshold = kThresholds[rng.below(std::size(kThresholds))];

    p.pagePolicy = dram::PagePolicy(rng.below(3));
    p.addressMap = dram::AddressMapKind(rng.below(4));
    p.device = rng.chance(0.3) ? sim::DeviceGen::DDR_266
                               : sim::DeviceGen::DDR2_800;
    p.timingVariant = sim::TimingVariant(rng.below(sim::kNumTimingVariants));

    constexpr std::uint32_t kChannels[] = {0, 1, 2, 4};
    constexpr std::uint32_t kRanks[] = {0, 1, 2, 4};
    constexpr std::uint32_t kBanks[] = {0, 2, 4, 8};
    p.channels = kChannels[rng.below(std::size(kChannels))];
    p.ranksPerChannel = kRanks[rng.below(std::size(kRanks))];
    p.banksPerRank = kBanks[rng.below(std::size(kBanks))];

    p.dynamicThreshold = rng.chance(0.2);
    p.sortBurstsBySize = rng.chance(0.2);
    p.criticalFirst = rng.chance(0.2);
    p.rankAware = !rng.chance(0.2);
    p.coalesceWrites = rng.chance(0.2);

    constexpr std::uint32_t kRob[] = {0, 1, 8, 32};
    constexpr std::uint32_t kIssue[] = {0, 1, 4};
    p.robSize = kRob[rng.below(std::size(kRob))];
    p.issueWidth = kIssue[rng.below(std::size(kIssue))];
    return p;
}

sim::ExperimentConfig
toConfig(const FuzzPoint &p, const std::string &scratch_dir)
{
    sim::ExperimentConfig cfg;
    if (p.workload == kInlineTraceWorkload) {
        // Content-addressed scratch file: replays of the same point
        // (shrinker probes, corpus reruns) share one materialisation.
        std::string body;
        for (const std::string &line : p.trace) {
            body += line;
            body += '\n';
        }
        namespace fs = std::filesystem;
        const fs::path dir = scratch_dir.empty()
                                 ? fs::temp_directory_path()
                                 : fs::path(scratch_dir);
        char name[64];
        std::snprintf(name, sizeof(name), "bsim-fuzz-%016" PRIx64 ".trace",
                      fnv1a(body));
        const fs::path path = dir / name;
        std::error_code ec;
        fs::create_directories(dir, ec);
        if (!fs::exists(path)) {
            std::ofstream os(path);
            os << body;
            if (!os)
                throwSimError(ErrorCategory::Resource,
                              "cannot write scratch trace '%s'",
                              path.string().c_str());
        }
        cfg.workload = "@" + path.string();
    } else {
        cfg.workload = p.workload;
    }
    cfg.mechanism = p.mechanism;
    cfg.instructions = p.instructions;
    cfg.seed = p.seed;
    cfg.threshold = p.threshold;
    cfg.pagePolicy = p.pagePolicy;
    cfg.addressMap = p.addressMap;
    cfg.device = p.device;
    cfg.timingVariant = p.timingVariant;
    cfg.channels = p.channels;
    cfg.ranksPerChannel = p.ranksPerChannel;
    cfg.banksPerRank = p.banksPerRank;
    cfg.dynamicThreshold = p.dynamicThreshold;
    cfg.sortBurstsBySize = p.sortBurstsBySize;
    cfg.criticalFirst = p.criticalFirst;
    cfg.rankAware = p.rankAware;
    cfg.coalesceWrites = p.coalesceWrites;
    cfg.watermarkDrain = p.watermarkDrain;
    cfg.robSize = p.robSize;
    cfg.issueWidth = p.issueWidth;
    return cfg;
}

int
axesChangedFromDefault(const FuzzPoint &p)
{
    const FuzzPoint d = defaultPoint();
    int n = 0;
    n += p.workload != d.workload;
    n += p.mechanism != d.mechanism;
    n += p.seed != d.seed;
    n += p.threshold != d.threshold;
    n += p.pagePolicy != d.pagePolicy;
    n += p.addressMap != d.addressMap;
    n += p.device != d.device;
    n += p.timingVariant != d.timingVariant;
    n += p.channels != d.channels;
    n += p.ranksPerChannel != d.ranksPerChannel;
    n += p.banksPerRank != d.banksPerRank;
    n += p.dynamicThreshold != d.dynamicThreshold;
    n += p.sortBurstsBySize != d.sortBurstsBySize;
    n += p.criticalFirst != d.criticalFirst;
    n += p.rankAware != d.rankAware;
    n += p.coalesceWrites != d.coalesceWrites;
    n += p.watermarkDrain != d.watermarkDrain;
    n += p.robSize != d.robSize;
    n += p.issueWidth != d.issueWidth;
    return n;
}

std::string
pointLabel(const FuzzPoint &p)
{
    std::ostringstream os;
    os << p.workload << '/' << ctrl::mechanismName(p.mechanism);
    const FuzzPoint d = defaultPoint();
    if (p.pagePolicy != d.pagePolicy)
        os << " pp=" << pagePolicyToken(p.pagePolicy);
    if (p.addressMap != d.addressMap)
        os << " map=" << addressMapToken(p.addressMap);
    if (p.device != d.device)
        os << " dev=" << deviceToken(p.device);
    if (p.timingVariant != d.timingVariant)
        os << " t=" << sim::timingVariantName(p.timingVariant);
    if (p.channels || p.ranksPerChannel || p.banksPerRank)
        os << " geo=" << p.channels << 'x' << p.ranksPerChannel << 'x'
           << p.banksPerRank;
    if (p.threshold != d.threshold)
        os << " th=" << p.threshold;
    if (p.watermarkDrain != d.watermarkDrain)
        os << " wd";
    return os.str();
}

std::string
serializePoint(const FuzzPoint &p, const std::string &note)
{
    std::ostringstream os;
    os << "# burstsim_fuzz repro v1\n";
    if (!note.empty()) {
        // Notes can be multi-line (watchdog errors embed a controller
        // dump); every line must carry the comment marker or the file
        // won't parse back.
        std::istringstream ns(note);
        std::string nline;
        while (std::getline(ns, nline))
            os << "# " << nline << '\n';
    }
    os << "workload=" << p.workload << '\n'
       << "mechanism=" << ctrl::mechanismName(p.mechanism) << '\n'
       << "instructions=" << p.instructions << '\n'
       << "seed=" << p.seed << '\n'
       << "threshold=" << p.threshold << '\n'
       << "page_policy=" << pagePolicyToken(p.pagePolicy) << '\n'
       << "address_map=" << addressMapToken(p.addressMap) << '\n'
       << "device=" << deviceToken(p.device) << '\n'
       << "timing=" << sim::timingVariantName(p.timingVariant) << '\n'
       << "channels=" << p.channels << '\n'
       << "ranks=" << p.ranksPerChannel << '\n'
       << "banks=" << p.banksPerRank << '\n'
       << "dynamic_threshold=" << p.dynamicThreshold << '\n'
       << "sort_bursts=" << p.sortBurstsBySize << '\n'
       << "critical_first=" << p.criticalFirst << '\n'
       << "rank_aware=" << p.rankAware << '\n'
       << "coalesce_writes=" << p.coalesceWrites << '\n'
       << "watermark_drain=" << p.watermarkDrain << '\n'
       << "rob=" << p.robSize << '\n'
       << "issue_width=" << p.issueWidth << '\n';
    if (p.workload == kInlineTraceWorkload) {
        os << "trace:\n";
        for (const std::string &line : p.trace)
            os << line << '\n';
    }
    return os.str();
}

FuzzPoint
parsePoint(const std::string &text)
{
    FuzzPoint p;
    std::istringstream is(text);
    std::string line;
    bool in_trace = false;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (in_trace) {
            if (!line.empty() && line[0] != '#')
                p.trace.push_back(line);
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "trace:") {
            in_trace = true;
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            throwSimError(ErrorCategory::Config,
                          "repro line %u: expected key=value, got '%s'",
                          lineno, line.c_str());
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);
        if (key == "workload")
            p.workload = val;
        else if (key == "mechanism")
            p.mechanism = ctrl::parseMechanism(val);
        else if (key == "instructions")
            p.instructions = parseU64(key, val);
        else if (key == "seed")
            p.seed = parseU64(key, val);
        else if (key == "threshold")
            p.threshold = std::size_t(parseU64(key, val));
        else if (key == "page_policy")
            p.pagePolicy = parsePagePolicy(val);
        else if (key == "address_map")
            p.addressMap = parseAddressMap(val);
        else if (key == "device")
            p.device = parseDevice(val);
        else if (key == "timing")
            p.timingVariant = sim::timingVariantByName(val);
        else if (key == "channels")
            p.channels = std::uint32_t(parseU64(key, val));
        else if (key == "ranks")
            p.ranksPerChannel = std::uint32_t(parseU64(key, val));
        else if (key == "banks")
            p.banksPerRank = std::uint32_t(parseU64(key, val));
        else if (key == "dynamic_threshold")
            p.dynamicThreshold = parseBool(key, val);
        else if (key == "sort_bursts")
            p.sortBurstsBySize = parseBool(key, val);
        else if (key == "critical_first")
            p.criticalFirst = parseBool(key, val);
        else if (key == "rank_aware")
            p.rankAware = parseBool(key, val);
        else if (key == "coalesce_writes")
            p.coalesceWrites = parseBool(key, val);
        else if (key == "watermark_drain")
            p.watermarkDrain = parseBool(key, val);
        else if (key == "rob")
            p.robSize = std::uint32_t(parseU64(key, val));
        else if (key == "issue_width")
            p.issueWidth = std::uint32_t(parseU64(key, val));
        else
            throwSimError(ErrorCategory::Config,
                          "repro line %u: unknown key '%s'", lineno,
                          key.c_str());
    }
    if (p.workload == kInlineTraceWorkload && p.trace.empty())
        throwSimError(ErrorCategory::Config,
                      "repro: inline workload without trace lines");
    return p;
}

} // namespace bsim::fuzz
