/**
 * @file
 * The differential fuzzing campaign driver.
 *
 * Deterministic by construction: a campaign is fully described by
 * (seed, runs) — the xoshiro-based Rng stream drives every sampled
 * axis, so `burstsim_fuzz --seed 7 --runs 50` explores the same fifty
 * points on any machine. Each point is evaluated against the oracle
 * battery (oracle.hh); failures are minimised by the shrinker
 * (shrink.hh) and reported with a replayable repro file body.
 *
 * The optional wall-clock budget exists for CI smoke jobs: the
 * campaign stops *between* points when the budget is exceeded, so a
 * budgeted run is a deterministic prefix of the unbudgeted one.
 */

#ifndef BURSTSIM_FUZZ_FUZZER_HH
#define BURSTSIM_FUZZ_FUZZER_HH

#include <iosfwd>
#include <vector>

#include "fuzz/oracle.hh"
#include "fuzz/point.hh"
#include "fuzz/shrink.hh"

namespace bsim::fuzz
{

/** Campaign policy. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    unsigned runs = 100;
    /** Stop early after this many seconds of wall clock (0 = none). */
    double timeBudgetSec = 0.0;
    /** Minimise failures before reporting them. */
    bool shrink = true;
    /** Stop the campaign after this many failures (0 = keep going). */
    unsigned maxFailures = 0;
    OracleOptions oracle;
    ShrinkOptions shrinkOpt;
    /** Progress notes ("run 12/200 FAIL ..."), null = quiet. */
    std::ostream *progress = nullptr;
};

/** One failure: the sampled point, its minimised form, the verdict. */
struct FuzzFailure
{
    unsigned runIndex = 0;   //!< which sampled point (0-based)
    FuzzPoint original;
    FuzzPoint minimized;     //!< == original when shrinking is off
    OracleVerdict verdict;   //!< verdict of the minimised point
};

/** Campaign outcome. */
struct FuzzReport
{
    unsigned executed = 0;   //!< points actually evaluated
    bool outOfTime = false;  //!< stopped by the wall-clock budget
    std::vector<FuzzFailure> failures;
};

/** Run one campaign. */
FuzzReport runFuzz(const FuzzOptions &opt = {});

} // namespace bsim::fuzz

#endif // BURSTSIM_FUZZ_FUZZER_HH
