#include "fuzz/fuzzer.hh"

#include <chrono>
#include <ostream>

namespace bsim::fuzz
{

FuzzReport
runFuzz(const FuzzOptions &opt)
{
    using clock = std::chrono::steady_clock;
    const auto started = clock::now();
    const auto overBudget = [&] {
        if (opt.timeBudgetSec <= 0)
            return false;
        const std::chrono::duration<double> spent =
            clock::now() - started;
        return spent.count() >= opt.timeBudgetSec;
    };

    FuzzReport rep;
    // Offset the seed stream from the experiment seeds the points
    // themselves use, so campaign seed 20070212 does not correlate the
    // sampler with the workload generators.
    Rng rng(opt.seed ^ 0xf022ed5eedULL);

    for (unsigned i = 0; i < opt.runs; ++i) {
        if (overBudget()) {
            rep.outOfTime = true;
            break;
        }
        const FuzzPoint p = samplePoint(rng);
        const OracleVerdict v = checkPoint(p, opt.oracle);
        rep.executed += 1;
        if (v.ok) {
            if (opt.progress && (i + 1) % 25 == 0)
                *opt.progress << "fuzz: " << (i + 1) << '/' << opt.runs
                              << " points clean\n";
            continue;
        }

        FuzzFailure f;
        f.runIndex = i;
        f.original = p;
        f.minimized = p;
        f.verdict = v;
        if (opt.progress)
            *opt.progress << "fuzz: run " << i << " FAILED [" << v.oracle
                          << "] " << pointLabel(p) << ": " << v.detail
                          << '\n';
        if (opt.shrink) {
            ShrinkOptions so = opt.shrinkOpt;
            so.oracle = opt.oracle;
            const ShrinkOutcome sh = shrinkPoint(p, so);
            if (!sh.verdict.ok) {
                f.minimized = sh.point;
                f.verdict = sh.verdict;
                if (opt.progress)
                    *opt.progress
                        << "fuzz: shrunk to " << pointLabel(sh.point)
                        << " (" << axesChangedFromDefault(sh.point)
                        << " axes off default, " << sh.evaluations
                        << " probes)\n";
            }
        }
        rep.failures.push_back(std::move(f));
        if (opt.maxFailures && rep.failures.size() >= opt.maxFailures)
            break;
    }
    return rep;
}

} // namespace bsim::fuzz
