#include "trace/trace_file.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace bsim::trace
{

std::uint64_t
writeTrace(std::ostream &os, TraceSource &src, std::uint64_t count)
{
    TraceInstr in;
    std::uint64_t written = 0;
    while (written < count && src.next(in)) {
        switch (in.op) {
          case TraceInstr::Op::Compute:
            os << "C\n";
            break;
          case TraceInstr::Op::Load:
            os << (in.depChain ? "D " : "L ") << std::hex << in.addr
               << std::dec << '\n';
            break;
          case TraceInstr::Op::Store:
            os << "S " << std::hex << in.addr << std::dec << '\n';
            break;
        }
        written += 1;
    }
    return written;
}

std::vector<TraceInstr>
readTrace(std::istream &is)
{
    std::vector<TraceInstr> out;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        if (line.empty() || line[0] == '#')
            continue;
        TraceInstr in;
        const char kind = line[0];
        if (kind == 'C') {
            in.op = TraceInstr::Op::Compute;
            out.push_back(in);
            continue;
        }
        if (kind != 'L' && kind != 'D' && kind != 'S')
            fatal("trace line %llu: unknown record '%c'",
                  static_cast<unsigned long long>(lineno), kind);
        std::istringstream ss(line.substr(1));
        std::uint64_t addr = 0;
        ss >> std::hex >> addr;
        if (ss.fail())
            fatal("trace line %llu: missing address",
                  static_cast<unsigned long long>(lineno));
        in.addr = addr;
        if (kind == 'S') {
            in.op = TraceInstr::Op::Store;
        } else {
            in.op = TraceInstr::Op::Load;
            in.depChain = kind == 'D';
        }
        out.push_back(in);
    }
    return out;
}

std::unique_ptr<VectorTrace>
loadTraceFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());
    return std::make_unique<VectorTrace>(readTrace(f));
}

} // namespace bsim::trace
