#include "trace/trace_file.hh"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hh"

namespace bsim::trace
{

std::uint64_t
writeTrace(std::ostream &os, TraceSource &src, std::uint64_t count)
{
    TraceInstr in;
    std::uint64_t written = 0;
    while (written < count && src.next(in)) {
        switch (in.op) {
          case TraceInstr::Op::Compute:
            os << "C\n";
            break;
          case TraceInstr::Op::Load:
            os << (in.depChain ? "D " : "L ") << std::hex << in.addr
               << std::dec << '\n';
            break;
          case TraceInstr::Op::Store:
            os << "S " << std::hex << in.addr << std::dec << '\n';
            break;
        }
        written += 1;
    }
    return written;
}

namespace
{

[[noreturn]] void
parseError(std::uint64_t line, std::size_t column, const std::string &what)
{
    throwSimError(ErrorCategory::Trace,
                  "trace line %llu, column %zu: %s",
                  static_cast<unsigned long long>(line), column,
                  what.c_str());
}

/** Printable rendition of a record byte for diagnostics. */
std::string
charRepr(char c)
{
    if (std::isprint(static_cast<unsigned char>(c)))
        return std::string("'") + c + "'";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "byte 0x%02x",
                  static_cast<unsigned>(static_cast<unsigned char>(c)));
    return buf;
}

} // namespace

std::vector<TraceInstr>
readTrace(std::istream &is)
{
    std::vector<TraceInstr> out;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        // Tolerate CRLF traces captured on other platforms.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (const std::size_t nul = line.find('\0');
            nul != std::string::npos)
            parseError(lineno, nul + 1,
                       "embedded NUL byte (binary data is not a trace)");
        if (line.empty() || line[0] == '#')
            continue;
        TraceInstr in;
        const char kind = line[0];
        if (kind == 'C') {
            if (line.find_first_not_of(" \t", 1) != std::string::npos)
                parseError(lineno, 2,
                           "unexpected text after compute record");
            in.op = TraceInstr::Op::Compute;
            out.push_back(in);
            continue;
        }
        if (kind != 'L' && kind != 'D' && kind != 'S')
            parseError(lineno, 1,
                       "unknown record " + charRepr(kind) +
                           " (expected C, L, D or S)");
        // Address field: optional blanks, then hex digits to end of line.
        std::size_t p = line.find_first_not_of(" \t", 1);
        if (p == std::string::npos)
            parseError(lineno, line.size() + 1,
                       "missing address (truncated line)");
        std::uint64_t addr = 0;
        std::size_t digits = 0;
        for (; p < line.size(); ++p, ++digits) {
            const char c = line[p];
            if (c == ' ' || c == '\t') {
                if (line.find_first_not_of(" \t", p) != std::string::npos)
                    parseError(lineno, p + 1,
                               "unexpected text after address");
                break;
            }
            const int digit = std::isdigit(static_cast<unsigned char>(c))
                                  ? c - '0'
                              : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                              : (c >= 'A' && c <= 'F') ? c - 'A' + 10
                                                       : -1;
            if (digit < 0)
                parseError(lineno, p + 1,
                           "non-hex address character " + charRepr(c));
            if (digits >= 16)
                parseError(lineno, p + 1,
                           "address wider than 64 bits");
            addr = (addr << 4) | std::uint64_t(digit);
        }
        if (digits == 0)
            parseError(lineno, p + 1, "missing address (truncated line)");
        in.addr = addr;
        if (kind == 'S') {
            in.op = TraceInstr::Op::Store;
        } else {
            in.op = TraceInstr::Op::Load;
            in.depChain = kind == 'D';
        }
        out.push_back(in);
    }
    return out;
}

std::unique_ptr<VectorTrace>
loadTraceFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        throwSimError(ErrorCategory::Trace,
                      "cannot open trace file '%s'", path.c_str());
    auto instrs = readTrace(f);
    if (instrs.empty())
        throwSimError(ErrorCategory::Trace,
                      "trace file '%s' contains no instructions",
                      path.c_str());
    return std::make_unique<VectorTrace>(std::move(instrs));
}

} // namespace bsim::trace
