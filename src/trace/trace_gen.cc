#include "trace/trace_gen.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::trace
{

namespace
{
constexpr std::uint64_t kBlock = 64;
}

SyntheticGenerator::SyntheticGenerator(const WorkloadProfile &profile,
                                       std::uint64_t num_instructions,
                                       std::uint64_t seed)
    : prof_(profile), limit_(num_instructions), rng_(seed ^ 0xb5157a5f00c0ffeeULL)
{
    if (prof_.memFraction < 0 || prof_.memFraction > 1)
        throwSimError(ErrorCategory::Config, "profile %s: memFraction out of range", prof_.name.c_str());
    if (prof_.hotFraction < 0 || prof_.hotFraction > 1)
        throwSimError(ErrorCategory::Config, "profile %s: hotFraction out of range", prof_.name.c_str());
    if (prof_.seqFraction + prof_.chaseFraction > 1.0)
        throwSimError(ErrorCategory::Config, "profile %s: category fractions exceed 1", prof_.name.c_str());
    if (prof_.numStreams == 0 || prof_.numWriteStreams == 0)
        throwSimError(ErrorCategory::Config, "profile %s: need at least one stream", prof_.name.c_str());

    // Carve the footprint into: read-stream regions (first half),
    // write-stream regions (next quarter), chase region (last quarter).
    // Random accesses roam the whole footprint; the hot set sits at the
    // region base (it is small and overlaps do not matter).
    const std::uint64_t fp = prof_.footprintBytes;
    streamRegion_ = (fp / 2) / prof_.numStreams;
    writeRegion_ = (fp / 4) / prof_.numWriteStreams;
    chaseBase_ = prof_.regionBase + fp / 2 + fp / 4;
    chaseBlocks_ = (fp / 4) / kBlock;

    // Each stream starts at a random block phase within its region, as a
    // real array allocation would: without this, region-aligned bases put
    // every stream on the same bank rotation and the address streams
    // collide in one bank forever.
    for (std::uint32_t i = 0; i < prof_.numStreams; ++i) {
        streamBase_.push_back(prof_.regionBase +
                              std::uint64_t(i) * streamRegion_);
        streamCursor_.push_back(rng_.below(streamRegion_ / (2 * kBlock)) *
                                kBlock);
    }
    for (std::uint32_t i = 0; i < prof_.numWriteStreams; ++i) {
        writeBase_.push_back(prof_.regionBase + fp / 2 +
                             std::uint64_t(i) * writeRegion_);
        writeCursor_.push_back(rng_.below(writeRegion_ / (2 * kBlock)) *
                               kBlock);
    }
}

Addr
SyntheticGenerator::hotAddr()
{
    const std::uint64_t blocks = prof_.hotBytes / kBlock;
    return prof_.regionBase + rng_.below(blocks) * kBlock;
}

Addr
SyntheticGenerator::seqAddr()
{
    const std::uint32_t s = nextStream_;
    nextStream_ = (nextStream_ + 1) % prof_.numStreams;
    const std::uint64_t need =
        std::uint64_t(prof_.clusterBlocks) * prof_.streamStride;
    if (streamCursor_[s] + need > streamRegion_)
        streamCursor_[s] = 0;
    const Addr a = streamBase_[s] + streamCursor_[s];
    streamCursor_[s] += need;
    return a;
}

Addr
SyntheticGenerator::writeStreamAddr()
{
    const std::uint32_t s = nextWriteStream_;
    nextWriteStream_ = (nextWriteStream_ + 1) % prof_.numWriteStreams;
    const std::uint64_t need =
        std::uint64_t(prof_.clusterBlocks) * prof_.streamStride;
    if (writeCursor_[s] + need > writeRegion_)
        writeCursor_[s] = 0;
    const Addr a = writeBase_[s] + writeCursor_[s];
    writeCursor_[s] += need;
    return a;
}

Addr
SyntheticGenerator::chaseAddr()
{
    // A pointer dereference lands anywhere in the chase region; what
    // matters is the depChain serialization, not the address pattern.
    return chaseBase_ + rng_.below(chaseBlocks_) * kBlock;
}

Addr
SyntheticGenerator::randAddr()
{
    const std::uint64_t blocks = prof_.footprintBytes / kBlock;
    return prof_.regionBase + rng_.below(blocks) * kBlock;
}

bool
SyntheticGenerator::next(TraceInstr &out)
{
    if (produced_ >= limit_)
        return false;
    produced_ += 1;

    if (!pending_.empty()) {
        out = pending_.front();
        pending_.pop_front();
        return true;
    }

    out.depChain = false;
    if (!rng_.chance(prof_.memFraction)) {
        out.op = TraceInstr::Op::Compute;
        out.addr = 0;
        return true;
    }

    const bool is_store = rng_.chance(prof_.writeFraction);
    out.op = is_store ? TraceInstr::Op::Store : TraceInstr::Op::Load;

    // The hot set decides memory intensity first; the pattern split only
    // shapes the accesses that will actually reach main memory.
    if (rng_.chance(prof_.hotFraction)) {
        out.addr = hotAddr();
        return true;
    }

    // Streaming accesses arrive in runs of clusterBlocks consecutive
    // blocks of one stream (a blocked loop touching a chunk of an
    // array): the first is returned now, the rest are queued back to
    // back. This clustering is what creates same-row bursts in flight.
    auto emit_cluster = [&](bool store, Addr (SyntheticGenerator::*gen)()) {
        out.addr = (this->*gen)();
        Addr a = out.addr;
        for (std::uint32_t i = 1; i < prof_.clusterBlocks; ++i) {
            a += prof_.streamStride;
            TraceInstr t;
            t.op = store ? TraceInstr::Op::Store : TraceInstr::Op::Load;
            t.addr = a;
            pending_.push_back(t);
        }
    };

    if (is_store && rng_.chance(prof_.storeStreamBias)) {
        emit_cluster(true, &SyntheticGenerator::writeStreamAddr);
        return true;
    }

    const double r = rng_.uniform();
    if (r < prof_.seqFraction) {
        emit_cluster(false, &SyntheticGenerator::seqAddr);
    } else if (r < prof_.seqFraction + prof_.chaseFraction) {
        if (is_store) {
            out.addr = randAddr();
        } else {
            out.addr = chaseAddr();
            out.depChain = true;
            out.chainId = std::uint8_t(nextChain_);
            nextChain_ = (nextChain_ + 1) % prof_.numChains;
        }
    } else {
        out.addr = randAddr();
    }
    return true;
}

} // namespace bsim::trace
