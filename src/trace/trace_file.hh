/**
 * @file
 * Simple text trace format for capturing and replaying workloads.
 *
 * One instruction per line:
 *   C           compute
 *   L <hexaddr> load
 *   D <hexaddr> dependent (pointer-chase) load
 *   S <hexaddr> store
 * Lines starting with '#' are comments.
 */

#ifndef BURSTSIM_TRACE_TRACE_FILE_HH
#define BURSTSIM_TRACE_TRACE_FILE_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/instr.hh"

namespace bsim::trace
{

/** Write @p count instructions from @p src to @p os in trace format. */
std::uint64_t writeTrace(std::ostream &os, TraceSource &src,
                         std::uint64_t count);

/**
 * Parse a whole trace from @p is. Malformed input (unknown record
 * characters, missing or non-hex addresses, embedded NUL bytes) throws
 * SimError(ErrorCategory::Trace) with line/column context.
 */
std::vector<TraceInstr> readTrace(std::istream &is);

/** TraceSource replaying a pre-parsed instruction vector. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceInstr> instrs)
        : instrs_(std::move(instrs))
    {}

    bool
    next(TraceInstr &out) override
    {
        if (pos_ >= instrs_.size())
            return false;
        out = instrs_[pos_++];
        return true;
    }

    /** Restart from the beginning. */
    void rewind() { pos_ = 0; }

    /** Number of instructions held. */
    std::size_t size() const { return instrs_.size(); }

  private:
    std::vector<TraceInstr> instrs_;
    std::size_t pos_ = 0;
};

/**
 * Load a trace file from disk into a replayable source. Throws
 * SimError(ErrorCategory::Trace) when the file is unreadable, malformed,
 * or contains no instructions.
 */
std::unique_ptr<VectorTrace> loadTraceFile(const std::string &path);

} // namespace bsim::trace

#endif // BURSTSIM_TRACE_TRACE_FILE_HH
