/**
 * @file
 * Instruction-trace element and the trace source interface.
 *
 * Workloads drive the CPU model through a stream of abstract
 * instructions: computes (occupy the pipeline), loads and stores. A load
 * flagged depChain depends on the previous depChain load — the mechanism
 * by which pointer-chasing benchmarks (mcf, parser, ...) serialize their
 * misses and become latency- rather than bandwidth-bound.
 */

#ifndef BURSTSIM_TRACE_INSTR_HH
#define BURSTSIM_TRACE_INSTR_HH

#include <cstdint>

#include "common/types.hh"

namespace bsim::trace
{

/** One abstract instruction. */
struct TraceInstr
{
    enum class Op : std::uint8_t { Compute, Load, Store };

    Op op = Op::Compute;
    Addr addr = 0;        //!< byte address (loads/stores)
    bool depChain = false; //!< serialized behind the previous load of chain
    std::uint8_t chainId = 0; //!< which dependence chain (when depChain)
};

/** Pull-model instruction source. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next instruction; false when the trace is exhausted. */
    virtual bool next(TraceInstr &out) = 0;
};

} // namespace bsim::trace

#endif // BURSTSIM_TRACE_INSTR_HH
