/**
 * @file
 * Workload profiles modelling the 16 SPEC CPU2000 benchmarks the paper
 * evaluates (Figure 10): gzip, gcc, mcf, parser, perlbmk, gap, bzip2,
 * wupwise, swim, mgrid, applu, mesa, art, facerec, lucas, apsi.
 */

#ifndef BURSTSIM_TRACE_SPEC_PROFILES_HH
#define BURSTSIM_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "trace/trace_gen.hh"

namespace bsim::trace
{

/** All 16 modelled benchmarks, in the paper's figure order. */
const std::vector<WorkloadProfile> &specProfiles();

/** Profile by benchmark name; fatal() on unknown names. */
const WorkloadProfile &profileByName(const std::string &name);

/** Names of all modelled benchmarks, in figure order. */
std::vector<std::string> specProfileNames();

} // namespace bsim::trace

#endif // BURSTSIM_TRACE_SPEC_PROFILES_HH
