/**
 * @file
 * Workload profiles modelling the 16 SPEC CPU2000 benchmarks the paper
 * evaluates (Figure 10): gzip, gcc, mcf, parser, perlbmk, gap, bzip2,
 * wupwise, swim, mgrid, applu, mesa, art, facerec, lucas, apsi.
 */

#ifndef BURSTSIM_TRACE_SPEC_PROFILES_HH
#define BURSTSIM_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "trace/trace_gen.hh"

namespace bsim::trace
{

/** All 16 modelled benchmarks, in the paper's figure order. */
const std::vector<WorkloadProfile> &specProfiles();

/**
 * Synthetic microbenchmarks outside the paper's figure set (so figure
 * sweeps stay 16-wide): currently `pchase`, a single serialized pointer
 * chase over a cache-hostile footprint — the canonical MLP=1 workload
 * used to benchmark the cycle-skipping engine.
 */
const std::vector<WorkloadProfile> &microProfiles();

/** Profile by name (SPEC set or microbenchmark); throws
 *  SimError(ErrorCategory::Config) on unknown names. */
const WorkloadProfile &profileByName(const std::string &name);

/** Names of all modelled benchmarks, in figure order. */
std::vector<std::string> specProfileNames();

/** Names of the synthetic microbenchmarks. */
std::vector<std::string> microProfileNames();

} // namespace bsim::trace

#endif // BURSTSIM_TRACE_SPEC_PROFILES_HH
