#include "trace/spec_profiles.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::trace
{

namespace
{

constexpr std::uint64_t MB = 1ULL << 20;

/**
 * Build the 16 profiles. Parameters are chosen from the benchmarks'
 * published memory characterizations (working-set size, read/write mix,
 * spatial regularity, pointer intensity), not fitted to the paper's
 * numbers; the goal is that each benchmark stresses the schedulers the
 * way its real counterpart does:
 *
 *  - pointer-chasing, latency-bound codes (mcf, parser, perlbmk, and the
 *    graph phase of facerec) have low MLP — read preemption is what
 *    helps them, as the paper observes in Section 5.3;
 *  - streaming FP codes with heavy writeback traffic (swim, lucas, gcc's
 *    spill-heavy phases, applu) pressure the write queue — write
 *    piggybacking is what helps them;
 *  - the rest sit in between.
 */
std::vector<WorkloadProfile>
buildProfiles()
{
    std::vector<WorkloadProfile> v;
    auto add = [&](const char *name, double mem, double wr, double hot,
                   double seq, double chase, std::uint32_t streams,
                   std::uint64_t stride, std::uint64_t fp_mb,
                   double store_bias, std::uint32_t wstreams,
                   std::uint32_t cluster, std::uint32_t chains) {
        WorkloadProfile p;
        p.name = name;
        p.memFraction = mem;
        p.writeFraction = wr;
        p.hotFraction = hot;
        p.seqFraction = seq;
        p.chaseFraction = chase;
        p.numStreams = streams;
        p.streamStride = stride;
        p.footprintBytes = fp_mb * MB;
        p.storeStreamBias = store_bias;
        p.numWriteStreams = wstreams;
        p.clusterBlocks = cluster;
        p.numChains = chains;
        p.regionBase = Addr(v.size()) * 192 * MB;
        v.push_back(p);
    };

    // name       mem   wr    hot    seq   chase str stride fpMB bias ws cl
    // (hot controls intensity: misses/instr ~ mem*(1-hot); seq/chase are
    //  fractions of the miss-prone remainder)
    // gzip: compression; good temporal locality, modest streaming I/O.
    add("gzip",    0.24, 0.30, 0.890, 0.60, 0.05, 3,  64, 180, 0.60, 2, 2, 1);
    // gcc: large heterogeneous working set, register-spill/write-heavy
    // phases; the paper reports write piggybacking helping gcc by 14%.
    add("gcc",     0.26, 0.44, 0.860, 0.50, 0.15, 4,  64, 140, 0.80, 3, 3, 2);
    // mcf: min-cost-flow pointer chasing; the canonical latency-bound,
    // low-MLP benchmark; read preemption's best case.
    add("mcf",     0.32, 0.20, 0.800, 0.10, 0.60, 2,  64, 190, 0.30, 1, 1, 4);
    // parser: dictionary/lattice pointer chasing over a medium heap.
    add("parser",  0.24, 0.25, 0.840, 0.10, 0.55, 2,  64,  64, 0.40, 1, 1, 3);
    // perlbmk: interpreter; pointer-heavy with moderate store traffic.
    add("perlbmk", 0.22, 0.35, 0.860, 0.15, 0.45, 2,  64,  64, 0.40, 2, 1, 3);
    // gap: computational group theory; list/bag traversal mixed with
    // sequential workspace sweeps.
    add("gap",     0.24, 0.30, 0.860, 0.30, 0.35, 3,  64,  96, 0.50, 2, 2, 2);
    // bzip2: blockwise compression; streaming plus random table lookups.
    add("bzip2",   0.26, 0.32, 0.880, 0.55, 0.00, 3,  64, 185, 0.60, 2, 3, 1);
    // wupwise: lattice QCD BLAS-like kernels; regular FP streams.
    add("wupwise", 0.22, 0.30, 0.920, 0.65, 0.05, 5,  64, 176, 0.75, 2, 4, 2);
    // swim: shallow-water stencils over large arrays; the paper's
    // running example of write-queue pressure (Figures 8 and 11).
    add("swim",    0.35, 0.48, 0.900, 0.74, 0.06, 6,  64, 192, 0.95, 3, 8, 2);
    // mgrid: multigrid solver; many concurrent read streams, few writes.
    add("mgrid",   0.30, 0.20, 0.920, 0.75, 0.05, 9,  64,  56, 0.80, 2, 6, 2);
    // applu: SSOR PDE solver; streaming with solid store traffic.
    add("applu",   0.28, 0.36, 0.910, 0.69, 0.06, 5,  64, 180, 0.85, 2, 6, 2);
    // mesa: software rasterizer; frame/z-buffer stores, decent locality.
    add("mesa",    0.20, 0.38, 0.880, 0.50, 0.10, 3,  64,  64, 0.60, 2, 2, 2);
    // art: adaptive-resonance image matcher; small arrays streamed
    // repeatedly, cache hostile, read dominated.
    add("art",     0.38, 0.15, 0.890, 0.65, 0.05, 4,  64,  16, 0.50, 1, 4, 2);
    // facerec: FFT-style strided reads plus a graph-match phase; the
    // paper groups it with the read-preemption winners.
    add("facerec", 0.28, 0.15, 0.900, 0.60, 0.25, 4, 256,  64, 0.40, 1, 3, 2);
    // lucas: Lucas-Lehmer FFT; large-stride passes with write-heavy
    // phases; the paper reports write piggybacking helping by 18%.
    add("lucas",   0.30, 0.50, 0.910, 0.64, 0.06, 4, 128, 128, 0.92, 3, 8, 2);
    // apsi: mesoscale weather; many medium streams, balanced mix.
    add("apsi",    0.26, 0.32, 0.920, 0.70, 0.05, 8,  64,  96, 0.75, 2, 4, 2);
    return v;
}

/**
 * Microbenchmarks kept out of the figure sweeps. pchase: one dependent
 * pointer chase (numChains = 1) over a 190 MB footprint with no hot set
 * and no stores — every load is a serialized main-memory miss, so the
 * machine alternates long fully-dead stall spans with a handful of real
 * cycles per miss: the cycle-skipping engine's best case, and the
 * configuration bench_engine_compare reports as "low-MLP".
 */
std::vector<WorkloadProfile>
buildMicroProfiles()
{
    std::vector<WorkloadProfile> v;
    WorkloadProfile p;
    p.name = "pchase";
    p.memFraction = 0.5;
    p.writeFraction = 0.0;
    p.hotFraction = 0.0;
    p.seqFraction = 0.0;
    p.chaseFraction = 1.0;
    p.numChains = 1;
    p.numStreams = 1;
    p.streamStride = 64;
    p.footprintBytes = 190 * MB;
    p.storeStreamBias = 0.0;
    p.numWriteStreams = 1;
    p.clusterBlocks = 1;
    p.regionBase = Addr(16) * 192 * MB; // past the SPEC regions
    v.push_back(p);
    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
specProfiles()
{
    static const std::vector<WorkloadProfile> profiles = buildProfiles();
    return profiles;
}

const std::vector<WorkloadProfile> &
microProfiles()
{
    static const std::vector<WorkloadProfile> profiles =
        buildMicroProfiles();
    return profiles;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const auto &p : specProfiles())
        if (p.name == name)
            return p;
    for (const auto &p : microProfiles())
        if (p.name == name)
            return p;
    throwSimError(ErrorCategory::Config, "unknown workload profile '%s'", name.c_str());
}

std::vector<std::string>
specProfileNames()
{
    std::vector<std::string> names;
    for (const auto &p : specProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<std::string>
microProfileNames()
{
    std::vector<std::string> names;
    for (const auto &p : microProfiles())
        names.push_back(p.name);
    return names;
}

} // namespace bsim::trace
