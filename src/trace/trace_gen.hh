/**
 * @file
 * Deterministic synthetic workload generation.
 *
 * The paper drives its evaluation with SPEC CPU2000 reference runs (2
 * billion instructions, Alpha binaries) on M5. Those traces are not
 * redistributable, so each benchmark is modelled by a seeded generator
 * whose address stream reproduces the benchmark's qualitative memory
 * behaviour along the axes that matter to access reordering mechanisms:
 *
 *  - memory intensity (memFraction),
 *  - read/write mix (writeFraction),
 *  - cache-resident fraction (hot set; produces no memory traffic),
 *  - spatial locality (sequential streams -> row hits, bank parallelism),
 *  - irregularity (uniform random accesses -> row conflicts),
 *  - memory-level parallelism (depChain pointer chases serialize misses).
 *
 * Every run is bit-reproducible for a given (profile, seed).
 */

#ifndef BURSTSIM_TRACE_TRACE_GEN_HH
#define BURSTSIM_TRACE_TRACE_GEN_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/instr.hh"

namespace bsim::trace
{

/** Knobs describing one benchmark's memory behaviour. */
struct WorkloadProfile
{
    std::string name = "custom";

    double memFraction = 0.2;   //!< loads+stores per instruction
    double writeFraction = 0.3; //!< stores among memory ops

    /** Fraction of memory ops hitting the cache-resident hot set (this
     *  directly controls main-memory intensity: misses per instruction
     *  is approximately memFraction * (1 - hotFraction)). */
    double hotFraction = 0.9;
    // Split of the *miss-prone* (non-hot) ops; the remainder
    // (1 - seq - chase) is uniform random over the footprint. chase
    // applies to loads only (stores fall to random).
    double seqFraction = 0.4;
    double chaseFraction = 0.0;
    /** Independent pointer-chase chains; memory-level parallelism of the
     *  chase component (mcf sustains a few concurrent chains). */
    std::uint32_t numChains = 1;

    std::uint32_t numStreams = 4;        //!< concurrent read streams
    std::uint64_t streamStride = 64;     //!< bytes between stream accesses
    /** Stream accesses come in runs of this many consecutive blocks
     *  (stencil/blocked-loop behaviour). Clustering is what creates
     *  multi-access bursts in flight and bursty writeback traffic. */
    std::uint32_t clusterBlocks = 1;
    std::uint64_t footprintBytes = 256ULL << 20;
    std::uint64_t hotBytes = 1ULL << 20; //!< cache-resident set

    /** Probability that a store follows a dedicated write stream
     *  (streaming output arrays) instead of its category address. */
    double storeStreamBias = 0.5;
    std::uint32_t numWriteStreams = 2;

    /** Base of this workload's address space (keeps workloads apart). */
    Addr regionBase = 0;
};

/** Synthetic instruction-trace generator. */
class SyntheticGenerator : public TraceSource
{
  public:
    /**
     * Generate @p num_instructions instructions for @p profile with
     * deterministic randomness from @p seed.
     */
    SyntheticGenerator(const WorkloadProfile &profile,
                       std::uint64_t num_instructions, std::uint64_t seed);

    bool next(TraceInstr &out) override;

    /** Instructions produced so far. */
    std::uint64_t produced() const { return produced_; }

    /** The profile driving this generator. */
    const WorkloadProfile &profile() const { return prof_; }

    /** Base address of read stream @p i (cache warmup / tests). */
    Addr readStreamBase(std::uint32_t i) const { return streamBase_[i]; }

    /** Base address of write stream @p i (cache warmup / tests). */
    Addr writeStreamBase(std::uint32_t i) const { return writeBase_[i]; }

    /** Bytes covered by each write stream region. */
    std::uint64_t writeRegionBytes() const { return writeRegion_; }

  private:
    Addr hotAddr();
    Addr seqAddr();
    Addr chaseAddr();
    Addr randAddr();
    Addr writeStreamAddr();

    WorkloadProfile prof_;
    std::uint64_t limit_;
    std::uint64_t produced_ = 0;
    Rng rng_;

    std::vector<Addr> streamCursor_;
    std::vector<Addr> streamBase_;
    std::uint64_t streamRegion_ = 0;
    std::uint32_t nextStream_ = 0;

    std::vector<Addr> writeCursor_;
    std::vector<Addr> writeBase_;
    std::uint64_t writeRegion_ = 0;
    std::uint32_t nextWriteStream_ = 0;

    Addr chaseBase_ = 0;
    std::uint64_t chaseBlocks_ = 0;
    std::uint32_t nextChain_ = 0;

    std::deque<TraceInstr> pending_; //!< queued cluster instructions
};

} // namespace bsim::trace

#endif // BURSTSIM_TRACE_TRACE_GEN_HH
