/**
 * @file
 * Simplified out-of-order core model (Table 3 baseline: 4 GHz, 8-way,
 * 196-entry ROB, 32-entry LSQ).
 *
 * The model captures exactly what the paper's mechanisms exercise:
 *  - multiple outstanding misses (non-blocking caches + ROB window),
 *  - read latency converting into pipeline stalls via in-order retire,
 *  - dependent (pointer-chase) loads limiting memory-level parallelism,
 *  - stores retiring without waiting for memory, so main-memory write
 *    traffic only throttles the CPU through back-pressure (a full
 *    write queue blocking admission blocks fills too).
 */

#ifndef BURSTSIM_CPU_CORE_HH
#define BURSTSIM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "cpu/cache_hierarchy.hh"
#include "trace/instr.hh"

namespace bsim::cpu
{

/** Core parameters (Table 3 defaults). */
struct CoreConfig
{
    std::uint32_t issueWidth = 8;
    std::uint32_t robSize = 196;
    std::uint32_t lsqSize = 32;
    std::uint32_t computeLatency = 1; //!< CPU cycles
};

/** The out-of-order core. */
class Core
{
  public:
    /** Build a core pulling from @p trace and accessing @p mem. */
    Core(const CoreConfig &cfg, CacheHierarchy &mem,
         trace::TraceSource &trace);

    /** Advance one CPU cycle (@p now is the CPU cycle number). */
    void cpuCycle(std::uint64_t now);

    /** A memory fill for @p block_addr returned at CPU cycle @p now. */
    void onMemResponse(Addr block_addr, std::uint64_t now);

    /** True when the trace is exhausted and the ROB has drained. */
    bool done() const { return traceEnded_ && rob_.empty(); }

    /** Instructions retired so far. */
    std::uint64_t retired() const { return retired_; }

    /** Loads that went to the cache hierarchy. */
    std::uint64_t loads() const { return loads_; }

    /** Stores performed at retirement. */
    std::uint64_t stores() const { return stores_; }

    /** Cycles retirement was blocked by an unready ROB head. */
    std::uint64_t headStallCycles() const { return headStalls_; }

    /** Cycles retirement was blocked by memory back-pressure (stores). */
    std::uint64_t storeStallCycles() const { return storeStalls_; }

    /** Current ROB occupancy. */
    std::size_t robOccupancy() const { return rob_.size(); }

    /**
     * True when cpuCycle(@p now) would be a pure head-stall: retirement
     * blocked on an unready head, no pending load able to start, and
     * issue blocked without pulling from the trace. Such a cycle's only
     * effect is one headStalls_ increment, so the cycle-skipping engine
     * may batch it. Cache lookups mutate hit/miss counters and LRU even
     * on a Retry, so any cycle that might call into the hierarchy is
     * not quiescent.
     */
    bool quiescentAt(std::uint64_t now) const;

    /**
     * Next CPU cycle at which this core leaves quiescence on its own:
     * the head's readyAt or the first producer wakeup of a blocked
     * pending load. kTickMax when only a memory response can wake it.
     * Only meaningful while quiescentAt(now) holds.
     */
    std::uint64_t nextLocalEventCpu(std::uint64_t now) const;

    /** Bulk-apply @p n skipped quiescent cycles (all head stalls). */
    void skipStallCycles(std::uint64_t n) { headStalls_ += n; }

  private:
    struct RobEntry
    {
        trace::TraceInstr::Op op;
        Addr addr = 0;
        std::uint64_t seq = 0;
        std::uint64_t readyAt = kTickMax; //!< CPU cycle result is ready
        std::uint64_t producerSeq = kTickMax; //!< dep-chain producer
        bool started = false; //!< load sent to the hierarchy
        bool isChainHead = false; //!< member of a dependence chain
    };

    RobEntry *entryOf(std::uint64_t seq);
    const RobEntry *entryOf(std::uint64_t seq) const;
    bool producerReady(const RobEntry &e, std::uint64_t now) const;
    /** Try to send a load to the hierarchy; false on resource retry. */
    bool startLoad(RobEntry &e, std::uint64_t now);
    void retire(std::uint64_t now);
    void startPendingLoads(std::uint64_t now);
    void issue(std::uint64_t now);

    CoreConfig cfg_;
    CacheHierarchy &mem_;
    trace::TraceSource &trace_;

    std::deque<RobEntry> rob_;
    std::uint64_t frontSeq_ = 0; //!< seq of rob_.front()
    std::uint64_t nextSeq_ = 0;
    std::deque<std::uint64_t> pendingLoads_; //!< waiting to start
    std::vector<std::uint64_t> lastChainSeq_; //!< per chain id
    std::size_t memOpsInRob_ = 0;

    trace::TraceInstr lookahead_;
    bool lookaheadValid_ = false;
    bool traceEnded_ = false;

    std::uint64_t retired_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t headStalls_ = 0;
    std::uint64_t storeStalls_ = 0;
};

} // namespace bsim::cpu

#endif // BURSTSIM_CPU_CORE_HH
