#include "cpu/core.hh"

#include "common/log.hh"

namespace bsim::cpu
{

Core::Core(const CoreConfig &cfg, CacheHierarchy &mem,
           trace::TraceSource &trace)
    : cfg_(cfg), mem_(mem), trace_(trace)
{
}

Core::RobEntry *
Core::entryOf(std::uint64_t seq)
{
    if (seq < frontSeq_ || seq >= frontSeq_ + rob_.size())
        return nullptr;
    return &rob_[seq - frontSeq_];
}

const Core::RobEntry *
Core::entryOf(std::uint64_t seq) const
{
    if (seq < frontSeq_ || seq >= frontSeq_ + rob_.size())
        return nullptr;
    return &rob_[seq - frontSeq_];
}

bool
Core::producerReady(const RobEntry &e, std::uint64_t now) const
{
    if (e.producerSeq == kTickMax)
        return true;
    const RobEntry *p = entryOf(e.producerSeq);
    if (!p)
        return true; // producer already retired, hence long since ready
    return p->readyAt <= now;
}

bool
Core::startLoad(RobEntry &e, std::uint64_t now)
{
    // Dependence-chain loads gate further chain progress: mark their
    // fills critical so criticality-aware schedulers (Section 7) can
    // prioritize them inside bursts.
    const bool critical = e.producerSeq != kTickMax || e.isChainHead;
    const HierarchyResult r = mem_.access(e.addr, false, e.seq, critical);
    switch (r.outcome) {
      case CacheOutcome::L1Hit:
      case CacheOutcome::L2Hit:
        e.readyAt = now + r.latencyCpu;
        e.started = true;
        return true;
      case CacheOutcome::Miss:
        e.started = true; // readyAt set by onMemResponse
        return true;
      case CacheOutcome::Retry:
        return false;
    }
    return false;
}

void
Core::retire(std::uint64_t now)
{
    for (std::uint32_t i = 0; i < cfg_.issueWidth; ++i) {
        if (rob_.empty())
            return;
        RobEntry &head = rob_.front();
        if (head.readyAt > now) {
            headStalls_ += 1;
            return;
        }
        if (head.op == trace::TraceInstr::Op::Store) {
            // Stores perform at retirement (store-buffer semantics). A
            // congested memory path stalls retirement here: this is how
            // write-queue saturation reaches the pipeline.
            const HierarchyResult r = mem_.access(head.addr, true);
            if (r.outcome == CacheOutcome::Retry) {
                storeStalls_ += 1;
                return;
            }
            stores_ += 1;
        }
        if (head.op == trace::TraceInstr::Op::Load ||
            head.op == trace::TraceInstr::Op::Store) {
            memOpsInRob_ -= 1;
        }
        rob_.pop_front();
        frontSeq_ += 1;
        retired_ += 1;
    }
}

void
Core::startPendingLoads(std::uint64_t now)
{
    for (std::size_t n = pendingLoads_.size(); n > 0; --n) {
        const std::uint64_t seq = pendingLoads_.front();
        pendingLoads_.pop_front();
        RobEntry *e = entryOf(seq);
        if (!e || e->started)
            continue;
        if (!producerReady(*e, now) || !startLoad(*e, now))
            pendingLoads_.push_back(seq); // retry next cycle
    }
}

void
Core::issue(std::uint64_t now)
{
    for (std::uint32_t i = 0; i < cfg_.issueWidth; ++i) {
        if (rob_.size() >= cfg_.robSize)
            return;
        if (!lookaheadValid_) {
            if (traceEnded_ || !trace_.next(lookahead_)) {
                traceEnded_ = true;
                return;
            }
            lookaheadValid_ = true;
        }
        const trace::TraceInstr &in = lookahead_;
        const bool is_mem = in.op != trace::TraceInstr::Op::Compute;
        if (is_mem && memOpsInRob_ >= cfg_.lsqSize)
            return; // LSQ full

        RobEntry e;
        e.op = in.op;
        e.addr = in.addr;
        e.seq = nextSeq_++;
        switch (in.op) {
          case trace::TraceInstr::Op::Compute:
            e.readyAt = now + cfg_.computeLatency;
            break;
          case trace::TraceInstr::Op::Store:
            e.readyAt = now + cfg_.computeLatency;
            memOpsInRob_ += 1;
            break;
          case trace::TraceInstr::Op::Load:
            memOpsInRob_ += 1;
            loads_ += 1;
            if (in.depChain) {
                e.isChainHead = true;
                if (lastChainSeq_.size() <= in.chainId)
                    lastChainSeq_.resize(in.chainId + 1, kTickMax);
                const std::uint64_t prev = lastChainSeq_[in.chainId];
                if (prev != kTickMax && entryOf(prev))
                    e.producerSeq = prev;
                lastChainSeq_[in.chainId] = e.seq;
            }
            break;
        }
        rob_.push_back(e);
        if (in.op == trace::TraceInstr::Op::Load) {
            RobEntry &placed = rob_.back();
            if (placed.producerSeq != kTickMax || !startLoad(placed, now))
                pendingLoads_.push_back(placed.seq);
        }
        lookaheadValid_ = false;
    }
}

void
Core::cpuCycle(std::uint64_t now)
{
    retire(now);
    startPendingLoads(now);
    issue(now);
}

bool
Core::quiescentAt(std::uint64_t now) const
{
    // retire(): must stop at an unready head without touching the
    // hierarchy (a ready store head retries mem_.access every cycle).
    if (rob_.empty() || rob_.front().readyAt <= now)
        return false;
    // startPendingLoads(): no live pending load may have a ready
    // producer — startLoad() would do a cache lookup, which mutates
    // hit/miss counters and LRU order even when it returns Retry.
    // Stale entries (retired producer window or already started) are
    // no-ops; they are dropped lazily at the next real cycle, which
    // preserves the live entries' relative order.
    for (std::uint64_t seq : pendingLoads_) {
        const RobEntry *e = entryOf(seq);
        if (!e || e->started)
            continue;
        if (producerReady(*e, now))
            return false;
    }
    // issue(): must be blocked without consuming the trace — pulling
    // the next instruction advances the workload RNG.
    if (rob_.size() >= cfg_.robSize)
        return true;
    if (lookaheadValid_)
        return lookahead_.op != trace::TraceInstr::Op::Compute &&
               memOpsInRob_ >= cfg_.lsqSize;
    return traceEnded_;
}

std::uint64_t
Core::nextLocalEventCpu(std::uint64_t now) const
{
    (void)now;
    // Quiescence ends when the head becomes ready or a blocked pending
    // load's producer does; both are readyAt timestamps already fixed.
    // Issue-side blocks (full ROB / LSQ) clear only through retirement,
    // which the head's readyAt already bounds. kTickMax entries wait on
    // a memory response, which the System tracks separately.
    std::uint64_t e = rob_.front().readyAt;
    for (std::uint64_t seq : pendingLoads_) {
        const RobEntry *pe = entryOf(seq);
        if (!pe || pe->started || pe->producerSeq == kTickMax)
            continue;
        const RobEntry *p = entryOf(pe->producerSeq);
        if (p && p->readyAt < e)
            e = p->readyAt;
    }
    return e;
}

void
Core::onMemResponse(Addr block_addr, std::uint64_t now)
{
    for (std::uint64_t seq : mem_.onMemResponse(block_addr)) {
        RobEntry *e = entryOf(seq);
        if (!e)
            continue;
        if (e->readyAt == kTickMax)
            e->readyAt = now;
    }
}

} // namespace bsim::cpu
