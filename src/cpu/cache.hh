/**
 * @file
 * Set-associative writeback cache with true-LRU replacement.
 *
 * The cache is a state container: lookups and fills update tag state
 * immediately; timing is applied by the CacheHierarchy/Core. Dirty
 * victims are returned to the caller, which routes them down the
 * hierarchy (eventually becoming main-memory writes — the only write
 * traffic the controller sees, as in the paper's writeback baseline).
 */

#ifndef BURSTSIM_CPU_CACHE_HH
#define BURSTSIM_CPU_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace bsim::cpu
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 128 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t blockBytes = 64;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (std::uint64_t(assoc) * blockBytes);
    }
};

/** Result of inserting a block. */
struct Eviction
{
    bool valid = false; //!< a victim was evicted
    bool dirty = false; //!< ... and it was dirty
    Addr addr = 0;      //!< victim block address
};

/** One level of writeback cache. */
class Cache
{
  public:
    /** Build with @p cfg; dimensions must be powers of two. */
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on a hit updates LRU and (for @p is_write) the
     * dirty bit. Returns true on hit.
     */
    bool access(Addr addr, bool is_write);

    /** Tag-only probe; no LRU update. */
    bool contains(Addr addr) const;

    /**
     * Insert the block of @p addr (marks dirty when @p dirty), evicting
     * the LRU way of its set when full.
     */
    Eviction insert(Addr addr, bool dirty);

    /** Invalidate @p addr if present; returns the eviction record. */
    Eviction invalidate(Addr addr);

    /** Hits observed by access(). */
    std::uint64_t hits() const { return hits_; }

    /** Misses observed by access(). */
    std::uint64_t misses() const { return misses_; }

    /** Dirty evictions produced by insert(). */
    std::uint64_t writebacks() const { return writebacks_; }

    /** Geometry. */
    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr rebuild(std::uint64_t set, Addr tag) const;

    CacheConfig cfg_;
    std::uint64_t setMask_;
    std::uint32_t offsetBits_;
    std::uint32_t setBits_;
    std::vector<Line> lines_; //!< sets x assoc, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace bsim::cpu

#endif // BURSTSIM_CPU_CACHE_HH
