#include "cpu/cache_hierarchy.hh"

namespace bsim::cpu
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg, MemPort &port)
    : cfg_(cfg), port_(port), l1d_(cfg.l1d), l2_(cfg.l2)
{
}

void
CacheHierarchy::fillL1(Addr block, bool dirty)
{
    const Eviction ev = l1d_.insert(block, dirty);
    if (ev.valid && ev.dirty) {
        // Dirty L1 victim folds into L2 (writeback between cache levels,
        // no main-memory traffic); its own L2 victim may spill to memory.
        const Eviction l2ev = l2_.insert(ev.addr, true);
        if (l2ev.valid && l2ev.dirty) {
            port_.sendWrite(l2ev.addr);
            memWrites_ += 1;
        }
    }
}

HierarchyResult
CacheHierarchy::access(Addr addr, bool is_write, std::uint64_t waiter,
                       bool critical)
{
    const Addr block = blockBase(addr);

    // An in-flight fill for this block: merge and wait for its response.
    if (auto it = mshr_.find(block); it != mshr_.end()) {
        if (waiter != kNoWaiter)
            it->second.push_back(waiter);
        mshrMerges_ += 1;
        // A store merging into a fill dirties the L1 line (present in tag
        // state already or soon; mark on the L1 copy if present).
        if (is_write && l1d_.contains(block))
            l1d_.access(block, true);
        return {CacheOutcome::Miss, 0};
    }

    if (l1d_.access(block, is_write))
        return {CacheOutcome::L1Hit, cfg_.l1LatencyCpu};

    if (l2_.access(block, false)) {
        // L2 hit: fill L1 (write-allocate for stores).
        fillL1(block, is_write);
        return {CacheOutcome::L2Hit, cfg_.l2LatencyCpu};
    }

    // L2 miss: a main-memory read (fill) is required. The fill and any
    // dirty evictions it causes need queue slots; worst case one read
    // plus one L2 writeback.
    if (mshr_.size() >= cfg_.mshrs || !port_.canSend(2))
        return {CacheOutcome::Retry, 0};

    auto &waiters = mshr_[block];
    if (waiter != kNoWaiter)
        waiters.push_back(waiter);

    port_.sendRead(block, critical);
    memReads_ += 1;

    // Update tag state now; the MSHR keeps dependents honest about when
    // data actually arrives.
    const Eviction l2ev = l2_.insert(block, false);
    if (l2ev.valid && l2ev.dirty) {
        port_.sendWrite(l2ev.addr);
        memWrites_ += 1;
    }
    fillL1(block, is_write);
    return {CacheOutcome::Miss, 0};
}

void
CacheHierarchy::prefill(Addr block, bool dirty, bool also_l1)
{
    block = blockBase(block);
    (void)l2_.insert(block, dirty); // warmup evictions carry no traffic
    if (also_l1)
        (void)l1d_.insert(block, dirty);
}

std::vector<std::uint64_t>
CacheHierarchy::onMemResponse(Addr block_addr)
{
    auto it = mshr_.find(block_addr);
    if (it == mshr_.end())
        return {};
    std::vector<std::uint64_t> waiters = std::move(it->second);
    mshr_.erase(it);
    return waiters;
}

} // namespace bsim::cpu
