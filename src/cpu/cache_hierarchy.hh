/**
 * @file
 * Two-level writeback cache hierarchy with MSHR merging.
 *
 * Mirrors the baseline machine of Table 3: 128 KB 2-way L1 D-cache and a
 * 2 MB 16-way L2, 64 B lines. Instruction fetch is assumed to hit (the
 * selected benchmarks are data bound). Main-memory reads are L2 load/fill
 * misses; main-memory writes are dirty L2 evictions — so the write
 * traffic the controller sees is bursty writeback traffic, as in the
 * paper. Tag state updates immediately; outstanding fills are tracked in
 * MSHRs so that accesses to in-flight blocks merge and wait.
 */

#ifndef BURSTSIM_CPU_CACHE_HIERARCHY_HH
#define BURSTSIM_CPU_CACHE_HIERARCHY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "cpu/cache.hh"

namespace bsim::cpu
{

/** Downstream port the hierarchy uses to reach main memory. */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    /** Can @p n more requests be queued right now? */
    virtual bool canSend(unsigned n) const = 0;
    /** Queue a block read (cache fill); @p critical marks fills a
     *  serialized dependence chain is waiting on (Section 7). */
    virtual void sendRead(Addr block_addr, bool critical = false) = 0;
    /** Queue a block write (dirty writeback). */
    virtual void sendWrite(Addr block_addr) = 0;
};

/** Configuration of the hierarchy (Table 3 defaults). */
struct HierarchyConfig
{
    CacheConfig l1d{128 * 1024, 2, 64};
    CacheConfig l2{2 * 1024 * 1024, 16, 64};
    std::uint32_t l1LatencyCpu = 3;  //!< CPU cycles, load-to-use
    std::uint32_t l2LatencyCpu = 15; //!< CPU cycles
    std::uint32_t mshrs = 32;        //!< outstanding fill limit
};

/** Where an access was satisfied. */
enum class CacheOutcome : std::uint8_t
{
    L1Hit,
    L2Hit,
    Miss,   //!< memory read started (or merged into an in-flight fill)
    Retry,  //!< resources exhausted (MSHRs or memory queue); try again
};

/** Result of a hierarchy access. */
struct HierarchyResult
{
    CacheOutcome outcome = CacheOutcome::L1Hit;
    std::uint32_t latencyCpu = 0; //!< valid for L1Hit / L2Hit
};

/** Sentinel waiter id for accesses nobody waits on (stores). */
constexpr std::uint64_t kNoWaiter = ~std::uint64_t{0};

/** The L1D + L2 stack. */
class CacheHierarchy
{
  public:
    /** Build with @p cfg, sending misses/writebacks to @p port. */
    CacheHierarchy(const HierarchyConfig &cfg, MemPort &port);

    /**
     * Perform a load (@p is_write false) or store (@p is_write true) to
     * the block of @p addr. When the access must wait for a memory fill
     * and @p waiter is not kNoWaiter, the waiter id is recorded and
     * handed back by onMemResponse().
     */
    HierarchyResult access(Addr addr, bool is_write,
                           std::uint64_t waiter = kNoWaiter,
                           bool critical = false);

    /**
     * A memory read for @p block_addr completed: releases the MSHR and
     * returns the ids waiting on it.
     */
    std::vector<std::uint64_t> onMemResponse(Addr block_addr);

    /**
     * Steady-state warmup: install @p block in L2 (and in L1 when
     * @p also_l1), optionally dirty, without generating any memory
     * traffic or statistics. Used to start runs from a realistic warmed
     * state instead of a cold, writeback-free one.
     */
    void prefill(Addr block, bool dirty, bool also_l1 = false);

    /** Outstanding fill count. */
    std::size_t mshrsInUse() const { return mshr_.size(); }

    /** L1 data cache (stats access). */
    const Cache &l1d() const { return l1d_; }

    /** L2 cache (stats access). */
    const Cache &l2() const { return l2_; }

    /** Memory reads issued (fills). */
    std::uint64_t memReads() const { return memReads_; }

    /** Memory writes issued (dirty L2 writebacks). */
    std::uint64_t memWrites() const { return memWrites_; }

    /** Accesses merged into an in-flight fill. */
    std::uint64_t mshrMerges() const { return mshrMerges_; }

  private:
    Addr blockBase(Addr a) const
    {
        return a & ~Addr(cfg_.l1d.blockBytes - 1);
    }

    /** Fill @p block into L1 (and L2 on a memory fill), routing dirty
     *  victims downwards; may emit memory writes. */
    void fillL1(Addr block, bool dirty);

    HierarchyConfig cfg_;
    MemPort &port_;
    Cache l1d_;
    Cache l2_;
    std::unordered_map<Addr, std::vector<std::uint64_t>> mshr_;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
    std::uint64_t mshrMerges_ = 0;
};

} // namespace bsim::cpu

#endif // BURSTSIM_CPU_CACHE_HIERARCHY_HH
