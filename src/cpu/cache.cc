#include "cpu/cache.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace bsim::cpu
{

namespace
{
std::uint32_t
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        throwSimError(ErrorCategory::Config, "cache: %s (%llu) must be a power of two", what,
              static_cast<unsigned long long>(v));
    std::uint32_t b = 0;
    while ((std::uint64_t(1) << b) < v)
        ++b;
    return b;
}
} // namespace

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg),
      setMask_(cfg.numSets() - 1),
      offsetBits_(log2Exact(cfg.blockBytes, "blockBytes")),
      setBits_(log2Exact(cfg.numSets(), "numSets")),
      lines_(cfg.numSets() * cfg.assoc)
{
}

std::uint64_t
Cache::setOf(Addr addr) const
{
    return (addr >> offsetBits_) & setMask_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> (offsetBits_ + setBits_);
}

Addr
Cache::rebuild(std::uint64_t set, Addr tag) const
{
    return (tag << (offsetBits_ + setBits_)) | (set << offsetBits_);
}

bool
Cache::access(Addr addr, bool is_write)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.assoc];
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock_;
            if (is_write)
                l.dirty = true;
            hits_ += 1;
            return true;
        }
    }
    misses_ += 1;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[set * cfg_.assoc];
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

Eviction
Cache::insert(Addr addr, bool dirty)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.assoc];

    // Already present (e.g. racing fill): just merge the dirty bit.
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock_;
            l.dirty = l.dirty || dirty;
            return {};
        }
    }

    // Prefer an invalid way, else evict true-LRU.
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }

    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.addr = rebuild(set, victim->tag);
        if (victim->dirty)
            writebacks_ += 1;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    return ev;
}

Eviction
Cache::invalidate(Addr addr)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.assoc];
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            Eviction ev;
            ev.valid = true;
            ev.dirty = l.dirty;
            ev.addr = rebuild(set, tag);
            l.valid = false;
            l.dirty = false;
            return ev;
        }
    }
    return {};
}

} // namespace bsim::cpu
