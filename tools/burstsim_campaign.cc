/**
 * @file
 * burstsim_campaign — crash-isolated sweep campaigns (src/campaign/).
 *
 * A campaign is a --sweep whose points run in forked worker processes
 * (one per shard), supervised for liveness and restarted/quarantined on
 * crashes, so one segfaulting point cannot take down the rest of the
 * sweep. All state lives in the campaign directory; rerunning the same
 * command resumes from the shard journals.
 *
 * Subcommands:
 *   run     execute the campaign (resume-safe; rerun after any death)
 *   merge   fold on-disk shard state into the final table/CSV, without
 *           executing anything
 *   plan    print the shard layout and per-point config keys
 *   verify  integrity-scan sweep journals (v3 CRC framing); --repair
 *           truncates a damaged file to its longest valid prefix
 *
 * Examples:
 *   burstsim_campaign run --dir camp --workload swim,mcf --shards 4
 *   burstsim_campaign merge --dir camp --workload swim,mcf --shards 4 \
 *       --out sweep.csv
 *   burstsim_campaign verify camp/shard-*.journal
 *
 * Exit codes: 0 complete/clean; 3 degraded (failed, quarantined or
 * given-up points; journal issues in verify); 130 interrupted; 2 usage;
 * 1 error.
 */

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/supervisor.hh"
#include "common/args.hh"
#include "common/error.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"

using namespace bsim;

namespace
{

/** SIGINT: drain workers, keep journals, exit 130. */
std::atomic<bool> g_interrupted{false};

extern "C" void
onSigint(int)
{
    g_interrupted.store(true);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/**
 * The point-axis options, kept identical (names, defaults, semantics)
 * to the burstsim CLI so `burstsim_campaign run/merge` builds exactly
 * the point list of `burstsim --sweep` — the byte-identical-CSV
 * guarantee depends on it.
 */
void
addPointOptions(ArgParser &args)
{
    args.addOption("workload", "swim",
                   "comma-separated benchmark profiles");
    args.addOption("instructions", "0",
                   "instructions to simulate (0 = default)");
    args.addOption("seed", "20070212", "workload RNG seed");
    args.addOption("threshold", "52", "Burst_TH write-queue threshold");
    args.addOption("page-policy", "open", "open | cpa | predictive");
    args.addOption("map", "page", "page | block | bitrev | perm");
    args.addOption("device", "ddr2-800", "ddr2-800 | ddr-266");
    args.addOption("engine", "skip", "skip | step");
    args.addOption("watchdog-cycles", "50000",
                   "fail a run when no access retires for this many "
                   "busy memory cycles (0 = off)");
    args.addOption("deadline-sec", "0",
                   "fail a run exceeding this wall-clock budget "
                   "(0 = none)");
    args.addFlag("dynamic-threshold",
                 "extension: adapt the threshold to the read/write mix");
    args.addFlag("sort-bursts", "extension: largest burst first");
    args.addFlag("critical-first",
                 "extension: critical reads first inside bursts");
    args.addFlag("no-rank-aware",
                 "ablation: ignore rank locality in Table 2 priorities");
    args.addFlag("no-horizon-memo",
                 "debug: disable skip-engine horizon memos");
}

/** The campaign's point list: every workload under every mechanism,
 *  workload-major — the same deterministic slot layout as --sweep. */
std::vector<sim::ExperimentConfig>
pointsFrom(const ArgParser &args)
{
    sim::ExperimentConfig base;
    base.instructions = args.u64("instructions");
    base.seed = args.u64("seed");
    base.threshold = args.u64("threshold");
    if (args.str("page-policy") == "cpa")
        base.pagePolicy = dram::PagePolicy::ClosePageAuto;
    else if (args.str("page-policy") == "predictive")
        base.pagePolicy = dram::PagePolicy::Predictive;
    else if (args.str("page-policy") != "open")
        fatal("--page-policy must be 'open', 'cpa' or 'predictive'");
    const std::string &map = args.str("map");
    if (map == "block")
        base.addressMap = dram::AddressMapKind::BlockInterleave;
    else if (map == "bitrev")
        base.addressMap = dram::AddressMapKind::BitReversal;
    else if (map == "perm")
        base.addressMap = dram::AddressMapKind::PermutationInterleave;
    else if (map != "page")
        fatal("--map must be 'page', 'block', 'bitrev' or 'perm'");
    const std::string &dev = args.str("device");
    if (dev == "ddr-266")
        base.device = sim::DeviceGen::DDR_266;
    else if (dev != "ddr2-800")
        fatal("--device must be 'ddr2-800' or 'ddr-266'");
    const std::string &eng = args.str("engine");
    if (eng == "step")
        base.engine = sim::EngineKind::Step;
    else if (eng == "skip")
        base.engine = sim::EngineKind::Skip;
    else
        fatal("--engine must be 'step' or 'skip'");
    base.dynamicThreshold = args.flag("dynamic-threshold");
    base.sortBurstsBySize = args.flag("sort-bursts");
    base.criticalFirst = args.flag("critical-first");
    base.rankAware = !args.flag("no-rank-aware");
    base.horizonMemo = !args.flag("no-horizon-memo");
    base.watchdogCycles = args.u64("watchdog-cycles");
    const std::string &deadline = args.str("deadline-sec");
    if (!deadline.empty()) {
        char *end = nullptr;
        base.deadlineSec = std::strtod(deadline.c_str(), &end);
        if (end == deadline.c_str() || *end || base.deadlineSec < 0)
            fatal("--deadline-sec must be a non-negative number");
    }

    std::vector<sim::ExperimentConfig> points;
    for (const std::string &wl : splitCommas(args.str("workload"))) {
        for (ctrl::Mechanism m : ctrl::kAllMechanisms) {
            sim::ExperimentConfig cfg = base;
            cfg.workload = wl;
            cfg.mechanism = m;
            points.push_back(cfg);
        }
    }
    return points;
}

double
parseSeconds(const ArgParser &args, const char *name)
{
    const std::string &v = args.str(name);
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end || d < 0)
        fatal("--%s must be a non-negative number", name);
    return d;
}

campaign::CampaignOptions
campaignOptionsFrom(const ArgParser &args)
{
    campaign::CampaignOptions opt;
    opt.dir = args.str("dir");
    if (opt.dir.empty())
        throwSimError(ErrorCategory::Config,
                      "campaign: --dir is required");
    opt.shards = unsigned(args.u64("shards"));
    for (const std::string &s : splitCommas(args.str("only-shards")))
        opt.onlyShards.push_back(unsigned(std::strtoul(
            s.c_str(), nullptr, 10)));
    opt.workerJobs = unsigned(args.u64("jobs"));
    opt.maxAttempts = unsigned(args.u64("retries")) + 1;
    opt.heartbeatSec = parseSeconds(args, "heartbeat-sec");
    opt.workerDeadlineSec = parseSeconds(args, "worker-deadline-sec");
    opt.killGraceSec = parseSeconds(args, "kill-grace-sec");
    opt.maxLaunches = unsigned(args.u64("max-launches"));
    opt.backoffBaseSec = parseSeconds(args, "backoff-sec");
    opt.backoffCapSec = parseSeconds(args, "backoff-cap-sec");
    opt.quarantineStrikes = unsigned(args.u64("strikes"));
    opt.journalSync = !args.flag("no-journal-sync");
    return opt;
}

/** Render a finished campaign: table to stdout, optional CSV, a
 *  quarantine summary to stderr; returns the process exit code. */
int
reportCampaign(const std::vector<sim::ExperimentConfig> &points,
               const campaign::CampaignReport &rep,
               const std::string &csvPath)
{
    sim::writeSweepTable(std::cout, points, rep.sweep);
    if (!csvPath.empty()) {
        std::ofstream os(csvPath);
        if (!os)
            fatal("cannot open '%s' for writing", csvPath.c_str());
        sim::writeSweepCsv(os, points, rep.sweep);
        if (!os)
            fatal("error while writing '%s'", csvPath.c_str());
    }
    for (const campaign::QuarantinedPoint &q : rep.quarantined)
        std::cerr << "burstsim_campaign: point " << q.slot << " ("
                  << q.entry.label << ") quarantined after "
                  << q.entry.strikes << " strikes, last death "
                  << q.entry.describeDeath() << '\n';
    for (const campaign::ShardOutcome &s : rep.shards)
        if (s.gaveUp)
            std::cerr << "burstsim_campaign: shard " << s.id
                      << " gave up after " << s.launches
                      << " launches\n";
    if (const std::size_t failed = rep.sweep.failures())
        std::cerr << "burstsim_campaign: " << failed << " of "
                  << points.size() << " points failed\n";
    if (rep.cancelled) {
        std::cerr << "burstsim_campaign: interrupted; completed points "
                     "are journaled\n";
        return 130;
    }
    return rep.degraded() ? 3 : 0;
}

int
cmdRun(const ArgParser &args)
{
    const auto points = pointsFrom(args);
    campaign::CampaignOptions opt = campaignOptionsFrom(args);
    opt.cancel = &g_interrupted;
    if (!args.flag("quiet"))
        opt.log = &std::cerr;

    // Fail-fast before any fork: bad geometry, unwritable directory.
    campaign::validateCampaign(points, opt);

    std::signal(SIGINT, onSigint);
    const campaign::CampaignReport rep =
        campaign::runCampaign(points, opt);
    std::signal(SIGINT, SIG_DFL);
    return reportCampaign(points, rep, args.str("out"));
}

int
cmdMerge(const ArgParser &args)
{
    const auto points = pointsFrom(args);
    const campaign::CampaignOptions opt = campaignOptionsFrom(args);
    const campaign::CampaignReport rep =
        campaign::mergeCampaign(points, opt);
    return reportCampaign(points, rep, args.str("out"));
}

int
cmdPlan(const ArgParser &args)
{
    const auto points = pointsFrom(args);
    const campaign::CampaignOptions opt = campaignOptionsFrom(args);
    const auto plans = campaign::planShards(points.size(), opt.shards,
                                            opt.onlyShards);
    for (const campaign::ShardPlan &plan : plans) {
        std::printf("shard %u: %zu points\n", plan.id,
                    plan.slots.size());
        for (const std::size_t slot : plan.slots)
            std::printf("  point %zu key=%016" PRIx64 " %s/%s\n", slot,
                        sim::configKey(points[slot]),
                        points[slot].workload.c_str(),
                        ctrl::mechanismName(points[slot].mechanism));
    }
    return 0;
}

int
cmdVerify(const ArgParser &args)
{
    // Journals to scan: positional paths after the subcommand, plus
    // every shard journal of --dir when given.
    std::vector<std::string> paths(args.positional().begin() + 1,
                                   args.positional().end());
    if (!args.str("dir").empty()) {
        const campaign::CampaignLayout layout(args.str("dir"));
        for (unsigned s = 0; s < unsigned(args.u64("shards")); ++s)
            paths.push_back(layout.shardJournal(s));
    }
    if (paths.empty())
        fatal("verify: name journal files or give --dir/--shards");

    bool anyIssue = false;
    bool anyUnrepaired = false;
    for (const std::string &path : paths) {
        const sim::JournalScan scan = sim::scanSweepJournal(path);
        if (scan.missing) {
            std::printf("%s: missing (empty journal)\n", path.c_str());
            continue;
        }
        std::printf("%s: %zu records (%zu v3, %zu legacy), %zu issues\n",
                    path.c_str(), scan.records.size(), scan.v3Records,
                    scan.legacyRecords, scan.issues.size());
        for (const sim::JournalIssue &issue : scan.issues)
            std::printf("  line %llu: %s: %s\n",
                        (unsigned long long)issue.line,
                        sim::journalIssueKindName(issue.kind),
                        issue.detail.c_str());
        if (scan.clean())
            continue;
        anyIssue = true;
        if (args.flag("repair")) {
            if (sim::repairSweepJournal(path))
                std::printf("  repaired: truncated to %llu bytes\n",
                            (unsigned long long)scan.validPrefixBytes);
            // Everything after the valid prefix is gone; those points
            // simply rerun on resume.
        } else {
            anyUnrepaired = true;
        }
    }
    if (anyIssue && args.flag("repair"))
        return 0; // damage found but healed
    return anyUnrepaired ? 3 : 0;
}

} // namespace

static int
runCampaignCli(int argc, char **argv)
{
    ArgParser args("burstsim_campaign",
                   "crash-isolated sweep campaigns: forked shard "
                   "workers, heartbeat\nsupervision, restart with "
                   "backoff, poison-point quarantine.\n"
                   "usage: burstsim_campaign <run|merge|plan|verify> "
                   "[options] [journal...]");
    addPointOptions(args);
    args.addOption("dir", "", "campaign directory (required for run/"
                              "merge/plan)");
    args.addOption("shards", "2", "worker process count");
    args.addOption("only-shards", "",
                   "comma-separated shard ids to run on this host");
    args.addOption("jobs", "1", "threads inside each worker");
    args.addOption("retries", "2",
                   "extra in-worker attempts for transient failures");
    args.addOption("heartbeat-sec", "0.25",
                   "worker progress heartbeat period");
    args.addOption("worker-deadline-sec", "10",
                   "kill a worker whose progress file stalls this long "
                   "(0 = never)");
    args.addOption("kill-grace-sec", "2",
                   "SIGTERM to SIGKILL escalation delay");
    args.addOption("max-launches", "10",
                   "worker incarnations per shard before giving up");
    args.addOption("backoff-sec", "0.25",
                   "base relaunch delay after a crash (doubles per "
                   "crash)");
    args.addOption("backoff-cap-sec", "5", "relaunch delay ceiling");
    args.addOption("strikes", "2",
                   "worker deaths that quarantine a point");
    args.addFlag("no-journal-sync",
                 "skip per-record fdatasync (faster, loses the "
                 "survives-SIGKILL guarantee)");
    args.addOption("out", "", "write the merged report as CSV");
    args.addFlag("repair",
                 "verify: truncate damaged journals to their longest "
                 "valid prefix");
    args.addFlag("quiet", "suppress supervisor narration on stderr");

    if (!args.parse(argc, argv, std::cerr))
        return args.helpRequested() ? 0 : 2;
    if (args.positional().empty()) {
        args.printHelp(std::cerr);
        return 2;
    }
    const std::string &cmd = args.positional().front();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "merge")
        return cmdMerge(args);
    if (cmd == "plan")
        return cmdPlan(args);
    if (cmd == "verify")
        return cmdVerify(args);
    std::cerr << "burstsim_campaign: unknown subcommand '" << cmd
              << "' (expected run, merge, plan or verify)\n";
    return 2;
}

int
main(int argc, char **argv)
{
    try {
        return runCampaignCli(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "burstsim_campaign: " << e.describe() << '\n';
        return 1;
    }
}
