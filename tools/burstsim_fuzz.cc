/**
 * @file
 * Differential fuzzing front end.
 *
 * Three modes:
 *   burstsim_fuzz --seed 1 --runs 200          run a campaign
 *   burstsim_fuzz --replay repro.txt           re-check one repro file
 *   burstsim_fuzz --corpus tests/fuzz/corpus   re-check a directory
 *
 * Exit codes match the sweep CLI: 0 all oracles clean, 3 failures
 * found (minimised repro files are written to --repro-dir), 1 runtime
 * error, 2 bad arguments, 130 interrupted.
 */

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/error.hh"
#include "fuzz/fuzzer.hh"

using namespace bsim;

namespace
{

std::atomic<bool> g_interrupted{false};

extern "C" void
onSigint(int)
{
    g_interrupted.store(true);
}

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throwSimError(ErrorCategory::Resource, "cannot read '%s'",
                      path.c_str());
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Replay one repro file; prints a PASS/FAIL line; true when clean. */
bool
replayFile(const std::string &path, const fuzz::OracleOptions &oracle)
{
    const fuzz::FuzzPoint p = fuzz::parsePoint(readFileOrThrow(path));
    const fuzz::OracleVerdict v = fuzz::checkPoint(p, oracle);
    if (v.ok) {
        std::cout << "PASS " << path << " (" << fuzz::pointLabel(p)
                  << ")\n";
        return true;
    }
    std::cout << "FAIL " << path << " [" << v.oracle << "] "
              << v.detail << '\n';
    return false;
}

int
runCli(int argc, char **argv)
{
    ArgParser args("burstsim_fuzz",
                   "Differential fuzzer for the burstsim engines, "
                   "schedulers and protocol auditor.");
    args.addOption("seed", "1", "campaign seed (determines all points)");
    args.addOption("runs", "100", "points to sample and check");
    args.addOption("time-budget", "0",
                   "wall-clock budget in seconds (0 = none)");
    args.addOption("corpus", "",
                   "replay every *.repro file in this directory");
    args.addOption("replay", "", "replay one repro file");
    args.addOption("repro-dir", "fuzz-repros",
                   "where campaign failures write minimised repros");
    args.addOption("scratch-dir", "",
                   "inline-trace scratch directory (default: temp)");
    args.addFlag("no-shrink", "report failures without minimising");
    args.addFlag("no-cross-scheduler",
                 "skip the Burst-vs-BkInOrder bound oracle");
    args.addFlag("no-selfprof-identity",
                 "skip the wake-reason attribution identity oracle");
    args.addFlag("no-critpath-identity",
                 "skip the per-access blame identity oracle");
    args.addFlag("no-memo-transparency",
                 "skip the two extra runs of the memo_transparency "
                 "oracle (horizon caches on vs force-disabled)");

    if (!args.parse(argc, argv, std::cerr))
        return args.helpRequested() ? 0 : 2;

    fuzz::OracleOptions oracle;
    oracle.scratchDir = args.str("scratch-dir");
    oracle.crossScheduler = !args.flag("no-cross-scheduler");
    oracle.selfprofIdentity = !args.flag("no-selfprof-identity");
    oracle.critpathIdentity = !args.flag("no-critpath-identity");
    oracle.memoTransparency = !args.flag("no-memo-transparency");

    if (!args.str("replay").empty())
        return replayFile(args.str("replay"), oracle) ? 0 : 3;

    if (!args.str("corpus").empty()) {
        namespace fs = std::filesystem;
        std::vector<std::string> files;
        for (const auto &e : fs::directory_iterator(args.str("corpus")))
            if (e.is_regular_file() &&
                e.path().extension() == ".repro")
                files.push_back(e.path().string());
        std::sort(files.begin(), files.end());
        if (files.empty()) {
            std::cerr << "burstsim_fuzz: no *.repro files in '"
                      << args.str("corpus") << "'\n";
            return 2;
        }
        std::size_t failed = 0;
        for (const std::string &f : files)
            failed += replayFile(f, oracle) ? 0 : 1;
        std::cout << files.size() - failed << '/' << files.size()
                  << " corpus entries clean\n";
        return failed ? 3 : 0;
    }

    fuzz::FuzzOptions opt;
    opt.seed = args.u64("seed");
    opt.runs = unsigned(args.u64("runs"));
    opt.timeBudgetSec = double(args.u64("time-budget"));
    opt.shrink = !args.flag("no-shrink");
    opt.oracle = oracle;
    opt.progress = &std::cout;

    std::signal(SIGINT, onSigint);
    const fuzz::FuzzReport rep = fuzz::runFuzz(opt);
    std::signal(SIGINT, SIG_DFL);
    if (g_interrupted.load()) {
        std::cerr << "burstsim_fuzz: interrupted\n";
        return 130;
    }

    std::cout << "fuzz: " << rep.executed << " points checked, "
              << rep.failures.size() << " failures"
              << (rep.outOfTime ? " (time budget reached)" : "") << '\n';

    if (rep.failures.empty())
        return 0;

    // Persist each minimised failure as a replayable repro file.
    namespace fs = std::filesystem;
    const fs::path dir = args.str("repro-dir");
    std::error_code ec;
    fs::create_directories(dir, ec);
    for (const fuzz::FuzzFailure &f : rep.failures) {
        std::ostringstream name;
        name << f.verdict.oracle << "-seed" << opt.seed << "-run"
             << f.runIndex << ".repro";
        const fs::path path = dir / name.str();
        std::ofstream os(path);
        os << fuzz::serializePoint(
            f.minimized, "[" + f.verdict.oracle + "] " + f.verdict.detail);
        if (!os)
            throwSimError(ErrorCategory::Resource,
                          "cannot write repro '%s'",
                          path.string().c_str());
        std::cout << "fuzz: wrote " << path.string() << '\n';
    }
    return 3;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runCli(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "burstsim_fuzz: " << e.describe() << '\n';
        return 1;
    }
}
