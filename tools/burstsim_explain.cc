/**
 * @file
 * burstsim_explain — answer "why was this access slow?" from an access
 * trace produced by `burstsim --access-trace-out`.
 *
 * Examples:
 *   burstsim_explain trace.jsonl --access 1234
 *   burstsim_explain trace.jsonl --top 20 --by t_faw
 *   burstsim_explain trace.jsonl --per-core
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/error.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "dram/stall.hh"

using namespace bsim;

namespace
{

/** One parsed access record, kept as blame map plus scalar fields. */
struct Access
{
    std::uint64_t id = 0;
    std::uint64_t core = 0;
    std::string type;
    bool critical = false;
    std::uint64_t channel = 0, rank = 0, bank = 0, row = 0;
    std::uint64_t arrival = 0, dataEnd = 0, latency = 0;
    std::uint64_t blockedBy = 0;
    std::string outcome;
    std::map<std::string, std::uint64_t> blame;
};

std::uint64_t
numField(const JsonValue &v, const char *key, std::uint64_t def = 0)
{
    const JsonValue *f = v.find(key);
    return f && f->isNumber() ? std::uint64_t(f->number) : def;
}

std::string
strField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    return f && f->isString() ? f->string : std::string();
}

Access
fromJson(const JsonValue &v)
{
    Access a;
    a.id = numField(v, "id");
    a.core = numField(v, "core");
    a.type = strField(v, "type");
    if (const JsonValue *c = v.find("critical"))
        a.critical = c->isBool() && c->boolean;
    a.channel = numField(v, "channel");
    a.rank = numField(v, "rank");
    a.bank = numField(v, "bank");
    a.row = numField(v, "row");
    a.arrival = numField(v, "arrival");
    a.dataEnd = numField(v, "data_end");
    a.latency = numField(v, "latency");
    a.blockedBy = numField(v, "blocked_by");
    a.outcome = strField(v, "outcome");
    if (const JsonValue *b = v.find("blame"); b && b->isObject())
        for (const auto &[cause, n] : b->members)
            if (n.isNumber())
                a.blame[cause] = std::uint64_t(n.number);
    return a;
}

std::vector<Access>
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open access trace '%s'", path.c_str());
    std::vector<Access> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        lineno += 1;
        if (line.empty())
            continue;
        std::string err;
        const auto v = parseJson(line, &err);
        if (!v)
            fatal("%s:%zu: malformed record: %s", path.c_str(), lineno,
                  err.c_str());
        out.push_back(fromJson(*v));
    }
    return out;
}

std::uint64_t
blameOf(const Access &a, const std::string &cause)
{
    const auto it = a.blame.find(cause);
    return it == a.blame.end() ? 0 : it->second;
}

/** "t_faw 12, data_transfer 8" — heaviest causes first. */
std::string
blameSummary(const Access &a, std::size_t max_causes)
{
    std::vector<std::pair<std::string, std::uint64_t>> items(
        a.blame.begin(), a.blame.end());
    std::sort(items.begin(), items.end(), [](const auto &x, const auto &y) {
        if (x.second != y.second)
            return x.second > y.second;
        return x.first < y.first;
    });
    if (items.size() > max_causes)
        items.resize(max_causes);
    std::string out;
    for (const auto &[cause, n] : items) {
        if (!out.empty())
            out += ", ";
        out += cause + ' ' + std::to_string(n);
    }
    return out.empty() ? "-" : out;
}

bool
validCause(const std::string &name)
{
    for (std::size_t i = 0; i < dram::kNumStallCauses; ++i)
        if (name == dram::stallCauseName(dram::StallCause(i)))
            return true;
    return false;
}

void
printTop(const std::vector<Access> &trace, std::size_t k,
         const std::string &by)
{
    std::vector<const Access *> order;
    order.reserve(trace.size());
    for (const Access &a : trace)
        order.push_back(&a);
    const auto keyOf = [&](const Access &a) {
        return by == "latency" ? a.latency : blameOf(a, by);
    };
    std::sort(order.begin(), order.end(),
              [&](const Access *x, const Access *y) {
                  const std::uint64_t kx = keyOf(*x), ky = keyOf(*y);
                  if (kx != ky)
                      return kx > ky;
                  return x->id < y->id;
              });
    if (order.size() > k)
        order.resize(k);

    std::cout << "top " << order.size() << " of " << trace.size()
              << " accesses by " << by << '\n';
    const bool key_col = by != "latency";
    Table t;
    std::vector<std::string> hdr{"id", "core", "type"};
    if (key_col)
        hdr.push_back(by);
    hdr.insert(hdr.end(), {"latency", "ch/rk/bk", "outcome", "blame"});
    t.header(hdr);
    for (const Access *a : order) {
        std::vector<std::string> row{std::to_string(a->id),
                                     std::to_string(a->core), a->type};
        if (key_col)
            row.push_back(std::to_string(keyOf(*a)));
        row.insert(row.end(),
                   {std::to_string(a->latency),
                    std::to_string(a->channel) + "/" +
                        std::to_string(a->rank) + "/" +
                        std::to_string(a->bank),
                    a->outcome.empty() ? "-" : a->outcome,
                    blameSummary(*a, 3)});
        t.row(row);
    }
    t.print(std::cout);
}

void
explainOne(const std::vector<Access> &trace, std::uint64_t id)
{
    const Access *a = nullptr;
    for (const Access &c : trace)
        if (c.id == id) {
            a = &c;
            break;
        }
    if (!a)
        fatal("access %llu is not in the trace",
              static_cast<unsigned long long>(id));

    std::cout << "access #" << a->id << ": " << a->type
              << (a->critical ? " (critical)" : "") << " from core "
              << a->core << ", channel " << a->channel << " rank "
              << a->rank << " bank " << a->bank << " row " << a->row;
    if (!a->outcome.empty())
        std::cout << " (row " << a->outcome << ")";
    std::cout << "\narrived at cycle " << a->arrival
              << ", data complete at " << a->dataEnd << ": latency "
              << a->latency << " cycles\n\nwhy it was slow:\n";

    std::vector<std::pair<std::string, std::uint64_t>> items(
        a->blame.begin(), a->blame.end());
    std::sort(items.begin(), items.end(), [](const auto &x, const auto &y) {
        if (x.second != y.second)
            return x.second > y.second;
        return x.first < y.first;
    });
    Table t;
    t.header({"cause", "cycles", "share"});
    for (const auto &[cause, n] : items)
        t.row({cause, std::to_string(n),
               Table::pct(a->latency ? double(n) / double(a->latency)
                                     : 0.0)});
    t.print(std::cout);
    if (a->blockedBy)
        std::cout << "\nwaited behind the data burst of access #"
                  << a->blockedBy
                  << " (see its record for the upstream cause)\n";
}

void
printPerCore(const std::vector<Access> &trace)
{
    struct Roll
    {
        std::uint64_t count = 0, latencySum = 0, hits = 0, classified = 0;
        std::map<std::string, std::uint64_t> blame;
    };
    std::map<std::uint64_t, Roll> rolls;
    for (const Access &a : trace) {
        Roll &r = rolls[a.core];
        r.count += 1;
        r.latencySum += a.latency;
        if (!a.outcome.empty()) {
            r.classified += 1;
            if (a.outcome == "hit")
                r.hits += 1;
        }
        for (const auto &[cause, n] : a.blame)
            r.blame[cause] += n;
    }
    std::cout << "per-core summary (" << trace.size() << " accesses)\n";
    Table t;
    t.header({"core", "accesses", "mean latency", "row hit",
              "dominant blame"});
    for (const auto &[core, r] : rolls) {
        std::vector<std::pair<std::string, std::uint64_t>> items(
            r.blame.begin(), r.blame.end());
        std::sort(items.begin(), items.end(),
                  [](const auto &x, const auto &y) {
                      if (x.second != y.second)
                          return x.second > y.second;
                      return x.first < y.first;
                  });
        if (items.size() > 3)
            items.resize(3);
        std::string blame;
        for (const auto &[cause, n] : items) {
            if (!blame.empty())
                blame += ", ";
            blame += cause + ' ' + std::to_string(n);
        }
        t.row({std::to_string(core), std::to_string(r.count),
               Table::num(r.count ? double(r.latencySum) / double(r.count)
                                  : 0.0,
                          1),
               r.classified
                   ? Table::pct(double(r.hits) / double(r.classified))
                   : "-",
               blame.empty() ? "-" : blame});
    }
    t.print(std::cout);
}

} // namespace

static int
runCli(int argc, char **argv)
{
    ArgParser args("burstsim_explain <trace.jsonl>",
                   "explain per-access critical paths from a burstsim "
                   "--access-trace-out JSONL file");
    args.addOption("access", "",
                   "explain one access: why was access #N slow?");
    args.addOption("top", "10", "show the K heaviest accesses");
    args.addOption("by", "latency",
                   "ranking key for --top: latency | a stall cause "
                   "(e.g. t_faw, data_transfer, arb_loss)");
    args.addFlag("per-core", "per-requester rollup instead of top-K");

    if (!args.parse(argc, argv, std::cerr))
        return args.helpRequested() ? 0 : 2;
    if (args.positional().size() != 1) {
        args.printHelp(std::cerr);
        return 2;
    }
    const std::string &by = args.str("by");
    if (by != "latency" && !validCause(by))
        fatal("--by must be 'latency' or a stall cause name");

    const std::vector<Access> trace = loadTrace(args.positional()[0]);

    if (!args.str("access").empty())
        explainOne(trace, args.u64("access"));
    else if (args.flag("per-core"))
        printPerCore(trace);
    else
        printTop(trace, std::size_t(args.u64("top")), by);
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return runCli(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "burstsim_explain: " << e.describe() << '\n';
        return 1;
    }
}
