/**
 * @file
 * burstsim — command-line front end to the simulator.
 *
 * Examples:
 *   burstsim --workload swim --mechanism Burst_TH
 *   burstsim --workload mcf --mechanism Burst_RP --instructions 500000
 *   burstsim --cmp swim,mcf,gcc,art --mechanism Burst_TH --json
 *   burstsim --sweep --workload lucas          # all 8 mechanisms
 *   burstsim --list
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "trace/spec_profiles.hh"

using namespace bsim;

namespace
{

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

sim::EngineKind
parseEngine(const ArgParser &args)
{
    const std::string &e = args.str("engine");
    if (e == "step")
        return sim::EngineKind::Step;
    if (e != "skip")
        fatal("--engine must be 'step' or 'skip'");
    return sim::EngineKind::Skip;
}

sim::ExperimentConfig
configFrom(const ArgParser &args)
{
    sim::ExperimentConfig cfg;
    cfg.workload = args.str("workload");
    cfg.mechanism = ctrl::parseMechanism(args.str("mechanism"));
    cfg.instructions = args.u64("instructions");
    cfg.seed = args.u64("seed");
    cfg.threshold = args.u64("threshold");
    if (args.str("page-policy") == "cpa")
        cfg.pagePolicy = dram::PagePolicy::ClosePageAuto;
    else if (args.str("page-policy") == "predictive")
        cfg.pagePolicy = dram::PagePolicy::Predictive;
    else if (args.str("page-policy") != "open")
        fatal("--page-policy must be 'open', 'cpa' or 'predictive'");
    const std::string &map = args.str("map");
    if (map == "block")
        cfg.addressMap = dram::AddressMapKind::BlockInterleave;
    else if (map == "bitrev")
        cfg.addressMap = dram::AddressMapKind::BitReversal;
    else if (map == "perm")
        cfg.addressMap = dram::AddressMapKind::PermutationInterleave;
    else if (map != "page")
        fatal("--map must be 'page', 'block', 'bitrev' or 'perm'");
    const std::string &dev = args.str("device");
    if (dev == "ddr-266")
        cfg.device = sim::DeviceGen::DDR_266;
    else if (dev != "ddr2-800")
        fatal("--device must be 'ddr2-800' or 'ddr-266'");
    cfg.engine = parseEngine(args);
    cfg.dynamicThreshold = args.flag("dynamic-threshold");
    cfg.sortBurstsBySize = args.flag("sort-bursts");
    cfg.criticalFirst = args.flag("critical-first");
    cfg.rankAware = !args.flag("no-rank-aware");

    // Observability: each pillar turns on only when requested, so the
    // default run carries no instrumentation cost.
    cfg.obs.latencyBreakdown = args.flag("latency-breakdown");
    if (!args.str("metrics-out").empty()) {
        cfg.obs.metricsInterval = args.u64("metrics-interval");
        if (cfg.obs.metricsInterval == 0)
            fatal("--metrics-interval must be positive");
    }
    cfg.obs.commandTrace = !args.str("trace-out").empty();
    cfg.obs.stallAttribution =
        args.flag("stall-attribution") || !args.str("stall-out").empty();
    const std::string &audit = args.str("audit");
    if (audit == "warn")
        cfg.obs.audit = obs::AuditMode::Warn;
    else if (audit == "fatal")
        cfg.obs.audit = obs::AuditMode::Fatal;
    else if (audit != "off")
        fatal("--audit must be 'off', 'warn' or 'fatal'");
    return cfg;
}

/** Write @p path via @p emit, failing loudly on I/O errors. */
template <typename Fn>
void
writeFileOrDie(const std::string &path, Fn emit)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    emit(os);
    if (!os)
        fatal("error while writing '%s'", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("burstsim",
                   "cycle-level DDR2 memory system simulator reproducing "
                   "'A Burst Scheduling Access\nReordering Mechanism' "
                   "(Shao & Davis, HPCA 2007)");
    args.addOption("workload", "swim",
                   "benchmark profile (see --list)");
    args.addOption("mechanism", "Burst_TH",
                   "access reordering mechanism (see --list)");
    args.addOption("instructions", "0",
                   "instructions to simulate (0 = default)");
    args.addOption("seed", "20070212", "workload RNG seed");
    args.addOption("threshold", "52", "Burst_TH write-queue threshold");
    args.addOption("page-policy", "open",
                   "open | cpa | predictive");
    args.addOption("map", "page", "page | block | bitrev | perm");
    args.addOption("device", "ddr2-800", "ddr2-800 | ddr-266");
    args.addOption("engine", "skip",
                   "simulation engine: skip (event-driven, default) | "
                   "step (tick-accurate); identical results");
    args.addOption("jobs", "1",
                   "parallel runs in --sweep mode (0 = all cores)");
    args.addOption("cmp", "",
                   "comma-separated workloads, one core each (CMP mode)");
    args.addFlag("sweep", "run all eight mechanisms and compare");
    args.addFlag("json", "emit machine-readable JSON");
    args.addFlag("list", "list workloads and mechanisms, then exit");
    args.addFlag("dynamic-threshold",
                 "extension: adapt the threshold to the read/write mix");
    args.addFlag("sort-bursts", "extension: largest burst first");
    args.addFlag("critical-first",
                 "extension: critical reads first inside bursts");
    args.addFlag("no-rank-aware",
                 "ablation: ignore rank locality in Table 2 priorities");
    args.addFlag("latency-breakdown",
                 "report per-phase access latency histograms");
    args.addOption("metrics-out", "",
                   "write epoch metrics time series (.json else CSV)");
    args.addOption("metrics-interval", "1024",
                   "metrics epoch length in memory cycles");
    args.addOption("trace-out", "",
                   "write Chrome trace-event JSON of SDRAM commands");
    args.addFlag("stall-attribution",
                 "classify every idle memory cycle by its cause");
    args.addOption("stall-out", "",
                   "write stall attribution JSON (implies the pillar)");
    args.addOption("audit", "off",
                   "DDR2 protocol auditor: off | warn | fatal");

    if (!args.parse(argc, argv, std::cerr))
        return args.helpRequested() ? 0 : 2;

    if (args.flag("list")) {
        std::cout << "workloads:";
        for (const auto &w : trace::specProfileNames())
            std::cout << ' ' << w;
        std::cout << "\nmicrobenchmarks:";
        for (const auto &w : trace::microProfileNames())
            std::cout << ' ' << w;
        std::cout << "\nmechanisms:";
        for (auto m : ctrl::kAllMechanisms)
            std::cout << ' ' << ctrl::mechanismName(m);
        std::cout << '\n';
        return 0;
    }

    // CMP mode: one core per listed workload.
    if (!args.str("cmp").empty()) {
        const auto wls = splitCommas(args.str("cmp"));
        const auto r = sim::runCmpExperiment(
            wls, ctrl::parseMechanism(args.str("mechanism")),
            args.u64("instructions"), args.u64("threshold"),
            parseEngine(args));
        if (args.flag("json")) {
            sim::writeCmpResultJson(std::cout, r);
        } else {
            std::cout << wls.size() << "-core CMP, mechanism "
                      << ctrl::mechanismName(r.mechanism) << ": "
                      << r.execCpuCycles << " CPU cycles, "
                      << Table::num(r.bandwidthGBs, 2) << " GB/s, "
                      << Table::pct(r.dataBusUtil) << " data bus\n";
        }
        return 0;
    }

    if (args.flag("sweep")) {
        std::vector<ctrl::Mechanism> mechs(
            std::begin(ctrl::kAllMechanisms),
            std::end(ctrl::kAllMechanisms));
        const auto results = sim::runMechanismSweep(
            args.str("workload"), mechs, args.u64("instructions"),
            unsigned(args.u64("jobs")), parseEngine(args));
        Table t;
        t.header({"mechanism", "exec cycles", "norm", "read lat",
                  "write lat", "row hit", "GB/s"});
        const double base = double(results[0].execCpuCycles);
        for (const auto &r : results) {
            t.row({ctrl::mechanismName(r.mechanism),
                   std::to_string(r.execCpuCycles),
                   Table::num(double(r.execCpuCycles) / base, 3),
                   Table::num(r.ctrl.readLatency.mean(), 1),
                   Table::num(r.ctrl.writeLatency.mean(), 1),
                   Table::pct(r.ctrl.rowHitRate()),
                   Table::num(r.bandwidthGBs, 2)});
        }
        t.print(std::cout);
        return 0;
    }

    const sim::RunResult r = sim::runExperiment(configFrom(args));
    if (args.flag("json"))
        sim::writeResultJson(std::cout, r);
    else
        sim::writeResultText(std::cout, r);

    if (const std::string &path = args.str("metrics-out"); !path.empty()) {
        const bool as_json =
            path.size() >= 5 && path.rfind(".json") == path.size() - 5;
        writeFileOrDie(path, [&](std::ostream &os) {
            if (as_json)
                r.obs->writeMetricsJson(os);
            else
                r.obs->writeMetricsCsv(os);
        });
    }
    if (const std::string &path = args.str("trace-out"); !path.empty()) {
        writeFileOrDie(path, [&](std::ostream &os) {
            r.obs->writeChromeTrace(os);
        });
    }
    if (const std::string &path = args.str("stall-out"); !path.empty()) {
        writeFileOrDie(path, [&](std::ostream &os) {
            r.obs->writeStallJson(os);
        });
    }
    return 0;
}
