/**
 * @file
 * burstsim — command-line front end to the simulator.
 *
 * Examples:
 *   burstsim --workload swim --mechanism Burst_TH
 *   burstsim --workload mcf --mechanism Burst_RP --instructions 500000
 *   burstsim --cmp swim,mcf,gcc,art --mechanism Burst_TH --json
 *   burstsim --sweep --workload lucas          # all 8 mechanisms
 *   burstsim --list
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/error.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/fairness.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "trace/spec_profiles.hh"

using namespace bsim;

namespace
{

/** SIGINT: finish in-flight sweep points, flush the journal, exit 130. */
std::atomic<bool> g_interrupted{false};

extern "C" void
onSigint(int)
{
    g_interrupted.store(true);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

sim::EngineKind
parseEngine(const ArgParser &args)
{
    const std::string &e = args.str("engine");
    if (e == "step")
        return sim::EngineKind::Step;
    if (e != "skip")
        fatal("--engine must be 'step' or 'skip'");
    return sim::EngineKind::Skip;
}

sim::ExperimentConfig
configFrom(const ArgParser &args)
{
    sim::ExperimentConfig cfg;
    cfg.workload = args.str("workload");
    cfg.mechanism = ctrl::parseMechanism(args.str("mechanism"));
    cfg.instructions = args.u64("instructions");
    cfg.seed = args.u64("seed");
    cfg.threshold = args.u64("threshold");
    if (args.str("page-policy") == "cpa")
        cfg.pagePolicy = dram::PagePolicy::ClosePageAuto;
    else if (args.str("page-policy") == "predictive")
        cfg.pagePolicy = dram::PagePolicy::Predictive;
    else if (args.str("page-policy") != "open")
        fatal("--page-policy must be 'open', 'cpa' or 'predictive'");
    const std::string &map = args.str("map");
    if (map == "block")
        cfg.addressMap = dram::AddressMapKind::BlockInterleave;
    else if (map == "bitrev")
        cfg.addressMap = dram::AddressMapKind::BitReversal;
    else if (map == "perm")
        cfg.addressMap = dram::AddressMapKind::PermutationInterleave;
    else if (map != "page")
        fatal("--map must be 'page', 'block', 'bitrev' or 'perm'");
    const std::string &dev = args.str("device");
    if (dev == "ddr-266")
        cfg.device = sim::DeviceGen::DDR_266;
    else if (dev != "ddr2-800")
        fatal("--device must be 'ddr2-800' or 'ddr-266'");
    cfg.engine = parseEngine(args);
    cfg.dynamicThreshold = args.flag("dynamic-threshold");
    cfg.sortBurstsBySize = args.flag("sort-bursts");
    cfg.criticalFirst = args.flag("critical-first");
    cfg.rankAware = !args.flag("no-rank-aware");
    cfg.horizonMemo = !args.flag("no-horizon-memo");
    cfg.watermarkDrain = args.flag("watermark-drain");

    // Observability: each pillar turns on only when requested, so the
    // default run carries no instrumentation cost.
    cfg.obs.latencyBreakdown = args.flag("latency-breakdown");
    if (!args.str("metrics-out").empty()) {
        cfg.obs.metricsInterval = args.u64("metrics-interval");
        if (cfg.obs.metricsInterval == 0)
            fatal("--metrics-interval must be positive");
    }
    cfg.obs.commandTrace = !args.str("trace-out").empty();
    cfg.obs.stallAttribution =
        args.flag("stall-attribution") || !args.str("stall-out").empty();
    const std::string &audit = args.str("audit");
    if (audit == "warn")
        cfg.obs.audit = obs::AuditMode::Warn;
    else if (audit == "fatal")
        cfg.obs.audit = obs::AuditMode::Fatal;
    else if (audit != "off")
        fatal("--audit must be 'off', 'warn' or 'fatal'");
    cfg.obs.engineIntrospect =
        args.flag("introspect") || !args.str("introspect-out").empty();
    cfg.obs.selfProf = args.flag("selfprof");
    cfg.obs.critPath = args.flag("crit-path");
    cfg.obs.accessTraceOut = args.str("access-trace-out");
    cfg.obs.perCoreMetrics = args.flag("metrics-per-core");

    cfg.watchdogCycles = args.u64("watchdog-cycles");
    const std::string &deadline = args.str("deadline-sec");
    if (!deadline.empty()) {
        char *end = nullptr;
        cfg.deadlineSec = std::strtod(deadline.c_str(), &end);
        if (end == deadline.c_str() || *end || cfg.deadlineSec < 0)
            fatal("--deadline-sec must be a non-negative number");
    }
    return cfg;
}

/**
 * Fail before the run, not after it: every output path named on the
 * command line must be writable up front (matching --sweep-journal),
 * so an hour-long simulation cannot die at the final fopen. Opens in
 * append mode, which creates the file but never truncates existing
 * content that a later full write would replace anyway.
 */
void
validateOutputPath(const std::string &path, const char *flag)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        throwSimError(ErrorCategory::Resource,
                      "cannot open %s '%s' for writing", flag,
                      path.c_str());
}

/** Write @p path via @p emit, failing loudly on I/O errors. */
template <typename Fn>
void
writeFileOrDie(const std::string &path, Fn emit)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    emit(os);
    if (!os)
        fatal("error while writing '%s'", path.c_str());
}

} // namespace

static int
runCli(int argc, char **argv)
{
    ArgParser args("burstsim",
                   "cycle-level DDR2 memory system simulator reproducing "
                   "'A Burst Scheduling Access\nReordering Mechanism' "
                   "(Shao & Davis, HPCA 2007)");
    args.addOption("workload", "swim",
                   "benchmark profile (see --list)");
    args.addOption("mechanism", "Burst_TH",
                   "access reordering mechanism (see --list)");
    args.addOption("instructions", "0",
                   "instructions to simulate (0 = default)");
    args.addOption("seed", "20070212", "workload RNG seed");
    args.addOption("threshold", "52", "Burst_TH write-queue threshold");
    args.addOption("page-policy", "open",
                   "open | cpa | predictive");
    args.addOption("map", "page", "page | block | bitrev | perm");
    args.addOption("device", "ddr2-800", "ddr2-800 | ddr-266");
    args.addOption("engine", "skip",
                   "simulation engine: skip (event-driven, default) | "
                   "step (tick-accurate); identical results");
    args.addOption("jobs", "1",
                   "parallel runs in --sweep mode (0 = all cores)");
    args.addOption("cmp", "",
                   "comma-separated workloads, one core each (CMP mode)");
    args.addFlag("sweep", "run all eight mechanisms and compare; "
                          "--workload may list several (commas), and "
                          "'@/path' entries replay trace files");
    args.addOption("retries", "2",
                   "extra attempts for transiently failed sweep points");
    args.addOption("max-failures", "",
                   "abort the sweep after this many failed points "
                   "(default: never abort)");
    args.addOption("sweep-journal", "",
                   "checkpoint file: completed points are appended and "
                   "skipped on rerun (resumable sweeps)");
    args.addOption("sweep-out", "",
                   "write the sweep report as CSV to this path");
    args.addOption("watchdog-cycles", "50000",
                   "fail a run when no access retires for this many "
                   "busy memory cycles (0 = off)");
    args.addOption("deadline-sec", "0",
                   "fail a run exceeding this wall-clock budget "
                   "(0 = none)");
    args.addFlag("json", "emit machine-readable JSON");
    args.addFlag("list", "list workloads and mechanisms, then exit");
    args.addFlag("dynamic-threshold",
                 "extension: adapt the threshold to the read/write mix");
    args.addFlag("sort-bursts", "extension: largest burst first");
    args.addFlag("critical-first",
                 "extension: critical reads first inside bursts");
    args.addFlag("no-horizon-memo",
                 "debug: disable every horizon memo / bound cache in the "
                 "skip engine (identical results, much slower)");
    args.addFlag("no-rank-aware",
                 "ablation: ignore rank locality in Table 2 priorities");
    args.addFlag("latency-breakdown",
                 "report per-phase access latency histograms");
    args.addOption("metrics-out", "",
                   "write epoch metrics time series (.json else CSV)");
    args.addOption("metrics-interval", "1024",
                   "metrics epoch length in memory cycles");
    args.addOption("trace-out", "",
                   "write Chrome trace-event JSON of SDRAM commands");
    args.addFlag("stall-attribution",
                 "classify every idle memory cycle by its cause");
    args.addOption("stall-out", "",
                   "write stall attribution JSON (implies the pillar)");
    args.addOption("audit", "off",
                   "DDR2 protocol auditor: off | warn | fatal");
    args.addFlag("introspect",
                 "engine introspection: attribute every resume-from-skip "
                 "to a wake reason (deterministic)");
    args.addOption("introspect-out", "",
                   "write wake-reason JSON (implies --introspect)");
    args.addFlag("selfprof",
                 "host-side self-profile of the simulator (text report "
                 "only; never changes simulated output)");
    args.addOption("progress-out", "",
                   "write sweep progress events as JSONL to this path");
    args.addOption("heartbeat-sec", "0",
                   "sweep stderr heartbeat period in seconds (0 = off)");
    args.addFlag("crit-path",
                 "per-access causal blame: decompose every access's "
                 "latency over the stall-cause taxonomy");
    args.addOption("access-trace-out", "",
                   "stream one JSONL record per completed access "
                   "(implies --crit-path)");
    args.addFlag("metrics-per-core",
                 "add per-requester queue occupancy and row-hit-rate "
                 "columns to the epoch metrics");
    args.addFlag("watermark-drain",
                 "contention families: drain writes in watermark batches "
                 "(HI/LO hysteresis) instead of read-idle opportunism");
    args.addFlag("fairness",
                 "CMP mode: also run each core's alone baseline and "
                 "report slowdown / weighted / harmonic speedup");
    args.addOption("fairness-journal", "",
                   "fairness checkpoint file: completed mixes are "
                   "appended and skipped on rerun (implies --fairness)");
    args.addOption("fairness-out", "",
                   "write CMP fairness results as CSV to this path "
                   "(implies --fairness)");

    if (!args.parse(argc, argv, std::cerr))
        return args.helpRequested() ? 0 : 2;

    // Every named output must be writable before any simulation runs.
    validateOutputPath(args.str("metrics-out"), "--metrics-out");
    validateOutputPath(args.str("trace-out"), "--trace-out");
    validateOutputPath(args.str("stall-out"), "--stall-out");
    validateOutputPath(args.str("introspect-out"), "--introspect-out");
    validateOutputPath(args.str("progress-out"), "--progress-out");
    validateOutputPath(args.str("access-trace-out"), "--access-trace-out");
    validateOutputPath(args.str("sweep-out"), "--sweep-out");

    if (args.flag("list")) {
        std::cout << "workloads:";
        for (const auto &w : trace::specProfileNames())
            std::cout << ' ' << w;
        std::cout << "\nmicrobenchmarks:";
        for (const auto &w : trace::microProfileNames())
            std::cout << ' ' << w;
        std::cout << "\nmechanisms:";
        for (auto m : ctrl::kAllMechanisms)
            std::cout << ' ' << ctrl::mechanismName(m);
        std::cout << "\ncontention schedulers:";
        for (auto m : ctrl::kContentionMechanisms)
            std::cout << ' ' << ctrl::mechanismName(m);
        std::cout << '\n';
        return 0;
    }

    // CMP mode: one core per listed workload.
    if (!args.str("cmp").empty()) {
        sim::CmpConfig cfg;
        cfg.workloads = splitCommas(args.str("cmp"));
        cfg.instructions = args.u64("instructions");
        cfg.threshold = args.u64("threshold");
        cfg.engine = parseEngine(args);
        cfg.watermarkDrain = args.flag("watermark-drain");

        const bool fairness = args.flag("fairness") ||
                              !args.str("fairness-journal").empty() ||
                              !args.str("fairness-out").empty();

        // A comma list of mechanisms fans out into a fairness sweep
        // (resumable via --fairness-journal, CSV via --fairness-out).
        const auto mechs = splitCommas(args.str("mechanism"));
        if (fairness &&
            (mechs.size() > 1 || !args.str("fairness-journal").empty() ||
             !args.str("fairness-out").empty())) {
            std::vector<sim::CmpConfig> points;
            for (const auto &m : mechs) {
                cfg.mechanism = ctrl::parseMechanism(m);
                points.push_back(cfg);
            }
            sim::FairnessSweepOptions opt;
            opt.journal = args.str("fairness-journal");
            const sim::FairnessReport rep =
                sim::runFairnessSweep(points, opt);
            sim::writeFairnessCsv(std::cout, points, rep);
            if (const std::string &path = args.str("fairness-out");
                !path.empty()) {
                writeFileOrDie(path, [&](std::ostream &os) {
                    sim::writeFairnessCsv(os, points, rep);
                });
            }
            if (rep.journaled())
                std::cerr << "burstsim: " << rep.journaled()
                          << " mixes restored from journal\n";
            return 0;
        }

        cfg.mechanism = ctrl::parseMechanism(args.str("mechanism"));
        const auto r = fairness ? sim::runCmpFairness(cfg)
                                : sim::runCmpExperiment(cfg);
        if (args.flag("json"))
            sim::writeCmpResultJson(std::cout, r);
        else
            sim::writeCmpResultText(std::cout, r);
        return 0;
    }

    if (args.flag("sweep")) {
        // Points: every listed workload under every mechanism, in
        // workload-major order (deterministic slot layout).
        const sim::ExperimentConfig base = configFrom(args);
        std::vector<sim::ExperimentConfig> points;
        for (const std::string &wl : splitCommas(args.str("workload"))) {
            for (ctrl::Mechanism m : ctrl::kAllMechanisms) {
                sim::ExperimentConfig cfg = base;
                cfg.workload = wl;
                cfg.mechanism = m;
                points.push_back(cfg);
            }
        }

        sim::SweepOptions opt;
        opt.jobs = unsigned(args.u64("jobs"));
        opt.maxAttempts = unsigned(args.u64("retries")) + 1;
        if (!args.str("max-failures").empty())
            opt.maxFailures = args.u64("max-failures");
        opt.journal = args.str("sweep-journal");
        opt.cancel = &g_interrupted;
        opt.progressPath = args.str("progress-out");
        const std::string &hb = args.str("heartbeat-sec");
        if (!hb.empty()) {
            char *end = nullptr;
            opt.heartbeatSec = std::strtod(hb.c_str(), &end);
            if (end == hb.c_str() || *end || opt.heartbeatSec < 0)
                fatal("--heartbeat-sec must be a non-negative number");
        }

        std::signal(SIGINT, onSigint);
        const sim::SweepReport rep = sim::runExperimentSweep(points, opt);
        std::signal(SIGINT, SIG_DFL);

        sim::writeSweepTable(std::cout, points, rep);
        if (const std::string &path = args.str("sweep-out");
            !path.empty()) {
            writeFileOrDie(path, [&](std::ostream &os) {
                sim::writeSweepCsv(os, points, rep);
            });
        }
        if (const std::size_t failed = rep.failures())
            std::cerr << "burstsim: " << failed << " of "
                      << points.size() << " sweep points failed\n";
        if (rep.journaled())
            std::cerr << "burstsim: " << rep.journaled()
                      << " points restored from journal\n";
        if (rep.cancelled) {
            std::cerr << "burstsim: sweep interrupted; completed points "
                         "are journaled\n";
            return 130;
        }
        if (rep.aborted) {
            std::cerr << "burstsim: sweep aborted after exceeding "
                         "--max-failures\n";
            return 3;
        }
        return 0;
    }

    const sim::RunResult r = sim::runExperiment(configFrom(args));
    if (args.flag("json"))
        sim::writeResultJson(std::cout, r);
    else
        sim::writeResultText(std::cout, r);

    if (const std::string &path = args.str("metrics-out"); !path.empty()) {
        const bool as_json =
            path.size() >= 5 && path.rfind(".json") == path.size() - 5;
        writeFileOrDie(path, [&](std::ostream &os) {
            if (as_json)
                r.obs->writeMetricsJson(os);
            else
                r.obs->writeMetricsCsv(os);
        });
    }
    if (const std::string &path = args.str("trace-out"); !path.empty()) {
        writeFileOrDie(path, [&](std::ostream &os) {
            r.obs->writeChromeTrace(os);
        });
    }
    if (const std::string &path = args.str("stall-out"); !path.empty()) {
        writeFileOrDie(path, [&](std::ostream &os) {
            r.obs->writeStallJson(os);
        });
    }
    if (const std::string &path = args.str("introspect-out");
        !path.empty()) {
        writeFileOrDie(path, [&](std::ostream &os) {
            r.obs->writeIntrospectJson(os);
        });
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // Library code reports failures as SimError; turning one into a
    // process exit happens here and nowhere else.
    try {
        return runCli(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "burstsim: " << e.describe() << '\n';
        return 1;
    }
}
