/**
 * @file
 * Visualizing scheduler decisions as an ASCII command waterfall — the
 * same picture the paper draws in Figures 1 and 2.
 *
 * Attaches a CommandLog to the SDRAM device, runs a small access stream
 * under BkInOrder and under Burst_TH, and renders both timelines so the
 * burst structure (back-to-back R's over one open row, precharge/activate
 * of other banks hidden under data transfers) is visible directly.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "dram/command_log.hh"
#include "dram/memory_system.hh"

using namespace bsim;

namespace
{

dram::DramConfig
smallConfig()
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 16;
    cfg.blocksPerRow = 32;
    cfg.timing.tREFI = 0; // keep the picture clean
    return cfg;
}

void
runAndRender(ctrl::Mechanism mech)
{
    dram::MemorySystem mem(smallConfig());
    dram::CommandLog log;
    mem.attachLog(&log);

    ctrl::ControllerConfig ccfg;
    ccfg.mechanism = mech;
    ctrl::MemoryController controller(mem, ccfg);

    // Two four-access bursts (same row) plus two conflicting accesses,
    // mirroring the flavor of the paper's worked example.
    struct Req
    {
        std::uint32_t bank, row, col;
    };
    const std::vector<Req> reqs = {
        {0, 1, 0}, {1, 2, 0}, {0, 3, 0}, {0, 1, 1},
        {0, 1, 2}, {1, 2, 1}, {0, 1, 3}, {1, 5, 0},
    };
    Tick now = 0;
    for (const Req &rq : reqs) {
        dram::Coords c{0, 0, rq.bank, rq.row, rq.col};
        controller.submit(AccessType::Read,
                          mem.addressMap().encode(c), now);
    }
    while (controller.busy() && now < 500)
        controller.tick(now++);

    std::cout << ctrl::mechanismName(mech) << " (" << now
              << " cycles to drain):\n";
    log.renderTimeline(std::cout, 0, now);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "bus_timeline: SDRAM command waterfalls per scheduling "
                 "mechanism\n(8 reads: a 4-access row-1 burst in bank 0, "
                 "a 2-access row-2 burst in bank 1,\n a row-3 conflict "
                 "in bank 0 and a row-5 access in bank 1)\n\n";
    runAndRender(ctrl::Mechanism::BkInOrder);
    runAndRender(ctrl::Mechanism::BurstTH);
    std::cout << "Burst scheduling clusters the row-1 reads back to back "
                 "and hides the other\nbank's precharge/activate under "
                 "the data transfers.\n";
    return 0;
}
