/**
 * @file
 * Trace capture and replay.
 *
 * Generates a synthetic trace for a chosen benchmark profile, writes it
 * to a portable text trace file, reads it back, and replays the identical
 * instruction stream through the full system twice — once per scheduling
 * mechanism — demonstrating (a) the trace file format and (b) that
 * replayed traces make policy comparisons exactly apples to apples.
 *
 *   ./trace_replay [workload] [instructions] [path]
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/table.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"
#include "trace/trace_gen.hh"

int
main(int argc, char **argv)
{
    using namespace bsim;

    const std::string workload = argc > 1 ? argv[1] : "mgrid";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/burstsim_" + workload + ".trace";

    // 1. Capture: synthesize and persist the trace.
    {
        trace::SyntheticGenerator gen(trace::profileByName(workload),
                                      instructions, 42);
        std::ofstream out(path);
        out << "# burstsim trace: " << workload << ", " << instructions
            << " instructions, seed 42\n";
        const auto written = trace::writeTrace(out, gen, instructions);
        std::cout << "captured " << written << " instructions to " << path
                  << "\n\n";
    }

    // 2. Replay the identical stream under two mechanisms.
    Table t("replaying the same trace:");
    t.header({"mechanism", "exec cycles", "IPC", "read lat", "row hit"});
    for (ctrl::Mechanism m :
         {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}) {
        auto replay = trace::loadTraceFile(path);
        sim::SystemConfig cfg = sim::SystemConfig::baseline();
        cfg.ctrl.mechanism = m;
        sim::System sys(cfg, *replay);
        sys.run(Tick(instructions) * 100 + 1'000'000);
        if (!sys.done()) {
            std::cerr << "replay did not finish\n";
            return 1;
        }
        const auto &st = sys.controller().stats();
        t.row({
            ctrl::mechanismName(m),
            std::to_string(sys.execCpuCycles()),
            Table::num(double(instructions) /
                           double(sys.execCpuCycles()), 3),
            Table::num(st.readLatency.mean(), 1),
            Table::pct(st.rowHitRate()),
        });
    }
    t.print(std::cout);
    std::cout << "\n(no cache prewarming here, so absolute numbers differ "
                 "from the bench harness;\nthe trace file makes the "
                 "comparison exactly repeatable)\n";
    return 0;
}
