/**
 * @file
 * Chip-multiprocessor example (paper Section 6): run a mix of workloads
 * on 1-4 cores with private caches sharing one memory controller, and
 * watch how scheduling quality and per-core slowdowns change as the
 * memory system becomes the bottleneck.
 *
 *   ./cmp_workloads [instructions-per-core]
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace bsim;

    const std::uint64_t instr =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40'000;

    std::cout << "cmp_workloads: private caches, shared DDR2-800 memory "
                 "controller\n("
              << instr << " instructions per core)\n\n";

    const std::vector<std::vector<std::string>> configs = {
        {"swim"},
        {"swim", "mcf"},
        {"swim", "mcf", "gcc", "art"},
    };

    for (const auto &wls : configs) {
        Table t;
        std::string name;
        for (const auto &w : wls)
            name += (name.empty() ? "" : "+") + w;
        t.header({name, "exec cycles", "data bus", "GB/s", "WQ sat",
                  "per-core finish"});
        for (ctrl::Mechanism m :
             {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}) {
            const auto r = sim::runCmpExperiment(wls, m, instr);
            std::string percore;
            for (auto c : r.perCoreCpuCycles)
                percore += (percore.empty() ? "" : " / ") +
                           std::to_string(c / 1000) + "k";
            t.row({
                ctrl::mechanismName(m),
                std::to_string(r.execCpuCycles),
                Table::pct(r.dataBusUtil),
                Table::num(r.bandwidthGBs, 2),
                Table::pct(r.ctrl.writeSaturationRate()),
                percore,
            });
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "More cores raise data-bus pressure; burst scheduling's "
                 "advantage shows in the\nbandwidth and saturation "
                 "columns even when both policies near the pin limit.\n";
    return 0;
}
