/**
 * @file
 * Policy explorer: run one workload under every access reordering
 * mechanism of Table 4 and print the full metric comparison — the fastest
 * way to see how the mechanisms trade read latency against write-queue
 * pressure on a given access pattern.
 *
 *   ./policy_explorer [workload] [instructions]
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace bsim;

    const std::string workload = argc > 1 ? argv[1] : "swim";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

    std::vector<ctrl::Mechanism> mechanisms(std::begin(ctrl::kAllMechanisms),
                                            std::end(ctrl::kAllMechanisms));
    const auto results =
        sim::runMechanismSweep(workload, mechanisms, instructions);

    std::cout << "workload: " << workload << "  (" << results[0].instructions
              << " instructions; latencies in memory cycles)\n\n";

    Table t;
    t.header({"mechanism", "exec", "norm", "IPC", "rd lat", "wr lat",
              "hit", "conf", "empty", "abus", "dbus", "WQsat", "GB/s",
              "rd/ki", "wr/ki", "preempt", "piggyb"});
    const double base = double(results[0].execCpuCycles);
    for (const auto &r : results) {
        t.row({
            ctrl::mechanismName(r.mechanism),
            std::to_string(r.execCpuCycles),
            Table::num(double(r.execCpuCycles) / base, 3),
            Table::num(r.ipc, 3),
            Table::num(r.ctrl.readLatency.mean(), 1),
            Table::num(r.ctrl.writeLatency.mean(), 1),
            Table::pct(r.ctrl.rowHitRate()),
            Table::pct(r.ctrl.rowConflictRate()),
            Table::pct(r.ctrl.rowEmptyRate()),
            Table::pct(r.addrBusUtil),
            Table::pct(r.dataBusUtil),
            Table::pct(r.ctrl.writeSaturationRate()),
            Table::num(r.bandwidthGBs, 2),
            Table::num(double(r.ctrl.reads) * 1000.0 /
                           double(r.instructions), 1),
            Table::num(double(r.ctrl.writes) * 1000.0 /
                           double(r.instructions), 1),
            std::to_string(std::uint64_t(
                r.sched.count("preemptions") ? r.sched.at("preemptions")
                                             : 0)),
            std::to_string(std::uint64_t(
                r.sched.count("piggybacks") ? r.sched.at("piggybacks") : 0)),
        });
    }
    t.print(std::cout);
    return 0;
}
