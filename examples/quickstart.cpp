/**
 * @file
 * Quickstart: build the Table 3 baseline machine, run one workload under
 * two scheduling mechanisms, and print the headline metrics.
 *
 *   ./quickstart [workload] [instructions]
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace bsim;

    const std::string workload = argc > 1 ? argv[1] : "swim";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;

    std::cout << "burstsim quickstart: workload=" << workload
              << " instructions=" << instructions << "\n\n";

    Table table("Baseline (BkInOrder) vs burst scheduling (Burst_TH):");
    table.header({"mechanism", "exec cycles", "IPC", "read lat", "write lat",
                  "row hit", "data bus", "WQ sat"});

    for (ctrl::Mechanism m :
         {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::BurstTH}) {
        sim::ExperimentConfig cfg;
        cfg.workload = workload;
        cfg.mechanism = m;
        cfg.instructions = instructions;
        const sim::RunResult r = sim::runExperiment(cfg);
        table.row({
            ctrl::mechanismName(m),
            std::to_string(r.execCpuCycles),
            Table::num(r.ipc, 3),
            Table::num(r.ctrl.readLatency.mean(), 1),
            Table::num(r.ctrl.writeLatency.mean(), 1),
            Table::pct(r.ctrl.rowHitRate()),
            Table::pct(r.dataBusUtil),
            Table::pct(r.ctrl.writeSaturationRate()),
        });
    }
    table.print(std::cout);
    std::cout << "\nLatencies are in memory bus cycles (2.5 ns at DDR2-800)."
              << std::endl;
    return 0;
}
