/**
 * @file
 * Extending burstsim with a custom access reordering mechanism.
 *
 * This example implements a "closed-row first" scheduler through the
 * public Scheduler interface: it prefers accesses whose banks are
 * precharged (cheap row empties) over everything else, a policy the
 * paper does not evaluate. It then races the custom policy against
 * BkInOrder and Burst_TH on the same access stream, driving the
 * controller directly — the lowest-level public API.
 *
 * The point of the example is the integration pattern:
 *   1. subclass bsim::ctrl::Scheduler,
 *   2. keep whatever queue structures your policy needs,
 *   3. issue at most one unblocked transaction per tick() through the
 *      timing engine (the engine rejects anything illegal, so a policy
 *      bug cannot violate device timing),
 *   4. drive it with MemoryController or standalone.
 */

#include <deque>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "ctrl/controller.hh"
#include "ctrl/scheduler.hh"
#include "ctrl/schedulers/factory.hh"
#include "dram/memory_system.hh"

using namespace bsim;

namespace
{

/** Prefer accesses that find their bank precharged (row empty). */
class ClosedRowFirstScheduler : public ctrl::Scheduler
{
  public:
    explicit ClosedRowFirstScheduler(const ctrl::SchedulerContext &ctx)
        : Scheduler(ctx), queues_(numBanks())
    {
    }

    void
    enqueue(ctrl::MemAccess *a) override
    {
        queues_[bankIndex(a->coords)].push_back(a);
        if (a->isWrite()) {
            writes_ += 1;
            noteWriteEnqueued(a);
        } else {
            reads_ += 1;
        }
    }

    Issued
    tick(Tick now) override
    {
        // Pass 1: any queue head whose bank is closed (row empty) or
        // open at the right row (hit). Pass 2: anything issuable.
        for (int pass = 0; pass < 2; ++pass) {
            for (auto &q : queues_) {
                if (q.empty())
                    continue;
                ctrl::MemAccess *a = q.front();
                const auto outcome = ctx_.mem->classify(a->coords);
                if (pass == 0 && outcome == dram::RowOutcome::Conflict)
                    continue;
                if (!canIssueFor(a, now))
                    continue;
                Issued out = issueFor(a, now);
                if (out.columnAccess) {
                    q.pop_front();
                    if (a->isWrite())
                        writes_ -= 1;
                    else
                        reads_ -= 1;
                }
                return out;
            }
        }
        return {};
    }

    std::size_t readCount() const override { return reads_; }
    std::size_t writeCount() const override { return writes_; }
    bool hasWork() const override { return reads_ + writes_ > 0; }

  private:
    std::vector<std::deque<ctrl::MemAccess *>> queues_;
    std::size_t reads_ = 0;
    std::size_t writes_ = 0;
};

/** Result of racing one scheduler. */
struct RaceResult
{
    Tick cycles = 0;
    int hits = 0, empties = 0, conflicts = 0;
};

/** Drive one scheduler over a fixed random access stream. */
RaceResult
race(dram::MemorySystem &mem, ctrl::Scheduler &sched, std::uint64_t seed,
     int accesses)
{
    Rng rng(seed);
    std::vector<std::unique_ptr<ctrl::MemAccess>> own;
    Tick now = 0;
    int submitted = 0;
    while (submitted < accesses || sched.hasWork()) {
        // A new access every few cycles, 30% writes, skewed row reuse.
        if (submitted < accesses && rng.chance(0.5)) {
            auto a = std::make_unique<ctrl::MemAccess>();
            a->id = std::uint64_t(submitted + 1);
            a->type = rng.chance(0.3) ? AccessType::Write
                                      : AccessType::Read;
            dram::Coords c;
            c.channel = 0;
            c.rank = std::uint32_t(rng.below(2));
            c.bank = std::uint32_t(rng.below(2));
            c.row = std::uint32_t(rng.below(4)); // few rows: reuse
            c.col = std::uint32_t(rng.below(32));
            a->coords = c;
            a->addr = mem.addressMap().encode(c);
            a->arrival = now;
            sched.enqueue(a.get());
            own.push_back(std::move(a));
            submitted += 1;
        }
        sched.tick(now);
        ++now;
    }
    RaceResult res;
    res.cycles = now;
    for (const auto &a : own) {
        if (!a->outcomeValid)
            continue;
        switch (a->outcome) {
          case dram::RowOutcome::Hit: res.hits += 1; break;
          case dram::RowOutcome::Empty: res.empties += 1; break;
          case dram::RowOutcome::Conflict: res.conflicts += 1; break;
        }
    }
    return res;
}

} // namespace

int
main()
{
    std::cout << "custom_scheduler: plugging a new policy into the "
                 "burstsim scheduler API\n\n";

    dram::DramConfig dcfg;
    dcfg.channels = 1;
    dcfg.ranksPerChannel = 2;
    dcfg.banksPerRank = 2;
    dcfg.rowsPerBank = 64;
    dcfg.blocksPerRow = 32;
    dcfg.timing.tREFI = 0;

    Table t("500 accesses, identical stream, one channel:");
    t.header({"policy", "cycles to drain", "row hit", "row empty",
              "row conflict"});

    struct Entry
    {
        const char *name;
        std::function<std::unique_ptr<ctrl::Scheduler>(
            const ctrl::SchedulerContext &)>
            make;
    };
    ctrl::GlobalCounts counts;
    const std::vector<Entry> entries = {
        {"BkInOrder",
         [](const auto &ctx) {
             return ctrl::makeScheduler(ctrl::Mechanism::BkInOrder, ctx);
         }},
        {"Burst_TH",
         [](const auto &ctx) {
             return ctrl::makeScheduler(ctrl::Mechanism::BurstTH, ctx);
         }},
        {"ClosedRowFirst (custom)",
         [](const auto &ctx) -> std::unique_ptr<ctrl::Scheduler> {
             return std::make_unique<ClosedRowFirstScheduler>(ctx);
         }},
    };

    for (const auto &e : entries) {
        dram::MemorySystem mem(dcfg);
        ctrl::SchedulerContext ctx;
        ctx.mem = &mem;
        ctx.channel = 0;
        ctx.global = &counts;
        auto sched = e.make(ctx);
        const RaceResult r = race(mem, *sched, 2007, 500);
        t.row({e.name, std::to_string(r.cycles),
               std::to_string(r.hits), std::to_string(r.empties),
               std::to_string(r.conflicts)});
    }
    t.print(std::cout);
    std::cout << "\nFewer cycles to drain = better; note how each policy "
                 "trades row hits\nagainst conflicts on the same stream.\n";
    return 0;
}
