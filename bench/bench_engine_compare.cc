/**
 * @file
 * Engine comparison (google-benchmark): the tick-accurate step engine
 * versus the event-driven cycle-skipping engine, end to end, across the
 * five scheduler classes. The figure of merit is simulated memory
 * cycles per wall-clock second (counter `mem_cycles/s`); both engines
 * produce byte-identical statistics (tests/integration/
 * test_engine_equivalence.cc), so the ratio is pure simulator speed.
 *
 * Two workloads bracket the design space:
 *
 *  - `mcf` (paper low-MLP SPEC model, ~8 overlapped misses in steady
 *    state): most memory cycles carry at least one event, so the skip
 *    engine's win is bounded by Amdahl — the per-instruction trace
 *    generation and cache/core modelling shared by both engines.
 *  - `pchase` (MLP = 1 microbenchmark: one serialized pointer chase,
 *    every load a main-memory miss): the machine alternates ~40-cycle
 *    fully-dead stall spans with a handful of live cycles, which is
 *    the regime the horizon machinery targets. Expected ratio is an
 *    order of magnitude or more (see docs/performance.md for measured
 *    numbers).
 *
 * These are engineering benchmarks for the simulator itself, not paper
 * results.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "obs/engine_introspect.hh"
#include "obs/observability.hh"
#include "obs/selfprof.hh"
#include "sim/experiment.hh"

using namespace bsim;

namespace
{

constexpr ctrl::Mechanism kSchedulerClasses[] = {
    ctrl::Mechanism::BkInOrder,       // per-bank FIFOs, round robin
    ctrl::Mechanism::RowHit,          // row-hit first
    ctrl::Mechanism::Intel,           // Intel P35-style read first
    ctrl::Mechanism::Burst,           // the paper's burst scheduling
    ctrl::Mechanism::AdaptiveHistory, // Hur & Lin history-based
};

void
runEngine(benchmark::State &state, const char *workload,
          std::uint64_t instructions)
{
    sim::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.mechanism = kSchedulerClasses[state.range(1)];
    cfg.engine =
        state.range(0) ? sim::EngineKind::Skip : sim::EngineKind::Step;
    cfg.instructions = instructions;

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto r = sim::runExperiment(cfg);
        cycles = r.memCycles;
        benchmark::DoNotOptimize(r.execCpuCycles);
    }
    state.counters["mem_cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsIterationInvariantRate);
    state.counters["mem_cycles"] = benchmark::Counter(double(cycles));
    state.SetLabel(std::string(sim::engineKindName(cfg.engine)) + "/" +
                   ctrl::mechanismName(cfg.mechanism));
}

/** Dense traffic: the honest worst case for cycle skipping. */
void
BM_Engine_mcf(benchmark::State &state)
{
    runEngine(state, "mcf", 60'000);
}

/** Serialized misses: the case the skip engine exists for. */
void
BM_Engine_pchase(benchmark::State &state)
{
    runEngine(state, "pchase", 60'000);
}

void
engineArgs(benchmark::internal::Benchmark *b)
{
    for (int engine = 0; engine <= 1; ++engine)
        for (int mech = 0; mech < 5; ++mech)
            b->Args({engine, mech});
}

BENCHMARK(BM_Engine_mcf)->Apply(engineArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Engine_pchase)
    ->Apply(engineArgs)
    ->Unit(benchmark::kMillisecond);

/**
 * --introspect-out=PATH mode: instead of timing the engines, run the
 * skip engine with engine introspection + host self-profiling across
 * the five scheduler classes on both bracket workloads and write the
 * wake-reason attribution baseline (the committed BENCH_selfprof.json;
 * the numbers docs/performance.md quotes for "why can't mcf skip").
 * The engine_introspect sections are deterministic; selfprof_us is
 * host wall time and varies run to run, like every BENCH_*.json.
 */
int
writeIntrospectBaseline(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot open '" << path << "' for writing\n";
        return 1;
    }

    constexpr std::uint64_t kInstructions = 60'000;
    JsonWriter w(os);
    w.beginObject();
    w.key("instructions").value(kInstructions);
    w.key("engine").value("skip");
    w.key("runs").beginArray();
    for (const char *workload : {"pchase", "mcf"}) {
        for (const ctrl::Mechanism mech : kSchedulerClasses) {
            sim::ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.mechanism = mech;
            cfg.instructions = kInstructions;
            cfg.engine = sim::EngineKind::Skip;
            cfg.obs.engineIntrospect = true;
            cfg.obs.selfProf = true;
            const sim::RunResult r = sim::runExperiment(cfg);

            w.beginObject();
            w.key("workload").value(workload);
            w.key("mechanism").value(ctrl::mechanismName(mech));
            w.key("mem_cycles").value(r.memCycles);
            w.key("engine_introspect");
            r.obs->introspect()->writeJson(w);
            if (r.selfprof && r.selfprof->valid) {
                w.key("selfprof_us").beginObject();
                w.key("total").value(r.selfprof->totalUs);
                for (std::size_t p = 0; p < obs::prof::kNumPhases; ++p)
                    if (r.selfprof->selfUsByPhase[p] > 0)
                        w.key(obs::prof::phaseName(obs::prof::Phase(p)))
                            .value(r.selfprof->selfUsByPhase[p]);
                w.endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        constexpr const char *kPrefix = "--introspect-out=";
        if (arg.rfind(kPrefix, 0) == 0)
            return writeIntrospectBaseline(
                arg.substr(std::string(kPrefix).size()));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
