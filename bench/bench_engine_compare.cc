/**
 * @file
 * Engine comparison (google-benchmark): the tick-accurate step engine
 * versus the event-driven cycle-skipping engine, end to end, across the
 * five scheduler classes. The figure of merit is simulated memory
 * cycles per wall-clock second (counter `mem_cycles/s`); both engines
 * produce byte-identical statistics (tests/integration/
 * test_engine_equivalence.cc), so the ratio is pure simulator speed.
 *
 * Two workloads bracket the design space:
 *
 *  - `mcf` (paper low-MLP SPEC model, ~8 overlapped misses in steady
 *    state): most memory cycles carry at least one event, so the skip
 *    engine's win is bounded by Amdahl — the per-instruction trace
 *    generation and cache/core modelling shared by both engines.
 *  - `pchase` (MLP = 1 microbenchmark: one serialized pointer chase,
 *    every load a main-memory miss): the machine alternates ~40-cycle
 *    fully-dead stall spans with a handful of live cycles, which is
 *    the regime the horizon machinery targets. Expected ratio is an
 *    order of magnitude or more (see docs/performance.md for measured
 *    numbers).
 *
 * These are engineering benchmarks for the simulator itself, not paper
 * results.
 */

#include <benchmark/benchmark.h>

#include "sim/experiment.hh"

using namespace bsim;

namespace
{

constexpr ctrl::Mechanism kSchedulerClasses[] = {
    ctrl::Mechanism::BkInOrder,       // per-bank FIFOs, round robin
    ctrl::Mechanism::RowHit,          // row-hit first
    ctrl::Mechanism::Intel,           // Intel P35-style read first
    ctrl::Mechanism::Burst,           // the paper's burst scheduling
    ctrl::Mechanism::AdaptiveHistory, // Hur & Lin history-based
};

void
runEngine(benchmark::State &state, const char *workload,
          std::uint64_t instructions)
{
    sim::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.mechanism = kSchedulerClasses[state.range(1)];
    cfg.engine =
        state.range(0) ? sim::EngineKind::Skip : sim::EngineKind::Step;
    cfg.instructions = instructions;

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto r = sim::runExperiment(cfg);
        cycles = r.memCycles;
        benchmark::DoNotOptimize(r.execCpuCycles);
    }
    state.counters["mem_cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsIterationInvariantRate);
    state.counters["mem_cycles"] = benchmark::Counter(double(cycles));
    state.SetLabel(std::string(sim::engineKindName(cfg.engine)) + "/" +
                   ctrl::mechanismName(cfg.mechanism));
}

/** Dense traffic: the honest worst case for cycle skipping. */
void
BM_Engine_mcf(benchmark::State &state)
{
    runEngine(state, "mcf", 60'000);
}

/** Serialized misses: the case the skip engine exists for. */
void
BM_Engine_pchase(benchmark::State &state)
{
    runEngine(state, "pchase", 60'000);
}

void
engineArgs(benchmark::internal::Benchmark *b)
{
    for (int engine = 0; engine <= 1; ++engine)
        for (int mech = 0; mech < 5; ++mech)
            b->Args({engine, mech});
}

BENCHMARK(BM_Engine_mcf)->Apply(engineArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Engine_pchase)
    ->Apply(engineArgs)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
