/**
 * @file
 * Engine comparison (google-benchmark): the tick-accurate step engine
 * versus the event-driven cycle-skipping engine, end to end, across the
 * five scheduler classes. The figure of merit is simulated memory
 * cycles per wall-clock second (counter `mem_cycles/s`); both engines
 * produce byte-identical statistics (tests/integration/
 * test_engine_equivalence.cc), so the ratio is pure simulator speed.
 *
 * Two workloads bracket the design space:
 *
 *  - `mcf` (paper low-MLP SPEC model, ~8 overlapped misses in steady
 *    state): most memory cycles carry at least one event, so the skip
 *    engine's win is bounded by Amdahl — the per-instruction trace
 *    generation and cache/core modelling shared by both engines.
 *  - `pchase` (MLP = 1 microbenchmark: one serialized pointer chase,
 *    every load a main-memory miss): the machine alternates ~40-cycle
 *    fully-dead stall spans with a handful of live cycles, which is
 *    the regime the horizon machinery targets. Expected ratio is an
 *    order of magnitude or more (see docs/performance.md for measured
 *    numbers).
 *
 * These are engineering benchmarks for the simulator itself, not paper
 * results.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_context.hh"
#include "common/json.hh"
#include "obs/engine_introspect.hh"
#include "obs/observability.hh"
#include "obs/selfprof.hh"
#include "sim/experiment.hh"
#include "trace/spec_profiles.hh"

using namespace bsim;

namespace
{

constexpr ctrl::Mechanism kSchedulerClasses[] = {
    ctrl::Mechanism::BkInOrder,       // per-bank FIFOs, round robin
    ctrl::Mechanism::RowHit,          // row-hit first
    ctrl::Mechanism::Intel,           // Intel P35-style read first
    ctrl::Mechanism::Burst,           // the paper's burst scheduling
    ctrl::Mechanism::AdaptiveHistory, // Hur & Lin history-based
};

void
runEngine(benchmark::State &state, const char *workload,
          std::uint64_t instructions)
{
    sim::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.mechanism = kSchedulerClasses[state.range(1)];
    cfg.engine =
        state.range(0) ? sim::EngineKind::Skip : sim::EngineKind::Step;
    cfg.instructions = instructions;

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto r = sim::runExperiment(cfg);
        cycles = r.memCycles;
        benchmark::DoNotOptimize(r.execCpuCycles);
    }
    state.counters["mem_cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsIterationInvariantRate);
    state.counters["mem_cycles"] = benchmark::Counter(double(cycles));
    state.SetLabel(std::string(sim::engineKindName(cfg.engine)) + "/" +
                   ctrl::mechanismName(cfg.mechanism));
}

/** Dense traffic: the honest worst case for cycle skipping. */
void
BM_Engine_mcf(benchmark::State &state)
{
    runEngine(state, "mcf", 60'000);
}

/** Serialized misses: the case the skip engine exists for. */
void
BM_Engine_pchase(benchmark::State &state)
{
    runEngine(state, "pchase", 60'000);
}

void
engineArgs(benchmark::internal::Benchmark *b)
{
    for (int engine = 0; engine <= 1; ++engine)
        for (int mech = 0; mech < 5; ++mech)
            b->Args({engine, mech});
}

BENCHMARK(BM_Engine_mcf)->Apply(engineArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Engine_pchase)
    ->Apply(engineArgs)
    ->Unit(benchmark::kMillisecond);

/**
 * --introspect-out=PATH mode: instead of timing the engines, run the
 * skip engine with engine introspection + host self-profiling across
 * the five scheduler classes on both bracket workloads and write the
 * wake-reason attribution baseline (the committed BENCH_selfprof.json;
 * the numbers docs/performance.md quotes for "why can't mcf skip").
 * The engine_introspect sections are deterministic; selfprof_us is
 * host wall time and varies run to run, like every BENCH_*.json.
 */
int
writeIntrospectBaseline(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot open '" << path << "' for writing\n";
        return 1;
    }

    constexpr std::uint64_t kInstructions = 60'000;
    JsonWriter w(os);
    w.beginObject();
    w.key("git_sha").value(BSIM_GIT_SHA);
    w.key("build_type").value(BSIM_BUILD_TYPE);
    w.key("instructions").value(kInstructions);
    w.key("engine").value("skip");
    w.key("runs").beginArray();
    for (const char *workload : {"pchase", "mcf"}) {
        for (const ctrl::Mechanism mech : kSchedulerClasses) {
            sim::ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.mechanism = mech;
            cfg.instructions = kInstructions;
            cfg.engine = sim::EngineKind::Skip;
            cfg.obs.engineIntrospect = true;
            cfg.obs.selfProf = true;
            const sim::RunResult r = sim::runExperiment(cfg);

            w.beginObject();
            w.key("workload").value(workload);
            w.key("mechanism").value(ctrl::mechanismName(mech));
            w.key("mem_cycles").value(r.memCycles);
            w.key("engine_introspect");
            r.obs->introspect()->writeJson(w);
            if (r.selfprof && r.selfprof->valid) {
                w.key("selfprof_us").beginObject();
                w.key("total").value(r.selfprof->totalUs);
                for (std::size_t p = 0; p < obs::prof::kNumPhases; ++p)
                    if (r.selfprof->selfUsByPhase[p] > 0)
                        w.key(obs::prof::phaseName(obs::prof::Phase(p)))
                            .value(r.selfprof->selfUsByPhase[p]);
                w.endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os ? 0 : 1;
}

/** Best-of-3 wall-clock milliseconds for one experiment config. */
double
wallMs(const sim::ExperimentConfig &cfg)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = sim::runExperiment(cfg);
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(r.execCpuCycles);
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (ms < best)
            best = ms;
    }
    return best;
}

struct RatioRow
{
    std::string workload;
    double stepMs = 0;
    double skipMs = 0;
    double ratio = 0;     //!< step / skip wall time: skip-engine speedup
    double skipFrac = 0;  //!< skipped / mem_cycles (the physical ceiling)
};

RatioRow
measureRatio(const std::string &workload, std::uint64_t instructions,
             bool blockingCore)
{
    sim::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.instructions = instructions;
    if (blockingCore) {
        cfg.robSize = 1;
        cfg.issueWidth = 1;
    }

    RatioRow row;
    row.workload = workload;
    cfg.engine = sim::EngineKind::Step;
    row.stepMs = wallMs(cfg);
    cfg.engine = sim::EngineKind::Skip;
    row.skipMs = wallMs(cfg);
    row.ratio = row.stepMs / row.skipMs;

    cfg.obs.engineIntrospect = true;
    const auto r = sim::runExperiment(cfg);
    const auto *in = r.obs->introspect();
    if (in && r.memCycles > 0)
        row.skipFrac = double(in->skippedCycles()) / double(r.memCycles);
    return row;
}

/**
 * --figure-set-out=PATH mode: wall-clock step-vs-skip ratio for all 16
 * figure-set profiles (Burst_TH scheduler) plus the geomean, written as
 * JSON with the git SHA / build type context. This is the "engine
 * speedup on the paper's own figure set" number docs/performance.md
 * quotes, including the per-profile skip fraction that bounds it.
 */
int
writeFigureSet(const std::string &path, bool blockingCore)
{
    bsim::bench::warnIfUnoptimized();
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot open '" << path << "' for writing\n";
        return 1;
    }

    const std::uint64_t instructions = sim::defaultInstructions();
    JsonWriter w(os);
    w.beginObject();
    w.key("git_sha").value(BSIM_GIT_SHA);
    w.key("build_type").value(BSIM_BUILD_TYPE);
    if (bsim::bench::unoptimizedBuild())
        w.key("unoptimized_build").value(true);
    w.key("instructions").value(instructions);
    w.key("core").value(blockingCore ? "blocking" : "ooo");
    w.key("mechanism").value("Burst_TH");
    w.key("profiles").beginArray();
    double logSum = 0;
    std::size_t n = 0;
    for (const std::string &name : trace::specProfileNames()) {
        const RatioRow row = measureRatio(name, instructions, blockingCore);
        std::cerr << "  " << name << ": step " << row.stepMs << " ms, skip "
                  << row.skipMs << " ms, ratio " << row.ratio
                  << " (skip fraction " << row.skipFrac << ")\n";
        w.beginObject();
        w.key("workload").value(row.workload);
        w.key("step_ms").value(row.stepMs);
        w.key("skip_ms").value(row.skipMs);
        w.key("ratio").value(row.ratio);
        w.key("skip_fraction").value(row.skipFrac);
        w.endObject();
        logSum += std::log(row.ratio);
        n += 1;
    }
    w.endArray();
    const double geomean = std::exp(logSum / double(n));
    std::cerr << "  geomean: " << geomean << "\n";
    w.key("geomean").value(geomean);
    w.endObject();
    os << '\n';
    return os ? 0 : 1;
}

/**
 * --perf-smoke mode (CI): fail if the skip engine's wall-clock speedup
 * drops below conservative floors. The floors come from measured
 * Release numbers with margin, not from wishes: on the bandwidth-bound
 * OoO mcf profile the skip ratio is *physically* capped by
 * mem_cycles / stepped_cycles ~= 1.26 (most cycles carry an event), so
 * the floor there only guards against the skip engine regressing to
 * slower-than-step. The low-MLP regimes the horizon machinery targets
 * (blocking-core mcf, pchase) get real multipliers.
 */
int
perfSmoke(const std::string &outPath)
{
    if (bsim::bench::unoptimizedBuild()) {
        bsim::bench::warnIfUnoptimized();
        std::cerr << "perf-smoke requires an optimized build; refusing to "
                     "enforce wall-clock floors on -O0 numbers\n";
        return 1;
    }

    struct Check
    {
        const char *label;
        const char *workload;
        bool blockingCore;
        double floor;
    };
    // Measured (Release, this machine): ooo mcf ~1.08x, blocking mcf
    // ~2.4x, pchase ~20x+. Floors leave ~2x margin for slow CI hosts.
    const Check checks[] = {
        {"mcf_ooo", "mcf", false, 0.85},
        {"mcf_blocking", "mcf", true, 1.60},
        {"pchase", "pchase", false, 8.0},
    };

    const std::uint64_t instructions = sim::defaultInstructions();
    bool ok = true;
    std::vector<RatioRow> rows;
    std::vector<const Check *> meta;
    for (const Check &c : checks) {
        RatioRow row =
            measureRatio(c.workload, instructions, c.blockingCore);
        const bool pass = row.ratio >= c.floor;
        std::cerr << (pass ? "PASS" : "FAIL") << " " << c.label
                  << ": step/skip ratio " << row.ratio << " (floor "
                  << c.floor << ", skip fraction " << row.skipFrac << ")\n";
        ok = ok && pass;
        rows.push_back(row);
        meta.push_back(&c);
    }

    if (!outPath.empty()) {
        std::ofstream os(outPath);
        if (!os) {
            std::cerr << "cannot open '" << outPath << "' for writing\n";
            return 1;
        }
        JsonWriter w(os);
        w.beginObject();
        w.key("git_sha").value(BSIM_GIT_SHA);
        w.key("build_type").value(BSIM_BUILD_TYPE);
        w.key("instructions").value(instructions);
        w.key("checks").beginArray();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            w.beginObject();
            w.key("label").value(meta[i]->label);
            w.key("workload").value(rows[i].workload);
            w.key("core").value(meta[i]->blockingCore ? "blocking" : "ooo");
            w.key("step_ms").value(rows[i].stepMs);
            w.key("skip_ms").value(rows[i].skipMs);
            w.key("ratio").value(rows[i].ratio);
            w.key("skip_fraction").value(rows[i].skipFrac);
            w.key("floor").value(meta[i]->floor);
            w.key("pass").value(rows[i].ratio >= meta[i]->floor);
            w.endObject();
        }
        w.endArray();
        w.key("pass").value(ok);
        w.endObject();
        os << '\n';
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool figureBlocking = false;
    std::string smokeOut;
    std::string figureOut;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&arg](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("--introspect-out=", 0) == 0)
            return writeIntrospectBaseline(valueOf("--introspect-out="));
        if (arg.rfind("--figure-set-out=", 0) == 0)
            figureOut = valueOf("--figure-set-out=");
        else if (arg == "--figure-set-blocking")
            figureBlocking = true;
        else if (arg == "--perf-smoke")
            smoke = true;
        else if (arg.rfind("--smoke-out=", 0) == 0)
            smokeOut = valueOf("--smoke-out=");
    }
    if (!figureOut.empty())
        return writeFigureSet(figureOut, figureBlocking);
    if (smoke)
        return perfSmoke(smokeOut);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bsim::bench::addBenchContext();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
