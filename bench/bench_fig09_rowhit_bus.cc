/**
 * @file
 * Figure 9 reproduction: (a) average row hit / row conflict / row empty
 * rates and (b) SDRAM address/data bus utilization per mechanism,
 * averaged over the 16 modelled benchmarks; plus the Section 5.2
 * effective-bandwidth comparison (paper: 2.0 GB/s BkInOrder -> 2.7 GB/s
 * Burst_TH, +35%).
 *
 * Paper expectations (shape): out-of-order mechanisms raise the row hit
 * rate; RowHit / Burst_WP / Burst_TH have the highest hit rates (they
 * exploit row hits in writes too); read preemption raises the row empty
 * rate (a preempting read finds the bank precharged); address bus
 * utilization barely moves while data bus utilization spreads by ~10
 * percentage points with Burst_TH highest.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Figure 9: row outcomes and bus utilization",
                  "Fig. 9(a)/(b) + Section 5.2 bandwidth");

    const bench::Sweep s = bench::sweepAll();

    Table t("16-benchmark means:");
    t.header({"mechanism", "row hit", "row conflict", "row empty",
              "addr bus", "data bus", "GB/s"});
    for (std::size_t m = 0; m < s.mechanisms.size(); ++m) {
        auto mean = [&](auto metric) {
            return bench::meanOver(s, m, metric);
        };
        t.row({
            ctrl::mechanismName(s.mechanisms[m]),
            Table::pct(mean([](const auto &r) {
                return r.ctrl.rowHitRate();
            })),
            Table::pct(mean([](const auto &r) {
                return r.ctrl.rowConflictRate();
            })),
            Table::pct(mean([](const auto &r) {
                return r.ctrl.rowEmptyRate();
            })),
            Table::pct(mean([](const auto &r) { return r.addrBusUtil; })),
            Table::pct(mean([](const auto &r) { return r.dataBusUtil; })),
            Table::num(mean([](const auto &r) { return r.bandwidthGBs; }),
                       2),
        });
    }
    t.print(std::cout);

    const double bw_base = bench::meanOver(
        s, 0, [](const auto &r) { return r.bandwidthGBs; });
    const double bw_th = bench::meanOver(
        s, s.mechanisms.size() - 1,
        [](const auto &r) { return r.bandwidthGBs; });
    std::cout << "\neffective bandwidth: BkInOrder "
              << Table::num(bw_base, 2) << " GB/s -> Burst_TH "
              << Table::num(bw_th, 2) << " GB/s ("
              << Table::pct(bw_th / bw_base - 1.0)
              << "; paper: 2.0 -> 2.7 GB/s, +35%)\n\ncsv:\n";
    t.printCsv(std::cout);
    return 0;
}
