/**
 * @file
 * Ablations and extensions beyond the paper's evaluated design space:
 *
 *  1. rank awareness of the Table 2 priorities (what the rank-to-rank
 *     turnaround avoidance is worth);
 *  2. the static open-page policy vs close-page-autoprecharge (Table 1);
 *  3. SDRAM address mappings: baseline page interleaving vs cache-block
 *     interleaving vs the bit-reversal mapping the authors study in
 *     their companion SCOPES'05 paper (Section 7 future work);
 *  4. Section 7 future work: dynamic threshold (computed from the
 *     read/write mix) and size-sorted bursts, vs static Burst_TH(52).
 *
 * All ablations run Burst_TH on a representative benchmark subset and
 * report execution time normalized to the Burst_TH baseline.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

namespace
{

const std::vector<std::string> kSubset = {"swim", "mcf", "gcc", "lucas",
                                          "art", "facerec"};

double
meanNormalizedExec(const std::vector<double> &base,
                   std::function<void(sim::ExperimentConfig &)> tweak)
{
    double sum = 0;
    for (std::size_t i = 0; i < kSubset.size(); ++i) {
        sim::ExperimentConfig cfg;
        cfg.workload = kSubset[i];
        cfg.mechanism = ctrl::Mechanism::BurstTH;
        tweak(cfg);
        sum += double(sim::runExperiment(cfg).execCpuCycles) / base[i];
    }
    return sum / double(kSubset.size());
}

} // namespace

int
main()
{
    bench::banner("Ablations and Section 7 extensions",
                  "design-space study beyond the paper's figures");

    std::vector<double> base;
    for (const auto &w : kSubset) {
        sim::ExperimentConfig cfg;
        cfg.workload = w;
        cfg.mechanism = ctrl::Mechanism::BurstTH;
        base.push_back(double(sim::runExperiment(cfg).execCpuCycles));
    }
    std::fprintf(stderr, "  baseline done\n");

    Table t("Burst_TH variants, exec time normalized to baseline "
            "Burst_TH(52) (mean over swim/mcf/gcc/lucas/art/facerec):");
    t.header({"variant", "normalized exec time"});
    t.row({"Burst_TH(52), page-interleave, open page [baseline]",
           "1.0000"});

    struct Variant
    {
        const char *name;
        std::function<void(sim::ExperimentConfig &)> tweak;
    };
    const std::vector<Variant> variants = {
        {"no rank awareness in Table 2 priorities",
         [](auto &c) { c.rankAware = false; }},
        {"close page autoprecharge policy",
         [](auto &c) { c.pagePolicy = dram::PagePolicy::ClosePageAuto; }},
        {"predictive page policy (Ying Xu, Section 2.2)",
         [](auto &c) { c.pagePolicy = dram::PagePolicy::Predictive; }},
        {"cache-block interleaved address mapping",
         [](auto &c) {
             c.addressMap = dram::AddressMapKind::BlockInterleave;
         }},
        {"bit-reversal address mapping (SCOPES'05)",
         [](auto &c) {
             c.addressMap = dram::AddressMapKind::BitReversal;
         }},
        {"permutation-based interleaving (Zhang MICRO'00)",
         [](auto &c) {
             c.addressMap = dram::AddressMapKind::PermutationInterleave;
         }},
        {"dynamic threshold (read/write-mix adaptive, Section 7)",
         [](auto &c) { c.dynamicThreshold = true; }},
        {"bursts sorted by size instead of age (Section 7)",
         [](auto &c) { c.sortBurstsBySize = true; }},
        {"critical (dependence-chain) reads first in burst (Section 7)",
         [](auto &c) { c.criticalFirst = true; }},
        {"write coalescing in the controller (extension)",
         [](auto &c) { c.coalesceWrites = true; }},
    };

    for (const auto &v : variants) {
        const double norm = meanNormalizedExec(base, v.tweak);
        t.row({v.name, Table::num(norm, 4)});
        std::fprintf(stderr, "  %s done\n", v.name);
    }
    t.print(std::cout);

    std::cout << "\n> 1.0 means the variant is slower than the paper's "
                 "design point; the paper's\nchoices (open page, page "
                 "interleaving, rank-aware priorities) should all win "
                 "here.\n";
    return 0;
}
