/**
 * @file
 * Shared context stamping for the google-benchmark binaries: embeds the
 * git SHA (from the build-time generated bsim_git_sha.hh) and the CMake
 * build type into the benchmark JSON context, and complains loudly when
 * the binary was built without optimization — numbers recorded from a
 * debug build are not comparable to the committed BENCH_*.json
 * baselines and must never silently replace them.
 */

#ifndef BURSTSIM_BENCH_BENCH_CONTEXT_HH
#define BURSTSIM_BENCH_BENCH_CONTEXT_HH

#include <benchmark/benchmark.h>

#include <iostream>

#include "bsim_git_sha.hh"

#ifndef BSIM_BUILD_TYPE
#define BSIM_BUILD_TYPE "unknown"
#endif

namespace bsim::bench
{

/** True when the compiler ran without optimization (-O0). */
constexpr bool
unoptimizedBuild()
{
#ifdef __OPTIMIZE__
    return false;
#else
    return true;
#endif
}

/** Print the unmissable banner for timing runs from -O0 binaries. */
inline void
warnIfUnoptimized()
{
    if (!unoptimizedBuild())
        return;
    std::cerr
        << "\n"
        << "*** WARNING: this benchmark binary was built WITHOUT\n"
        << "*** optimization (build type '" BSIM_BUILD_TYPE "').\n"
        << "*** Timings are meaningless for baseline comparison; build\n"
        << "*** with -DCMAKE_BUILD_TYPE=Release before recording any\n"
        << "*** BENCH_*.json.\n\n";
}

/**
 * Stamp git SHA / build type into the google-benchmark JSON context and
 * emit the -O0 warning. Call after benchmark::Initialize.
 */
inline void
addBenchContext()
{
    ::benchmark::AddCustomContext("git_sha", BSIM_GIT_SHA);
    ::benchmark::AddCustomContext("build_type", BSIM_BUILD_TYPE);
    if (unoptimizedBuild())
        ::benchmark::AddCustomContext("unoptimized_build", "true");
    warnIfUnoptimized();
}

} // namespace bsim::bench

#endif // BURSTSIM_BENCH_BENCH_CONTEXT_HH
