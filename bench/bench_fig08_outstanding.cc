/**
 * @file
 * Figure 8 reproduction: distribution of outstanding memory accesses for
 * the swim benchmark under six mechanisms (percentage of time a given
 * number of reads/writes is outstanding in the main memory), plus the
 * Section 5.1 write-queue saturation rates.
 *
 * Paper expectations: Intel and Burst accumulate large numbers of
 * outstanding writes (postponed writes); read preemption pushes the
 * write distribution into the saturation region (Burst_RP saturates 70%
 * of the time vs Burst 46%, Intel 24%); Burst_WP nearly eliminates
 * saturation (2%); Burst_TH lands in between (9%).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Figure 8: outstanding accesses (swim)",
                  "Fig. 8(a)/(b) + Section 5.1 saturation rates");

    const std::vector<ctrl::Mechanism> mechs = {
        ctrl::Mechanism::BkInOrder, ctrl::Mechanism::RowHit,
        ctrl::Mechanism::Intel,     ctrl::Mechanism::BurstRP,
        ctrl::Mechanism::BurstWP,   ctrl::Mechanism::BurstTH,
    };
    const auto results = sim::runMechanismSweep("swim", mechs);

    // (a) outstanding reads: bucketed like the paper's 0..35 axis.
    {
        Table t("(a) outstanding reads: % of time (bucketed)");
        std::vector<std::string> hdr = {"mechanism"};
        for (int b = 0; b < 36; b += 5)
            hdr.push_back(std::to_string(b) + "-" + std::to_string(b + 4));
        hdr.push_back("35+");
        hdr.push_back("mean");
        t.header(hdr);
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const auto &h = results[m].ctrl.outstandingReads;
            std::vector<std::string> row = {
                ctrl::mechanismName(mechs[m])};
            for (int b = 0; b < 36; b += 5) {
                double frac = 0;
                for (int i = b; i < b + 5; ++i)
                    frac += h.fraction(std::size_t(i));
                row.push_back(Table::pct(frac));
            }
            row.push_back(Table::pct(h.fractionAtLeast(36)));
            row.push_back(Table::num(h.mean(), 1));
            t.row(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    // (b) outstanding writes: 0..70 axis.
    {
        Table t("(b) outstanding writes: % of time (bucketed)");
        std::vector<std::string> hdr = {"mechanism"};
        for (int b = 0; b < 70; b += 10)
            hdr.push_back(std::to_string(b) + "-" + std::to_string(b + 9));
        hdr.push_back("mean");
        t.header(hdr);
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const auto &h = results[m].ctrl.outstandingWrites;
            std::vector<std::string> row = {
                ctrl::mechanismName(mechs[m])};
            for (int b = 0; b < 70; b += 10) {
                double frac = 0;
                for (int i = b; i < b + 10; ++i)
                    frac += h.fraction(std::size_t(i));
                row.push_back(Table::pct(frac));
            }
            row.push_back(Table::num(h.mean(), 1));
            t.row(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    // Section 5.1: write queue saturation rates for swim.
    {
        Table t("write queue saturation (swim): % of time queue is full");
        t.header({"mechanism", "measured", "paper"});
        const std::map<std::string, const char *> paper = {
            {"Intel", "24%"},   {"Burst_RP", "70%"},
            {"Burst_WP", "2%"}, {"Burst_TH", "9%"},
        };
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const std::string name = ctrl::mechanismName(mechs[m]);
            const auto it = paper.find(name);
            t.row({name,
                   Table::pct(results[m].ctrl.writeSaturationRate()),
                   it != paper.end() ? it->second : "-"});
        }
        // Burst itself is quoted in the text too (46%).
        sim::ExperimentConfig cfg;
        cfg.workload = "swim";
        cfg.mechanism = ctrl::Mechanism::Burst;
        const auto burst = sim::runExperiment(cfg);
        t.row({"Burst", Table::pct(burst.ctrl.writeSaturationRate()),
               "46%"});
        t.print(std::cout);
    }
    return 0;
}
