/**
 * @file
 * Figure 7 reproduction: average read and write latency (memory cycles)
 * under each access reordering mechanism, averaged over the 16 modelled
 * SPEC CPU2000 benchmarks.
 *
 * Paper expectations (shape): all out-of-order mechanisms reduce read
 * latency by 26-47% vs BkInOrder; every write latency except RowHit's
 * increases (writes are postponed); Burst_RP pays the highest write
 * latency; write piggybacking pulls write latency back down.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Figure 7: access latency", "Fig. 7(a) read / 7(b) write");

    const bench::Sweep s = bench::sweepAll();

    Table t("average access latency in memory cycles (16-benchmark mean):");
    t.header({"mechanism", "read lat", "vs BkInOrder", "write lat",
              "vs BkInOrder"});

    const double base_rd = bench::meanOver(s, 0, [](const auto &r) {
        return r.ctrl.readLatency.mean();
    });
    const double base_wr = bench::meanOver(s, 0, [](const auto &r) {
        return r.ctrl.writeLatency.mean();
    });

    for (std::size_t m = 0; m < s.mechanisms.size(); ++m) {
        const double rd = bench::meanOver(s, m, [](const auto &r) {
            return r.ctrl.readLatency.mean();
        });
        const double wr = bench::meanOver(s, m, [](const auto &r) {
            return r.ctrl.writeLatency.mean();
        });
        t.row({ctrl::mechanismName(s.mechanisms[m]), Table::num(rd, 1),
               Table::pct(rd / base_rd - 1.0), Table::num(wr, 1),
               Table::pct(wr / base_wr - 1.0)});
    }
    t.print(std::cout);

    std::cout << "\npaper shape: OoO read latency -26%..-47%; write "
                 "latency up except RowHit;\nBurst_RP highest write "
                 "latency; piggybacking reduces write latency.\n\ncsv:\n";
    t.printCsv(std::cout);
    return 0;
}
