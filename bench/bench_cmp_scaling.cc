/**
 * @file
 * Chip-multiprocessor scaling study (paper Section 6: "Access reordering
 * mechanisms will play a more important role with chip level multiple
 * processors, as the memory controller will have larger number of
 * outstanding main memory accesses from which to select").
 *
 * Runs 1, 2 and 4 cores — both rate mode (N copies of swim) and a mixed
 * workload (swim + mcf + gcc + art) — under BkInOrder and Burst_TH, and
 * reports the reordering gain as a function of core count.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

namespace
{

double
gain(const std::vector<std::string> &wls, std::uint64_t instr)
{
    const auto base = sim::runCmpExperiment(
        wls, ctrl::Mechanism::BkInOrder, instr);
    const auto th =
        sim::runCmpExperiment(wls, ctrl::Mechanism::BurstTH, instr);
    return double(th.execCpuCycles) / double(base.execCpuCycles);
}

} // namespace

int
main()
{
    bench::banner("CMP scaling (Section 6)",
                  "reordering gains grow with core count");

    // Constant per-core instruction count: memory pressure grows with
    // the core count, as it would in a real CMP.
    const std::uint64_t instr = sim::defaultInstructions() / 2;

    Table t("Burst_TH execution time normalized to BkInOrder:");
    t.header({"configuration", "norm exec", "gain"});

    struct Row
    {
        const char *name;
        std::vector<std::string> wls;
    };
    const std::vector<Row> rows = {
        // Light, latency-bound workload: the Section 6 regime — more
        // cores give the controller more outstanding accesses to
        // reorder, so the gain grows.
        {"1 core: perlbmk", {"perlbmk"}},
        {"2 cores: perlbmk x2", {"perlbmk", "perlbmk"}},
        {"4 cores: perlbmk x4",
         {"perlbmk", "perlbmk", "perlbmk", "perlbmk"}},
        // Bandwidth-saturating workload: both policies approach the pin
        // bandwidth ceiling, so the relative gain compresses.
        {"1 core: swim", {"swim"}},
        {"2 cores: swim x2", {"swim", "swim"}},
        {"4 cores: swim x4", {"swim", "swim", "swim", "swim"}},
        // Heterogeneous mix.
        {"2 cores: swim+mcf", {"swim", "mcf"}},
        {"4 cores: swim+mcf+gcc+art", {"swim", "mcf", "gcc", "art"}},
    };
    for (const auto &row : rows) {
        const double norm = gain(row.wls, instr);
        t.row({row.name, Table::num(norm, 3),
               Table::pct(1.0 - norm)});
        std::fprintf(stderr, "  %s done\n", row.name);
    }
    t.print(std::cout);

    std::cout << "\nSection 6 conjectures that reordering gains grow "
                 "with core count. Measured:\nthat holds in the "
                 "latency-bound regime (perlbmk), while workloads that\n"
                 "already saturate bandwidth compress toward the pin "
                 "ceiling instead.\n";
    return 0;
}
