/**
 * @file
 * DRAM energy comparison (extension): the paper optimizes for time, but
 * its central quantity — the row hit rate — is also the dominant DRAM
 * energy lever. This bench reports the estimated energy per mechanism
 * (Micron TN-47-04 style model, see dram/power.hh) across the benchmark
 * suite: reordering mechanisms save energy twice, by avoiding
 * activate/precharge pairs and by finishing sooner (less standby).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("DRAM energy per mechanism",
                  "extension: energy view of the row-hit-rate results");

    const bench::Sweep s = bench::sweepAll();

    Table t("16-benchmark means:");
    t.header({"mechanism", "row hit", "ACT/PRE mJ", "burst mJ",
              "background mJ", "total mJ", "norm", "nJ/byte"});
    const double base_total = bench::meanOver(s, 0, [](const auto &r) {
        return r.energy.total();
    });
    for (std::size_t m = 0; m < s.mechanisms.size(); ++m) {
        auto mean = [&](auto metric) {
            return bench::meanOver(s, m, metric);
        };
        const double total = mean([](const auto &r) {
            return r.energy.total();
        });
        t.row({
            ctrl::mechanismName(s.mechanisms[m]),
            Table::pct(mean([](const auto &r) {
                return r.ctrl.rowHitRate();
            })),
            Table::num(1e3 * mean([](const auto &r) {
                           return r.energy.actPre;
                       }),
                       2),
            Table::num(1e3 * mean([](const auto &r) {
                           return r.energy.readBurst +
                                  r.energy.writeBurst;
                       }),
                       2),
            Table::num(1e3 * mean([](const auto &r) {
                           return r.energy.background;
                       }),
                       2),
            Table::num(1e3 * total, 2),
            Table::num(total / base_total, 3),
            Table::num(1e9 * mean([](const auto &r) {
                           return r.energy.perByte(
                               r.ctrl.bytesTransferred);
                       }),
                       2),
        });
    }
    t.print(std::cout);

    std::cout << "\nexpectation: mechanisms with higher row hit rates "
                 "spend less ACT/PRE energy per\nbyte, and faster "
                 "mechanisms spend less background energy — Burst_TH "
                 "lowest total.\n\ncsv:\n";
    t.printCsv(std::cout);
    return 0;
}
