/**
 * @file
 * Table 1 reproduction: possible SDRAM access latencies (idle busses) by
 * controller policy and row outcome, measured against the timing engine.
 *
 *   policy  row hit  row empty     row conflict
 *   OP      tCL      tRCD+tCL      tRP+tRCD+tCL
 *   CPA     N/A      tRCD+tCL      N/A
 */

#include <cstdio>

#include "common/table.hh"
#include "dram/memory_system.hh"

#include <iostream>

using namespace bsim;
using dram::CmdType;
using dram::Coords;

namespace
{

dram::DramConfig
smallConfig(dram::PagePolicy policy, const dram::Timing &t)
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 4;
    cfg.rowsPerBank = 64;
    cfg.blocksPerRow = 32;
    cfg.blockBytes = 64;
    cfg.timing = t;
    cfg.timing.tREFI = 0; // no refresh during the measurement
    cfg.pagePolicy = policy;
    return cfg;
}

/**
 * Measure command-to-first-data latency of an access finding the bank in
 * the given state. Returns latency in cycles from the first transaction.
 */
Tick
measure(dram::PagePolicy policy, const dram::Timing &t,
        dram::RowOutcome outcome)
{
    dram::MemorySystem mem(smallConfig(policy, t));
    const Coords target{0, 0, 0, 5, 0};

    Tick now = 0;
    auto issue_when_ready = [&](CmdType cmd, const Coords &c) {
        dram::Command command{cmd, c, 1};
        while (!mem.canIssue(command, now))
            ++now;
        return mem.issue(command, now);
    };

    // Prepare the bank state, then let all constraints settle.
    switch (outcome) {
      case dram::RowOutcome::Empty:
        break; // bank starts precharged
      case dram::RowOutcome::Hit:
        issue_when_ready(CmdType::Activate, target);
        ++now;
        break;
      case dram::RowOutcome::Conflict: {
        Coords other = target;
        other.row = 9;
        issue_when_ready(CmdType::Activate, other);
        ++now;
        break;
      }
    }
    now += 100; // quiesce: isolate the access's own latency

    const Tick start = now;
    Tick first_data = 0;
    for (;;) {
        const CmdType cmd = mem.nextCmdFor(target, AccessType::Read);
        const dram::IssueResult r = issue_when_ready(cmd, target);
        if (cmd == CmdType::Read) {
            first_data = r.dataStart;
            break;
        }
        ++now;
    }
    return first_data - start;
}

} // namespace

int
main()
{
    const dram::Timing t = dram::Timing::ddr2_800();
    std::printf("Table 1: SDRAM access latencies (first transaction to "
                "first data beat, idle busses)\n");
    std::printf("device: %s (tCL=%u tRCD=%u tRP=%u)\n\n", t.name.c_str(),
                t.tCL, t.tRCD, t.tRP);

    Table table;
    table.header({"policy", "row hit", "row empty", "row conflict"});

    {
        const Tick hit = measure(dram::PagePolicy::OpenPage, t,
                                 dram::RowOutcome::Hit);
        const Tick empty = measure(dram::PagePolicy::OpenPage, t,
                                   dram::RowOutcome::Empty);
        const Tick conflict = measure(dram::PagePolicy::OpenPage, t,
                                      dram::RowOutcome::Conflict);
        table.row({"OP", std::to_string(hit), std::to_string(empty),
                   std::to_string(conflict)});
    }
    {
        // Under CPA every access finds the bank precharged.
        const Tick empty = measure(dram::PagePolicy::ClosePageAuto, t,
                                   dram::RowOutcome::Empty);
        table.row({"CPA", "N/A", std::to_string(empty), "N/A"});
    }
    table.print(std::cout);

    std::printf("\nexpected: OP = {tCL=%u, tRCD+tCL=%u, tRP+tRCD+tCL=%u}, "
                "CPA = tRCD+tCL=%u\n",
                t.tCL, t.tRCD + t.tCL, t.tRP + t.tRCD + t.tCL,
                t.tRCD + t.tCL);
    return 0;
}
