/**
 * @file
 * Figure 11 reproduction: distribution of outstanding accesses for swim
 * under burst scheduling with thresholds {WP = TH0, TH8 .. TH56,
 * RP = TH64} (the write queue holds 64 entries, so Burst_RP and Burst_WP
 * are the two endpoints of the threshold spectrum — Section 5.4).
 *
 * Paper expectations: as the threshold rises the peak of the outstanding
 * write distribution moves right (more postponed writes); the write
 * buffer saturation rate stays below 7% for thresholds < 48, reaches 14%
 * at 56 and jumps to 70% at 64 (RP).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Figure 11: outstanding accesses vs threshold (swim)",
                  "Fig. 11(a)/(b) + Section 5.4 saturation-vs-threshold");

    const std::vector<std::size_t> thresholds = {0,  8,  16, 24, 32,
                                                 40, 48, 52, 56, 64};

    const sim::SweepRunner pool;
    std::fprintf(stderr, "  %zu thresholds on %u workers...\n",
                 thresholds.size(), pool.jobs());
    const auto results = pool.map<sim::RunResult>(
        thresholds.size(), [&](std::size_t i) {
            sim::ExperimentConfig cfg;
            cfg.workload = "swim";
            cfg.mechanism = ctrl::Mechanism::BurstTH;
            cfg.threshold = thresholds[i];
            return sim::runExperiment(cfg);
        });

    auto label = [&](std::size_t th) -> std::string {
        if (th == 0)
            return "WP(TH0)";
        if (th == 64)
            return "RP(TH64)";
        return "TH" + std::to_string(th);
    };

    {
        Table t("(a) outstanding reads: % of time (bucketed)");
        std::vector<std::string> hdr = {"threshold"};
        for (int b = 0; b < 36; b += 5)
            hdr.push_back(std::to_string(b) + "-" + std::to_string(b + 4));
        hdr.push_back("mean");
        t.header(hdr);
        for (std::size_t i = 0; i < thresholds.size(); ++i) {
            const auto &h = results[i].ctrl.outstandingReads;
            std::vector<std::string> row = {label(thresholds[i])};
            for (int b = 0; b < 36; b += 5) {
                double frac = 0;
                for (int k = b; k < b + 5; ++k)
                    frac += h.fraction(std::size_t(k));
                row.push_back(Table::pct(frac));
            }
            row.push_back(Table::num(h.mean(), 1));
            t.row(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    {
        Table t("(b) outstanding writes: % of time (bucketed)");
        std::vector<std::string> hdr = {"threshold"};
        for (int b = 0; b < 70; b += 10)
            hdr.push_back(std::to_string(b) + "-" + std::to_string(b + 9));
        hdr.push_back("mean");
        hdr.push_back("sat%");
        t.header(hdr);
        for (std::size_t i = 0; i < thresholds.size(); ++i) {
            const auto &h = results[i].ctrl.outstandingWrites;
            std::vector<std::string> row = {label(thresholds[i])};
            for (int b = 0; b < 70; b += 10) {
                double frac = 0;
                for (int k = b; k < b + 10; ++k)
                    frac += h.fraction(std::size_t(k));
                row.push_back(Table::pct(frac));
            }
            row.push_back(Table::num(h.mean(), 1));
            row.push_back(
                Table::pct(results[i].ctrl.writeSaturationRate()));
            t.row(row);
        }
        t.print(std::cout);
    }

    std::cout << "\npaper shape: write-distribution peak moves right with "
                 "the threshold;\nsaturation < 7% below TH48, ~14% at "
                 "TH56, ~70% at TH64 (RP).\n";
    return 0;
}
