/**
 * @file
 * Section 6 technology-trend study: as SDRAM bus frequency scales much
 * faster than the core timing parameters (DDR PC-2100 at 2-2-2 cycles /
 * 133 MHz -> DDR2 PC2-6400 at 5-5-5 cycles / 400 MHz, a 200% bandwidth
 * gain against a 17% latency gain), access latency in bus cycles grows —
 * the paper argues the improvement from access reordering therefore
 * grows with each generation.
 *
 * This bench measures the Burst_TH vs BkInOrder execution-time gain on
 * both devices across the benchmark suite.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Section 6: technology trend",
                  "row-conflict latency 6 -> 15 cycles; reordering gains "
                  "grow");

    const auto workloads = trace::specProfileNames();

    Table t("Burst_TH execution time normalized to BkInOrder, per device:");
    t.header({"benchmark", "DDR-266 (2-2-2)", "DDR2-800 (5-5-5)"});

    double sum_old = 0, sum_new = 0;
    for (const auto &w : workloads) {
        double norm[2] = {0, 0};
        int i = 0;
        for (sim::DeviceGen dev :
             {sim::DeviceGen::DDR_266, sim::DeviceGen::DDR2_800}) {
            sim::ExperimentConfig cfg;
            cfg.workload = w;
            cfg.device = dev;
            cfg.mechanism = ctrl::Mechanism::BkInOrder;
            const auto base = sim::runExperiment(cfg);
            cfg.mechanism = ctrl::Mechanism::BurstTH;
            const auto th = sim::runExperiment(cfg);
            norm[i++] = double(th.execCpuCycles) /
                        double(base.execCpuCycles);
        }
        sum_old += norm[0];
        sum_new += norm[1];
        t.row({w, Table::num(norm[0], 3), Table::num(norm[1], 3)});
        std::fprintf(stderr, "  %s done\n", w.c_str());
    }
    const double n = double(workloads.size());
    t.row({"average", Table::num(sum_old / n, 3),
           Table::num(sum_new / n, 3)});
    t.print(std::cout);

    std::cout << "\npaper expectation: the newer device (longer latencies "
                 "in bus cycles) shows the\nlarger reduction — burst "
                 "scheduling's advantage grows with the technology "
                 "trend.\n";
    return 0;
}
