/**
 * @file
 * Figure 12 reproduction: execution time, read latency and write latency
 * of burst scheduling under a static-threshold sweep, averaged over the
 * 16 modelled benchmarks and normalized to plain Burst.
 *
 * Paper expectations: read latency falls with the threshold up to ~40
 * then rises again (write-queue saturation stalls the pipeline); write
 * latency rises monotonically; execution time is minimized around
 * threshold 52 of 64.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Figure 12: threshold sweep",
                  "Fig. 12(a)/(b)/(c) + Section 5.4");

    const std::vector<std::size_t> thresholds = {0,  8,  16, 24, 32, 40,
                                                 48, 52, 56, 60, 64};
    const auto workloads = trace::specProfileNames();

    const sim::SweepRunner pool;
    std::fprintf(stderr, "  sweeping on %u workers...\n", pool.jobs());

    // Baseline: plain Burst (no preemption, no piggybacking).
    const auto burst_exec =
        pool.map<double>(workloads.size(), [&](std::size_t w) {
            sim::ExperimentConfig cfg;
            cfg.workload = workloads[w];
            cfg.mechanism = ctrl::Mechanism::Burst;
            return double(sim::runExperiment(cfg).execCpuCycles);
        });
    std::fprintf(stderr, "  burst baseline done\n");

    Table t("burst scheduling with threshold (normalized to Burst):");
    t.header({"threshold", "exec time", "read lat", "write lat", "WQ sat"});

    // One flat (threshold x workload) grid of independent runs.
    const std::size_t nw = workloads.size();
    const auto grid = pool.map<sim::RunResult>(
        thresholds.size() * nw, [&](std::size_t i) {
            sim::ExperimentConfig cfg;
            cfg.workload = workloads[i % nw];
            cfg.mechanism = ctrl::Mechanism::BurstTH;
            cfg.threshold = thresholds[i / nw];
            return sim::runExperiment(cfg);
        });

    double best_exec = 1e300;
    std::size_t best_th = 0;
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
        const std::size_t th = thresholds[ti];
        double exec_sum = 0, rd_sum = 0, wr_sum = 0, sat_sum = 0;
        for (std::size_t w = 0; w < nw; ++w) {
            const auto &r = grid[ti * nw + w];
            exec_sum += double(r.execCpuCycles) / burst_exec[w];
            rd_sum += r.ctrl.readLatency.mean();
            wr_sum += r.ctrl.writeLatency.mean();
            sat_sum += r.ctrl.writeSaturationRate();
        }
        const double n = double(nw);
        const double exec = exec_sum / n;
        std::string name = th == 0    ? "WP(TH0)"
                           : th == 64 ? "RP(TH64)"
                                      : "TH" + std::to_string(th);
        t.row({name, Table::num(exec, 4), Table::num(rd_sum / n, 1),
               Table::num(wr_sum / n, 1), Table::pct(sat_sum / n)});
        if (exec < best_exec) {
            best_exec = exec;
            best_th = th;
        }
    }
    t.print(std::cout);

    std::cout << "\nbest threshold: " << best_th
              << " (paper: 52 yields the lowest execution time)\n\ncsv:\n";
    t.printCsv(std::cout);
    return 0;
}
