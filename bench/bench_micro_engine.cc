/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulator's hot paths:
 * address decoding, bank state checks, scheduler tick cost per mechanism
 * and end-to-end simulated cycles per second. These are engineering
 * benchmarks for the simulator itself, not paper results.
 */

#include <benchmark/benchmark.h>

#include "bench_context.hh"
#include "ctrl/controller.hh"
#include "dram/memory_system.hh"
#include "sim/experiment.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_gen.hh"

using namespace bsim;

namespace
{

void
BM_AddressDecode(benchmark::State &state)
{
    dram::DramConfig cfg;
    cfg.addressMap = static_cast<dram::AddressMapKind>(state.range(0));
    dram::AddressMap map(cfg);
    Addr a = 0x12345640;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.decode(a));
        a += 4096 + 64;
    }
}
BENCHMARK(BM_AddressDecode)->Arg(0)->Arg(1)->Arg(2);

void
BM_BankTimingCheck(benchmark::State &state)
{
    dram::DramConfig cfg;
    dram::MemorySystem mem(cfg);
    dram::Command cmd{dram::CmdType::Activate, {0, 0, 0, 5, 0}, 1};
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.canIssue(cmd, now));
        ++now;
    }
}
BENCHMARK(BM_BankTimingCheck);

void
BM_ControllerTick(benchmark::State &state)
{
    const auto mech = static_cast<ctrl::Mechanism>(state.range(0));
    dram::DramConfig dcfg;
    dram::MemorySystem mem(dcfg);
    ctrl::ControllerConfig ccfg;
    ccfg.mechanism = mech;
    ctrl::MemoryController controller(mem, ccfg);

    trace::WorkloadProfile prof = trace::profileByName("swim");
    trace::SyntheticGenerator gen(prof, 1ULL << 40, 7);

    Tick now = 0;
    trace::TraceInstr in;
    for (auto _ : state) {
        // Keep roughly 64 accesses in flight.
        while (controller.readsOutstanding() +
                       controller.writesOutstanding() <
                   64 &&
               controller.canAccept()) {
            do {
                gen.next(in);
            } while (in.op == trace::TraceInstr::Op::Compute);
            controller.submit(in.op == trace::TraceInstr::Op::Store
                                  ? AccessType::Write
                                  : AccessType::Read,
                              in.addr, now);
        }
        controller.tick(now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerTick)
    ->Arg(int(ctrl::Mechanism::BkInOrder))
    ->Arg(int(ctrl::Mechanism::RowHit))
    ->Arg(int(ctrl::Mechanism::Intel))
    ->Arg(int(ctrl::Mechanism::BurstTH));

void
BM_EndToEnd(benchmark::State &state)
{
    for (auto _ : state) {
        sim::ExperimentConfig cfg;
        cfg.workload = "gzip";
        cfg.mechanism = ctrl::Mechanism::BurstTH;
        cfg.instructions = 20'000;
        const auto r = sim::runExperiment(cfg);
        benchmark::DoNotOptimize(r.execCpuCycles);
        state.counters["mem_cycles/s"] = benchmark::Counter(
            double(r.memCycles), benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_EndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bsim::bench::addBenchContext();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
