/**
 * @file
 * SDRAM organization design-space sweep (extension): how the number of
 * channels, ranks and banks changes both absolute performance and the
 * value of burst scheduling. The paper's baseline is 2 channels x 4
 * ranks x 4 banks (Table 3); access reordering feeds on parallelism, so
 * richer organizations should help both policies but narrow or widen
 * the gap depending on where the bottleneck sits.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

namespace
{

struct Org
{
    std::uint32_t ch, ranks, banks;
};

double
execOf(ctrl::Mechanism m, const Org &org)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.mechanism = m;
    cfg.channels = org.ch;
    cfg.ranksPerChannel = org.ranks;
    cfg.banksPerRank = org.banks;
    return double(sim::runExperiment(cfg).execCpuCycles);
}

} // namespace

int
main()
{
    bench::banner("Organization sweep (channels x ranks x banks)",
                  "design-space extension around the Table 3 baseline");

    const std::vector<Org> orgs = {
        {1, 1, 4}, {1, 4, 4}, {2, 4, 2}, {2, 4, 4}, {2, 4, 8}, {4, 4, 4},
    };

    Table t("swim, execution time (CPU cycles):");
    t.header({"organization", "banks", "BkInOrder", "Burst_TH", "gain"});
    for (const Org &o : orgs) {
        const double base = execOf(ctrl::Mechanism::BkInOrder, o);
        const double th = execOf(ctrl::Mechanism::BurstTH, o);
        char name[48];
        std::snprintf(name, sizeof(name), "%u ch x %u ranks x %u banks",
                      o.ch, o.ranks, o.banks);
        t.row({name, std::to_string(o.ch * o.ranks * o.banks),
               std::to_string(std::uint64_t(base)),
               std::to_string(std::uint64_t(th)),
               Table::pct(1.0 - th / base)});
        std::fprintf(stderr, "  %s done\n", name);
    }
    t.print(std::cout);
    std::cout << "\n(the Table 3 baseline is 2 ch x 4 ranks x 4 banks = "
                 "32 banks)\n";
    return 0;
}
