/**
 * @file
 * Extended related-work comparison: the paper's headline mechanisms
 * against the adaptive history-based scheduler (Hur & Lin, MICRO'04)
 * which the paper discusses in Section 2.2 but does not simulate. This
 * is an extension beyond the paper's evaluation — it answers "how would
 * the era's other major reordering proposal have placed in Figure 10?".
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Related work: adaptive history-based scheduling",
                  "extension beyond the paper (Section 2.2 citation)");

    const std::vector<ctrl::Mechanism> mechs = {
        ctrl::Mechanism::BkInOrder,       ctrl::Mechanism::RowHit,
        ctrl::Mechanism::Intel,           ctrl::Mechanism::Burst,
        ctrl::Mechanism::AdaptiveHistory, ctrl::Mechanism::BurstTH,
    };
    const auto workloads = trace::specProfileNames();

    Table t("execution time normalized to BkInOrder:");
    std::vector<std::string> hdr = {"benchmark"};
    for (std::size_t m = 1; m < mechs.size(); ++m)
        hdr.push_back(ctrl::mechanismName(mechs[m]));
    t.header(hdr);

    std::vector<double> sums(mechs.size(), 0.0);
    for (const auto &w : workloads) {
        const auto results = sim::runMechanismSweep(w, mechs);
        std::vector<std::string> row = {w};
        const double base = double(results[0].execCpuCycles);
        for (std::size_t m = 1; m < mechs.size(); ++m) {
            const double norm = double(results[m].execCpuCycles) / base;
            sums[m] += norm;
            row.push_back(Table::num(norm, 3));
        }
        t.row(row);
        std::fprintf(stderr, "  %s done\n", w.c_str());
    }
    std::vector<std::string> avg = {"average"};
    for (std::size_t m = 1; m < mechs.size(); ++m)
        avg.push_back(Table::num(sums[m] / double(workloads.size()), 3));
    t.row(avg);
    t.print(std::cout);

    std::cout << "\nexpectation: mix matching (AdaptiveHistory) lands "
                 "between RowHit and the\nread-prioritizing mechanisms — "
                 "it avoids write-queue pathologies but gives up\nthe "
                 "read-latency advantage burst scheduling gets from "
                 "postponing writes.\n";
    return 0;
}
