/**
 * @file
 * Figure 1 reproduction: the paper's worked scheduling example.
 *
 * Four accesses on a 2-2-2 (tCL-tRCD-tRP) device with burst length 4:
 *   access0 -> bank0 row0 (row empty)
 *   access1 -> bank1 row0 (row empty)
 *   access2 -> bank0 row1 (row conflict)
 *   access3 -> bank0 row0 (row conflict; becomes a row hit when
 *              reordered before access2)
 *
 * In-order scheduling without transaction interleaving completes them in
 * 28 memory cycles; out-of-order scheduling with interleaving needs 16
 * (Figure 1(b)). This bench replays both schedules through the actual
 * timing engine and prints the cycle-by-cycle command timeline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "dram/memory_system.hh"

using namespace bsim;
using dram::CmdType;
using dram::Coords;

namespace
{

struct Access
{
    const char *name;
    Coords at;
};

dram::DramConfig
exampleConfig()
{
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 16;
    cfg.blocksPerRow = 16;
    cfg.blockBytes = 32; // burst of 4 x 8 B
    cfg.timing = dram::Timing::figure1Example();
    return cfg;
}

/** Issue all transactions of @p a serially; returns end-of-data tick. */
Tick
runSerial(dram::MemorySystem &mem, const Access &a, Tick start,
          std::vector<std::string> &timeline)
{
    Tick now = start;
    for (;;) {
        const CmdType cmd = mem.nextCmdFor(a.at, AccessType::Read);
        dram::Command c{cmd, a.at, 1};
        while (!mem.canIssue(c, now))
            ++now;
        const dram::IssueResult r = mem.issue(c, now);
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  cycle %2llu: %-3s %s",
                      static_cast<unsigned long long>(now),
                      dram::cmdName(cmd), a.name);
        timeline.push_back(buf);
        if (cmd == CmdType::Read)
            return r.dataEnd;
        ++now;
    }
}

} // namespace

int
main()
{
    std::printf("Figure 1: memory access scheduling worked example\n");
    std::printf("device: 2-2-2 (tCL-tRCD-tRP), burst length 4\n\n");

    const std::vector<Access> accesses = {
        {"access0 (bank0 row0)", {0, 0, 0, 0, 0}},
        {"access1 (bank1 row0)", {0, 0, 1, 0, 0}},
        {"access2 (bank0 row1)", {0, 0, 0, 1, 4}},
        {"access3 (bank0 row0)", {0, 0, 0, 0, 8}},
    };

    // (a) in order, no interleaving: each access runs to completion
    // before the next starts.
    {
        dram::MemorySystem mem(exampleConfig());
        std::vector<std::string> timeline;
        Tick t = 0;
        for (const Access &a : accesses)
            t = runSerial(mem, a, t, timeline);
        std::printf("(a) in order scheduling without interleaving:\n");
        for (const auto &l : timeline)
            std::printf("%s\n", l.c_str());
        std::printf("  -> completed in %llu cycles (paper: 28)\n\n",
                    static_cast<unsigned long long>(t));
    }

    // (b) out of order with interleaving: access3 is promoted before
    // access2 (turning it into a row hit) and transactions of different
    // accesses overlap. We replay the paper's schedule and let the
    // engine verify its legality.
    {
        dram::MemorySystem mem(exampleConfig());
        std::vector<std::string> timeline;
        struct Step
        {
            Tick at;
            CmdType cmd;
            std::size_t access;
        };
        // Cycle-accurate replay of Figure 1(b): R0 C0 R1 C3 C1 P0 R0' C2
        const std::vector<Step> steps = {
            {0, CmdType::Activate, 0},  // R: bank0 row0
            {2, CmdType::Read, 0},      // C: access0 (data 4-5)
            {3, CmdType::Activate, 1},  // R: bank1 row0
            {5, CmdType::Read, 3},      // C: access3, row hit (data 7-8)
            {6, CmdType::Read, 1},      // C: access1 (data 9-10? engine checks)
            {7, CmdType::Precharge, 2}, // P: bank0 for row1
            {9, CmdType::Activate, 2},  // R: bank0 row1
            {11, CmdType::Read, 2},     // C: access2
        };
        Tick done = 0;
        for (const Step &s : steps) {
            const Access &a = accesses[s.access];
            dram::Command c{s.cmd, a.at, 1};
            Tick at = s.at;
            while (!mem.canIssue(c, at))
                ++at; // engine may need a bubble the sketch hides
            const dram::IssueResult r = mem.issue(c, at);
            char buf[96];
            std::snprintf(buf, sizeof(buf), "  cycle %2llu: %-3s %s",
                          static_cast<unsigned long long>(at),
                          dram::cmdName(s.cmd), a.name);
            timeline.push_back(buf);
            if (s.cmd == CmdType::Read && r.dataEnd > done)
                done = r.dataEnd;
        }
        std::printf("(b) out of order scheduling with interleaving:\n");
        for (const auto &l : timeline)
            std::printf("%s\n", l.c_str());
        std::printf("  -> completed in %llu cycles (paper: 16)\n",
                    static_cast<unsigned long long>(done));
    }
    return 0;
}
