/**
 * @file
 * Shared helpers for the figure-reproduction benches: the Table 4
 * mechanism list, the 16-benchmark sweep, and uniform headers.
 */

#ifndef BURSTSIM_BENCH_BENCH_UTIL_HH
#define BURSTSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "ctrl/access.hh"
#include "sim/experiment.hh"
#include "sim/sweep_runner.hh"
#include "trace/spec_profiles.hh"

namespace bench
{

/** The seven out-of-order mechanisms of Figure 10 plus the baseline. */
inline std::vector<bsim::ctrl::Mechanism>
allMechanisms()
{
    return {std::begin(bsim::ctrl::kAllMechanisms),
            std::end(bsim::ctrl::kAllMechanisms)};
}

/** Results of a full (benchmark x mechanism) sweep. */
struct Sweep
{
    std::vector<std::string> workloads;
    std::vector<bsim::ctrl::Mechanism> mechanisms;
    /** results[w][m] in the index order above. */
    std::vector<std::vector<bsim::sim::RunResult>> results;
};

/**
 * Run every SPEC profile under every mechanism. The full (workload x
 * mechanism) grid is one batch of independent runs, so it fans out over
 * a SweepRunner pool (@p jobs workers, 0 = one per hardware thread);
 * results land in grid order, byte-identical for any worker count.
 */
inline Sweep
sweepAll(std::uint64_t instructions = 0, unsigned jobs = 0)
{
    Sweep s;
    s.workloads = bsim::trace::specProfileNames();
    s.mechanisms = allMechanisms();
    const std::size_t nm = s.mechanisms.size();
    const bsim::sim::SweepRunner pool(jobs);
    std::fprintf(stderr, "  sweeping %zu workloads x %zu mechanisms on %u workers...\n",
                 s.workloads.size(), nm, pool.jobs());
    const auto flat = pool.map<bsim::sim::RunResult>(
        s.workloads.size() * nm, [&](std::size_t i) {
            bsim::sim::ExperimentConfig cfg;
            cfg.workload = s.workloads[i / nm];
            cfg.mechanism = s.mechanisms[i % nm];
            cfg.instructions = instructions;
            return bsim::sim::runExperiment(cfg);
        });
    for (std::size_t w = 0; w < s.workloads.size(); ++w)
        s.results.emplace_back(flat.begin() + std::ptrdiff_t(w * nm),
                               flat.begin() + std::ptrdiff_t((w + 1) * nm));
    return s;
}

/** Mean of a per-workload metric for mechanism index @p m. */
template <typename Fn>
double
meanOver(const Sweep &s, std::size_t m, Fn metric)
{
    double sum = 0.0;
    for (const auto &per_wl : s.results)
        sum += metric(per_wl[m]);
    return sum / double(s.results.size());
}

/** Print the standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== %s ===\n", what);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("instructions/run: %llu (override: BURSTSIM_INSTR)\n\n",
                static_cast<unsigned long long>(
                    bsim::sim::defaultInstructions()));
}

} // namespace bench

#endif // BURSTSIM_BENCH_BENCH_UTIL_HH
