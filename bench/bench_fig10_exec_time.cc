/**
 * @file
 * Figure 10 reproduction — the paper's headline result: execution time of
 * each benchmark under each access reordering mechanism, normalized to
 * BkInOrder.
 *
 * Paper expectations: average reductions of RowHit 17%, Intel 12%,
 * Burst 14%, Intel_RP 15%, Burst_RP 17%, Burst_WP 19%, Burst_TH 21%
 * (best); read preemption dominates on mcf/parser/perlbmk/facerec while
 * write piggybacking dominates on most of the rest (notably gcc, lucas).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace bsim;

int
main()
{
    bench::banner("Figure 10: normalized execution time",
                  "Fig. 10 + Section 5.3");

    const bench::Sweep s = bench::sweepAll();

    Table t("execution time normalized to BkInOrder:");
    std::vector<std::string> hdr = {"benchmark"};
    for (auto m : s.mechanisms)
        if (m != ctrl::Mechanism::BkInOrder)
            hdr.push_back(ctrl::mechanismName(m));
    t.header(hdr);

    for (std::size_t w = 0; w < s.workloads.size(); ++w) {
        const double base = double(s.results[w][0].execCpuCycles);
        std::vector<std::string> row = {s.workloads[w]};
        for (std::size_t m = 1; m < s.mechanisms.size(); ++m)
            row.push_back(Table::num(
                double(s.results[w][m].execCpuCycles) / base, 3));
        t.row(row);
    }

    // Geometric-free arithmetic mean, as the paper averages "crossing
    // all simulated benchmarks".
    {
        std::vector<std::string> row = {"average"};
        for (std::size_t m = 1; m < s.mechanisms.size(); ++m) {
            double sum = 0;
            for (std::size_t w = 0; w < s.workloads.size(); ++w)
                sum += double(s.results[w][m].execCpuCycles) /
                       double(s.results[w][0].execCpuCycles);
            row.push_back(Table::num(sum / double(s.workloads.size()), 3));
        }
        t.row(row);
    }
    {
        std::vector<std::string> row = {"paper-avg"};
        // From Section 5.3: RowHit -17%, Intel -12%, Intel_RP -15%,
        // Burst -14%, Burst_RP -17%, Burst_WP -19%, Burst_TH -21%.
        for (const char *v :
             {"0.83", "0.88", "0.85", "0.86", "0.83", "0.81", "0.79"})
            row.push_back(v);
        t.row(row);
    }
    t.print(std::cout);

    std::cout << "\ncsv:\n";
    t.printCsv(std::cout);
    return 0;
}
