/**
 * @file
 * Set-associative cache tests: hits/misses, LRU replacement, dirty
 * writebacks and invalidation.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::cpu;

namespace
{

/** Tiny cache: 4 sets x 2 ways x 64 B = 512 B. */
CacheConfig
tinyConfig()
{
    return {512, 2, 64};
}

/** Address of block @p i within set @p set for the tiny config. */
Addr
addrOf(std::uint64_t set, std::uint64_t tag)
{
    return (tag << (6 + 2)) | (set << 6);
}

} // namespace

TEST(Cache, GeometryDerivation)
{
    Cache c(tinyConfig());
    EXPECT_EQ(c.config().numSets(), 4u);
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.access(addrOf(0, 1), false));
    c.insert(addrOf(0, 1), false);
    EXPECT_TRUE(c.access(addrOf(0, 1), false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SubBlockOffsetsAlias)
{
    Cache c(tinyConfig());
    c.insert(addrOf(1, 5), false);
    EXPECT_TRUE(c.access(addrOf(1, 5) + 63, false));
    EXPECT_TRUE(c.contains(addrOf(1, 5) + 17));
}

TEST(Cache, DistinctTagsDoNotAlias)
{
    Cache c(tinyConfig());
    c.insert(addrOf(1, 5), false);
    EXPECT_FALSE(c.contains(addrOf(1, 6)));
    EXPECT_FALSE(c.contains(addrOf(2, 5)));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), false);
    c.insert(addrOf(0, 2), false);
    c.access(addrOf(0, 1), false); // make tag 1 MRU
    const Eviction ev = c.insert(addrOf(0, 3), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.addr, addrOf(0, 2));
    EXPECT_TRUE(c.contains(addrOf(0, 1)));
    EXPECT_FALSE(c.contains(addrOf(0, 2)));
}

TEST(Cache, InsertPrefersInvalidWay)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), false);
    const Eviction ev = c.insert(addrOf(0, 2), false);
    EXPECT_FALSE(ev.valid);
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), /*dirty*/ true);
    c.insert(addrOf(0, 2), false);
    const Eviction ev = c.insert(addrOf(0, 3), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.addr, addrOf(0, 1));
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNotDirty)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), false);
    c.insert(addrOf(0, 2), false);
    const Eviction ev = c.insert(addrOf(0, 3), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_FALSE(ev.dirty);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, WriteAccessSetsDirty)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), false);
    c.access(addrOf(0, 1), /*write*/ true);
    c.insert(addrOf(0, 2), false);
    const Eviction ev = c.insert(addrOf(0, 3), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, InsertExistingMergesDirtyBit)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), false);
    const Eviction ev = c.insert(addrOf(0, 1), true); // re-insert dirty
    EXPECT_FALSE(ev.valid);
    c.insert(addrOf(0, 2), false);
    const Eviction ev2 = c.insert(addrOf(0, 3), false);
    ASSERT_TRUE(ev2.valid);
    EXPECT_TRUE(ev2.dirty); // the merged dirty bit survived
}

TEST(Cache, InvalidatePresentBlock)
{
    Cache c(tinyConfig());
    c.insert(addrOf(2, 7), true);
    const Eviction ev = c.invalidate(addrOf(2, 7));
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.addr, addrOf(2, 7));
    EXPECT_FALSE(c.contains(addrOf(2, 7)));
}

TEST(Cache, InvalidateAbsentBlockIsNoop)
{
    Cache c(tinyConfig());
    const Eviction ev = c.invalidate(addrOf(2, 7));
    EXPECT_FALSE(ev.valid);
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(tinyConfig());
    // Fill set 0 beyond capacity; set 1 must be untouched.
    c.insert(addrOf(1, 9), false);
    for (std::uint64_t t = 0; t < 5; ++t)
        c.insert(addrOf(0, t), false);
    EXPECT_TRUE(c.contains(addrOf(1, 9)));
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c(tinyConfig());
    c.insert(addrOf(0, 1), false);
    c.insert(addrOf(0, 2), false);
    c.contains(addrOf(0, 1)); // probe only
    const Eviction ev = c.insert(addrOf(0, 3), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.addr, addrOf(0, 1)) << "probe must not refresh LRU";
}

TEST(CacheDeath, RejectsNonPowerOfTwoGeometry)
{
    EXPECT_SIM_ERROR(Cache({500, 2, 64}), bsim::ErrorCategory::Config, "power of two");
}

TEST(Cache, Table3Geometries)
{
    // The baseline machine's caches build and have the right set counts.
    Cache l1({128 * 1024, 2, 64});
    Cache l2({2 * 1024 * 1024, 16, 64});
    EXPECT_EQ(l1.config().numSets(), 1024u);
    EXPECT_EQ(l2.config().numSets(), 2048u);
}
