/**
 * @file
 * Cache hierarchy tests: hit levels, MSHR merging, writeback routing and
 * back-pressure retries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/cache_hierarchy.hh"

using namespace bsim;
using namespace bsim::cpu;

namespace
{

/** Records requests; capacity-limited to test retries. */
struct FakePort : MemPort
{
    bool
    canSend(unsigned n) const override
    {
        return reads.size() + writes.size() + n <= cap;
    }

    void sendRead(Addr a, bool) override { reads.push_back(a); }
    void sendWrite(Addr a) override { writes.push_back(a); }

    std::vector<Addr> reads, writes;
    std::size_t cap = 1000;
};

HierarchyConfig
tinyConfig()
{
    HierarchyConfig cfg;
    cfg.l1d = {512, 2, 64};       // 8 blocks
    cfg.l2 = {2048, 2, 64};       // 32 blocks
    cfg.l1LatencyCpu = 3;
    cfg.l2LatencyCpu = 15;
    cfg.mshrs = 4;
    return cfg;
}

} // namespace

TEST(Hierarchy, ColdLoadMissesToMemory)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    const auto r = h.access(0x1000, false, 7);
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    ASSERT_EQ(port.reads.size(), 1u);
    EXPECT_EQ(port.reads[0], 0x1000u);
    EXPECT_EQ(h.mshrsInUse(), 1u);
}

TEST(Hierarchy, ResponseReleasesWaiters)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, false, 7);
    h.access(0x1000, false, 8); // merges
    EXPECT_EQ(h.mshrMerges(), 1u);
    EXPECT_EQ(port.reads.size(), 1u) << "merged access must not refetch";
    const auto waiters = h.onMemResponse(0x1000);
    ASSERT_EQ(waiters.size(), 2u);
    EXPECT_EQ(waiters[0], 7u);
    EXPECT_EQ(waiters[1], 8u);
    EXPECT_EQ(h.mshrsInUse(), 0u);
}

TEST(Hierarchy, L1HitAfterFill)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, false, 7);
    h.onMemResponse(0x1000);
    const auto r = h.access(0x1000, false, 9);
    EXPECT_EQ(r.outcome, CacheOutcome::L1Hit);
    EXPECT_EQ(r.latencyCpu, 3u);
}

TEST(Hierarchy, L2HitWhenL1Evicted)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, false);
    h.onMemResponse(0x1000);
    // Evict 0x1000 from L1 (set-conflicting fills), keeping it in L2.
    h.access(0x1000 + 512, false);
    h.onMemResponse(0x1000 + 512);
    h.access(0x1000 + 1024, false);
    h.onMemResponse(0x1000 + 1024);
    const auto r = h.access(0x1000, false);
    EXPECT_EQ(r.outcome, CacheOutcome::L2Hit);
    EXPECT_EQ(r.latencyCpu, 15u);
}

TEST(Hierarchy, SubBlockAccessesShareMshr)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, false, 1);
    h.access(0x1020, false, 2); // same 64 B block
    EXPECT_EQ(port.reads.size(), 1u);
    EXPECT_EQ(h.onMemResponse(0x1000).size(), 2u);
}

TEST(Hierarchy, MshrLimitForcesRetry)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(h.access(a * 64, false).outcome, CacheOutcome::Miss);
    const auto r = h.access(4 * 64, false);
    EXPECT_EQ(r.outcome, CacheOutcome::Retry);
    h.onMemResponse(0);
    EXPECT_EQ(h.access(4 * 64, false).outcome, CacheOutcome::Miss);
}

TEST(Hierarchy, PortBackPressureForcesRetry)
{
    FakePort port;
    port.cap = 1; // a miss needs headroom of 2 (fill + writeback)
    CacheHierarchy h(tinyConfig(), port);
    const auto r = h.access(0x1000, false);
    EXPECT_EQ(r.outcome, CacheOutcome::Retry);
    EXPECT_EQ(h.mshrsInUse(), 0u) << "retry must not leak an MSHR";
}

TEST(Hierarchy, StoreMissAllocatesAndDirties)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    EXPECT_EQ(h.access(0x1000, true).outcome, CacheOutcome::Miss);
    EXPECT_EQ(port.reads.size(), 1u); // write-allocate fill
    h.onMemResponse(0x1000);
    // Push the dirty block out of both levels: its L2 eviction must
    // produce a memory write of exactly that block. (The dirty bit lives
    // in L1 until the L1 victim folds into L2, which also refreshes the
    // line's LRU position there — so a few conflicting fills are needed
    // before the dirty copy becomes the L2 victim.)
    for (Addr t = 1; t <= 4 && port.writes.empty(); ++t) {
        h.access(0x1000 + t * 2048, false);
        h.onMemResponse(0x1000 + t * 2048);
    }
    ASSERT_EQ(port.writes.size(), 1u);
    EXPECT_EQ(port.writes[0], 0x1000u);
}

TEST(Hierarchy, DirtyL1VictimFoldsIntoL2)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, true);
    h.onMemResponse(0x1000);
    // Conflict 0x1000 out of L1 only.
    h.access(0x1000 + 512, false);
    h.onMemResponse(0x1000 + 512);
    h.access(0x1000 + 1024, false);
    h.onMemResponse(0x1000 + 1024);
    EXPECT_TRUE(port.writes.empty()) << "L1->L2 writeback is internal";
    // The block must still be dirty in L2: hitting it and evicting it
    // from L2 later writes it back.
    EXPECT_EQ(h.access(0x1000, false).outcome, CacheOutcome::L2Hit);
}

TEST(Hierarchy, StoreMergingIntoInflightFillDirtiesLine)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, false, 1); // load miss starts fill
    const auto r = h.access(0x1000, true); // store merges
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    EXPECT_EQ(h.mshrMerges(), 1u);
}

TEST(Hierarchy, PrefillInstallsWithoutTraffic)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.prefill(0x2000, /*dirty*/ true, /*also_l1*/ true);
    EXPECT_TRUE(port.reads.empty());
    EXPECT_TRUE(port.writes.empty());
    EXPECT_EQ(h.access(0x2000, false).outcome, CacheOutcome::L1Hit);
}

TEST(Hierarchy, PrefillL2OnlyByDefault)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.prefill(0x2000, false);
    EXPECT_EQ(h.access(0x2000, false).outcome, CacheOutcome::L2Hit);
}

TEST(Hierarchy, StatsCount)
{
    FakePort port;
    CacheHierarchy h(tinyConfig(), port);
    h.access(0x1000, false, 1);
    h.onMemResponse(0x1000);
    h.access(0x1000, false, 2);
    EXPECT_EQ(h.memReads(), 1u);
    EXPECT_EQ(h.l1d().hits(), 1u);
    EXPECT_EQ(h.l1d().misses(), 1u);
}
