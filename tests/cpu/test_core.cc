/**
 * @file
 * Out-of-order core model tests: issue/retire, ROB and LSQ capacity,
 * memory blocking, dependence chains and store back-pressure.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "cpu/core.hh"
#include "trace/instr.hh"

using namespace bsim;
using namespace bsim::cpu;
using trace::TraceInstr;

namespace
{

struct FakePort : MemPort
{
    bool
    canSend(unsigned n) const override
    {
        return blocked ? false : pending.size() + n <= 64;
    }
    void sendRead(Addr a, bool) override { pending.push_back(a); }
    void sendWrite(Addr a) override { writes.push_back(a); }

    std::deque<Addr> pending;
    std::vector<Addr> writes;
    bool blocked = false;
};

struct ListTrace : trace::TraceSource
{
    bool
    next(TraceInstr &out) override
    {
        if (pos >= instrs.size())
            return false;
        out = instrs[pos++];
        return true;
    }
    std::vector<TraceInstr> instrs;
    std::size_t pos = 0;
};

TraceInstr
compute()
{
    return {TraceInstr::Op::Compute, 0, false, 0};
}

TraceInstr
load(Addr a, bool chain = false, std::uint8_t chain_id = 0)
{
    return {TraceInstr::Op::Load, a, chain, chain_id};
}

TraceInstr
store(Addr a)
{
    return {TraceInstr::Op::Store, a, false, 0};
}

struct Fixture
{
    Fixture()
    {
        HierarchyConfig hcfg;
        hcfg.l1d = {512, 2, 64};
        hcfg.l2 = {2048, 2, 64};
        hcfg.mshrs = 8;
        hier = std::make_unique<CacheHierarchy>(hcfg, port);
    }

    void
    makeCore(std::vector<TraceInstr> instrs, CoreConfig cfg = {})
    {
        tracesrc.instrs = std::move(instrs);
        core = std::make_unique<Core>(cfg, *hier, tracesrc);
    }

    struct Resp
    {
        std::uint64_t at;
        Addr addr;
    };

    /** Run CPU cycles, answering memory after @p mem_latency cycles. */
    void
    run(std::uint64_t max_cycles, std::uint64_t mem_latency = 50)
    {
        for (; now < max_cycles && !core->done(); ++now) {
            while (!due.empty() && due.front().at <= now) {
                core->onMemResponse(due.front().addr, now);
                due.pop_front();
            }
            while (!port.pending.empty()) {
                due.push_back({now + mem_latency, port.pending.front()});
                port.pending.pop_front();
            }
            core->cpuCycle(now);
        }
    }

    FakePort port;
    std::unique_ptr<CacheHierarchy> hier;
    ListTrace tracesrc;
    std::unique_ptr<Core> core;
    std::uint64_t now = 0;
    std::deque<Resp> due;
};

} // namespace

TEST(Core, ComputeOnlyTraceRetiresAtIssueWidth)
{
    Fixture f;
    std::vector<TraceInstr> t(800, compute());
    f.makeCore(t);
    f.run(100000);
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.core->retired(), 800u);
    // 8-wide with a 196 ROB: must take roughly 800/8 cycles, far fewer
    // than a serial machine would.
    EXPECT_LE(f.now, 800 / 8 + 220u);
}

TEST(Core, LoadMissBlocksRetirementUntilResponse)
{
    Fixture f;
    f.makeCore({load(0x10000), compute()});
    f.run(10, /*latency*/ 1000);
    EXPECT_FALSE(f.core->done());
    EXPECT_EQ(f.core->retired(), 0u) << "in-order retire must wait";
    f.run(5000, 100);
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.core->retired(), 2u);
}

TEST(Core, IndependentMissesOverlap)
{
    Fixture f;
    // 8 independent loads to distinct blocks: all must be outstanding
    // together (memory-level parallelism through the ROB window).
    std::vector<TraceInstr> t;
    for (int i = 0; i < 8; ++i)
        t.push_back(load(Addr(0x10000 + 64 * i)));
    f.makeCore(t);
    // Issue only; do not respond yet.
    for (int c = 0; c < 5; ++c)
        f.core->cpuCycle(f.now++);
    EXPECT_EQ(f.port.pending.size(), 8u);
}

TEST(Core, DepChainSerializesLoads)
{
    Fixture f;
    std::vector<TraceInstr> t;
    for (int i = 0; i < 4; ++i)
        t.push_back(load(Addr(0x20000 + 4096 * i), /*chain*/ true, 0));
    f.makeCore(t);
    for (int c = 0; c < 5; ++c)
        f.core->cpuCycle(f.now++);
    // Only the head of the chain may access memory.
    EXPECT_EQ(f.port.pending.size(), 1u);
    f.run(100000, 40);
    EXPECT_TRUE(f.core->done());
    // Serialized: total time at least 4 x 40 CPU cycles.
    EXPECT_GE(f.now, 160u);
}

TEST(Core, IndependentChainsOverlap)
{
    Fixture f;
    std::vector<TraceInstr> t;
    for (int i = 0; i < 4; ++i)
        t.push_back(load(Addr(0x20000 + 4096 * i), true,
                         std::uint8_t(i % 2)));
    f.makeCore(t);
    for (int c = 0; c < 5; ++c)
        f.core->cpuCycle(f.now++);
    EXPECT_EQ(f.port.pending.size(), 2u) << "one access per chain";
}

TEST(Core, RobCapacityLimitsIssue)
{
    Fixture f;
    CoreConfig cfg;
    cfg.robSize = 16;
    cfg.lsqSize = 16;
    std::vector<TraceInstr> t(100, compute());
    t.insert(t.begin(), load(0x30000)); // blocks retirement
    f.makeCore(t, cfg);
    for (int c = 0; c < 50; ++c)
        f.core->cpuCycle(f.now++);
    EXPECT_EQ(f.core->robOccupancy(), 16u);
    EXPECT_EQ(f.core->retired(), 0u);
}

TEST(Core, LsqCapacityLimitsMemOps)
{
    Fixture f;
    CoreConfig cfg;
    cfg.lsqSize = 4;
    std::vector<TraceInstr> t;
    t.push_back(load(0x40000)); // miss blocks retire
    for (int i = 0; i < 20; ++i)
        t.push_back(load(Addr(0x40000 + 64 * i)));
    f.makeCore(t, cfg);
    for (int c = 0; c < 50; ++c)
        f.core->cpuCycle(f.now++);
    EXPECT_LE(f.hier->mshrsInUse(), 4u);
    EXPECT_LE(f.port.pending.size(), 4u);
}

TEST(Core, StorePerformsAtRetire)
{
    Fixture f;
    f.makeCore({store(0x50000)});
    f.run(10000, 20);
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.core->stores(), 1u);
    // Write-allocate: the store miss fetched its block.
    EXPECT_GE(f.hier->memReads(), 1u);
}

TEST(Core, BlockedMemoryStallsStoreRetirement)
{
    Fixture f;
    f.port.blocked = true;
    f.makeCore({store(0x50000), compute()});
    for (int c = 0; c < 100; ++c)
        f.core->cpuCycle(f.now++);
    EXPECT_EQ(f.core->retired(), 0u);
    EXPECT_GT(f.core->storeStallCycles(), 0u);
    f.port.blocked = false;
    f.run(10000, 20);
    EXPECT_TRUE(f.core->done());
}

TEST(Core, CacheHitLoadsRetireQuickly)
{
    Fixture f;
    f.hier->prefill(0x60000, false, /*l1*/ true);
    f.makeCore({load(0x60000), compute()});
    f.run(100, 1000);
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.core->loads(), 1u);
}

TEST(Core, DoneOnlyAfterRobDrains)
{
    Fixture f;
    f.makeCore({load(0x70000)});
    f.run(3, 1000000);
    EXPECT_FALSE(f.core->done());
    EXPECT_EQ(f.core->robOccupancy(), 1u);
}

TEST(Core, HeadStallsCounted)
{
    Fixture f;
    f.makeCore({load(0x80000), compute()});
    f.run(30, 10000);
    EXPECT_GT(f.core->headStallCycles(), 0u);
}

TEST(Core, ChainAcrossRetiredProducerStartsImmediately)
{
    Fixture f;
    std::vector<TraceInstr> t;
    t.push_back(load(0x90000, true, 0));
    for (int i = 0; i < 300; ++i)
        t.push_back(compute());
    t.push_back(load(0x94000, true, 0)); // producer long retired
    f.makeCore(t);
    f.run(100000, 30);
    EXPECT_TRUE(f.core->done());
    EXPECT_EQ(f.core->retired(), 302u);
}
