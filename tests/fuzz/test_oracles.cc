/**
 * @file
 * Oracle battery tests: clean points pass every oracle, and a
 * deliberately injected scheduler fault is caught and attributed to
 * the right oracle. The injection goes through
 * OracleOptions::configTweak — the hook exists precisely so these
 * tests can plant a bug underneath the oracles without touching
 * production code paths.
 */

#include <gtest/gtest.h>

#include <memory>

#include "ctrl/schedulers/factory.hh"
#include "ctrl/schedulers/faulty.hh"
#include "fuzz/oracle.hh"

using namespace bsim;
using namespace bsim::fuzz;

namespace
{

/** Tweak that wraps every scheduler in a freeze-after-N decorator. */
void
injectFreeze(sim::ExperimentConfig &cfg)
{
    cfg.schedulerFactory = [](ctrl::Mechanism m,
                              const ctrl::SchedulerContext &ctx) {
        return std::make_unique<ctrl::FaultyScheduler>(
            ctx, ctrl::makeScheduler(m, ctx), 25);
    };
    cfg.schedulerFactoryId = "faulty:freeze@25";
    cfg.watchdogCycles = 5000; // trip quickly: these runs are tiny
}

} // namespace

TEST(Oracles, DefaultPointPassesAll)
{
    const OracleVerdict v = checkPoint(defaultPoint());
    EXPECT_TRUE(v.ok) << "[" << v.oracle << "] " << v.detail;
}

TEST(Oracles, RowHitHeavyPointExercisesCrossSchedulerBound)
{
    // swim is sequential enough to qualify for the Burst-vs-BkInOrder
    // bound; the default point uses it, so run a Burst variant too.
    FuzzPoint p;
    p.mechanism = ctrl::Mechanism::Burst;
    const OracleVerdict v = checkPoint(p);
    EXPECT_TRUE(v.ok) << "[" << v.oracle << "] " << v.detail;
}

TEST(Oracles, InjectedFreezeIsCaughtAsNoHang)
{
    OracleOptions opt;
    opt.configTweak = injectFreeze;
    opt.crossScheduler = false; // the freeze fires long before that
    const OracleVerdict v = checkPoint(defaultPoint(), opt);
    ASSERT_FALSE(v.ok);
    EXPECT_EQ(v.oracle, "no_hang") << v.detail;
    EXPECT_NE(v.detail.find("watchdog"), std::string::npos) << v.detail;
}

TEST(Oracles, InlineTracePointPasses)
{
    FuzzPoint p;
    p.workload = kInlineTraceWorkload;
    for (int i = 0; i < 64; ++i) {
        p.trace.push_back("L " + std::to_string(i * 64));
        p.trace.push_back("C");
        p.trace.push_back("S " + std::to_string(4096 + i * 64));
    }
    const OracleVerdict v = checkPoint(p);
    EXPECT_TRUE(v.ok) << "[" << v.oracle << "] " << v.detail;
}

TEST(Oracles, EveryTimingVariantPassesOnBothDevices)
{
    for (auto dev : {sim::DeviceGen::DDR2_800, sim::DeviceGen::DDR_266}) {
        for (int i = 0; i < int(sim::kNumTimingVariants); ++i) {
            FuzzPoint p;
            p.mechanism = ctrl::Mechanism::BurstTH;
            p.instructions = 4000;
            p.device = dev;
            p.timingVariant = sim::TimingVariant(i);
            const OracleVerdict v = checkPoint(p);
            EXPECT_TRUE(v.ok)
                << pointLabel(p) << ": [" << v.oracle << "] " << v.detail;
        }
    }
}
