/**
 * @file
 * Shrinker tests, including the subsystem's acceptance criterion: a
 * deliberately injected bug must be caught by the oracles and shrunk
 * to a point at most three config axes away from the default.
 */

#include <gtest/gtest.h>

#include <memory>

#include "ctrl/schedulers/factory.hh"
#include "ctrl/schedulers/faulty.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/shrink.hh"

using namespace bsim;
using namespace bsim::fuzz;

namespace
{

/** Injected bug: every scheduler freezes after 25 column accesses. */
void
injectFreeze(sim::ExperimentConfig &cfg)
{
    cfg.schedulerFactory = [](ctrl::Mechanism m,
                              const ctrl::SchedulerContext &ctx) {
        return std::make_unique<ctrl::FaultyScheduler>(
            ctx, ctrl::makeScheduler(m, ctx), 25);
    };
    cfg.schedulerFactoryId = "faulty:freeze@25";
    cfg.watchdogCycles = 5000;
}

} // namespace

TEST(Shrink, PassingPointComesBackUnshrunkAndOk)
{
    const ShrinkOutcome out = shrinkPoint(defaultPoint());
    EXPECT_TRUE(out.verdict.ok);
    EXPECT_EQ(out.evaluations, 1u); // one reproduction attempt, no walk
}

TEST(Shrink, InjectedBugShrinksToAtMostThreeAxes)
{
    // Sample a deliberately exotic point, plant a freeze bug under the
    // oracles, and demand the shrinker walk it back to (near) default:
    // the bug fires everywhere, so every exotic axis must fall away.
    Rng rng(7);
    FuzzPoint exotic = samplePoint(rng);
    exotic.workload = "swim"; // keep the repro cheap and deterministic
    exotic.trace.clear();

    ShrinkOptions opt;
    opt.oracle.configTweak = injectFreeze;
    opt.oracle.crossScheduler = false;

    const ShrinkOutcome out = shrinkPoint(exotic, opt);
    ASSERT_FALSE(out.verdict.ok);
    EXPECT_EQ(out.verdict.oracle, "no_hang") << out.verdict.detail;
    EXPECT_LE(axesChangedFromDefault(out.point), 3)
        << "shrunk point still exotic: " << pointLabel(out.point);
    EXPECT_GT(out.evaluations, 1u);
    EXPECT_LE(out.evaluations, opt.maxEvaluations);
}

TEST(Shrink, MinimisesTheTracePrefixToo)
{
    ShrinkOptions opt;
    opt.oracle.configTweak = injectFreeze;
    opt.oracle.crossScheduler = false;
    opt.minInstructions = 500;

    FuzzPoint p; // default axes, long run
    p.instructions = 12000;
    const ShrinkOutcome out = shrinkPoint(p, opt);
    ASSERT_FALSE(out.verdict.ok);
    // The freeze fires within the first few hundred accesses, so the
    // halving pass must cut the run well below the original length.
    EXPECT_LE(out.point.instructions, 3000u);
    EXPECT_GE(out.point.instructions, opt.minInstructions);
}

TEST(Fuzzer, CampaignCatchesAndShrinksInjectedBug)
{
    FuzzOptions opt;
    opt.seed = 5;
    opt.runs = 3;
    opt.maxFailures = 1;
    opt.oracle.configTweak = injectFreeze;
    opt.oracle.crossScheduler = false;
    opt.shrinkOpt.maxEvaluations = 60;

    const FuzzReport rep = runFuzz(opt);
    ASSERT_EQ(rep.failures.size(), 1u);
    const FuzzFailure &f = rep.failures[0];
    EXPECT_EQ(f.verdict.oracle, "no_hang");
    EXPECT_LE(axesChangedFromDefault(f.minimized),
              axesChangedFromDefault(f.original));
    // The repro body round-trips: what we would write to disk parses.
    const FuzzPoint replay =
        parsePoint(serializePoint(f.minimized, f.verdict.detail));
    EXPECT_EQ(serializePoint(replay), serializePoint(f.minimized));
}

TEST(Fuzzer, CampaignIsDeterministicPerSeed)
{
    FuzzOptions opt;
    opt.seed = 11;
    opt.runs = 5;
    const FuzzReport a = runFuzz(opt);
    const FuzzReport b = runFuzz(opt);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.failures.size(), b.failures.size());
}
