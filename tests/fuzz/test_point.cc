/**
 * @file
 * FuzzPoint unit tests: repro-file round-tripping, sampler determinism,
 * axis counting, and the lowering onto ExperimentConfig.
 */

#include <gtest/gtest.h>

#include "fuzz/point.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::fuzz;

namespace
{

FuzzPoint
exoticPoint()
{
    FuzzPoint p;
    p.workload = "mcf";
    p.mechanism = ctrl::Mechanism::BurstWP;
    p.instructions = 4000;
    p.seed = 99;
    p.threshold = 8;
    p.pagePolicy = dram::PagePolicy::Predictive;
    p.addressMap = dram::AddressMapKind::BitReversal;
    p.device = sim::DeviceGen::DDR_266;
    p.timingVariant = sim::TimingVariant::ZeroWindows;
    p.channels = 2;
    p.ranksPerChannel = 1;
    p.banksPerRank = 4;
    p.dynamicThreshold = true;
    p.sortBurstsBySize = true;
    p.criticalFirst = true;
    p.rankAware = false;
    p.coalesceWrites = true;
    p.robSize = 8;
    p.issueWidth = 4;
    return p;
}

} // namespace

TEST(FuzzPoint, SerializeParseRoundTripsEveryAxis)
{
    const FuzzPoint p = exoticPoint();
    const FuzzPoint q = parsePoint(serializePoint(p));
    EXPECT_EQ(serializePoint(q), serializePoint(p));
    EXPECT_EQ(q.workload, p.workload);
    EXPECT_EQ(q.mechanism, p.mechanism);
    EXPECT_EQ(q.instructions, p.instructions);
    EXPECT_EQ(q.seed, p.seed);
    EXPECT_EQ(q.threshold, p.threshold);
    EXPECT_EQ(q.pagePolicy, p.pagePolicy);
    EXPECT_EQ(q.addressMap, p.addressMap);
    EXPECT_EQ(q.device, p.device);
    EXPECT_EQ(q.timingVariant, p.timingVariant);
    EXPECT_EQ(q.channels, p.channels);
    EXPECT_EQ(q.rankAware, p.rankAware);
    EXPECT_EQ(q.robSize, p.robSize);
}

TEST(FuzzPoint, InlineTraceRoundTrips)
{
    FuzzPoint p;
    p.workload = kInlineTraceWorkload;
    p.trace = {"C", "L 1f40", "S 2a80", "D 3fc0", "C"};
    const FuzzPoint q = parsePoint(serializePoint(p));
    EXPECT_EQ(q.workload, kInlineTraceWorkload);
    EXPECT_EQ(q.trace, p.trace);
}

TEST(FuzzPoint, MultiLineNoteStaysCommented)
{
    // Watchdog errors embed a multi-line controller dump in the note;
    // every line must come back out as a comment or the file won't
    // parse (an early serialiser got this wrong).
    FuzzPoint p;
    const std::string text = serializePoint(
        p, "line one\ncontroller @50727: pool 16/256\n  ch0: queued");
    const FuzzPoint q = parsePoint(text); // must not throw
    EXPECT_EQ(q.workload, p.workload);
}

TEST(FuzzPoint, ParseRejectsMalformedInput)
{
    EXPECT_SIM_ERROR(parsePoint("workload=swim\nnot a kv line\n"),
                     ErrorCategory::Config, "key=value");
    EXPECT_SIM_ERROR(parsePoint("bogus_key=1\n"), ErrorCategory::Config,
                     "unknown key");
    EXPECT_SIM_ERROR(parsePoint("instructions=abc\n"),
                     ErrorCategory::Config, "number");
    EXPECT_SIM_ERROR(parsePoint("rank_aware=yes\n"),
                     ErrorCategory::Config, "0 or 1");
    EXPECT_SIM_ERROR(parsePoint("workload=@inline\n"),
                     ErrorCategory::Config, "without trace");
}

TEST(FuzzPoint, SamplerIsDeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 20; ++i) {
        const FuzzPoint pa = samplePoint(a);
        const FuzzPoint pb = samplePoint(b);
        EXPECT_EQ(serializePoint(pa), serializePoint(pb)) << "draw " << i;
        if (serializePoint(pa) != serializePoint(samplePoint(c)))
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "seeds 42 and 43 sampled identical streams";
}

TEST(FuzzPoint, AxisCountExcludesTheTracePrefixDimension)
{
    EXPECT_EQ(axesChangedFromDefault(defaultPoint()), 0);

    FuzzPoint p;
    p.instructions = 1234; // trace-prefix dimension: not an axis
    EXPECT_EQ(axesChangedFromDefault(p), 0);

    p.mechanism = ctrl::Mechanism::Burst;
    p.pagePolicy = dram::PagePolicy::ClosePageAuto;
    EXPECT_EQ(axesChangedFromDefault(p), 2);

    p.device = sim::DeviceGen::DDR_266;
    EXPECT_EQ(axesChangedFromDefault(p), 3);
}

TEST(FuzzPoint, ToConfigLowersEveryField)
{
    const FuzzPoint p = exoticPoint();
    const sim::ExperimentConfig cfg = toConfig(p);
    EXPECT_EQ(cfg.workload, "mcf");
    EXPECT_EQ(cfg.mechanism, ctrl::Mechanism::BurstWP);
    EXPECT_EQ(cfg.instructions, 4000u);
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_EQ(cfg.threshold, 8u);
    EXPECT_EQ(cfg.pagePolicy, dram::PagePolicy::Predictive);
    EXPECT_EQ(cfg.addressMap, dram::AddressMapKind::BitReversal);
    EXPECT_EQ(cfg.device, sim::DeviceGen::DDR_266);
    EXPECT_EQ(cfg.timingVariant, sim::TimingVariant::ZeroWindows);
    EXPECT_EQ(cfg.channels, 2u);
    EXPECT_FALSE(cfg.rankAware);
    EXPECT_EQ(cfg.robSize, 8u);
    EXPECT_EQ(cfg.issueWidth, 4u);
}

TEST(FuzzPoint, ToConfigMaterialisesInlineTraces)
{
    FuzzPoint p;
    p.workload = kInlineTraceWorkload;
    p.trace = {"C", "L 40", "C", "S 80"};
    const sim::ExperimentConfig cfg = toConfig(p);
    ASSERT_FALSE(cfg.workload.empty());
    EXPECT_EQ(cfg.workload[0], '@') << cfg.workload;
    // Content addressing: the same trace lowers to the same path.
    EXPECT_EQ(toConfig(p).workload, cfg.workload);
}

TEST(FuzzPoint, TimingVariantNamesRoundTrip)
{
    for (int i = 0; i < int(sim::kNumTimingVariants); ++i) {
        const auto v = sim::TimingVariant(i);
        EXPECT_EQ(sim::timingVariantByName(sim::timingVariantName(v)), v);
    }
    EXPECT_SIM_ERROR(sim::timingVariantByName("warp-speed"),
                     ErrorCategory::Config, "timing variant");
}
