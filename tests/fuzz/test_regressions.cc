/**
 * @file
 * Named regression tests for the bugs the differential fuzzer found
 * (one test per fixed bug, mirroring the minimised corpus entries) and
 * the hardening the fuzzing PR shipped alongside them: zero-window
 * timing constraints on DDR-266 and the refresh-wake memo under the
 * cycle-skipping engine with a refresh interval prime to skip spans.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fuzz/oracle.hh"
#include "obs/obs_config.hh"
#include "sim/report.hh"

using namespace bsim;
using namespace bsim::fuzz;

namespace
{

std::string
resultJson(const sim::RunResult &r)
{
    std::ostringstream os;
    sim::writeResultJson(os, r);
    return os.str();
}

/** checkPoint() and fail with the full verdict on a regression. */
void
expectClean(const FuzzPoint &p)
{
    const OracleVerdict v = checkPoint(p);
    EXPECT_TRUE(v.ok) << pointLabel(p) << ": [" << v.oracle << "] "
                      << v.detail;
}

} // namespace

// Bug 1 (corpus: burst-rowhit-predictive.repro): the protocol
// auditor's burst-invariant check cleared the bank's disturbed flag in
// noteBurstRead(), erasing the record of the current command's own
// auto-precharge — the very disturbance that legitimises the next
// burst access opening a different row. Spurious burst_row_hit
// violations under every Burst-family scheduler with the predictive
// page policy.
TEST(FuzzRegressions, BurstRowHitUnderPredictivePolicy)
{
    FuzzPoint p;
    p.mechanism = ctrl::Mechanism::Burst;
    p.pagePolicy = dram::PagePolicy::Predictive;
    expectClean(p);
}

// Bug 1, latent variant (corpus: burst-rowhit-cpa.repro): under
// close-page-auto every access auto-precharges, so a single-timestamp
// "disturbed at" fix loses the older disturbance when a newer
// same-bank auto-precharge overwrites it. The auditor must fold an
// unconsumed self-precharge into the ordinary disturbed flag.
TEST(FuzzRegressions, BurstRowHitUnderClosePageAuto)
{
    FuzzPoint p;
    p.mechanism = ctrl::Mechanism::Burst;
    p.pagePolicy = dram::PagePolicy::ClosePageAuto;
    expectClean(p);
}

// Bug 2 (corpus: refresh-starvation-*.repro): a busy burst scheduler
// re-activated banks as fast as the refresh engine precharged them, so
// a pending RefreshAll starved forever and the forward-progress
// watchdog fired (ACT/PRE ping-pong, nothing retiring). Fixed by the
// refresh-drain gate (StallCause::RefreshDrain): no new activates to a
// refresh-pending rank.
TEST(FuzzRegressions, RefreshStarvationBurstWpRefreshHeavy)
{
    FuzzPoint p;
    p.workload = "swim";
    p.mechanism = ctrl::Mechanism::BurstWP;
    p.instructions = 1500;
    p.seed = 200763;
    p.pagePolicy = dram::PagePolicy::ClosePageAuto;
    p.addressMap = dram::AddressMapKind::BlockInterleave;
    p.device = sim::DeviceGen::DDR_266;
    p.timingVariant = sim::TimingVariant::RefreshHeavy;
    p.robSize = 8;
    expectClean(p);
}

TEST(FuzzRegressions, RefreshStarvationBurstRpEightBanks)
{
    FuzzPoint p;
    p.workload = "swim";
    p.mechanism = ctrl::Mechanism::BurstRP;
    p.instructions = 2000;
    p.addressMap = dram::AddressMapKind::BlockInterleave;
    p.device = sim::DeviceGen::DDR_266;
    p.timingVariant = sim::TimingVariant::RefreshPrime;
    p.channels = 1;
    p.banksPerRank = 8;
    expectClean(p);
}

// Satellite: DDR-266 runs with zero-width activate windows (tFAW=0 and
// tRRD=0 under the zero-windows variant) must be audit-fatal clean —
// the device model and the auditor must both treat a zero window as
// "constraint absent", not "always violated".
TEST(FuzzRegressions, Ddr266ZeroWindowsAuditFatalClean)
{
    for (auto m : {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::Burst,
                   ctrl::Mechanism::BurstTH}) {
        FuzzPoint p;
        p.mechanism = m;
        p.device = sim::DeviceGen::DDR_266;
        p.timingVariant = sim::TimingVariant::ZeroWindows;
        expectClean(p);
    }
}

TEST(FuzzRegressions, Ddr266BaselineAuditFatalClean)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "mcf";
    cfg.instructions = 8000;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.device = sim::DeviceGen::DDR_266;
    cfg.obs.audit = obs::AuditMode::Fatal;
    EXPECT_NO_THROW(runExperiment(cfg)); // Fatal audit throws on any hit
}

// Satellite: the refreshWake_ memo must stay exact under the skip
// engine when tREFI is prime relative to every natural skip span —
// 3119 and 1039 are prime, so refresh deadlines land at maximally
// awkward offsets inside skipped regions. Byte-identical output
// against the step engine proves no refresh is deferred or doubled.
TEST(FuzzRegressions, RefreshPrimeEngineEquivalence)
{
    for (auto dev : {sim::DeviceGen::DDR2_800, sim::DeviceGen::DDR_266}) {
        for (auto m : {ctrl::Mechanism::BkInOrder, ctrl::Mechanism::Burst,
                       ctrl::Mechanism::AdaptiveHistory}) {
            sim::ExperimentConfig cfg;
            cfg.workload = "swim";
            cfg.instructions = 12000;
            cfg.mechanism = m;
            cfg.device = dev;
            cfg.timingVariant = sim::TimingVariant::RefreshPrime;

            cfg.engine = sim::EngineKind::Step;
            const std::string step = resultJson(runExperiment(cfg));
            cfg.engine = sim::EngineKind::Skip;
            const std::string skip = resultJson(runExperiment(cfg));
            EXPECT_EQ(step, skip)
                << ctrl::mechanismName(m) << " on "
                << sim::deviceGenName(dev);
        }
    }
}

// The refresh-heavy variant maximises drain-gate traffic; equivalence
// here pins the gate's set/clear points to the same ticks in both
// engines (the gate state is invisible to the skip-engine memo, so a
// divergence would surface as a one-byte JSON diff).
TEST(FuzzRegressions, RefreshHeavyEngineEquivalence)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 12000;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    cfg.device = sim::DeviceGen::DDR_266;
    cfg.timingVariant = sim::TimingVariant::RefreshHeavy;

    cfg.engine = sim::EngineKind::Step;
    const std::string step = resultJson(runExperiment(cfg));
    cfg.engine = sim::EngineKind::Skip;
    const std::string skip = resultJson(runExperiment(cfg));
    EXPECT_EQ(step, skip);
}
