/**
 * @file
 * Corpus replay: every checked-in repro under tests/fuzz/corpus/ must
 * parse and pass the full oracle battery. Each file is a minimised
 * witness of a bug that was fixed — a failure here means a fixed bug
 * has come back. The directory is baked in at compile time
 * (BURSTSIM_FUZZ_CORPUS_DIR) so ctest can run from anywhere.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "fuzz/oracle.hh"

using namespace bsim;
using namespace bsim::fuzz;

#ifndef BURSTSIM_FUZZ_CORPUS_DIR
#error "BURSTSIM_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace
{

std::vector<std::string>
corpusFiles()
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(BURSTSIM_FUZZ_CORPUS_DIR))
        if (e.is_regular_file() && e.path().extension() == ".repro")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

TEST(Corpus, HasTheKnownRegressionEntries)
{
    const auto files = corpusFiles();
    ASSERT_GE(files.size(), 4u)
        << "corpus lost entries: " << BURSTSIM_FUZZ_CORPUS_DIR;
}

TEST(Corpus, EveryEntryParsesAndPassesAllOracles)
{
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        FuzzPoint p;
        ASSERT_NO_THROW(p = parsePoint(slurp(path)));
        const OracleVerdict v = checkPoint(p);
        EXPECT_TRUE(v.ok) << pointLabel(p) << ": [" << v.oracle << "] "
                          << v.detail;
    }
}
