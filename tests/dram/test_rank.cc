/**
 * @file
 * Rank-level constraint tests: tRRD, tFAW, the rank-wide write-to-read
 * turnaround, and refresh preconditions.
 */

#include <gtest/gtest.h>

#include "dram/rank.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{
const Timing kT = Timing::ddr2_800();
}

TEST(Rank, TrrdSpacesActivates)
{
    Rank r(4);
    EXPECT_TRUE(r.canActivate(0, kT));
    r.noteActivate(10, kT);
    EXPECT_FALSE(r.canActivate(10 + kT.tRRD - 1, kT));
    EXPECT_TRUE(r.canActivate(10 + kT.tRRD, kT));
}

TEST(Rank, FawLimitsFourActivates)
{
    Rank r(8);
    // Four activates spaced exactly tRRD apart.
    Tick t = 100;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(r.canActivate(t, kT));
        r.noteActivate(t, kT);
        t += kT.tRRD;
    }
    // The fifth must wait until tFAW past the first.
    EXPECT_FALSE(r.canActivate(t, kT));
    EXPECT_TRUE(r.canActivate(100 + kT.tFAW, kT));
}

TEST(Rank, FawDisabledWhenZero)
{
    Timing t = kT;
    t.tFAW = 0;
    t.tRRD = 0;
    Rank r(8);
    Tick now = 50;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(r.canActivate(now, t));
        r.noteActivate(now, t);
        now += 1;
    }
}

TEST(Rank, WriteToReadTurnaround)
{
    Rank r(4);
    EXPECT_TRUE(r.canRead(0));
    const Tick data_end = 40;
    r.noteWrite(data_end, kT);
    EXPECT_FALSE(r.canRead(data_end + kT.tWTR - 1));
    EXPECT_TRUE(r.canRead(data_end + kT.tWTR));
}

TEST(Rank, RefreshRequiresAllBanksClosed)
{
    Rank r(2);
    r.bank(0).activate(1, 0, kT);
    EXPECT_FALSE(r.allBanksClosed());
    EXPECT_FALSE(r.canRefresh(1000));
    r.bank(0).precharge(kT.tRAS, kT);
    EXPECT_TRUE(r.allBanksClosed());
    EXPECT_TRUE(r.canRefresh(1000));
}

TEST(Rank, RefreshWaitsForPrechargeSettle)
{
    Rank r(1);
    r.bank(0).activate(1, 0, kT);
    r.bank(0).precharge(kT.tRAS, kT);
    // Precharge completes at tRAS + tRP.
    EXPECT_FALSE(r.canRefresh(kT.tRAS + kT.tRP - 1));
    EXPECT_TRUE(r.canRefresh(kT.tRAS + kT.tRP));
}

TEST(Rank, RefreshBlocksAllBanksForTrfc)
{
    Rank r(4);
    r.refresh(200, kT);
    for (std::uint32_t b = 0; b < 4; ++b) {
        EXPECT_FALSE(r.bank(b).canActivate(200 + kT.tRFC - 1));
        EXPECT_TRUE(r.bank(b).canActivate(200 + kT.tRFC));
    }
}

TEST(Rank, ActivateAtTickZeroCounted)
{
    Rank r(4);
    r.noteActivate(0, kT);
    EXPECT_FALSE(r.canActivate(1, kT));
}
