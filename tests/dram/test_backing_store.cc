/**
 * @file
 * Backing store tests: block-granular storage with lazy allocation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "dram/backing_store.hh"

using namespace bsim;
using namespace bsim::dram;

TEST(BackingStore, UnwrittenReadsZero)
{
    BackingStore s(64);
    std::uint8_t buf[64];
    std::memset(buf, 0xff, sizeof(buf));
    s.read(0x1000, buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(s.allocatedBlocks(), 0u);
}

TEST(BackingStore, WriteReadRoundTrip)
{
    BackingStore s(64);
    std::uint8_t in[64], out[64];
    for (int i = 0; i < 64; ++i)
        in[i] = std::uint8_t(i * 3);
    s.write(0x2000, in);
    s.read(0x2000, out);
    EXPECT_EQ(std::memcmp(in, out, 64), 0);
    EXPECT_EQ(s.allocatedBlocks(), 1u);
}

TEST(BackingStore, SubBlockAddressesAlias)
{
    BackingStore s(64);
    s.writeStamp(0x2000, 77);
    EXPECT_EQ(s.readStamp(0x2004 + 32), 77u);
    EXPECT_EQ(s.readStamp(0x203f), 77u);
    EXPECT_EQ(s.readStamp(0x2040), 0u); // next block
}

TEST(BackingStore, OverwriteTakesLatest)
{
    BackingStore s(64);
    s.writeStamp(0x0, 1);
    s.writeStamp(0x0, 2);
    EXPECT_EQ(s.readStamp(0x0), 2u);
    EXPECT_EQ(s.allocatedBlocks(), 1u);
}

TEST(BackingStore, StampsAreIndependentAcrossBlocks)
{
    BackingStore s(64);
    for (std::uint64_t i = 0; i < 100; ++i)
        s.writeStamp(i * 64, i + 1);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(s.readStamp(i * 64), i + 1);
    EXPECT_EQ(s.allocatedBlocks(), 100u);
}

TEST(BackingStore, CustomBlockSize)
{
    BackingStore s(32);
    EXPECT_EQ(s.blockBytes(), 32u);
    s.writeStamp(0x20, 9);
    EXPECT_EQ(s.readStamp(0x3f), 9u);
    EXPECT_EQ(s.readStamp(0x40), 0u);
}
