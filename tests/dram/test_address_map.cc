/**
 * @file
 * Address mapping tests: bijectivity, field bounds and the locality
 * properties each scheme exists to provide.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/address_map.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{

DramConfig
baselineConfig(AddressMapKind kind)
{
    DramConfig cfg; // Table 3 defaults
    cfg.addressMap = kind;
    return cfg;
}

} // namespace

class AddressMapAll : public testing::TestWithParam<AddressMapKind>
{
};

TEST_P(AddressMapAll, RoundTripsRandomAddresses)
{
    const DramConfig cfg = baselineConfig(GetParam());
    AddressMap map(cfg);
    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const Addr a =
            (rng.next() % cfg.capacityBytes()) & ~Addr(cfg.blockBytes - 1);
        const Coords c = map.decode(a);
        EXPECT_EQ(map.encode(c), a);
    }
}

TEST_P(AddressMapAll, FieldsWithinBounds)
{
    const DramConfig cfg = baselineConfig(GetParam());
    AddressMap map(cfg);
    Rng rng(43);
    for (int i = 0; i < 5000; ++i) {
        const Coords c = map.decode(rng.next() % cfg.capacityBytes());
        EXPECT_LT(c.channel, cfg.channels);
        EXPECT_LT(c.rank, cfg.ranksPerChannel);
        EXPECT_LT(c.bank, cfg.banksPerRank);
        EXPECT_LT(c.row, cfg.rowsPerBank);
        EXPECT_LT(c.col, cfg.blocksPerRow);
    }
}

TEST_P(AddressMapAll, DistinctBlocksDistinctCoords)
{
    // Bijectivity the other way: sequential blocks never collide.
    const DramConfig cfg = baselineConfig(GetParam());
    AddressMap map(cfg);
    Addr prev_encoded = ~Addr{0};
    for (Addr a = 0; a < 512 * 64; a += 64) {
        const Addr e = map.encode(map.decode(a));
        EXPECT_EQ(e, a);
        EXPECT_NE(e, prev_encoded);
        prev_encoded = e;
    }
}

TEST_P(AddressMapAll, AddressesWrapBeyondCapacity)
{
    const DramConfig cfg = baselineConfig(GetParam());
    AddressMap map(cfg);
    const Addr a = 0x1234000;
    const Coords lo = map.decode(a);
    const Coords hi = map.decode(a + cfg.capacityBytes());
    EXPECT_EQ(lo.channel, hi.channel);
    EXPECT_EQ(lo.rank, hi.rank);
    EXPECT_EQ(lo.bank, hi.bank);
    EXPECT_EQ(lo.row, hi.row);
    EXPECT_EQ(lo.col, hi.col);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AddressMapAll,
    testing::Values(AddressMapKind::PageInterleave,
                    AddressMapKind::BlockInterleave,
                    AddressMapKind::BitReversal,
                    AddressMapKind::PermutationInterleave),
    [](const auto &info) {
        switch (info.param) {
          case AddressMapKind::PageInterleave: return "PageInterleave";
          case AddressMapKind::BlockInterleave: return "BlockInterleave";
          case AddressMapKind::BitReversal: return "BitReversal";
          case AddressMapKind::PermutationInterleave:
            return "PermutationInterleave";
        }
        return "Unknown";
    });

TEST(AddressMapPage, SequentialBlocksFillOneRow)
{
    // Page interleaving: a row's worth of sequential blocks lands in one
    // (channel, rank, bank, row) — the property that gives streaming
    // workloads their row locality.
    const DramConfig cfg = baselineConfig(AddressMapKind::PageInterleave);
    AddressMap map(cfg);
    const Coords first = map.decode(0);
    for (std::uint32_t i = 0; i < cfg.blocksPerRow; ++i) {
        const Coords c = map.decode(Addr(i) * cfg.blockBytes);
        EXPECT_TRUE(c.sameRow(first));
        EXPECT_EQ(c.col, i);
    }
    // The next block moves to the other channel.
    const Coords next =
        map.decode(Addr(cfg.blocksPerRow) * cfg.blockBytes);
    EXPECT_NE(next.channel, first.channel);
}

TEST(AddressMapPage, RowAdvancesAfterAllBanks)
{
    const DramConfig cfg = baselineConfig(AddressMapKind::PageInterleave);
    AddressMap map(cfg);
    const std::uint64_t row_span = std::uint64_t(cfg.blocksPerRow) *
                                   cfg.blockBytes * cfg.channels *
                                   cfg.banksPerRank * cfg.ranksPerChannel;
    EXPECT_EQ(map.decode(0).row, 0u);
    EXPECT_EQ(map.decode(row_span - 1).row, 0u);
    EXPECT_EQ(map.decode(row_span).row, 1u);
}

TEST(AddressMapBlock, AdjacentBlocksAlternateChannels)
{
    const DramConfig cfg = baselineConfig(AddressMapKind::BlockInterleave);
    AddressMap map(cfg);
    const Coords a = map.decode(0);
    const Coords b = map.decode(cfg.blockBytes);
    EXPECT_NE(a.channel, b.channel);
}

TEST(AddressMapBitReversal, DiffersFromPageInterleave)
{
    const DramConfig page = baselineConfig(AddressMapKind::PageInterleave);
    const DramConfig rev = baselineConfig(AddressMapKind::BitReversal);
    AddressMap pmap(page), rmap(rev);
    int differing = 0;
    for (Addr a = 0; a < 64; ++a) {
        const Coords pc = pmap.decode(a << 20);
        const Coords rc = rmap.decode(a << 20);
        differing += !(pc.sameRow(rc) && pc.col == rc.col);
    }
    EXPECT_GT(differing, 32);
}

TEST(AddressMapBitReversal, LargePow2StridesSpreadBanks)
{
    // The point of bit reversal (Shao & Davis SCOPES'05): large
    // power-of-two strides, which page interleaving maps to one bank,
    // spread across banks.
    const DramConfig cfg = baselineConfig(AddressMapKind::BitReversal);
    AddressMap map(cfg);
    // The topmost address bits land in the channel/bank fields after
    // reversal, so GB-scale strides spread across banks...
    const std::uint64_t stride = 1ULL << 30;
    bool spreads = false;
    const Coords first = map.decode(0);
    for (int i = 1; i < 4; ++i) {
        const Coords c = map.decode(Addr(i) * stride);
        if (!c.sameBank(first))
            spreads = true;
    }
    EXPECT_TRUE(spreads);
    // ...whereas page interleaving keeps them all in one bank.
    AddressMap pmap(baselineConfig(AddressMapKind::PageInterleave));
    const Coords pfirst = pmap.decode(0);
    for (int i = 1; i < 4; ++i)
        EXPECT_TRUE(pmap.decode(Addr(i) * stride).sameBank(pfirst));
}

TEST(AddressMapPermutation, PreservesRowLocality)
{
    // Within one row, the permutation mapping is identical to page
    // interleaving: sequential blocks share (channel, rank, bank, row).
    const DramConfig cfg =
        baselineConfig(AddressMapKind::PermutationInterleave);
    AddressMap map(cfg);
    const Coords first = map.decode(0);
    for (std::uint32_t i = 1; i < cfg.blocksPerRow; ++i)
        EXPECT_TRUE(map.decode(Addr(i) * cfg.blockBytes).sameRow(first));
}

TEST(AddressMapPermutation, SpreadsRowConflictStrides)
{
    // The stride that makes page interleaving thrash one bank (row-size
    // x channels x banks x ranks) maps to rotating banks here.
    const DramConfig page = baselineConfig(AddressMapKind::PageInterleave);
    const DramConfig perm =
        baselineConfig(AddressMapKind::PermutationInterleave);
    AddressMap pmap(page), qmap(perm);
    const std::uint64_t stride = std::uint64_t(page.blocksPerRow) *
                                 page.blockBytes * page.channels *
                                 page.banksPerRank * page.ranksPerChannel;
    const Coords p0 = pmap.decode(0), q0 = qmap.decode(0);
    bool page_same_bank = true, perm_spreads = false;
    for (int i = 1; i < 4; ++i) {
        page_same_bank =
            page_same_bank && pmap.decode(Addr(i) * stride).sameBank(p0);
        perm_spreads =
            perm_spreads || !qmap.decode(Addr(i) * stride).sameBank(q0);
    }
    EXPECT_TRUE(page_same_bank);
    EXPECT_TRUE(perm_spreads);
}

TEST(AddressMap, BlockBaseMasksOffset)
{
    const DramConfig cfg = baselineConfig(AddressMapKind::PageInterleave);
    AddressMap map(cfg);
    EXPECT_EQ(map.blockBase(0x12345), Addr(0x12340));
    EXPECT_EQ(map.blockBase(0x12340), Addr(0x12340));
}

TEST(AddressMap, CoordsHelpers)
{
    Coords a{0, 1, 2, 3, 4};
    Coords b = a;
    EXPECT_TRUE(a.sameBank(b));
    EXPECT_TRUE(a.sameRow(b));
    EXPECT_TRUE(a.sameRank(b));
    b.row = 9;
    EXPECT_TRUE(a.sameBank(b));
    EXPECT_FALSE(a.sameRow(b));
    b.bank = 0;
    EXPECT_FALSE(a.sameBank(b));
    EXPECT_TRUE(a.sameRank(b));
}

TEST(AddressMapDeath, RejectsNonPowerOfTwo)
{
    DramConfig cfg;
    cfg.rowsPerBank = 1000;
    EXPECT_SIM_ERROR(AddressMap{cfg}, bsim::ErrorCategory::Config, "power of two");
}

TEST(AddressMap, CapacityMatchesTable3)
{
    DramConfig cfg;
    EXPECT_EQ(cfg.capacityBytes(), 4ULL << 30); // 4 GB
    EXPECT_EQ(cfg.totalBanks(), 32u);           // 2 x 4 x 4
    AddressMap map(cfg);
    EXPECT_EQ(map.addressBits(), 32u);
}
