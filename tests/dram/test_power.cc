/**
 * @file
 * DRAM energy model tests: per-term accounting and the qualitative
 * property the model exists for (row hits cut activate energy).
 */

#include <gtest/gtest.h>

#include "dram/power.hh"
#include "sim/experiment.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{

DramConfig
baselineDram()
{
    return DramConfig{};
}

} // namespace

TEST(Power, ZeroCountsOnlyBackground)
{
    const EnergyBreakdown e = estimateEnergy(
        {}, 1000, baselineDram(), PowerParams::ddr2_800(), 2.5);
    EXPECT_DOUBLE_EQ(e.actPre, 0.0);
    EXPECT_DOUBLE_EQ(e.readBurst, 0.0);
    EXPECT_DOUBLE_EQ(e.writeBurst, 0.0);
    EXPECT_DOUBLE_EQ(e.refresh, 0.0);
    EXPECT_GT(e.background, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.background);
}

TEST(Power, TermsScaleLinearlyWithCounts)
{
    CommandCounts one;
    one.activates = 1;
    one.reads = 1;
    one.writes = 1;
    one.refreshes = 1;
    CommandCounts ten = one;
    ten.activates = 10;
    ten.reads = 10;
    ten.writes = 10;
    ten.refreshes = 10;
    const auto p = PowerParams::ddr2_800();
    const auto e1 = estimateEnergy(one, 0, baselineDram(), p, 2.5);
    const auto e10 = estimateEnergy(ten, 0, baselineDram(), p, 2.5);
    EXPECT_NEAR(e10.actPre, 10 * e1.actPre, 1e-12);
    EXPECT_NEAR(e10.readBurst, 10 * e1.readBurst, 1e-12);
    EXPECT_NEAR(e10.writeBurst, 10 * e1.writeBurst, 1e-12);
    EXPECT_NEAR(e10.refresh, 10 * e1.refresh, 1e-12);
}

TEST(Power, ActivateDominatesSingleBurst)
{
    // An ACT/PRE pair costs more than one data burst — the physical fact
    // that makes row hits an energy optimization.
    CommandCounts c;
    c.activates = 1;
    c.reads = 1;
    const auto e = estimateEnergy(c, 0, baselineDram(),
                                  PowerParams::ddr2_800(), 2.5);
    EXPECT_GT(e.actPre, e.readBurst);
}

TEST(Power, AveragePowerSane)
{
    CommandCounts c;
    c.activates = 1000;
    c.reads = 3000;
    c.writes = 1000;
    c.refreshes = 10;
    const auto e = estimateEnergy(c, 100000, baselineDram(),
                                  PowerParams::ddr2_800(), 2.5);
    const double seconds = 100000 * 2.5e-9;
    const double watts = e.averagePower(seconds);
    // A 16-device-rank x 8-rank DDR2 system idles at a few watts and
    // peaks in the tens; sanity-band the estimate.
    EXPECT_GT(watts, 1.0);
    EXPECT_LT(watts, 100.0);
    EXPECT_DOUBLE_EQ(e.averagePower(0.0), 0.0);
}

TEST(Power, PerByteHandlesZero)
{
    EnergyBreakdown e;
    e.actPre = 1.0;
    EXPECT_DOUBLE_EQ(e.perByte(0), 0.0);
    EXPECT_DOUBLE_EQ(e.perByte(2), 0.5);
}

TEST(Power, EndToEndEnergyPopulated)
{
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 15000;
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    const auto r = sim::runExperiment(cfg);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.avgPowerW, 0.0);
    EXPECT_GT(r.dramCommands.activates, 0u);
    EXPECT_GE(r.dramCommands.precharges + r.dramCommands.refreshes,
              r.dramCommands.activates / 2)
        << "activates must eventually be matched by precharges";
}

TEST(Power, RowHitsReduceActivateEnergyPerByte)
{
    // The qualitative claim: a mechanism with a higher row hit rate
    // spends less activate/precharge energy per transferred byte.
    sim::ExperimentConfig cfg;
    cfg.workload = "swim";
    cfg.instructions = 40000;
    cfg.mechanism = ctrl::Mechanism::BkInOrder;
    const auto base = sim::runExperiment(cfg);
    cfg.mechanism = ctrl::Mechanism::BurstTH;
    const auto th = sim::runExperiment(cfg);
    ASSERT_GT(th.ctrl.rowHitRate(), base.ctrl.rowHitRate());
    const double base_act_per_byte =
        base.energy.actPre / double(base.ctrl.bytesTransferred);
    const double th_act_per_byte =
        th.energy.actPre / double(th.ctrl.bytesTransferred);
    EXPECT_LT(th_act_per_byte, base_act_per_byte);
}
