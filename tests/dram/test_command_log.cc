/**
 * @file
 * Command log and ASCII timeline tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/command_log.hh"
#include "dram/memory_system.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{

DramConfig
tinyConfig()
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 16;
    cfg.blocksPerRow = 32;
    cfg.timing.tREFI = 0;
    return cfg;
}

} // namespace

TEST(CommandLog, RecordsIssuedCommands)
{
    MemorySystem mem(tinyConfig());
    CommandLog log;
    mem.attachLog(&log);

    const Coords c{0, 0, 0, 3, 0};
    mem.issue({CmdType::Activate, c, 7}, 0);
    Tick now = mem.timing().tRCD;
    mem.issue({CmdType::Read, c, 7}, now);

    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.records()[0].type, CmdType::Activate);
    EXPECT_EQ(log.records()[0].at, 0u);
    EXPECT_EQ(log.records()[0].accessId, 7u);
    EXPECT_EQ(log.records()[1].type, CmdType::Read);
    EXPECT_EQ(log.records()[1].dataStart, now + mem.timing().tCL);
}

TEST(CommandLog, DetachStopsRecording)
{
    MemorySystem mem(tinyConfig());
    CommandLog log;
    mem.attachLog(&log);
    mem.issue({CmdType::Activate, {0, 0, 0, 3, 0}, 1}, 0);
    mem.attachLog(nullptr);
    mem.issue({CmdType::Activate, {0, 0, 1, 3, 0}, 2}, 10); // past tRRD
    EXPECT_EQ(log.size(), 1u);
}

TEST(CommandLog, CapacityBoundsDropOldest)
{
    CommandLog log(2);
    for (Tick t = 0; t < 5; ++t)
        log.record({t, CmdType::Precharge, {}, t, 0, 0});
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.totalRecorded(), 5u);
    EXPECT_EQ(log.records()[0].at, 3u);
    EXPECT_EQ(log.records()[1].at, 4u);
}

TEST(CommandLog, RingBufferWrapsManyTimesInOrder)
{
    // Regression: eviction used to erase() the vector head (O(n) per
    // record); the ring buffer must keep the newest `capacity` records
    // in oldest-first order across many wraparounds.
    CommandLog log(3);
    for (Tick t = 0; t < 1000; ++t)
        log.record({t, CmdType::Precharge, {}, t, 0, 0});
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.capacity(), 3u);
    EXPECT_EQ(log.totalRecorded(), 1000u);
    const auto recs = log.records();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].at, 997u);
    EXPECT_EQ(recs[1].at, 998u);
    EXPECT_EQ(recs[2].at, 999u);
}

TEST(CommandLog, ClearResetsRingHead)
{
    CommandLog log(2);
    for (Tick t = 0; t < 5; ++t)
        log.record({t, CmdType::Precharge, {}, t, 0, 0});
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    log.record({7, CmdType::Activate, {}, 7, 0, 0});
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.records()[0].at, 7u);
}

TEST(CommandLog, ClearResets)
{
    CommandLog log;
    log.record({0, CmdType::Precharge, {}, 1, 0, 0});
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.totalRecorded(), 0u);
}

TEST(CommandLog, TimelineShowsCommandsAndData)
{
    MemorySystem mem(tinyConfig());
    CommandLog log;
    mem.attachLog(&log);

    const Coords c{0, 0, 0, 3, 0};
    mem.issue({CmdType::Activate, c, 1}, 0);
    mem.issue({CmdType::Read, c, 1}, mem.timing().tRCD);

    std::ostringstream os;
    log.renderTimeline(os, 0, 30);
    const std::string out = os.str();
    EXPECT_NE(out.find("ch0 r0 b0"), std::string::npos);
    EXPECT_NE(out.find("ch0 data bus"), std::string::npos);
    EXPECT_NE(out.find('A'), std::string::npos);
    EXPECT_NE(out.find('R'), std::string::npos);
    EXPECT_NE(out.find('='), std::string::npos);
    // The activate glyph sits at column 0 of its lane.
    const auto lane_pos = out.find("ch0 r0 b0");
    const auto lane = out.substr(lane_pos, 17 + 30);
    EXPECT_EQ(lane[17], 'A');
}

TEST(CommandLog, TimelineDataOccupancyMatchesBurst)
{
    MemorySystem mem(tinyConfig());
    CommandLog log;
    mem.attachLog(&log);
    const Coords c{0, 0, 0, 3, 0};
    mem.issue({CmdType::Activate, c, 1}, 0);
    mem.issue({CmdType::Read, c, 1}, mem.timing().tRCD);

    std::ostringstream os;
    log.renderTimeline(os, 0, 30);
    const std::string out = os.str();
    // Count '=' on the data-bus lane only (the legend also contains one).
    const auto pos = out.find("ch0 data bus");
    ASSERT_NE(pos, std::string::npos);
    const auto line_end = out.find('\n', pos);
    std::size_t eq = 0;
    for (std::size_t i = pos; i < line_end; ++i)
        eq += out[i] == '=';
    EXPECT_EQ(eq, mem.timing().dataCycles());
}

TEST(CommandLog, TimelineTruncatesLongWindows)
{
    CommandLog log;
    log.record({0, CmdType::Precharge, {}, 1, 0, 0});
    std::ostringstream os;
    log.renderTimeline(os, 0, 10'000, 50);
    EXPECT_NE(os.str().find("truncated"), std::string::npos);
}

TEST(CommandLog, EmptyWindowHandled)
{
    CommandLog log;
    std::ostringstream os;
    log.renderTimeline(os, 10, 10);
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}
