/**
 * @file
 * Tests for the DDR timing presets and their internal consistency.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"

#include "sim_error_util.hh"

using namespace bsim::dram;

TEST(Timing, Ddr2PresetMatchesTable3)
{
    const Timing t = Timing::ddr2_800();
    // Table 3: DDR2 PC2-6400 (5-5-5), burst length 8.
    EXPECT_EQ(t.tCL, 5u);
    EXPECT_EQ(t.tRCD, 5u);
    EXPECT_EQ(t.tRP, 5u);
    EXPECT_EQ(t.burstLength, 8u);
    EXPECT_EQ(t.dataCycles(), 4u);
    EXPECT_NO_FATAL_FAILURE(t.validate());
}

TEST(Timing, Ddr266PresetMatchesSection6)
{
    const Timing t = Timing::ddr_266();
    // Section 6: DDR PC-2100 (133 MHz) typical 2-2-2.
    EXPECT_EQ(t.tCL, 2u);
    EXPECT_EQ(t.tRCD, 2u);
    EXPECT_EQ(t.tRP, 2u);
    EXPECT_EQ(t.burstLength, 4u);
    EXPECT_EQ(t.dataCycles(), 2u);
    EXPECT_NO_FATAL_FAILURE(t.validate());
}

TEST(Timing, Section6RowConflictTrend)
{
    // Section 6: row conflict latency grows from 6 cycles (DDR-266) to
    // 15 cycles (DDR2-800) although nanoseconds barely improve.
    const Timing old_t = Timing::ddr_266();
    const Timing new_t = Timing::ddr2_800();
    EXPECT_EQ(old_t.idleLatency(true, true), 6u);
    EXPECT_EQ(new_t.idleLatency(true, true), 15u);
}

TEST(Timing, IdleLatencyMatrix)
{
    const Timing t = Timing::ddr2_800();
    EXPECT_EQ(t.idleLatency(false, false), t.tCL);
    EXPECT_EQ(t.idleLatency(false, true), t.tRCD + t.tCL);
    EXPECT_EQ(t.idleLatency(true, true), t.tRP + t.tRCD + t.tCL);
}

TEST(Timing, TrcCoversTras)
{
    EXPECT_GE(Timing::ddr2_800().tRC, Timing::ddr2_800().tRAS);
    EXPECT_GE(Timing::ddr_266().tRC, Timing::ddr_266().tRAS);
}

TEST(Timing, Figure1ExampleKeepsCore3Tuple)
{
    const Timing t = Timing::figure1Example();
    EXPECT_EQ(t.tCL, 2u);
    EXPECT_EQ(t.tRCD, 2u);
    EXPECT_EQ(t.tRP, 2u);
    EXPECT_EQ(t.tREFI, 0u);
    EXPECT_NO_FATAL_FAILURE(t.validate());
}

TEST(TimingDeath, RejectsOddBurstLength)
{
    Timing t = Timing::ddr2_800();
    t.burstLength = 5;
    EXPECT_SIM_ERROR(t.validate(), bsim::ErrorCategory::Config, "burstLength");
}

TEST(TimingDeath, RejectsZeroCoreTiming)
{
    Timing t = Timing::ddr2_800();
    t.tCL = 0;
    EXPECT_SIM_ERROR(t.validate(), bsim::ErrorCategory::Config, "tCL");
}

TEST(TimingDeath, RejectsTrcBelowTras)
{
    Timing t = Timing::ddr2_800();
    t.tRC = t.tRAS - 1;
    EXPECT_SIM_ERROR(t.validate(), bsim::ErrorCategory::Config, "tRC");
}

TEST(TimingDeath, RejectsRefreshLongerThanInterval)
{
    Timing t = Timing::ddr2_800();
    t.tRFC = t.tREFI + 1;
    EXPECT_SIM_ERROR(t.validate(), bsim::ErrorCategory::Config, "tRFC");
}

TEST(TimingDeath, RejectsWriteLatencyAboveCl)
{
    Timing t = Timing::ddr2_800();
    t.tWL = t.tCL + 1;
    EXPECT_SIM_ERROR(t.validate(), bsim::ErrorCategory::Config, "tWL");
}
