/**
 * @file
 * Property tests parameterized over both device generations (DDR2-800
 * and DDR-266): every core timing rule must hold for any preset, not
 * just the baseline.
 */

#include <gtest/gtest.h>

#include "dram/memory_system.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{

DramConfig
configFor(const Timing &t)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 64;
    cfg.blocksPerRow = 32;
    cfg.timing = t;
    cfg.timing.tREFI = 0;
    return cfg;
}

IssueResult
issueWhenReady(MemorySystem &mem, const Command &cmd, Tick &now)
{
    while (!mem.canIssue(cmd, now))
        ++now;
    return mem.issue(cmd, now);
}

} // namespace

class PresetParam : public testing::TestWithParam<Timing>
{
  protected:
    Timing timing() const { return GetParam(); }
};

TEST_P(PresetParam, RowHitLatencyIsTcl)
{
    MemorySystem mem(configFor(timing()));
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    now += 100; // quiesce
    Tick t = now;
    const IssueResult r = issueWhenReady(mem, {CmdType::Read, c, 1}, t);
    EXPECT_EQ(t, now) << "row hit must issue immediately on idle device";
    EXPECT_EQ(r.dataStart - t, timing().tCL);
}

TEST_P(PresetParam, RowEmptyLatencyIsTrcdPlusTcl)
{
    MemorySystem mem(configFor(timing()));
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    Tick t = now + 1;
    const IssueResult r = issueWhenReady(mem, {CmdType::Read, c, 1}, t);
    EXPECT_EQ(r.dataStart - now, timing().tRCD + timing().tCL);
}

TEST_P(PresetParam, RowConflictPaysFullPenalty)
{
    MemorySystem mem(configFor(timing()));
    Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    now += 200; // let tRAS/tRC settle
    const Tick start = now;
    Coords other = c;
    other.row = 9;
    issueWhenReady(mem, {CmdType::Precharge, other, 2}, now);
    ++now;
    issueWhenReady(mem, {CmdType::Activate, other, 2}, now);
    ++now;
    Tick t = now;
    const IssueResult r =
        issueWhenReady(mem, {CmdType::Read, other, 2}, t);
    EXPECT_EQ(r.dataStart - start,
              timing().tRP + timing().tRCD + timing().tCL);
}

TEST_P(PresetParam, BackToBackRowHitsHaveNoBubbles)
{
    MemorySystem mem(configFor(timing()));
    Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick prev_end = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        c.col = i;
        Tick t = now;
        const IssueResult r = issueWhenReady(mem, {CmdType::Read, c, 1}, t);
        if (i) {
            EXPECT_EQ(r.dataStart, prev_end);
        }
        prev_end = r.dataEnd;
        now = t + 1;
    }
}

TEST_P(PresetParam, WriteDataUsesWriteLatency)
{
    MemorySystem mem(configFor(timing()));
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick t = now;
    const IssueResult r = issueWhenReady(mem, {CmdType::Write, c, 1}, t);
    EXPECT_EQ(r.dataStart - t, timing().tWL);
    EXPECT_EQ(r.dataEnd - r.dataStart, timing().dataCycles());
}

TEST_P(PresetParam, WriteToReadTurnaroundEnforced)
{
    MemorySystem mem(configFor(timing()));
    const Coords w{0, 0, 0, 5, 0};
    const Coords r{0, 0, 1, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, w, 1}, now);
    ++now;
    issueWhenReady(mem, {CmdType::Activate, r, 2}, now);
    ++now;
    Tick t = now;
    const IssueResult wr = issueWhenReady(mem, {CmdType::Write, w, 1}, t);
    ++t;
    Tick rd_t = t;
    issueWhenReady(mem, {CmdType::Read, r, 2}, rd_t);
    EXPECT_GE(rd_t, wr.dataEnd + timing().tWTR);
}

TEST_P(PresetParam, ActivateToActivateSameBankNeedsTrc)
{
    MemorySystem mem(configFor(timing()));
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    const Tick first_act = now;
    Tick t = now + timing().tRAS; // earliest precharge
    issueWhenReady(mem, {CmdType::Precharge, c, 1}, t);
    ++t;
    Tick act2 = t;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, act2);
    EXPECT_GE(act2 - first_act, Tick(timing().tRC));
    EXPECT_GE(act2 - first_act, Tick(timing().tRAS + timing().tRP));
}

TEST_P(PresetParam, DataBusNeverDoubleBooked)
{
    MemorySystem mem(configFor(timing()));
    // Alternate reads between two banks as fast as legal; engine panics
    // internally if data windows ever overlap.
    Coords a{0, 0, 0, 5, 0}, b{0, 0, 1, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, a, 1}, now);
    ++now;
    issueWhenReady(mem, {CmdType::Activate, b, 2}, now);
    ++now;
    Tick prev_end = 0;
    for (int i = 0; i < 8; ++i) {
        Coords &c = i % 2 ? b : a;
        c.col = std::uint32_t(i);
        Tick t = now;
        const IssueResult r =
            issueWhenReady(mem, {CmdType::Read, c, 1}, t);
        EXPECT_GE(r.dataStart, prev_end);
        prev_end = r.dataEnd;
        now = t + 1;
    }
}

INSTANTIATE_TEST_SUITE_P(Devices, PresetParam,
                         testing::Values(Timing::ddr2_800(),
                                         Timing::ddr_266()),
                         [](const auto &info) {
                             return info.param.tCL == 5 ? "DDR2_800"
                                                        : "DDR_266";
                         });
