/**
 * @file
 * Bank state machine tests: one test per timing constraint the bank
 * enforces, plus row-outcome classification and close-page behaviour.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{
const Timing kT = Timing::ddr2_800();
}

TEST(Bank, StartsClosed)
{
    Bank b;
    EXPECT_FALSE(b.isOpen());
    EXPECT_TRUE(b.canActivate(0));
    EXPECT_FALSE(b.canPrecharge(0));
    EXPECT_FALSE(b.canRead(0, 0));
    EXPECT_FALSE(b.canWrite(0, 0));
}

TEST(Bank, ClassifyEmptyHitConflict)
{
    Bank b;
    EXPECT_EQ(b.classify(3), RowOutcome::Empty);
    b.activate(3, 0, kT);
    EXPECT_EQ(b.classify(3), RowOutcome::Hit);
    EXPECT_EQ(b.classify(4), RowOutcome::Conflict);
}

TEST(Bank, ActivateOpensRow)
{
    Bank b;
    b.activate(7, 0, kT);
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow(), 7u);
}

TEST(Bank, TrcdGatesColumnAccess)
{
    Bank b;
    b.activate(1, 10, kT);
    EXPECT_FALSE(b.canRead(1, 10 + kT.tRCD - 1));
    EXPECT_TRUE(b.canRead(1, 10 + kT.tRCD));
    EXPECT_FALSE(b.canWrite(1, 10 + kT.tRCD - 1));
    EXPECT_TRUE(b.canWrite(1, 10 + kT.tRCD));
}

TEST(Bank, ReadRequiresMatchingRow)
{
    Bank b;
    b.activate(1, 0, kT);
    EXPECT_FALSE(b.canRead(2, 100));
    EXPECT_TRUE(b.canRead(1, 100));
}

TEST(Bank, TrasGatesPrecharge)
{
    Bank b;
    b.activate(1, 0, kT);
    EXPECT_FALSE(b.canPrecharge(kT.tRAS - 1));
    EXPECT_TRUE(b.canPrecharge(kT.tRAS));
}

TEST(Bank, TrpGatesActivateAfterPrecharge)
{
    Bank b;
    b.activate(1, 0, kT);
    b.precharge(kT.tRAS, kT);
    EXPECT_FALSE(b.isOpen());
    EXPECT_FALSE(b.canActivate(kT.tRAS + kT.tRP - 1));
    EXPECT_TRUE(b.canActivate(kT.tRAS + kT.tRP));
}

TEST(Bank, TrcGatesBackToBackActivates)
{
    Bank b;
    b.activate(1, 0, kT);
    // Even closing early cannot beat tRC.
    b.precharge(kT.tRAS, kT);
    const Tick after_trp = kT.tRAS + kT.tRP;
    if (after_trp < kT.tRC) {
        EXPECT_FALSE(b.canActivate(kT.tRC - 1));
    }
    EXPECT_TRUE(b.canActivate(kT.tRC));
}

TEST(Bank, ReadToPrechargeDelay)
{
    Bank b;
    b.activate(1, 0, kT);
    const Tick rd_at = kT.tRAS + 10; // past tRAS so only tRTP binds
    b.read(rd_at, kT, false);
    const Tick rtp_done =
        rd_at + std::max<Tick>(1, Tick(kT.dataCycles()) + kT.tRTP - 2);
    EXPECT_FALSE(b.canPrecharge(rtp_done - 1));
    EXPECT_TRUE(b.canPrecharge(rtp_done));
}

TEST(Bank, WriteRecoveryGatesPrecharge)
{
    Bank b;
    b.activate(1, 0, kT);
    const Tick wr_at = kT.tRAS + 10;
    b.write(wr_at, kT, false);
    const Tick wr_done = wr_at + kT.tWL + kT.dataCycles() + kT.tWR;
    EXPECT_FALSE(b.canPrecharge(wr_done - 1));
    EXPECT_TRUE(b.canPrecharge(wr_done));
}

TEST(Bank, AutoPrechargeClosesAfterRead)
{
    Bank b;
    b.activate(1, 0, kT);
    b.read(kT.tRAS + 10, kT, true);
    EXPECT_FALSE(b.isOpen());
    // The bank may not activate again until the implicit precharge
    // completes.
    EXPECT_FALSE(b.canActivate(kT.tRAS + 10 + 1));
}

TEST(Bank, AutoPrechargeClosesAfterWrite)
{
    Bank b;
    b.activate(1, 0, kT);
    b.write(kT.tRAS + 10, kT, true);
    EXPECT_FALSE(b.isOpen());
}

TEST(Bank, RefreshBlocksActivate)
{
    Bank b;
    b.refreshUntil(100);
    EXPECT_FALSE(b.canActivate(99));
    EXPECT_TRUE(b.canActivate(100));
}

TEST(BankDeath, ActivateOnOpenBankPanics)
{
    Bank b;
    b.activate(1, 0, kT);
    EXPECT_DEATH(b.activate(2, 100, kT), "activate on open bank");
}

TEST(BankDeath, PrechargeOnClosedBankPanics)
{
    Bank b;
    EXPECT_DEATH(b.precharge(0, kT), "precharge on closed bank");
}

TEST(BankDeath, EarlyActivatePanics)
{
    Bank b;
    b.activate(1, 0, kT);
    b.precharge(kT.tRAS, kT);
    EXPECT_DEATH(b.activate(1, kT.tRAS + 1, kT), "violates");
}

TEST(BankDeath, IllegalReadPanics)
{
    Bank b;
    EXPECT_DEATH(b.read(0, kT, false), "illegal read");
}
