/**
 * @file
 * Channel tests: one command per cycle on the command bus, data bus
 * occupancy and the rank/direction turnaround gaps.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{
const Timing kT = Timing::ddr2_800();
}

TEST(Channel, OneCommandPerCycle)
{
    Channel ch(2, 4);
    EXPECT_TRUE(ch.cmdBusFree(5));
    ch.useCmdBus(5);
    EXPECT_FALSE(ch.cmdBusFree(5));
    EXPECT_TRUE(ch.cmdBusFree(6));
}

TEST(ChannelDeath, DoubleCommandPanics)
{
    Channel ch(2, 4);
    ch.useCmdBus(5);
    EXPECT_DEATH(ch.useCmdBus(5), "two commands");
}

TEST(Channel, CmdBusyCyclesCount)
{
    Channel ch(1, 1);
    ch.useCmdBus(1);
    ch.useCmdBus(2);
    ch.useCmdBus(9);
    EXPECT_EQ(ch.cmdBusyCycles(), 3u);
}

TEST(Channel, DataBusFreeInitially)
{
    Channel ch(2, 4);
    EXPECT_EQ(ch.earliestDataStart(0, false, kT), 0u);
    EXPECT_FALSE(ch.dataBusUsedYet());
}

TEST(Channel, DataBusOccupiedForBurst)
{
    Channel ch(2, 4);
    ch.useDataBus(10, 0, false, kT);
    EXPECT_EQ(ch.dataBusFreeAt(), 10 + kT.dataCycles());
    EXPECT_EQ(ch.dataBusyCycles(), kT.dataCycles());
    // Same rank, same direction: back to back is legal.
    EXPECT_EQ(ch.earliestDataStart(0, false, kT), 10 + kT.dataCycles());
}

TEST(Channel, RankToRankTurnaround)
{
    Channel ch(2, 4);
    ch.useDataBus(10, 0, false, kT);
    EXPECT_EQ(ch.earliestDataStart(1, false, kT),
              10 + kT.dataCycles() + kT.tRTRS);
}

TEST(Channel, ReadToWriteTurnaround)
{
    Channel ch(2, 4);
    ch.useDataBus(10, 0, false, kT);
    EXPECT_EQ(ch.earliestDataStart(0, true, kT),
              10 + kT.dataCycles() + kT.tRTW);
}

TEST(Channel, WriteToReadSameRankHasNoExtraBusGap)
{
    // W->R same rank is governed by the rank's tWTR, not the bus.
    Channel ch(2, 4);
    ch.useDataBus(10, 0, true, kT);
    EXPECT_EQ(ch.earliestDataStart(0, false, kT), 10 + kT.dataCycles());
}

TEST(ChannelDeath, OverlappingDataPanics)
{
    Channel ch(2, 4);
    ch.useDataBus(10, 0, false, kT);
    EXPECT_DEATH(ch.useDataBus(11, 0, false, kT), "data bus conflict");
}

TEST(Channel, LastDataRankTracked)
{
    Channel ch(4, 4);
    ch.useDataBus(0, 2, false, kT);
    EXPECT_EQ(ch.lastDataRank(), 2u);
    EXPECT_TRUE(ch.dataBusUsedYet());
}
