/**
 * @file
 * Integration tests of the full timing engine: canIssue/issue semantics,
 * derived next commands, refresh, policies and bus statistics.
 */

#include <gtest/gtest.h>

#include "dram/memory_system.hh"

using namespace bsim;
using namespace bsim::dram;

namespace
{

DramConfig
smallConfig()
{
    DramConfig cfg;
    cfg.channels = 2;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 2;
    cfg.rowsPerBank = 64;
    cfg.blocksPerRow = 32;
    cfg.timing = Timing::ddr2_800();
    cfg.timing.tREFI = 0;
    return cfg;
}

/** Advance until @p cmd can issue, then issue it. */
IssueResult
issueWhenReady(MemorySystem &mem, const Command &cmd, Tick &now)
{
    while (!mem.canIssue(cmd, now))
        ++now;
    return mem.issue(cmd, now);
}

} // namespace

TEST(MemorySystem, NextCmdDerivation)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    EXPECT_EQ(mem.nextCmdFor(c, AccessType::Read), CmdType::Activate);
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    EXPECT_EQ(mem.nextCmdFor(c, AccessType::Read), CmdType::Read);
    EXPECT_EQ(mem.nextCmdFor(c, AccessType::Write), CmdType::Write);
    Coords other = c;
    other.row = 9;
    EXPECT_EQ(mem.nextCmdFor(other, AccessType::Read), CmdType::Precharge);
}

TEST(MemorySystem, ReadDataTiming)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    const Tick rd_at = now + mem.timing().tRCD; // will be ready then
    Tick t = rd_at;
    const IssueResult r = issueWhenReady(mem, {CmdType::Read, c, 1}, t);
    EXPECT_EQ(r.dataStart, t + mem.timing().tCL);
    EXPECT_EQ(r.dataEnd, r.dataStart + mem.timing().dataCycles());
}

TEST(MemorySystem, WriteDataTiming)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick t = now;
    const IssueResult r = issueWhenReady(mem, {CmdType::Write, c, 1}, t);
    EXPECT_EQ(r.dataStart, t + mem.timing().tWL);
    EXPECT_EQ(r.dataEnd, r.dataStart + mem.timing().dataCycles());
}

TEST(MemorySystem, CommandBusSerializesPerChannel)
{
    MemorySystem mem(smallConfig());
    const Coords a{0, 0, 0, 1, 0};
    const Coords b{0, 0, 1, 1, 0}; // same channel, other bank
    Tick now = 0;
    mem.issue({CmdType::Activate, a, 1}, now);
    EXPECT_FALSE(mem.canIssue({CmdType::Activate, b, 2}, now));
    // Other channel is independent.
    const Coords c{1, 0, 0, 1, 0};
    EXPECT_TRUE(mem.canIssue({CmdType::Activate, c, 3}, now));
}

TEST(MemorySystem, SameCycleCommandsOnBothChannels)
{
    MemorySystem mem(smallConfig());
    mem.issue({CmdType::Activate, {0, 0, 0, 1, 0}, 1}, 0);
    mem.issue({CmdType::Activate, {1, 0, 0, 1, 0}, 2}, 0);
    EXPECT_EQ(mem.cmdBusyCycles(), 2u);
}

TEST(MemorySystem, BackToBackRowHitsSaturateDataBus)
{
    // The property burst scheduling exploits: row hits within a bank can
    // stream data back to back.
    MemorySystem mem(smallConfig());
    Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick first_start = 0, prev_end = 0;
    for (int i = 0; i < 4; ++i) {
        c.col = std::uint32_t(i);
        Tick t = now;
        const IssueResult r = issueWhenReady(mem, {CmdType::Read, c, 1}, t);
        if (i == 0) {
            first_start = r.dataStart;
        } else {
            EXPECT_EQ(r.dataStart, prev_end); // no bubbles
        }
        prev_end = r.dataEnd;
        now = t + 1;
    }
    EXPECT_EQ(prev_end - first_start, 4 * mem.timing().dataCycles());
}

TEST(MemorySystem, RankTurnaroundForcesGap)
{
    MemorySystem mem(smallConfig());
    const Coords a{0, 0, 0, 5, 0};
    const Coords b{0, 1, 0, 5, 0}; // other rank, same channel
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, a, 1}, now);
    ++now;
    issueWhenReady(mem, {CmdType::Activate, b, 2}, now);
    ++now;
    Tick t = now;
    const IssueResult ra = issueWhenReady(mem, {CmdType::Read, a, 1}, t);
    ++t;
    const IssueResult rb = issueWhenReady(mem, {CmdType::Read, b, 2}, t);
    EXPECT_GE(rb.dataStart, ra.dataEnd + mem.timing().tRTRS);
}

TEST(MemorySystem, RefreshAllBlocksRank)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    EXPECT_TRUE(mem.canIssue({CmdType::RefreshAll, c, 0}, now));
    mem.issue({CmdType::RefreshAll, c, 0}, now);
    EXPECT_FALSE(mem.canIssue({CmdType::Activate, c, 1},
                              now + mem.timing().tRFC - 1));
    EXPECT_TRUE(mem.canIssue({CmdType::Activate, c, 1},
                             now + mem.timing().tRFC));
}

TEST(MemorySystem, RefreshNeedsClosedBanks)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    EXPECT_FALSE(mem.canIssue({CmdType::RefreshAll, c, 0}, now + 1));
}

TEST(MemorySystem, ClosePagePolicyAutoprecharges)
{
    DramConfig cfg = smallConfig();
    cfg.pagePolicy = PagePolicy::ClosePageAuto;
    MemorySystem mem(cfg);
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick t = now;
    issueWhenReady(mem, {CmdType::Read, c, 1}, t);
    EXPECT_FALSE(mem.bank(c).isOpen());
    EXPECT_EQ(mem.classify(c), RowOutcome::Empty);
}

TEST(MemorySystem, BusUtilizationAccounting)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick t = now;
    issueWhenReady(mem, {CmdType::Read, c, 1}, t);
    EXPECT_EQ(mem.cmdBusyCycles(), 2u);
    EXPECT_EQ(mem.dataBusyCycles(), mem.timing().dataCycles());
    // Utilization normalizes over channels and elapsed time.
    EXPECT_DOUBLE_EQ(mem.addressBusUtilization(100), 2.0 / 200.0);
    EXPECT_DOUBLE_EQ(mem.dataBusUtilization(100),
                     double(mem.timing().dataCycles()) / 200.0);
    EXPECT_DOUBLE_EQ(mem.addressBusUtilization(0), 0.0);
}

TEST(MemorySystemDeath, IllegalIssuePanics)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    EXPECT_DEATH(mem.issue({CmdType::Read, c, 1}, 0), "illegal RD issue");
}

TEST(MemorySystem, WriteToReadTurnaroundAcrossBanks)
{
    // tWTR is rank-wide: a write in bank 0 delays a read in bank 1 of
    // the same rank.
    MemorySystem mem(smallConfig());
    const Coords w{0, 0, 0, 5, 0};
    const Coords r{0, 0, 1, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, w, 1}, now);
    ++now;
    issueWhenReady(mem, {CmdType::Activate, r, 2}, now);
    ++now;
    Tick t = now;
    const IssueResult wr = issueWhenReady(mem, {CmdType::Write, w, 1}, t);
    ++t;
    Tick rd_t = t;
    issueWhenReady(mem, {CmdType::Read, r, 2}, rd_t);
    EXPECT_GE(rd_t, wr.dataEnd + mem.timing().tWTR);
}

TEST(MemorySystemPredictive, StreamingKeepsRowsOpen)
{
    // Row hits train the predictor toward "stay open": a streaming
    // pattern must behave like open page.
    DramConfig cfg = smallConfig();
    cfg.pagePolicy = PagePolicy::Predictive;
    MemorySystem mem(cfg);
    Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    for (std::uint32_t i = 0; i < 6; ++i) {
        c.col = i;
        Tick t = now;
        issueWhenReady(mem, {CmdType::Read, c, 1}, t);
        now = t + 1;
        EXPECT_TRUE(mem.bank(c).isOpen()) << "access " << i;
    }
    EXPECT_DOUBLE_EQ(mem.predictedCloseRate(), 0.0);
}

TEST(MemorySystemPredictive, ConflictsTrainTowardClose)
{
    DramConfig cfg = smallConfig();
    cfg.pagePolicy = PagePolicy::Predictive;
    MemorySystem mem(cfg);
    Tick now = 0;
    // Alternate rows in one bank: every access conflicts.
    for (std::uint32_t i = 0; i < 8; ++i) {
        Coords c{0, 0, 0, 5 + (i % 2), 0};
        for (;;) {
            const CmdType cmd = mem.nextCmdFor(c, AccessType::Read);
            Tick t = now;
            issueWhenReady(mem, {cmd, c, i + 1}, t);
            now = t + 1;
            if (cmd == CmdType::Read)
                break;
        }
    }
    // After the conflicts, the predictor closes rows after access.
    EXPECT_GT(mem.predictedCloseRate(), 0.0);
    const Coords last{0, 0, 0, 5, 0};
    EXPECT_FALSE(mem.bank(last).isOpen())
        << "trained predictor should auto-precharge";
}

TEST(MemorySystemPredictive, StaticPoliciesReportZeroRate)
{
    MemorySystem mem(smallConfig());
    const Coords c{0, 0, 0, 5, 0};
    Tick now = 0;
    issueWhenReady(mem, {CmdType::Activate, c, 1}, now);
    ++now;
    Tick t = now;
    issueWhenReady(mem, {CmdType::Read, c, 1}, t);
    EXPECT_DOUBLE_EQ(mem.predictedCloseRate(), 0.0);
}
