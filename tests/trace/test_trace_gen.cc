/**
 * @file
 * Synthetic workload generator tests: determinism, mix fractions,
 * cluster structure, footprint confinement and the SPEC profile set.
 */

#include <gtest/gtest.h>

#include <map>

#include "trace/spec_profiles.hh"
#include "trace/trace_gen.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::trace;

namespace
{

WorkloadProfile
simpleProfile()
{
    WorkloadProfile p;
    p.name = "test";
    p.memFraction = 0.4;
    p.writeFraction = 0.3;
    p.hotFraction = 0.5;
    p.seqFraction = 0.5;
    p.chaseFraction = 0.2;
    p.numStreams = 2;
    p.numWriteStreams = 1;
    p.numChains = 2;
    p.footprintBytes = 64ULL << 20;
    p.hotBytes = 1ULL << 20;
    p.clusterBlocks = 4;
    return p;
}

} // namespace

TEST(TraceGen, DeterministicForSeed)
{
    SyntheticGenerator a(simpleProfile(), 10000, 5);
    SyntheticGenerator b(simpleProfile(), 10000, 5);
    TraceInstr ia, ib;
    while (true) {
        const bool ra = a.next(ia);
        const bool rb = b.next(ib);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        ASSERT_EQ(ia.op, ib.op);
        ASSERT_EQ(ia.addr, ib.addr);
        ASSERT_EQ(ia.depChain, ib.depChain);
        ASSERT_EQ(ia.chainId, ib.chainId);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    SyntheticGenerator a(simpleProfile(), 1000, 5);
    SyntheticGenerator b(simpleProfile(), 1000, 6);
    TraceInstr ia, ib;
    int diff = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(ia);
        b.next(ib);
        diff += ia.op != ib.op || ia.addr != ib.addr;
    }
    EXPECT_GT(diff, 100);
}

TEST(TraceGen, ProducesExactlyLimit)
{
    SyntheticGenerator g(simpleProfile(), 777, 1);
    TraceInstr in;
    std::uint64_t n = 0;
    while (g.next(in))
        ++n;
    EXPECT_EQ(n, 777u);
    EXPECT_EQ(g.produced(), 777u);
    EXPECT_FALSE(g.next(in)); // stays exhausted
}

TEST(TraceGen, MemFractionApproximatelyHonored)
{
    // Clusters amplify memory ops: the fraction must be at least
    // memFraction and well below 1 for this profile.
    SyntheticGenerator g(simpleProfile(), 50000, 3);
    TraceInstr in;
    std::uint64_t mem = 0;
    while (g.next(in))
        mem += in.op != TraceInstr::Op::Compute;
    const double frac = double(mem) / 50000.0;
    EXPECT_GT(frac, 0.35);
    EXPECT_LT(frac, 0.75);
}

TEST(TraceGen, WriteFractionApproximatelyHonored)
{
    SyntheticGenerator g(simpleProfile(), 50000, 3);
    TraceInstr in;
    std::uint64_t mem = 0, writes = 0;
    while (g.next(in)) {
        if (in.op == TraceInstr::Op::Compute)
            continue;
        mem += 1;
        writes += in.op == TraceInstr::Op::Store;
    }
    const double frac = double(writes) / double(mem);
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.45);
}

TEST(TraceGen, AddressesStayInFootprint)
{
    const WorkloadProfile p = simpleProfile();
    SyntheticGenerator g(p, 20000, 9);
    TraceInstr in;
    while (g.next(in)) {
        if (in.op == TraceInstr::Op::Compute)
            continue;
        EXPECT_GE(in.addr, p.regionBase);
        EXPECT_LT(in.addr, p.regionBase + p.footprintBytes);
    }
}

TEST(TraceGen, ClustersAreStrideContiguous)
{
    WorkloadProfile p = simpleProfile();
    p.hotFraction = 0.0;
    p.seqFraction = 1.0;
    p.chaseFraction = 0.0;
    p.writeFraction = 0.0;
    p.memFraction = 1.0;
    SyntheticGenerator g(p, 64, 11);
    TraceInstr in;
    std::vector<Addr> addrs;
    while (g.next(in))
        addrs.push_back(in.addr);
    // Every group of clusterBlocks is stride-contiguous.
    for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
        if (i % p.clusterBlocks == p.clusterBlocks - 1)
            continue; // cluster boundary
        EXPECT_EQ(addrs[i + 1], addrs[i] + p.streamStride)
            << "at index " << i;
    }
}

TEST(TraceGen, ChaseLoadsCycleThroughChains)
{
    WorkloadProfile p = simpleProfile();
    p.hotFraction = 0.0;
    p.seqFraction = 0.0;
    p.chaseFraction = 1.0;
    p.writeFraction = 0.0;
    p.memFraction = 1.0;
    p.numChains = 3;
    SyntheticGenerator g(p, 30, 13);
    TraceInstr in;
    std::map<std::uint8_t, int> chains;
    while (g.next(in)) {
        ASSERT_TRUE(in.depChain);
        chains[in.chainId] += 1;
    }
    EXPECT_EQ(chains.size(), 3u);
    EXPECT_EQ(chains[0], 10);
    EXPECT_EQ(chains[1], 10);
    EXPECT_EQ(chains[2], 10);
}

TEST(TraceGen, StoresNeverMarkedDepChain)
{
    WorkloadProfile p = simpleProfile();
    p.chaseFraction = 1.0;
    p.seqFraction = 0.0;
    p.hotFraction = 0.0;
    p.writeFraction = 1.0;
    p.storeStreamBias = 0.0;
    p.memFraction = 1.0;
    SyntheticGenerator g(p, 100, 17);
    TraceInstr in;
    while (g.next(in)) {
        EXPECT_EQ(in.op, TraceInstr::Op::Store);
        EXPECT_FALSE(in.depChain);
    }
}

TEST(TraceGen, BlockAlignedStreamAddresses)
{
    WorkloadProfile p = simpleProfile();
    SyntheticGenerator g(p, 5000, 19);
    TraceInstr in;
    while (g.next(in)) {
        if (in.op == TraceInstr::Op::Compute)
            continue;
        EXPECT_EQ(in.addr % 64, 0u);
    }
}

TEST(TraceGenDeath, RejectsBadFractions)
{
    WorkloadProfile p = simpleProfile();
    p.seqFraction = 0.8;
    p.chaseFraction = 0.5;
    EXPECT_SIM_ERROR(SyntheticGenerator(p, 10, 1),
                     bsim::ErrorCategory::Config, "fractions");
}

TEST(TraceGenDeath, RejectsBadMemFraction)
{
    WorkloadProfile p = simpleProfile();
    p.memFraction = 1.5;
    EXPECT_SIM_ERROR(SyntheticGenerator(p, 10, 1),
                     bsim::ErrorCategory::Config, "memFraction");
}

TEST(SpecProfiles, SixteenBenchmarksInFigureOrder)
{
    const auto names = specProfileNames();
    ASSERT_EQ(names.size(), 16u);
    EXPECT_EQ(names.front(), "gzip");
    EXPECT_EQ(names.back(), "apsi");
    // Figure 8/11's running example must be present.
    EXPECT_NO_FATAL_FAILURE(profileByName("swim"));
}

TEST(SpecProfiles, AllProfilesGenerateCleanly)
{
    for (const auto &p : specProfiles()) {
        SyntheticGenerator g(p, 2000, 42);
        TraceInstr in;
        std::uint64_t mem = 0;
        while (g.next(in))
            mem += in.op != TraceInstr::Op::Compute;
        EXPECT_GT(mem, 100u) << p.name;
    }
}

TEST(SpecProfiles, PointerBenchmarksHaveChains)
{
    EXPECT_GT(profileByName("mcf").chaseFraction, 0.3);
    EXPECT_GT(profileByName("mcf").numChains, 1u);
    EXPECT_GT(profileByName("parser").chaseFraction, 0.3);
    EXPECT_DOUBLE_EQ(profileByName("swim").chaseFraction +
                         profileByName("swim").seqFraction,
                     0.80);
}

TEST(SpecProfilesDeath, UnknownNameFatal)
{
    EXPECT_SIM_ERROR(profileByName("doom3"),
                     bsim::ErrorCategory::Config, "unknown workload");
}
