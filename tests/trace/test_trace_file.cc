/**
 * @file
 * Trace file format tests: round trip, parsing and error handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/trace_file.hh"
#include "trace/trace_gen.hh"

#include "sim_error_util.hh"

using namespace bsim;
using namespace bsim::trace;

TEST(TraceFile, WriteReadRoundTrip)
{
    WorkloadProfile p;
    p.memFraction = 0.5;
    p.chaseFraction = 0.3;
    p.seqFraction = 0.3;
    SyntheticGenerator gen(p, 500, 21);
    std::stringstream ss;
    EXPECT_EQ(writeTrace(ss, gen, 500), 500u);

    const auto parsed = readTrace(ss);
    ASSERT_EQ(parsed.size(), 500u);

    SyntheticGenerator gen2(p, 500, 21);
    TraceInstr ref;
    for (const auto &in : parsed) {
        ASSERT_TRUE(gen2.next(ref));
        EXPECT_EQ(in.op, ref.op);
        if (in.op != TraceInstr::Op::Compute) {
            EXPECT_EQ(in.addr, ref.addr);
        }
        EXPECT_EQ(in.depChain, ref.depChain);
    }
}

TEST(TraceFile, WriteStopsAtCount)
{
    WorkloadProfile p;
    SyntheticGenerator gen(p, 1000, 3);
    std::stringstream ss;
    EXPECT_EQ(writeTrace(ss, gen, 10), 10u);
    EXPECT_EQ(readTrace(ss).size(), 10u);
}

TEST(TraceFile, ParsesAllRecordKinds)
{
    std::stringstream ss("C\nL 1a40\nD ff80\nS 2000\n");
    const auto t = readTrace(ss);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].op, TraceInstr::Op::Compute);
    EXPECT_EQ(t[1].op, TraceInstr::Op::Load);
    EXPECT_EQ(t[1].addr, 0x1a40u);
    EXPECT_FALSE(t[1].depChain);
    EXPECT_EQ(t[2].op, TraceInstr::Op::Load);
    EXPECT_TRUE(t[2].depChain);
    EXPECT_EQ(t[2].addr, 0xff80u);
    EXPECT_EQ(t[3].op, TraceInstr::Op::Store);
    EXPECT_EQ(t[3].addr, 0x2000u);
}

TEST(TraceFile, SkipsCommentsAndBlankLines)
{
    std::stringstream ss("# header\n\nC\n# mid\nL 40\n");
    EXPECT_EQ(readTrace(ss).size(), 2u);
}

TEST(TraceFileDeath, UnknownRecordFatal)
{
    std::stringstream ss("X 1234\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "unknown record");
}

TEST(TraceFileDeath, MissingAddressFatal)
{
    std::stringstream ss("L\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "missing address");
}

TEST(VectorTrace, ReplaysAndRewinds)
{
    VectorTrace v({{TraceInstr::Op::Compute, 0, false, 0},
                   {TraceInstr::Op::Load, 64, false, 0}});
    TraceInstr in;
    EXPECT_TRUE(v.next(in));
    EXPECT_TRUE(v.next(in));
    EXPECT_EQ(in.addr, 64u);
    EXPECT_FALSE(v.next(in));
    v.rewind();
    EXPECT_TRUE(v.next(in));
    EXPECT_EQ(v.size(), 2u);
}

TEST(TraceFileDeath, MissingFileFatal)
{
    EXPECT_SIM_ERROR(loadTraceFile("/nonexistent/path/trace.txt"),
                     bsim::ErrorCategory::Trace, "cannot open");
}

// --- malformed-input corpus (structured Trace errors with position) ---

TEST(TraceFileMalformed, NonHexAddressReportsColumn)
{
    std::stringstream ss("C\nL 12xz\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "non-hex address");
}

TEST(TraceFileMalformed, ErrorsCarryLineNumber)
{
    std::stringstream ss("C\nC\nS nope\n");
    try {
        readTrace(ss);
        FAIL() << "no throw";
    } catch (const bsim::SimError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceFileMalformed, TruncatedLineIsMissingAddress)
{
    std::stringstream ss("L 1000\nS\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "missing address");
}

TEST(TraceFileMalformed, TrailingTextAfterAddress)
{
    std::stringstream ss("L 1000 extra\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "unexpected text");
}

TEST(TraceFileMalformed, AddressWiderThan64Bits)
{
    std::stringstream ss("L 123456789abcdef01\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "wider than 64 bits");
}

TEST(TraceFileMalformed, EmbeddedNulByte)
{
    std::string line = "L 1000\nC\n";
    line[7] = '\0'; // NUL where the record char should be
    std::stringstream ss(line);
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace, "NUL");
}

TEST(TraceFileMalformed, ComputeWithTrailingTextRejected)
{
    std::stringstream ss("C 1234\n");
    EXPECT_SIM_ERROR(readTrace(ss), bsim::ErrorCategory::Trace,
                     "unexpected text");
}

TEST(TraceFileMalformed, CrlfLineEndingsAccepted)
{
    std::stringstream ss("C\r\nL 40\r\n");
    EXPECT_EQ(readTrace(ss).size(), 2u);
}

TEST(TraceFileMalformed, EmptyFileRejectedByLoader)
{
    const std::string path = testing::TempDir() + "/bsim_empty.trace";
    { std::ofstream(path) << "# only a comment\n"; }
    EXPECT_SIM_ERROR(loadTraceFile(path), bsim::ErrorCategory::Trace,
                     "no instructions");
    std::remove(path.c_str());
}
